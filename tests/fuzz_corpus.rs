//! The fuzzer's regression corpus, re-run deterministically on every
//! `cargo test`.
//!
//! Each file in `tests/corpus/` is a shrunk [`Finding`] — a minimal
//! (workload, fault schedule) pair plus the violation its replay reported
//! when it was found. These tests replay every file and require the exact
//! same violation (assertion, fault dependence, fingerprint) at 1, 2 and 4
//! workers, so a corpus entry reproduces forever or fails loudly.
//!
//! [`Finding`]: er_pi_fuzz::Finding

use std::path::Path;

use er_pi_fuzz::{corpus, run_case, shrink, OracleOptions};

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus"))
}

#[test]
fn corpus_is_present_and_well_formed() {
    let corpus = corpus::load(corpus_dir()).expect("corpus files parse");
    assert!(
        !corpus.is_empty(),
        "the regression corpus must ship at least one finding"
    );
    for (path, finding) in &corpus {
        assert_eq!(
            path.file_name().and_then(|n| n.to_str()),
            Some(corpus::file_name(finding).as_str()),
            "corpus filename must embed the case fingerprint"
        );
        assert_eq!(
            finding.case.fingerprint(),
            finding.fingerprint,
            "{}: stored fingerprint drifted from the case",
            path.display()
        );
        finding.case.spec.validate().expect("corpus case validates");
    }
}

#[test]
fn every_corpus_finding_reproduces_identically() {
    for (path, finding) in corpus::load(corpus_dir()).unwrap() {
        for workers in [1, 2, 4] {
            let opts = OracleOptions {
                workers,
                ..OracleOptions::default()
            };
            let fresh = run_case(&finding.case, &opts)
                .unwrap_or_else(|| panic!("{} no longer fails", path.display()));
            assert_eq!(fresh.assertion, finding.assertion, "{}", path.display());
            assert_eq!(fresh.message, finding.message, "{}", path.display());
            assert_eq!(
                fresh.fault_dependent,
                finding.fault_dependent,
                "{}: fault dependence drifted",
                path.display()
            );
            assert_eq!(
                fresh.fingerprint,
                finding.fingerprint,
                "{}: fingerprint drifted",
                path.display()
            );
        }
    }
}

/// Corpus entries are already minimal: re-shrinking (preserving assertion
/// and fault dependence) must be the identity.
#[test]
fn corpus_findings_are_shrunk_fixpoints() {
    let opts = OracleOptions::default();
    for (path, finding) in corpus::load(corpus_dir()).unwrap() {
        // Hand-promoted entries document richer schedules (e.g. fan-out
        // double duplicates); only machine-shrunk single-fault entries
        // claim minimality.
        if finding.case.faults.len() > 1 || finding.case.spec.entries.len() > 2 {
            continue;
        }
        let accepts = |c: &er_pi_fuzz::FuzzCase| {
            run_case(c, &opts).is_some_and(|f| {
                f.assertion == finding.assertion && f.fault_dependent == finding.fault_dependent
            })
        };
        let reshrunk = shrink(&finding.case, &accepts);
        assert_eq!(
            reshrunk,
            finding.case,
            "{}: corpus case was not a shrink fixpoint",
            path.display()
        );
    }
}

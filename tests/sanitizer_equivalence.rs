//! Differential-equivalence harness for the independence sanitizer.
//!
//! The sanitizer's contract is that it *observes* a replay without steering
//! it: a sanitizer-enabled [`Report`](er_pi::Report) must be byte-identical
//! to a sanitizer-off one (`Report::diff == None`) for every bug, worker
//! count, and stop mode — and across the whole catalogue, whose derived and
//! hand-declared independence sets are sound, it must report zero
//! violations. The second half of the suite proves the detection paths
//! work: a deliberately corrupted conflict-table entry is caught statically
//! by the certifier, and the matching false independence *declaration* is
//! caught dynamically by the sanitizer.

use er_pi::{
    certify_table_with, validate_table, LintPattern, OpOutcome, PruningConfig, Session,
    SystemModel, TestSuite, Verdict,
};
use er_pi_model::{Event, EventId, EventKind, ReplicaId, Value};
use er_pi_subjects::{Bug, ReplayOptions};

const CAP: usize = 10_000;
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

fn opts(stop: bool, workers: usize, sanitize: bool) -> ReplayOptions {
    ReplayOptions {
        cap: CAP,
        stop_on_first_violation: stop,
        workers,
        incremental: true,
        telemetry: None,
        sanitize,
        ..ReplayOptions::default()
    }
}

/// Full catalogue × {1, 2, 4} workers × {exhaustive, stop-first}: the
/// sanitizer must neither perturb the report nor (on the sound catalogue
/// configurations) find anything.
#[test]
fn sanitizer_leaves_reports_byte_identical_and_finds_nothing() {
    for bug in Bug::catalogue() {
        for stop in [false, true] {
            let reference = bug.replay_report_opts(&opts(stop, 1, false));
            for workers in WORKER_COUNTS {
                let (sanitized, findings) = bug.replay_report_checked(&opts(stop, workers, true));
                assert_eq!(
                    reference.diff(&sanitized),
                    None,
                    "{} stop={stop} workers={workers}: sanitizer perturbed the report",
                    bug.name
                );
                let findings = findings.expect("sanitize was requested");
                assert!(
                    findings.passed(),
                    "{} stop={stop} workers={workers}: false independence violations: {:?}",
                    bug.name,
                    findings.violations
                );
                assert_eq!(findings.runs_scanned, sanitized.explored);
            }
        }
    }
}

/// The sanitizer knob off must hand back no report at all.
#[test]
fn sanitizer_off_returns_no_findings() {
    let bug = Bug::by_name("Roshi-1").unwrap();
    let (_, findings) = bug.replay_report_checked(&opts(true, 1, false));
    assert!(findings.is_none());
}

/// A corrupted conflict-table entry — "equal-timestamp register writes
/// commute" — must be caught *statically*: the certifier replays the claim
/// in both orders, observes divergence, marks it UNSOUND, and
/// `validate_table` surfaces it as an independence-soundness diagnostic.
#[test]
fn corrupted_table_entry_is_caught_by_the_certifier() {
    const CORRUPT: &str = "register writes tie-break on equal timestamps";
    let table = certify_table_with(&|a, b| match a.commutes_with(b) {
        Some(reason) if reason == CORRUPT => None, // lie: claim they commute
        verdict => verdict,
    });
    assert!(!table.is_sound(), "the corruption must not certify");
    let unsound = table.unsound();
    assert!(
        unsound
            .iter()
            .any(|c| c.verdict == Verdict::Unsound && c.witness.is_some()),
        "an UNSOUND claim with a concrete divergence witness is required: {unsound:?}"
    );
    let diags = validate_table(&table);
    assert!(
        diags.iter().any(|d| {
            d.pattern == LintPattern::IndependenceSoundness && d.message.contains("UNSOUND")
        }),
        "validate_table must lint the corruption: {diags:?}"
    );
}

/// A single last-write-wins register where application *order* decides the
/// final value — the runtime shape of the corrupted table entry above.
struct RegModel;

#[derive(Clone)]
struct Reg(i64);

impl SystemModel for RegModel {
    type State = Reg;

    fn replicas(&self) -> usize {
        1
    }

    fn init(&self, _replica: ReplicaId) -> Reg {
        Reg(0)
    }

    fn apply(&self, states: &mut [Reg], event: &Event) -> OpOutcome {
        match &event.kind {
            EventKind::LocalUpdate { op } if op.function() == "reg_set" => {
                states[event.replica.index()].0 = op.arg(0).and_then(Value::as_int).unwrap_or(0);
                OpOutcome::Applied
            }
            _ => OpOutcome::failed("unexpected event"),
        }
    }

    fn observe(&self, state: &Reg) -> Value {
        Value::from(state.0)
    }
}

/// The same corruption acted on at replay time — a developer *declaring*
/// two conflicting register writes independent — must be caught
/// dynamically by the sanitizer, with the offending pair named.
#[test]
fn corrupted_independence_declaration_is_caught_by_the_sanitizer() {
    let mut session = Session::new(RegModel);
    let r0 = ReplicaId::new(0);
    session.record(|sys| {
        sys.invoke(r0, "reg_set", [Value::from(1)]);
        sys.invoke(r0, "reg_set", [Value::from(2)]);
    });
    session.set_config(
        PruningConfig::default().with_independent_set(vec![EventId::new(0), EventId::new(1)]),
    );
    session.set_workers(1);
    session.set_sanitizer(true);
    session.replay(&TestSuite::new()).unwrap();
    let findings = session.sanitizer_report().expect("sanitize was requested");
    assert!(
        !findings.passed(),
        "swapping the writes changes the final value; the sanitizer must object"
    );
    let violation = &findings.violations[0];
    assert_eq!(violation.first, EventId::new(0));
    assert_eq!(violation.second, EventId::new(1));
    assert_ne!(violation.forward_hash, violation.swapped_hash);
}

/// Nightly: the full sanitizer-enabled catalogue sweep at all-core
/// parallelism (`cargo test --test sanitizer_equivalence -- --ignored`).
#[test]
#[ignore = "nightly: sanitizer-enabled catalogue sweep"]
fn nightly_sanitized_catalogue_sweep() {
    for bug in Bug::catalogue() {
        for stop in [false, true] {
            let reference = bug.replay_report_opts(&opts(stop, 1, false));
            let (sanitized, findings) = bug.replay_report_checked(&opts(stop, 0, true));
            assert_eq!(
                reference.diff(&sanitized),
                None,
                "{} stop={stop}: sanitizer perturbed the all-core report",
                bug.name
            );
            assert!(
                findings.expect("sanitize was requested").passed(),
                "{} stop={stop}: catalogue independence declarations must be sound",
                bug.name
            );
        }
    }
}

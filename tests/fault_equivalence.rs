//! Differential-equivalence harness for fault-schedule replay.
//!
//! Fault plans are part of run identity, so the pool/incremental contract
//! extends to them: for a fixed workload and [`FaultPlan`] set, the merged
//! [`Report`] must be byte-identical across worker counts, exploration
//! modes, and executor kinds. These tests pin that matrix — and the reason
//! fault schedules exist at all: a seeded fault-dependent bug that *no*
//! fault-free interleaving can expose, found by fault-space exploration
//! and reproduced from its minimized (workload, fault schedule) pair.

use er_pi::{CheckContext, FaultSpace, Report, Session, TestSuite};
use er_pi_fuzz::{report_for, FuzzCase, OracleOptions, SpecEntry, SpecFault, Target, WorkloadSpec};
use er_pi_model::{EventId, FaultEvent, FaultKind, FaultPlan, ReplicaId, Value, Workload};
use er_pi_subjects::{CrdtsModel, LedgerApp, LedgerState};

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

fn r(i: u16) -> ReplicaId {
    ReplicaId::new(i)
}

/// Two credits on different replicas, each shipped to the other.
fn ledger_workload() -> Workload {
    let mut w = Workload::builder();
    let a = w.update(r(0), "credit", [Value::from(10)]);
    w.sync_pair(r(0), r(1), a);
    let b = w.update(r(1), "credit", [Value::from(20)]);
    w.sync_pair(r(1), r(0), b);
    w.build()
}

fn exactly_once_suite() -> TestSuite<LedgerState> {
    TestSuite::new().with_assertion("exactly-once", |ctx: &CheckContext<'_, LedgerState>| {
        for (i, state) in ctx.states.iter().enumerate() {
            if let Some(id) = state.duplicated_entry() {
                return Err(format!("replica {i} applied entry {id} twice"));
            }
        }
        Ok(())
    })
}

fn ledger_report(
    plans: Vec<FaultPlan>,
    workers: usize,
    stop_first: bool,
    incremental: bool,
) -> Report {
    let mut session = Session::new(LedgerApp::new(2));
    session
        .set_workload(ledger_workload())
        .set_fault_plans(plans)
        .set_workers(workers)
        .set_stop_on_first_violation(stop_first)
        .set_incremental(incremental)
        .set_cap(50_000);
    session.config_mut().require_causal = true;
    session.replay(&exactly_once_suite()).unwrap()
}

/// The duplicate-delivery schedule on the first sync (event 1).
fn duplicate_plan() -> FaultPlan {
    FaultPlan::new(vec![FaultEvent::new(EventId::new(1), FaultKind::Duplicate)])
}

#[test]
fn same_fault_plan_is_byte_identical_across_the_matrix() {
    for stop_first in [false, true] {
        let reference = ledger_report(
            vec![FaultPlan::empty(), duplicate_plan()],
            1,
            stop_first,
            false,
        );
        for workers in WORKER_COUNTS {
            for incremental in [false, true] {
                let other = ledger_report(
                    vec![FaultPlan::empty(), duplicate_plan()],
                    workers,
                    stop_first,
                    incremental,
                );
                assert_eq!(
                    reference.diff(&other),
                    None,
                    "stop_first={stop_first} workers={workers} incremental={incremental} \
                     diverged from the sequential reference"
                );
            }
        }
    }
}

/// The acceptance witness: exhaustive *fault-free* exploration of the
/// ledger workload is clean, while one scheduled duplicate delivery
/// violates exactly-once — the bug class that only fault schedules reach.
#[test]
fn fault_space_finds_what_no_fault_free_interleaving_can() {
    let fault_free = ledger_report(vec![FaultPlan::empty()], 1, false, false);
    assert!(
        !fault_free.stopped_early && fault_free.explored < 50_000,
        "the fault-free space must be fully explored for the claim to hold"
    );
    assert!(
        fault_free.violations.is_empty(),
        "no fault-free interleaving may double-apply a sync"
    );

    // The default fault space (budget 1, duplicates only) finds it.
    let mut session = Session::new(LedgerApp::new(2));
    session
        .set_workload(ledger_workload())
        .set_fault_space(FaultSpace::default())
        .set_cap(50_000);
    session.config_mut().require_causal = true;
    let explored = session.replay(&exactly_once_suite()).unwrap();
    assert!(
        !explored.violations.is_empty(),
        "fault-space exploration must surface the duplicate-delivery bug"
    );
    for violation in &explored.violations {
        let faults = violation
            .interleaving
            .as_ref()
            .expect("per-run violations carry their interleaving")
            .faults();
        assert!(
            !faults.is_empty(),
            "every violating run must carry a fault schedule: {violation:?}"
        );
    }
}

/// The minimized (workload, fault schedule) pair from the fuzzer's corpus
/// shape replays to the same Report — violations, prune stats and all — at
/// every worker count and executor mode.
#[test]
fn minimized_pair_replays_deterministically_everywhere() {
    let minimal = FuzzCase {
        target: Target::Ledger,
        spec: WorkloadSpec {
            replicas: 2,
            entries: vec![
                SpecEntry::Op {
                    replica: 0,
                    function: "credit".into(),
                    args: vec![1],
                },
                SpecEntry::SyncPair {
                    from: 0,
                    to: 1,
                    of: Some(0),
                },
            ],
            chain_from: None,
        },
        faults: vec![SpecFault {
            anchor: 1,
            kind: FaultKind::Duplicate,
        }],
    };
    let reference = report_for(&minimal, &OracleOptions::default());
    // One causal order (the sync depends on its credit), two plans.
    assert_eq!(reference.explored, 2);
    assert_eq!(reference.violations.len(), 1);
    assert!(
        reference.prune_stats.is_some(),
        "pruner stats must be recomputed under fault plans"
    );
    for workers in WORKER_COUNTS {
        for incremental in [false, true] {
            let opts = OracleOptions {
                workers,
                incremental,
                ..OracleOptions::default()
            };
            let other = report_for(&minimal, &opts);
            assert_eq!(
                reference.diff(&other),
                None,
                "minimized pair diverged at workers={workers} incremental={incremental}"
            );
        }
    }
}

/// Fault products preserve determinism for the convergence subject too:
/// the full default fault space over a crdts workload, across the matrix.
#[test]
fn crdts_fault_space_is_deterministic_across_the_matrix() {
    let workload = || {
        let mut w = Workload::builder();
        let a = w.update(r(0), "set_add", [Value::from(1)]);
        w.sync_pair(r(0), r(1), a);
        let b = w.update(r(1), "counter_inc", [Value::from(2)]);
        w.sync_pair(r(1), r(0), b);
        w.build()
    };
    let run = |workers: usize, incremental: bool| {
        let mut session = Session::new(CrdtsModel::new(2));
        session
            .set_workload(workload())
            .set_fault_space(FaultSpace::all(1))
            .set_workers(workers)
            .set_incremental(incremental)
            .set_cap(50_000);
        session.config_mut().require_causal = true;
        session
            .replay(&TestSuite::new().with(er_pi::Assertion::replicas_converge("converge")))
            .unwrap()
    };
    let reference = run(1, false);
    assert!(reference.explored > 0);
    for workers in WORKER_COUNTS {
        for incremental in [false, true] {
            assert_eq!(
                reference.diff(&run(workers, incremental)),
                None,
                "crdts fault space diverged at workers={workers} incremental={incremental}"
            );
        }
    }
}

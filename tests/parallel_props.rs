//! Property tests for the parallel replay pool on randomized workloads.
//!
//! Three properties: (a) the union of work the shards executed is exactly
//! the sequential pruned interleaving set — nothing dropped, nothing
//! duplicated, same order; (b) the merged report is independent of the
//! worker count; (c) a panic inside one shard surfaces as
//! [`ErPiError::ExecutorPanic`], other shards are discarded cleanly, and
//! the session stays usable.

use std::collections::HashSet;

use proptest::prelude::*;

use er_pi::{ErPiError, ExploreMode, OpOutcome, Report, Session, SystemModel, TestSuite};
use er_pi_model::{Event, EventKind, ReplicaId, Value, Workload};

/// Two-replica last-write-wins register, order-sensitive by construction.
struct RegMachine;

impl SystemModel for RegMachine {
    type State = i64;

    fn replicas(&self) -> usize {
        2
    }

    fn init(&self, _replica: ReplicaId) -> i64 {
        0
    }

    fn apply(&self, states: &mut [i64], event: &Event) -> OpOutcome {
        match &event.kind {
            EventKind::LocalUpdate { op } => {
                states[event.replica.index()] = op.arg(0).and_then(Value::as_int).unwrap_or(0);
                OpOutcome::Applied
            }
            EventKind::Sync { to, .. } => {
                states[to.index()] = states[event.replica.index()];
                OpOutcome::Applied
            }
            _ => OpOutcome::failed("unsupported"),
        }
    }

    fn observe(&self, state: &i64) -> Value {
        Value::from(*state)
    }
}

/// Like [`RegMachine`], but detonates on any `bomb` op.
struct FuseMachine;

impl SystemModel for FuseMachine {
    type State = i64;

    fn replicas(&self) -> usize {
        2
    }

    fn init(&self, _replica: ReplicaId) -> i64 {
        0
    }

    fn apply(&self, states: &mut [i64], event: &Event) -> OpOutcome {
        if let EventKind::LocalUpdate { op } = &event.kind {
            assert!(op.function() != "bomb", "model detonated");
            states[event.replica.index()] = op.arg(0).and_then(Value::as_int).unwrap_or(0);
        }
        OpOutcome::Applied
    }

    fn observe(&self, state: &i64) -> Value {
        Value::from(*state)
    }
}

#[derive(Debug, Clone)]
enum Step {
    Update(u16, i64),
    Sync(u16),
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            (0u16..2, 1i64..9).prop_map(|(r, v)| Step::Update(r, v)),
            (0u16..2).prop_map(Step::Sync),
        ],
        1..6,
    )
}

fn build_workload(steps: &[Step]) -> Workload {
    let mut w = Workload::builder();
    let mut last_update = None;
    for step in steps {
        match step {
            Step::Update(r, v) => {
                last_update = Some(w.update(ReplicaId::new(*r), "set", [Value::from(*v)]));
            }
            Step::Sync(r) => {
                let from = ReplicaId::new(*r);
                let to = ReplicaId::new(1 - *r);
                match last_update {
                    Some(u) => {
                        w.sync_pair(from, to, u);
                    }
                    None => {
                        w.sync_untracked(from, to);
                    }
                }
            }
        }
    }
    w.build()
}

fn replay_with_workers(workload: &Workload, mode: ExploreMode, workers: usize) -> Report {
    let mut session = Session::new(RegMachine);
    session.set_workload(workload.clone());
    session.set_mode(mode);
    session.set_keep_runs(true);
    session.set_cap(100_000);
    session.set_workers(workers);
    session.replay(&TestSuite::new()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Shard union == pruned set: the pooled run list carries exactly the
    /// interleavings the sequential scan dispenses, in the same order,
    /// with no duplicates.
    #[test]
    fn shard_union_covers_pruned_set_exactly(steps in arb_steps()) {
        let workload = build_workload(&steps);
        let sequential = replay_with_workers(&workload, ExploreMode::ErPi, 1);
        let pooled = replay_with_workers(&workload, ExploreMode::ErPi, 4);

        let seq_ils: Vec<_> = sequential.runs.iter().map(|r| r.interleaving.clone()).collect();
        let pool_ils: Vec<_> = pooled.runs.iter().map(|r| r.interleaving.clone()).collect();
        prop_assert_eq!(&seq_ils, &pool_ils, "pooled runs are not the pruned set in order");

        let unique: HashSet<u64> = pool_ils.iter().map(|il| il.fingerprint()).collect();
        prop_assert_eq!(unique.len(), pool_ils.len(), "pooled runs contain duplicates");
    }

    /// The merged report is invariant under the worker count, in both
    /// exploration modes.
    #[test]
    fn merged_report_independent_of_worker_count(steps in arb_steps()) {
        let workload = build_workload(&steps);
        for mode in [ExploreMode::ErPi, ExploreMode::Dfs] {
            let reference = replay_with_workers(&workload, mode, 1);
            for workers in [2usize, 3, 4, 8] {
                let pooled = replay_with_workers(&workload, mode, workers);
                prop_assert_eq!(
                    reference.diff(&pooled),
                    None,
                    "report diverged at {} workers",
                    workers
                );
            }
        }
    }

    /// A panicking model in one shard surfaces as `ExecutorPanic`; the
    /// session is not poisoned — a benign workload on the same session
    /// replays fine afterwards.
    #[test]
    fn shard_panic_is_contained(steps in arb_steps()) {
        let mut bomb = Workload::builder();
        bomb.update(ReplicaId::new(0), "set", [Value::from(1)]);
        bomb.update(ReplicaId::new(1), "bomb", [Value::from(0)]);
        let bomb = bomb.build();

        let mut session = Session::new(FuseMachine);
        session.set_workload(bomb);
        session.set_mode(ExploreMode::Dfs);
        session.set_workers(4);
        let err = session.replay(&TestSuite::new());
        prop_assert!(
            matches!(err, Err(ErPiError::ExecutorPanic(_))),
            "expected ExecutorPanic, got {:?}",
            err.map(|r| r.explored)
        );

        // Same session, benign randomized workload: still usable.
        let benign = build_workload(&steps);
        session.set_workload(benign);
        let report = session.replay(&TestSuite::new());
        prop_assert!(report.is_ok(), "session poisoned after shard panic");
        prop_assert!(report.unwrap().explored > 0);
    }
}

//! Stress/soak test for the replay pool: a 10 000-interleaving synthetic
//! workload at 8 workers must complete without deadlock, without losing a
//! single run, and faster than the sequential scan.
//!
//! Ignored by default (it replays 20 000 interleavings of a deliberately
//! latency-heavy model); the nightly CI job runs it with `-- --ignored`.

use std::collections::HashSet;
use std::time::Instant;

use er_pi::{ExploreMode, OpOutcome, Session, SystemModel, TestSuite};
use er_pi_model::{Event, EventKind, ReplicaId, Value, Workload};

const CAP: usize = 10_000;

/// An order-sensitive register whose `apply` waits out a small fixed
/// round-trip delay per event — the latency-bound profile of the paper's
/// real replay deployment (each event takes a distributed-lock hop). The
/// pool overlaps the waits, so parallel replay beats sequential replay
/// even on a single-core machine.
struct HeavyMachine;

impl SystemModel for HeavyMachine {
    type State = i64;

    fn replicas(&self) -> usize {
        2
    }

    fn init(&self, _replica: ReplicaId) -> i64 {
        0
    }

    fn apply(&self, states: &mut [i64], event: &Event) -> OpOutcome {
        // The wait never touches state, so replay stays deterministic.
        std::thread::sleep(std::time::Duration::from_micros(20));
        match &event.kind {
            EventKind::LocalUpdate { op } => {
                let v = op.arg(0).and_then(Value::as_int).unwrap_or(0);
                states[event.replica.index()] = v;
                OpOutcome::Applied
            }
            EventKind::Sync { to, .. } => {
                states[to.index()] = states[event.replica.index()];
                OpOutcome::Applied
            }
            _ => OpOutcome::failed("unsupported"),
        }
    }

    fn observe(&self, state: &i64) -> Value {
        Value::from(*state)
    }
}

/// Eight independent events across two replicas: 8! = 40 320 raw DFS
/// interleavings, well past the 10 000 cap.
fn soak_workload() -> Workload {
    let mut w = Workload::builder();
    for i in 0..8i64 {
        w.update(ReplicaId::new((i % 2) as u16), "set", [Value::from(i)]);
    }
    w.build()
}

fn replay(workers: usize) -> (er_pi::Report, std::time::Duration) {
    let mut session = Session::new(HeavyMachine);
    session.set_workload(soak_workload());
    session.set_mode(ExploreMode::Dfs);
    session.set_cap(CAP);
    session.set_keep_runs(true);
    session.set_workers(workers);
    let started = Instant::now();
    let report = session.replay(&TestSuite::new()).unwrap();
    (report, started.elapsed())
}

#[test]
#[ignore = "soak: replays 20k interleavings of a latency-heavy model (nightly CI)"]
fn soak_10k_interleavings_at_8_workers() {
    let (sequential, seq_wall) = replay(1);
    let (parallel, par_wall) = replay(8);

    // No deadlock is implied by reaching this point; no lost or duplicated
    // runs is checked structurally.
    assert_eq!(parallel.explored, CAP, "pool lost runs");
    assert_eq!(parallel.runs.len(), CAP);
    let unique: HashSet<u64> = parallel
        .runs
        .iter()
        .map(|r| r.interleaving.fingerprint())
        .collect();
    assert_eq!(unique.len(), CAP, "pool duplicated runs");

    // Byte-identical to the sequential scan.
    assert_eq!(sequential.diff(&parallel), None, "pooled report diverged");

    // And actually faster. The per-event waits overlap across workers, so
    // even a single-core machine clears this comfortably at 8 workers.
    assert!(
        par_wall < seq_wall,
        "no speedup: sequential {seq_wall:?} vs parallel {par_wall:?}"
    );
}

//! Differential-equivalence suite for the two deep-reduction layers:
//! state-hash subsumption and sleep-set (DPOR-style) pruning.
//!
//! The two layers make different promises, and the suite pins each at its
//! own strength:
//!
//! * **Subsumption** never changes *which* interleavings are replayed — it
//!   only answers some of them from memoized run tails — so its reports
//!   must be *byte-identical* (`Report::diff == None`) to
//!   reductions-off across the full 12-bug catalogue, every worker count,
//!   both executors and both stopping policies.
//! * **Sleep sets** drop redundant members of commutation classes before
//!   replay, so the replayed set shrinks; what is preserved is the
//!   *violation set* — same assertions failing with the same messages —
//!   and in particular the lowest-indexed violation of the full
//!   enumeration, which can never be pruned (pruning it would require a
//!   lexicographically smaller equivalent — and equally violating —
//!   schedule to survive, which would then be the lowest-indexed
//!   violation instead).
//!
//! The headline acceptance number also lives here: on the §6.3 motivating
//! workload (town app extended to 10 events, DFS, capped at 10 000
//! interleavings) subsumption must answer at least 90% of runs from the
//! explored set — a ≥10× reduction in physically executed replays.

use proptest::prelude::*;

use er_pi::{ExploreMode, InlineExecutor, Report, Session, TimeModel};
use er_pi_model::{EventId, FaultEvent, FaultKind, FaultPlan, Interleaving, ReplicaId, Value};
use er_pi_subjects::{Bug, ReplayOptions, TownApp};

const CAP: usize = 10_000;
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

fn r(i: u16) -> ReplicaId {
    ReplicaId::new(i)
}

// ---------------------------------------------------------------------------
// Subsumption: byte-identical reports across the catalogue.
// ---------------------------------------------------------------------------

#[test]
fn subsumption_is_byte_identical_across_the_catalogue() {
    for bug in Bug::catalogue() {
        for stop_first in [false, true] {
            let reference = bug.replay_report_opts(&ReplayOptions {
                cap: CAP,
                stop_on_first_violation: stop_first,
                workers: 1,
                incremental: false,
                ..ReplayOptions::default()
            });
            for workers in WORKER_COUNTS {
                for incremental in [false, true] {
                    let subsuming = bug.replay_report_opts(&ReplayOptions {
                        cap: CAP,
                        stop_on_first_violation: stop_first,
                        workers,
                        incremental,
                        subsumption: true,
                        ..ReplayOptions::default()
                    });
                    assert_eq!(
                        reference.diff(&subsuming),
                        None,
                        "{}: subsumption diverged (workers={workers}, \
                         incremental={incremental}, stop_first={stop_first})",
                        bug.name
                    );
                }
            }
        }
    }
}

/// The equivalence above must not be vacuous: across the catalogue the
/// subsume set has to actually answer runs, otherwise we are comparing
/// plain replay with plain replay.
#[test]
fn subsumption_actually_engages_on_the_catalogue() {
    let mut total_subsumed = 0u64;
    for bug in Bug::catalogue() {
        let report = bug.replay_report_opts(&ReplayOptions {
            cap: CAP,
            subsumption: true,
            incremental: false,
            ..ReplayOptions::default()
        });
        let stats = report
            .cache_stats
            .unwrap_or_else(|| panic!("{}: subsuming replay must report CacheStats", bug.name));
        assert_eq!(
            stats.hits + stats.misses,
            report.explored as u64,
            "{}: every explored interleaving is one subsume probe",
            bug.name
        );
        assert_eq!(
            stats.executed_runs() + stats.subsumed,
            report.explored as u64,
            "{}: runs are either executed or subsumed",
            bug.name
        );
        total_subsumed += stats.subsumed;
    }
    assert!(
        total_subsumed > 0,
        "the 12-bug catalogue produced no subsumed runs at all"
    );
}

// ---------------------------------------------------------------------------
// The acceptance number: ≥10× fewer executed replays on the motivating
// 10k-interleaving workload.
// ---------------------------------------------------------------------------

/// The §6.3 workload: the §2.3 town recording extended to 10 events.
fn town_session_10(cap: usize) -> Session<TownApp> {
    let mut session = Session::new(TownApp::new(2));
    session.record(|sys| {
        let ev1 = sys.invoke(r(0), "add", [Value::from("otb")]);
        sys.sync(r(0), r(1), ev1);
        let ev2 = sys.invoke(r(1), "add", [Value::from("ph")]);
        sys.sync(r(1), r(0), ev2);
        let ev3 = sys.invoke(r(1), "remove", [Value::from("otb")]);
        sys.sync(r(1), r(0), ev3);
        let ev4 = sys.invoke(r(0), "add", [Value::from("pl")]);
        sys.sync(r(0), r(1), ev4);
        sys.invoke(r(1), "remove", [Value::from("ph")]);
        sys.external(r(0), "transmit");
    });
    session.set_mode(ExploreMode::Dfs);
    session.set_cap(cap);
    session
}

#[test]
fn motivating_workload_subsumes_ten_x() {
    let mut reference = town_session_10(CAP);
    let reference = reference.replay(&TownApp::invariant()).expect("recorded");

    let mut session = town_session_10(CAP);
    session.set_subsumption(true);
    let report = session.replay(&TownApp::invariant()).expect("recorded");

    assert_eq!(
        reference.diff(&report),
        None,
        "subsumption must keep the 10k-interleaving report byte-identical"
    );
    let stats = report.cache_stats.expect("subsuming replay reports stats");
    let executed = stats.executed_runs();
    assert_eq!(report.explored, CAP, "the cap binds on the 10! space");
    assert!(
        executed * 10 <= report.explored as u64,
        "acceptance floor: ≥10× fewer executed replays \
         (explored {}, executed {executed}, subsumed {})",
        report.explored,
        stats.subsumed
    );
}

/// `ER_PI_SUBSUME_AUDIT=1` keeps the canonical bytes next to the digests
/// and executes every hit anyway, panicking on a 128-bit collision or a
/// false subsumption — and the audited report must still equal the plain
/// reference, with the verified hits counted as subsumed.
#[test]
fn audit_mode_executes_hits_and_stays_identical() {
    let mut reference = town_session_10(CAP);
    let reference = reference.replay(&TownApp::invariant()).expect("recorded");

    std::env::set_var("ER_PI_SUBSUME_AUDIT", "1");
    let mut session = town_session_10(CAP);
    session.set_subsumption(true);
    let audited = session.replay(&TownApp::invariant()).expect("recorded");
    std::env::remove_var("ER_PI_SUBSUME_AUDIT");

    assert_eq!(
        reference.diff(&audited),
        None,
        "audit mode changed the report"
    );
    let stats = audited.cache_stats.expect("subsuming replay reports stats");
    assert!(
        stats.subsumed > 0,
        "audit mode must still count verified hits as subsumed"
    );
}

// ---------------------------------------------------------------------------
// Sleep sets: violation-set equivalence across the catalogue.
// ---------------------------------------------------------------------------

/// The violation set as the sorted *distinct* (assertion, message) pairs —
/// sleep sets drop redundant members of commutation classes, so a
/// violation witnessed by several equivalent schedules may keep fewer
/// witnesses; what must survive is every distinct violation.
fn violation_set(report: &Report) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = report
        .violations
        .iter()
        .map(|v| (v.assertion.clone(), v.message.clone()))
        .collect();
    v.sort();
    v.dedup();
    v
}

#[test]
fn sleep_sets_preserve_the_violation_set_across_the_catalogue() {
    let mut total_pruned = 0u64;
    for bug in Bug::catalogue() {
        let reference = bug.replay_report_opts(&ReplayOptions {
            cap: CAP,
            ..ReplayOptions::default()
        });
        let pruned = bug.replay_report_opts(&ReplayOptions {
            cap: CAP,
            sleep_sets: true,
            ..ReplayOptions::default()
        });
        assert_eq!(
            violation_set(&reference),
            violation_set(&pruned),
            "{}: sleep sets changed the violation set",
            bug.name
        );
        assert!(
            pruned.explored <= reference.explored,
            "{}: sleep sets cannot grow the replayed set",
            bug.name
        );
        // Enabling sleep sets also pulls in the auto-derived independence
        // relation (which feeds the event-level canonical filter), so the
        // explored count can shrink by more than the sleep rejections alone.
        if let Some(stats) = &pruned.prune_stats {
            total_pruned += stats.sleep_rejected;
        }
    }
    assert!(
        total_pruned > 0,
        "sleep sets pruned nothing anywhere in the catalogue"
    );
}

/// Sleep sets compose with subsumption: both on at once still preserves
/// the violation set, and the layers don't double-count.
#[test]
fn sleep_and_subsumption_compose() {
    for bug in Bug::catalogue() {
        let reference = bug.replay_report_opts(&ReplayOptions {
            cap: CAP,
            ..ReplayOptions::default()
        });
        let both = bug.replay_report_opts(&ReplayOptions {
            cap: CAP,
            sleep_sets: true,
            subsumption: true,
            incremental: false,
            ..ReplayOptions::default()
        });
        assert_eq!(
            violation_set(&reference),
            violation_set(&both),
            "{}: composed reductions changed the violation set",
            bug.name
        );
        let stats = both.cache_stats.expect("subsuming replay reports stats");
        assert_eq!(
            stats.executed_runs() + stats.subsumed,
            both.explored as u64,
            "{}: composed layers double-counted a run",
            bug.name
        );
    }
}

// ---------------------------------------------------------------------------
// Proptest: no subset of the sleep prunes can remove the lowest-indexed
// violation.
// ---------------------------------------------------------------------------

/// A sleep-heavy variant of the §2.3 town workload, keeping every run so
/// the proptest can diff the replayed enumerations. The two lone adds of
/// *distinct* elements on different replicas form certified-commuting
/// units — the auto-derived relation (which sleep-set pruning pulls in on
/// its own) marks them independent, so the sleep filter has real
/// commutation classes to prune. The sleep-off instance of this session is
/// the *unpruned* reference enumeration.
fn town_erpi_session() -> Session<TownApp> {
    let mut session = Session::new(TownApp::new(2));
    session.record(|sys| {
        let ev1 = sys.invoke(r(0), "add", [Value::from("otb")]);
        sys.sync(r(0), r(1), ev1);
        let ev3 = sys.invoke(r(1), "remove", [Value::from("otb")]);
        sys.sync(r(1), r(0), ev3);
        sys.invoke(r(0), "add", [Value::from("pl")]);
        sys.invoke(r(1), "add", [Value::from("ph")]);
        sys.external(r(0), "transmit");
    });
    session.set_keep_runs(true);
    session.set_cap(CAP);
    session
}

/// True iff the town invariant rejects the final states this interleaving
/// produces — the same predicate `TownApp::invariant` checks, evaluated
/// directly so the proptest can replay arbitrary sublists of the full
/// enumeration.
fn violates(model: &TownApp, session: &Session<TownApp>, il: &Interleaving) -> bool {
    let workload = session.workload().expect("recorded");
    let exec = InlineExecutor::execute(model, workload, il, &TimeModel::default());
    exec.states.iter().any(|s| {
        s.transmitted
            .as_ref()
            .is_some_and(|items| items.iter().any(|i| i == "otb"))
    })
}

/// Full-vs-pruned interleaving lists plus the full enumeration's first
/// violating interleaving, computed once for the proptest. `pruned_idx`
/// covers every schedule the deep-pruning stack (sleep sets plus the
/// event-level filter fed by the same derived relation) drops.
fn sleep_prune_fixture() -> (Vec<Interleaving>, Vec<usize>, usize) {
    let mut full = town_erpi_session();
    let full_report = full.replay(&TownApp::invariant()).expect("recorded");

    let mut pruned = town_erpi_session();
    pruned.set_sleep_sets(true);
    let pruned_report = pruned.replay(&TownApp::invariant()).expect("recorded");

    let kept: std::collections::HashSet<&Interleaving> = pruned_report
        .runs
        .iter()
        .map(|run| &run.interleaving)
        .collect();
    let all: Vec<Interleaving> = full_report
        .runs
        .iter()
        .map(|run| run.interleaving.clone())
        .collect();
    let pruned_idx: Vec<usize> = all
        .iter()
        .enumerate()
        .filter(|(_, il)| !kept.contains(il))
        .map(|(i, _)| i)
        .collect();
    assert!(
        !pruned_idx.is_empty(),
        "the fixture must actually exercise sleep pruning"
    );

    let first_violation = full_report
        .first_violation_at
        .expect("the town bug violates");
    (all, pruned_idx, first_violation)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For ANY subset of the sleep-set prunes, the surviving enumeration
    /// still contains the full enumeration's lowest-indexed violating
    /// interleaving — and it is still the first violation found. (If the
    /// sleep filter could prune it, a lexicographically smaller equivalent
    /// violating schedule would have to survive, which would have been the
    /// lowest-indexed violation in the first place.)
    #[test]
    fn no_prune_subset_removes_the_lowest_violation(subset_seed in proptest::collection::vec(any::<bool>(), 32..64)) {
        let (all, pruned_idx, first_violation) = sleep_prune_fixture();

        // The lowest-indexed violation is never itself prunable.
        prop_assert!(
            !pruned_idx.contains(&first_violation),
            "sleep pruning removed the lowest-indexed violation (run {first_violation})"
        );

        let drop: std::collections::HashSet<usize> = pruned_idx
            .iter()
            .enumerate()
            .filter(|(k, _)| subset_seed.get(k % subset_seed.len().max(1)).copied().unwrap_or(false))
            .map(|(_, &i)| i)
            .collect();

        let session = town_erpi_session();
        let model = TownApp::new(2);
        let surviving_first = all
            .iter()
            .enumerate()
            .filter(|(i, _)| !drop.contains(i))
            .find(|(_, il)| violates(&model, &session, il))
            .map(|(i, _)| i);
        prop_assert_eq!(
            surviving_first,
            Some(first_violation),
            "dropping a prune subset moved or lost the first violation"
        );
    }
}

// ---------------------------------------------------------------------------
// Fault digests are part of the subsumption key.
// ---------------------------------------------------------------------------

/// Two fault plans over the town workload: the empty baseline and a
/// dropped-sync schedule under which the same event sequence reaches a
/// *different* final state (the remove never propagates, so interleavings
/// that are clean fault-free become violating). If the subsume key
/// ignored the fault digest, runs of one plan would be stitched from the
/// other plan's memoized tails and the per-plan violation sets would
/// merge — caught here as a non-null `Report::diff`.
#[test]
fn subsumption_keys_include_the_fault_digest() {
    // The §2.3 7-event recording: small enough that the cap never binds on
    // the doubled (interleaving × plan) space, so both plans fully replay.
    let town_session_7 = || {
        let mut session = Session::new(TownApp::new(2));
        session.record(|sys| {
            let ev1 = sys.invoke(r(0), "add", [Value::from("otb")]);
            sys.sync(r(0), r(1), ev1);
            let ev2 = sys.invoke(r(1), "add", [Value::from("ph")]);
            sys.sync(r(1), r(0), ev2);
            let ev3 = sys.invoke(r(1), "remove", [Value::from("otb")]);
            sys.sync(r(1), r(0), ev3);
            sys.external(r(0), "transmit");
        });
        session.set_mode(ExploreMode::Dfs);
        session.set_cap(50_000);
        session
    };
    // Event 5 is `sync(b → a, ev3)`: the propagation of the remove.
    let drop_remove_sync = FaultPlan::new(vec![FaultEvent::new(EventId::new(5), FaultKind::Drop)]);
    let town = |subsumption: bool, plans: Vec<FaultPlan>| {
        let mut session = town_session_7();
        session.set_fault_plans(plans);
        session.set_subsumption(subsumption);
        session.replay(&TownApp::invariant()).expect("recorded")
    };

    let baseline_only = town(false, vec![FaultPlan::empty()]);
    let reference = town(false, vec![FaultPlan::empty(), drop_remove_sync.clone()]);
    let subsuming = town(true, vec![FaultPlan::empty(), drop_remove_sync]);

    assert!(
        reference.violations.len() > baseline_only.violations.len(),
        "the dropped sync must add fault-dependent violations \
         (baseline {}, fault space {})",
        baseline_only.violations.len(),
        reference.violations.len()
    );
    assert_eq!(
        reference.diff(&subsuming),
        None,
        "fault-digest-aware subsumption must keep the fault-space report byte-identical"
    );
    let stats = subsuming
        .cache_stats
        .expect("subsuming replay reports stats");
    assert!(
        stats.subsumed > 0,
        "the two-plan fault space must still produce subsumed runs \
         (same-plan tails are legal to stitch)"
    );
}

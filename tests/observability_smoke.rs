//! End-to-end smoke of the observability surface: Prometheus exposition,
//! Server-Sent-Event streaming, and violation forensics over a real
//! socket against an in-process campaign daemon.
//!
//! The `server_equivalence` suite pins the determinism contract; this one
//! pins the *observer* side: `GET /metrics` content-negotiates a lintable
//! Prometheus text exposition whose counters only ever go up, a campaign's
//! `/events` stream replays its full history and terminates with the
//! campaign, and `/violations/:n` serves the same forensic bundle bytes a
//! standalone replay of the same spec explains locally.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use er_pi::telemetry::{lint_exposition, lint_monotone};
use er_pi_server::{Server, ServerConfig, ServerHandle};
use er_pi_subjects::{Bug, ReplayOptions};

// ---------------------------------------------------------------------
// Socket helpers (one Connection: close exchange per call).
// ---------------------------------------------------------------------

fn exchange(addr: &str, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to the daemon");
    stream
        .write_all(request.as_bytes())
        .expect("write the request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read the response");
    let code = response
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("a status line");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (code, body)
}

fn get(addr: &str, path: &str) -> (u16, String) {
    exchange(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn get_accept(addr: &str, path: &str, accept: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to the daemon");
    stream
        .write_all(
            format!(
                "GET {path} HTTP/1.1\r\nHost: t\r\nAccept: {accept}\r\nConnection: close\r\n\r\n"
            )
            .as_bytes(),
        )
        .expect("write the request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read the response");
    let (head, body) = response.split_once("\r\n\r\n").expect("a header block");
    let code = head
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("a status line");
    let content_type = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Type: "))
        .unwrap_or_default()
        .to_owned();
    (code, content_type, body.to_owned())
}

fn post(addr: &str, path: &str, body: &str) -> (u16, String) {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn field<'a>(json: &'a str, name: &str) -> Option<&'a str> {
    let key = format!("\"{name}\":");
    let at = json.find(&key)? + key.len();
    let rest = json[at..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

fn submit_id(addr: &str, spec: &str) -> String {
    let (code, body) = post(addr, "/campaigns", spec);
    assert_eq!(code, 202, "submission refused: {body}");
    field(&body, "id").expect("an id").to_owned()
}

fn poll_until_terminal(addr: &str, id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (code, body) = get(addr, &format!("/campaigns/{id}"));
        assert_eq!(code, 200, "status poll failed: {body}");
        let state = field(&body, "state").expect("a state").to_owned();
        if ["done", "cancelled", "failed"].contains(&state.as_str()) {
            return state;
        }
        assert!(Instant::now() < deadline, "campaign {id} stuck in {state}");
        thread::sleep(Duration::from_millis(5));
    }
}

fn tiny_daemon() -> (ServerHandle, String) {
    let handle = Server::bind(ServerConfig {
        port: 0,
        workers: 2,
        runners: 2,
        queue_cap: 8,
    })
    .expect("binds")
    .spawn()
    .expect("spawns");
    let addr = handle.addr().to_string();
    (handle, addr)
}

// ---------------------------------------------------------------------
// The smoke itself.
// ---------------------------------------------------------------------

#[test]
fn metrics_negotiate_json_and_lintable_monotone_prometheus_text() {
    let (handle, addr) = tiny_daemon();

    // Default (no Accept): the JSON body with its stable key set.
    let (code, content_type, body) = get_accept(&addr, "/metrics", "application/json");
    assert_eq!(code, 200);
    assert!(
        content_type.starts_with("application/json"),
        "{content_type}"
    );
    for key in [
        "uptime_secs",
        "submitted",
        "rejected",
        "completed",
        "cancelled",
        "failed",
        "runs_total",
        "subsumed_total",
        "sleep_prunes_total",
        "subsume_rate",
        "runs_per_sec",
        "queue_depth",
        "running",
        "service_workers",
        "service_jobs",
        "worker_utilization",
    ] {
        assert!(
            body.contains(&format!("\"{key}\"")),
            "JSON body lost {key}: {body}"
        );
    }

    // Accept: text/plain: the Prometheus exposition, lint-clean.
    let (code, content_type, first) = get_accept(&addr, "/metrics", "text/plain");
    assert_eq!(code, 200);
    assert!(content_type.starts_with("text/plain"), "{content_type}");
    lint_exposition(&first).expect("first scrape lints");
    assert!(
        first.contains("# TYPE er_pi_server_submitted_total counter"),
        "exposition lost the fleet counters:\n{first}"
    );
    assert!(
        first.contains("# TYPE er_pi_run_latency_us histogram"),
        "exposition lost the executor histograms:\n{first}"
    );

    // Run a campaign, scrape again: still lint-clean, counters monotone,
    // and the campaign's labelled series materialized.
    let id = submit_id(
        &addr,
        r#"{"bug": "Roshi-1", "cap": 200, "tenant": "smoke"}"#,
    );
    assert_eq!(poll_until_terminal(&addr, &id), "done");
    let (_, _, second) = get_accept(&addr, "/metrics", "text/plain");
    lint_exposition(&second).expect("second scrape lints");
    lint_monotone(&first, &second).expect("counters only go up");
    assert!(
        second.contains(&format!(
            "er_pi_campaign_runs_total{{tenant=\"smoke\",campaign=\"{id}\"}}"
        )),
        "campaign series missing:\n{second}"
    );
    assert!(
        second.contains("er_pi_submit_to_report_us_bucket"),
        "latency histogram missing:\n{second}"
    );
    handle.shutdown();
}

#[test]
fn event_stream_replays_history_and_ends_with_the_terminal_event() {
    let (handle, addr) = tiny_daemon();
    let id = submit_id(&addr, r#"{"bug": "OrbitDB-2", "cap": 500}"#);
    // Late subscription is the harder case: the full history must replay.
    assert_eq!(poll_until_terminal(&addr, &id), "done");
    let (code, body) = get(&addr, &format!("/campaigns/{id}/events"));
    assert_eq!(code, 200, "{body}");
    let events: Vec<&str> = body
        .lines()
        .filter_map(|l| l.strip_prefix("event: "))
        .collect();
    assert!(
        events.len() >= 2,
        "stream carried fewer than 2 events: {events:?}"
    );
    assert_eq!(events[0], "status", "greeting frame first: {events:?}");
    assert_eq!(*events.last().unwrap(), "done", "terminal last: {events:?}");
    // Every data line is one line of JSON.
    for line in body.lines() {
        if let Some(data) = line.strip_prefix("data: ") {
            assert!(
                data.starts_with('{') && data.ends_with('}'),
                "malformed SSE data line: {line}"
            );
        }
    }
    // Unknown campaigns get a plain 404, not a stream.
    let (code, _) = get(&addr, "/campaigns/c-999/events");
    assert_eq!(code, 404);
    handle.shutdown();
}

#[test]
fn violation_bundles_are_served_and_match_a_local_explain() {
    let (handle, addr) = tiny_daemon();
    let id = submit_id(&addr, r#"{"bug": "Roshi-1", "cap": 200}"#);
    assert_eq!(poll_until_terminal(&addr, &id), "done");

    let (code, bundle) = get(&addr, &format!("/campaigns/{id}/violations/0"));
    assert_eq!(code, 200, "{bundle}");
    for key in [
        "assertion",
        "interleaving",
        "steps",
        "hb_dot",
        "provenance",
        "first_divergence",
    ] {
        assert!(bundle.contains(&format!("\"{key}\"")), "bundle lost {key}");
    }

    // The served bytes are exactly what a standalone replay of the same
    // spec explains locally — forensics are scheduling-independent.
    let bug = Bug::by_name("Roshi-1").expect("catalogue bug");
    let report = bug.replay_report_opts(&ReplayOptions {
        cap: 200,
        ..ReplayOptions::default()
    });
    let local = bug
        .explain(report.violations.first().expect("Roshi-1 reproduces"))
        .expect("explains")
        .canonical_json();
    assert_eq!(bundle, local, "served bundle diverged from local explain");

    // Out of range and unknown ids are 404; junk indexes are 400.
    let (code, _) = get(&addr, &format!("/campaigns/{id}/violations/999"));
    assert_eq!(code, 404);
    let (code, _) = get(&addr, "/campaigns/c-999/violations/0");
    assert_eq!(code, 404);
    let (code, _) = get(&addr, &format!("/campaigns/{id}/violations/zero"));
    assert_eq!(code, 400);
    handle.shutdown();
}

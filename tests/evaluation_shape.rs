//! Integration tests pinning the *shape* of the paper's evaluation results
//! (who wins, who fails, roughly by how much) so regressions in any crate
//! surface as test failures.
//!
//! Absolute counts are implementation-specific; these tests assert only the
//! qualitative claims of §6.3 and the exact structural facts of Tables 1–2.

use er_pi::ExploreMode;
use er_pi_subjects::{misconception_matrix, Bug, MatrixCell};

const CAP: usize = 10_000;
const SEED: u64 = 7;

/// The bugs the paper reports DFS failing on (Figure 8a's ↑ marks).
const DFS_FAILS: [&str; 3] = ["Roshi-3", "OrbitDB-4", "OrbitDB-5"];
/// … and Random additionally fails Yorkie-2.
const RAND_FAILS: [&str; 4] = ["Roshi-3", "OrbitDB-4", "OrbitDB-5", "Yorkie-2"];

#[test]
fn erpi_reproduces_every_bug() {
    for bug in Bug::catalogue() {
        let repro = bug.reproduce(ExploreMode::ErPi, CAP);
        assert!(
            repro.reproduced(),
            "{}: ER-π must reproduce within {CAP} (explored {})",
            bug.name,
            repro.explored
        );
    }
}

#[test]
fn dfs_fails_exactly_the_papers_bugs() {
    for bug in Bug::catalogue() {
        let repro = bug.reproduce(ExploreMode::Dfs, CAP);
        let should_fail = DFS_FAILS.contains(&bug.name);
        assert_eq!(
            !repro.reproduced(),
            should_fail,
            "{}: DFS reproduced={:?}, expected fail={}",
            bug.name,
            repro.found_at,
            should_fail
        );
    }
}

#[test]
fn random_fails_exactly_the_papers_bugs() {
    for bug in Bug::catalogue() {
        let repro = bug.reproduce(ExploreMode::Random { seed: SEED }, CAP);
        let should_fail = RAND_FAILS.contains(&bug.name);
        assert_eq!(
            !repro.reproduced(),
            should_fail,
            "{}: Rand reproduced={:?}, expected fail={}",
            bug.name,
            repro.found_at,
            should_fail
        );
    }
}

#[test]
fn erpi_is_at_least_as_fast_as_dfs_up_to_noise() {
    // ER-π explores canonical representatives in a different order than
    // DFS explores raw orders, so single-digit differences are noise
    // (Roshi-2: 33 vs 31); the claim is "never meaningfully worse".
    for bug in Bug::catalogue() {
        let e = bug.reproduce(ExploreMode::ErPi, CAP).found_at.unwrap();
        let d = bug
            .reproduce(ExploreMode::Dfs, CAP)
            .found_at
            .unwrap_or(CAP + 1);
        assert!(
            e <= d + d / 5 + 5,
            "{}: ER-π needed {e} but DFS only {d}",
            bug.name
        );
    }
}

#[test]
fn replicadb2_is_the_random_exception() {
    // §6.3: "DFS outperformed Rand, except for ReplicaDB-2."
    let bug = Bug::by_name("ReplicaDB-2").unwrap();
    let dfs = bug.reproduce(ExploreMode::Dfs, CAP).found_at.unwrap();
    let rand = bug
        .reproduce(ExploreMode::Random { seed: SEED }, CAP)
        .found_at
        .unwrap();
    assert!(rand < dfs, "Rand ({rand}) should beat DFS ({dfs}) here");
}

#[test]
fn pruning_configs_never_hide_a_bug() {
    // Soundness at the system level: for every bug that any baseline can
    // reproduce within the cap, ER-π (exploring only canonical orders)
    // reproduces it too.
    for bug in Bug::catalogue() {
        let baseline_finds = bug.reproduce(ExploreMode::Dfs, CAP).reproduced()
            || bug
                .reproduce(ExploreMode::Random { seed: SEED }, CAP)
                .reproduced();
        let erpi_finds = bug.reproduce(ExploreMode::ErPi, CAP).reproduced();
        if baseline_finds {
            assert!(erpi_finds, "{}: pruned away a reachable bug", bug.name);
        }
    }
}

#[test]
fn table2_matrix_matches_the_paper() {
    let matrix = misconception_matrix();
    let expected: [[bool; 5]; 5] = [
        [true, true, true, false, true],    // Roshi
        [true, false, false, false, true],  // OrbitDB
        [true, false, false, false, false], // ReplicaDB
        [true, false, false, false, true],  // Yorkie
        [true, true, true, true, true],     // CRDTs
    ];
    for ((subject, row), exp_row) in matrix.iter().zip(expected) {
        for (cell, exp) in row.iter().zip(exp_row) {
            if exp {
                assert_eq!(*cell, MatrixCell::Detected, "{subject} cell");
            } else {
                assert_eq!(*cell, MatrixCell::NotApplicable, "{subject} cell");
            }
        }
    }
}

#[test]
fn grouping_reductions_scale_with_workload_size() {
    // The bigger workloads owe their tractability to grouping: every bug's
    // grouped space is at most the raw space, and the 20+-event bugs shrink
    // by at least nine orders of magnitude.
    for bug in Bug::catalogue() {
        let stats = bug.prune_stats(1_000);
        assert!(stats.grouping_factor >= 1, "{}", bug.name);
        if bug.events() >= 20 {
            assert!(
                stats.grouping_factor > 100_000_000,
                "{}: factor {}",
                bug.name,
                stats.grouping_factor
            );
        }
    }
}

//! Differential-equivalence matrix for the incremental (checkpoint-trie)
//! executor.
//!
//! The incremental engine's contract is stricter than "same verdict": the
//! report it produces must be *byte-identical* to the scratch executor's —
//! same runs, same outcomes, same violations, same `sim_us` — because the
//! trie only skips work whose result is already known, never changes what
//! a run computes. These tests pin that contract across the full 12-bug
//! catalogue, with and without `stop_on_first_violation`, at 1, 2 and 4
//! workers, always diffing against a *scratch* single-worker reference
//! (PR 2's differential harness compared pooled-vs-sequential; here the
//! axis is incremental-vs-scratch).
//!
//! `Report::diff` ignores wall-clock, per-worker load and the cache
//! counters themselves — everything else must match exactly.

use er_pi_subjects::Bug;

const CAP: usize = 10_000;
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

#[test]
fn incremental_equals_scratch_exhaustive() {
    for bug in Bug::catalogue() {
        let scratch = bug.replay_report_with(CAP, false, 1, false);
        for workers in WORKER_COUNTS {
            let incremental = bug.replay_report_with(CAP, false, workers, true);
            assert_eq!(
                scratch.diff(&incremental),
                None,
                "{} at {workers} workers: incremental diverged from scratch (exhaustive)",
                bug.name
            );
        }
    }
}

#[test]
fn incremental_equals_scratch_stop_on_first() {
    for bug in Bug::catalogue() {
        let scratch = bug.replay_report_with(CAP, true, 1, false);
        for workers in WORKER_COUNTS {
            let incremental = bug.replay_report_with(CAP, true, workers, true);
            assert_eq!(
                scratch.diff(&incremental),
                None,
                "{} at {workers} workers: incremental diverged from scratch (stop-on-first)",
                bug.name
            );
        }
    }
}

/// The cache must actually engage on the catalogue: lexicographically
/// adjacent interleavings share prefixes, so a sequential exhaustive sweep
/// with more than a handful of runs must record hits and saved events —
/// otherwise the equivalence above is vacuous (scratch == scratch).
#[test]
fn incremental_actually_reuses_prefixes() {
    for bug in Bug::catalogue() {
        let report = bug.replay_report_with(CAP, false, 1, true);
        let stats = report
            .cache_stats
            .unwrap_or_else(|| panic!("{}: incremental run must report CacheStats", bug.name));
        assert_eq!(
            stats.hits + stats.misses,
            report.explored as u64,
            "{}: every explored interleaving is one cache probe",
            bug.name
        );
        if report.explored > 2 {
            assert!(
                stats.hits > 0 && stats.events_saved > 0,
                "{}: {} interleavings explored but no prefix reuse (hits={}, saved={})",
                bug.name,
                report.explored,
                stats.hits,
                stats.events_saved
            );
        }
        assert!(
            report.sim_us_actual() <= report.sim_us,
            "{}: saved simulated time cannot exceed charged time",
            bug.name
        );
    }
}

/// `sim_us` itself (as reported) is charged for the *full* interleaving —
/// the saving is accounted separately in `CacheStats::sim_us_saved` — so
/// the simulated-time figures in a report never depend on cache luck.
#[test]
fn charged_sim_us_is_cache_independent() {
    for bug in Bug::catalogue() {
        let scratch = bug.replay_report_with(CAP, false, 1, false);
        let incremental = bug.replay_report_with(CAP, false, 4, true);
        assert_eq!(
            scratch.sim_us, incremental.sim_us,
            "{}: charged sim_us must not depend on the executor",
            bug.name
        );
    }
}

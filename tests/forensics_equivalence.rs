//! Differential-equivalence harness for violation forensics.
//!
//! A forensic bundle is a *pure function* of `(subject, violation)`: it is
//! assembled by deterministically re-executing the violating interleaving
//! step by step, never from live campaign state. So however the campaign
//! that found the violation was scheduled — worker count, scratch vs
//! incremental executor, state-hash subsumption on or off — the bundle for
//! the first violation must come out byte-identical. These tests pin that
//! across the twelve-bug catalogue, and pin the metrics registry as
//! write-only: a session exporting into a shared [`Registry`] produces the
//! same canonical report bytes as a detached one.

use std::sync::Arc;

use er_pi::telemetry::Registry;
use er_pi::SessionMetrics;
use er_pi_subjects::{Bug, ReplayOptions};

const CAP: usize = 10_000;

fn opts(workers: usize, incremental: bool, subsumption: bool) -> ReplayOptions {
    ReplayOptions {
        cap: CAP,
        stop_on_first_violation: true,
        workers,
        incremental,
        subsumption,
        ..ReplayOptions::default()
    }
}

/// The scheduling matrix: {1, 2, 4} workers × {scratch, incremental,
/// incremental+subsumption}.
fn matrix() -> Vec<(usize, bool, bool)> {
    let mut configs = Vec::new();
    for workers in [1usize, 2, 4] {
        for (incremental, subsumption) in [(false, false), (true, false), (true, true)] {
            configs.push((workers, incremental, subsumption));
        }
    }
    configs
}

/// Every catalogue bug: the first violation's forensic bundle is
/// byte-identical no matter how the campaign that found it was scheduled.
#[test]
fn forensic_bundles_are_byte_identical_across_scheduling() {
    for bug in Bug::catalogue() {
        let reference = {
            let report = bug.replay_report_opts(&opts(1, false, false));
            let violation = report
                .violations
                .first()
                .unwrap_or_else(|| panic!("{}: catalogue bug must reproduce", bug.name));
            bug.explain(violation)
                .unwrap_or_else(|| panic!("{}: per-run violation must explain", bug.name))
                .canonical_json()
        };
        for (workers, incremental, subsumption) in matrix() {
            let report = bug.replay_report_opts(&opts(workers, incremental, subsumption));
            let violation = report.violations.first().unwrap_or_else(|| {
                panic!(
                    "{}: no violation at workers={workers} incremental={incremental} \
                     subsumption={subsumption}",
                    bug.name
                )
            });
            let bundle = bug
                .explain(violation)
                .expect("per-run violation must explain")
                .canonical_json();
            assert_eq!(
                bundle, reference,
                "{}: bundle diverged at workers={workers} incremental={incremental} \
                 subsumption={subsumption}",
                bug.name
            );
        }
    }
}

/// Re-explaining the same violation is a no-op: two assemblies of the
/// same bundle are byte-identical, and the bundle names the violating
/// assertion and carries the happens-before DOT graph.
#[test]
fn explaining_twice_is_deterministic_and_complete() {
    let bug = Bug::by_name("Roshi-1").expect("catalogue bug");
    let report = bug.replay_report_opts(&opts(1, true, false));
    let violation = report.violations.first().expect("Roshi-1 reproduces");
    let first = bug.explain(violation).expect("explains");
    let second = bug.explain(violation).expect("explains");
    assert_eq!(first.canonical_json(), second.canonical_json());
    assert_eq!(first.assertion, violation.assertion);
    assert_eq!(first.steps.len(), bug.events());
    assert!(
        first.hb_dot.starts_with("digraph happens_before"),
        "bundle carries the DOT graph"
    );
    assert!(
        first.first_divergence.is_some(),
        "a violating order must diverge from the clean recorded order"
    );
}

/// A fuzz-case violation explains the same way: the bundle is rebuilt
/// from the case spec alone and is stable across re-assembly.
#[test]
fn fuzz_case_bundles_are_deterministic() {
    let case: er_pi_fuzz::FuzzCase = serde_json::from_str(
        r#"{
            "target": "Ledger",
            "spec": {
                "replicas": 2,
                "entries": [
                    {"Op": {"replica": 0, "function": "credit", "args": [75]}},
                    {"SyncPair": {"from": 0, "to": 1, "of": 0}}
                ],
                "chain_from": null
            },
            "faults": [{"anchor": 1, "kind": "Duplicate"}]
        }"#,
    )
    .expect("case parses");
    let report = er_pi_fuzz::report_for(&case, &er_pi_fuzz::OracleOptions::default());
    let violation = report
        .violations
        .first()
        .expect("the duplicated sync violates exactly-once");
    let first = er_pi_fuzz::explain_for(&case, violation).expect("explains");
    let second = er_pi_fuzz::explain_for(&case, violation).expect("explains");
    assert_eq!(first.canonical_json(), second.canonical_json());
    assert_eq!(
        first.provenance.fault_count, 1,
        "the fault plan rides in the bundle"
    );
}

/// The metrics registry is write-only: attaching a [`SessionMetrics`]
/// handle leaves the canonical report bytes untouched at every worker
/// count, while the registry itself visibly accumulates the campaign.
#[test]
fn session_metrics_never_change_the_report() {
    for name in ["Roshi-1", "OrbitDB-2", "ReplicaDB-1", "Yorkie-1"] {
        let bug = Bug::by_name(name).expect("catalogue bug");
        let reference = bug.replay_report_opts(&ReplayOptions::default());
        for workers in [1usize, 2, 4] {
            let registry = Arc::new(Registry::new());
            let metrics = SessionMetrics::new(&registry, &[("campaign", name)]);
            let attached = bug.replay_report_opts(&ReplayOptions {
                workers,
                metrics: Some(metrics),
                ..ReplayOptions::default()
            });
            assert_eq!(
                reference.diff(&attached),
                None,
                "{name} workers={workers}: metrics changed the report"
            );
            assert_eq!(
                reference.canonical_json(),
                attached.canonical_json(),
                "{name} workers={workers}: canonical bytes moved"
            );
            let exposition = registry.render_prometheus();
            er_pi::telemetry::lint_exposition(&exposition)
                .unwrap_or_else(|e| panic!("{name}: exposition lint failed: {e}"));
            assert!(
                exposition.contains(&format!(
                    "er_pi_campaign_runs_total{{campaign=\"{name}\"}} {}",
                    attached.explored
                )),
                "{name}: registry missed the campaign's runs:\n{exposition}"
            );
        }
    }
}

//! Differential-equivalence harness for the telemetry layer.
//!
//! Telemetry is strictly *write-only*: attaching any sink — the no-op
//! [`NullSink`], the in-memory collector, the JSON Lines stream or the
//! Chrome trace-event stream — must leave the [`Report`] byte-identical to
//! a detached session. These tests pin that contract across the twelve-bug
//! catalogue at 1, 2 and 4 workers, in both exhaustive and
//! stop-on-first-violation scheduling, and then randomize the whole knob
//! matrix under proptest. `Report::diff` compares every deterministic
//! field; only wall-clock time, worker loads, cache counters and the
//! session summary are legitimately scheduling-dependent.

use std::sync::Arc;

use proptest::prelude::*;

use er_pi::telemetry::{
    ChromeTraceSink, JsonLinesSink, MemorySink, NullSink, SharedBuf, Sink, TelemetryEvent,
};
use er_pi::Report;
use er_pi_subjects::{Bug, ReplayOptions};

const CAP: usize = 10_000;
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

fn opts(stop: bool, workers: usize, telemetry: Option<Arc<dyn Sink>>) -> ReplayOptions {
    ReplayOptions {
        cap: CAP,
        stop_on_first_violation: stop,
        workers,
        incremental: true,
        telemetry,
        sanitize: false,
        ..ReplayOptions::default()
    }
}

/// Builds the sink variant `which` (0–3) and returns it with a closure that
/// sanity-checks whatever the sink produced after the replay.
fn make_sink(which: usize) -> (Arc<dyn Sink>, Box<dyn FnOnce()>) {
    match which % 4 {
        0 => (Arc::new(NullSink), Box::new(|| {})),
        1 => {
            let sink = Arc::new(MemorySink::new());
            let probe = sink.clone();
            (
                sink,
                Box::new(move || {
                    assert!(!probe.events().is_empty(), "memory sink collected nothing");
                }),
            )
        }
        2 => {
            let buf = SharedBuf::new();
            let probe = buf.clone();
            (
                Arc::new(JsonLinesSink::new(buf)),
                Box::new(move || assert_jsonl_schema(&probe.contents())),
            )
        }
        _ => {
            let buf = SharedBuf::new();
            let probe = buf.clone();
            let sink = Arc::new(ChromeTraceSink::new(buf));
            let closer = sink.clone();
            (
                sink,
                Box::new(move || {
                    closer.close();
                    assert_chrome_trace_shape(&probe.contents());
                }),
            )
        }
    }
}

/// Every line of a JSON Lines stream is one object with a known `kind`.
fn assert_jsonl_schema(contents: &str) {
    assert!(!contents.is_empty(), "jsonl sink wrote nothing");
    for line in contents.lines() {
        assert!(
            line.starts_with("{\"kind\":\"") && line.ends_with('}'),
            "malformed jsonl line: {line}"
        );
        let kind = line["{\"kind\":\"".len()..].split('"').next().unwrap();
        assert!(
            ["span", "instant", "counter", "warning"].contains(&kind),
            "unknown event kind {kind:?} in line: {line}"
        );
        assert!(line.contains("\"ts_us\":"), "line lacks ts_us: {line}");
        assert!(line.contains("\"track\":"), "line lacks track: {line}");
    }
}

/// A closed Chrome trace is one JSON array of event objects with the
/// Perfetto-required fields, including the thread-name metadata events.
fn assert_chrome_trace_shape(contents: &str) {
    let trimmed = contents.trim();
    assert!(trimmed.starts_with('['), "trace is not an array: {trimmed}");
    assert!(trimmed.ends_with(']'), "trace was not closed: {trimmed}");
    assert!(
        trimmed.contains("\"ph\":\"M\"") && trimmed.contains("thread_name"),
        "trace lacks track metadata"
    );
    assert!(
        trimmed.contains("\"ph\":\"X\""),
        "trace lacks complete spans"
    );
    for line in trimmed.lines().skip(1) {
        let obj = line.trim_end_matches(&[',', ']'][..]);
        if obj.is_empty() {
            continue;
        }
        assert!(
            obj.starts_with('{') && obj.ends_with('}'),
            "malformed trace object: {line}"
        );
        assert!(obj.contains("\"pid\":"), "object lacks pid: {line}");
        assert!(obj.contains("\"tid\":"), "object lacks tid: {line}");
    }
}

fn assert_identical(reference: &Report, attached: &Report, label: &str) {
    assert_eq!(
        reference.diff(attached),
        None,
        "{label}: attaching a sink changed the report"
    );
}

/// The full catalogue, every worker count, both scheduling modes: a session
/// with a collecting sink diffs clean against a detached one.
#[test]
fn any_sink_never_changes_the_report() {
    for bug in Bug::catalogue() {
        for stop in [false, true] {
            let reference = bug.replay_report_opts(&opts(stop, 1, None));
            for workers in WORKER_COUNTS {
                let sink = Arc::new(MemorySink::new());
                let attached = bug.replay_report_opts(&opts(stop, workers, Some(sink.clone())));
                assert_identical(
                    &reference,
                    &attached,
                    &format!("{} stop={stop} workers={workers}", bug.name),
                );
                assert!(
                    !sink.events().is_empty(),
                    "{}: attached sink saw no events",
                    bug.name
                );
            }
        }
    }
}

/// The sink matrix — null, memory, jsonl, chrome-trace — on a
/// representative bug per subject family, with the output of each stream
/// sink schema-checked.
#[test]
fn every_sink_kind_is_write_only_and_well_formed() {
    for name in ["Roshi-1", "OrbitDB-1", "Yorkie-2"] {
        let bug = Bug::by_name(name).expect("catalogue bug");
        let reference = bug.replay_report_opts(&opts(false, 1, None));
        for which in 0..4 {
            for workers in WORKER_COUNTS {
                let (sink, check) = make_sink(which);
                let attached = bug.replay_report_opts(&opts(false, workers, Some(sink)));
                assert_identical(
                    &reference,
                    &attached,
                    &format!("{name} sink#{which} workers={workers}"),
                );
                check();
            }
        }
    }
}

/// The attached report still carries the session summary (excluded from
/// `diff`), and the summary's deterministic counters agree with the report.
#[test]
fn attached_report_carries_a_consistent_summary() {
    // ReplicaDB-1 enables independence and failed-ops pruning, so the
    // summary's attribution table must be populated.
    let bug = Bug::by_name("ReplicaDB-1").expect("catalogue bug");
    let sink = Arc::new(MemorySink::new());
    let report = bug.replay_report_opts(&opts(false, 2, Some(sink)));
    let summary = &report.session_summary;
    assert_eq!(summary.explored, report.explored);
    assert_eq!(summary.violations, report.violations.len());
    assert_eq!(summary.sim_us, report.sim_us);
    assert_eq!(summary.workers.len(), 2, "one load entry per pool worker");
    assert!(
        !summary.pruners.is_empty(),
        "ER-π mode must attribute its pruning"
    );
    let rendered = summary.render();
    assert!(rendered.contains("session summary"));
}

/// Every replayed run lands as one `run` span, so a trace is a complete
/// account of the campaign.
#[test]
fn trace_run_spans_match_explored_count() {
    let bug = Bug::by_name("ReplicaDB-1").expect("catalogue bug");
    for workers in WORKER_COUNTS {
        let sink = Arc::new(MemorySink::new());
        let report = bug.replay_report_opts(&opts(false, workers, Some(sink.clone())));
        let runs = sink
            .events()
            .iter()
            .filter(|e: &&TelemetryEvent| e.name == "run")
            .count();
        assert_eq!(
            runs, report.explored,
            "workers={workers}: trace dropped or duplicated run spans"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized knob matrix: any catalogue bug, any worker count 1–4,
    /// either scheduling mode, any sink kind — the report never moves.
    #[test]
    fn report_is_invariant_under_any_sink(
        bug_idx in 0usize..12,
        workers in 1usize..5,
        stop in any::<bool>(),
        which in 0usize..4,
    ) {
        let catalogue = Bug::catalogue();
        let bug = &catalogue[bug_idx];
        let reference = bug.replay_report_opts(&opts(stop, 1, None));
        let (sink, check) = make_sink(which);
        let attached = bug.replay_report_opts(&opts(stop, workers, Some(sink)));
        prop_assert_eq!(
            reference.diff(&attached),
            None,
            "{} stop={} workers={} sink#{}",
            bug.name,
            stop,
            workers,
            which
        );
        check();
    }
}

/// S3 co-tenancy: two campaigns multiplexed over one shared
/// [`ExecutorService`], each streaming into its own Chrome trace sink.
/// Concurrent emission from shared worker threads must never tear a JSON
/// object or leak one campaign's events into the other's trace — every
/// line of each buffer parses on its own, and each trace carries a
/// coherent track set of its own.
#[test]
fn co_tenant_chrome_traces_stay_separate_and_well_formed() {
    use er_pi::ExecutorService;

    let service = Arc::new(ExecutorService::new(2));
    let spawn = |name: &'static str| {
        let buf = SharedBuf::new();
        let sink = Arc::new(ChromeTraceSink::new(buf.clone()));
        let service = Arc::clone(&service);
        let handle = std::thread::spawn({
            let sink = sink.clone();
            move || {
                let bug = Bug::by_name(name).expect("catalogue bug");
                let erased: Arc<dyn Sink> = sink.clone();
                let report = bug
                    .replay_report_on(
                        &service,
                        5,
                        None,
                        None,
                        &ReplayOptions {
                            telemetry: Some(erased),
                            ..ReplayOptions::default()
                        },
                    )
                    .expect("co-scheduled campaign completes");
                sink.close();
                report
            }
        });
        (name, buf, handle)
    };
    let campaigns = [spawn("Roshi-1"), spawn("ReplicaDB-2")];
    for (name, buf, handle) in campaigns {
        let report = handle.join().expect("campaign thread");
        assert!(report.explored > 0, "{name}: campaign replayed nothing");
        let contents = buf.contents();
        assert_chrome_trace_shape(&contents);
        let mut tracks = std::collections::BTreeSet::new();
        for line in contents.trim().lines().skip(1) {
            let object = line.trim_end_matches(&[',', ']'][..]);
            if object.is_empty() {
                continue;
            }
            let value: serde::Content = serde_json::from_str(object).unwrap_or_else(|e| {
                panic!("{name}: torn or interleaved trace object {object:?}: {e}")
            });
            let serde::Content::Map(entries) = &value else {
                panic!("{name}: trace line is not an object: {object:?}");
            };
            let tid = entries
                .iter()
                .find_map(|(k, v)| match (k, v) {
                    (serde::Content::Str(k), serde::Content::Int(n)) if k == "tid" => Some(*n),
                    _ => None,
                })
                .expect("every object has a tid");
            tracks.insert(tid);
        }
        assert!(
            !tracks.is_empty(),
            "{name}: trace carries no addressed events"
        );
    }
}

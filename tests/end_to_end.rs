//! End-to-end integration tests across the workspace: the full
//! record → generate → prune → persist → replay → assert pipeline.

use er_pi::{
    Assertion, ExploreMode, FailedOpsRule, InlineExecutor, PruningConfig, Session, SystemModel,
    TestSuite, ThreadedExecutor, TimeModel,
};
use er_pi_model::{EventId, ReplicaId, Value};
use er_pi_subjects::{CrdtsModel, RoshiModel, TownApp, YorkieModel};

fn r(i: u16) -> ReplicaId {
    ReplicaId::new(i)
}

fn record_motivating(session: &mut Session<TownApp>) -> [EventId; 4] {
    let mut ids = [EventId::new(0); 4];
    session.record(|app| {
        let ev1 = app.invoke(r(0), "add", [Value::from("otb")]);
        app.sync(r(0), r(1), ev1);
        let ev2 = app.invoke(r(1), "add", [Value::from("ph")]);
        app.sync(r(1), r(0), ev2);
        let ev3 = app.invoke(r(1), "remove", [Value::from("otb")]);
        app.sync(r(1), r(0), ev3);
        let ev4 = app.external(r(0), "transmit");
        ids = [ev1, ev2, ev3, ev4];
    });
    ids
}

#[test]
fn motivating_example_full_pipeline() {
    let mut session = Session::new(TownApp::new(2));
    let [ev1, ev2, ev3, ev4] = record_motivating(&mut session);

    // Paper numbers: 7 events, 5040 raw, 24 grouped, 19 with the rule.
    assert_eq!(session.workload().unwrap().total_orders(), 5040);
    let grouped = session.replay(&TownApp::invariant()).unwrap();
    assert_eq!(grouped.explored, 24);
    assert!(!grouped.passed());

    session.set_config(PruningConfig::default().with_failed_ops(FailedOpsRule {
        predecessors: vec![ev4],
        successors: vec![ev1, ev2, ev3],
    }));
    let pruned = session.replay(&TownApp::invariant()).unwrap();
    assert_eq!(pruned.explored, 19);
    assert!(!pruned.passed(), "pruning must not lose the violation");

    // The violation count is identical: only equivalent orders were merged
    // away, and merged classes share outcomes.
    assert_eq!(grouped.violations.len(), pruned.violations.len());
}

#[test]
fn all_three_modes_find_the_motivating_violation() {
    for mode in [
        ExploreMode::ErPi,
        ExploreMode::Dfs,
        ExploreMode::Random { seed: 7 },
    ] {
        let mut session = Session::new(TownApp::new(2));
        record_motivating(&mut session);
        session.set_mode(mode);
        session.set_stop_on_first_violation(true);
        let report = session.replay(&TownApp::invariant()).unwrap();
        assert!(!report.passed(), "{mode} must find the violation");
    }
}

#[test]
fn threaded_and_inline_executors_agree_on_every_pruned_order() {
    let mut session = Session::new(TownApp::new(2));
    record_motivating(&mut session);
    let workload = session.workload().unwrap().clone();
    let model = TownApp::new(2);
    let time = TimeModel::paper_setup();

    let config = PruningConfig::default();
    let explorer = er_pi_interleave::ErPiExplorer::new(&workload, &config);
    let mut checked = 0;
    for il in explorer {
        let inline = InlineExecutor::execute(&model, &workload, &il, &time);
        let threaded = ThreadedExecutor::execute(&model, &workload, &il, &time).unwrap();
        let obs_inline: Vec<Value> = inline.states.iter().map(|s| model.observe(s)).collect();
        let obs_threaded: Vec<Value> = threaded.states.iter().map(|s| model.observe(s)).collect();
        assert_eq!(obs_inline, obs_threaded, "divergence on {il}");
        assert_eq!(inline.outcomes, threaded.outcomes, "outcomes on {il}");
        checked += 1;
    }
    assert_eq!(checked, 24);
}

#[test]
fn persisted_interleavings_are_queryable_via_datalog() {
    let mut session = Session::new(TownApp::new(2));
    let [_, _, ev3, ev4] = record_motivating(&mut session);
    session.set_persist(true);
    let report = session.replay(&TestSuite::new()).unwrap();

    let mut store = session.store().unwrap().clone();
    assert_eq!(store.len(), report.explored);
    store.derive_precedes();
    let stale = store.interleavings_where_precedes(ev4, ev3);
    let fresh = store.interleavings_where_precedes(ev3, ev4);
    assert_eq!(stale.len() + fresh.len(), report.explored);
    assert!(!stale.is_empty() && !fresh.is_empty());

    // Round-trip the store through its JSON persistence.
    let json = store.to_json();
    let back = er_pi_datalog::InterleavingStore::from_json(&json).unwrap();
    assert_eq!(back.len(), store.len());
}

#[test]
fn constraints_directory_prunes_mid_session() {
    let dir = std::env::temp_dir().join(format!("er-pi-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut session = Session::new(TownApp::new(2));
    let [ev1, ev2, ev3, ev4] = record_motivating(&mut session);
    let rule = PruningConfig::default().with_failed_ops(FailedOpsRule {
        predecessors: vec![ev4],
        successors: vec![ev1, ev2, ev3],
    });
    std::fs::write(dir.join("rule.json"), serde_json::to_string(&rule).unwrap()).unwrap();
    session.watch_constraints(&dir);
    let report = session.replay(&TownApp::invariant()).unwrap();
    assert_eq!(
        report.explored, 19,
        "the dropped constraint shrank the space"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recording_executes_against_the_real_subject() {
    // The LiveSystem is not a mock: recorded calls run the actual RDL.
    let mut session = Session::new(RoshiModel::new(2));
    session.record(|app| {
        app.invoke(
            r(0),
            "insert",
            [Value::from("k"), Value::from("m"), Value::from(9)],
        );
        let sel = app.invoke(r(0), "select", [Value::from("k")]);
        assert!(matches!(app.outcome(sel), er_pi::OpOutcome::Observed(_)));
        assert_eq!(app.state(r(0)).store.key_len("k"), 1);
        assert_eq!(app.state(r(1)).store.key_len("k"), 0);
    });
}

#[test]
fn cross_run_divergence_detector_spans_subjects() {
    // The same cross-interleaving detector works on any SystemModel.
    let mut session = Session::new(YorkieModel::new(2));
    session.record(|app| {
        let s1 = app.invoke(r(1), "set", [Value::from("k"), Value::from("remote")]);
        app.sync_split(r(1), r(0), Some(s1));
        app.invoke(r(0), "set", [Value::from("k"), Value::from("local")]);
    });
    let suite = TestSuite::new().with_cross(er_pi::CrossCheck::same_state_across_interleavings(
        "stable", 0,
    ));
    let report = session.replay(&suite).unwrap();
    assert!(!report.passed(), "LWW winner depends on the interleaving");
}

#[test]
fn failed_ops_surface_in_check_contexts() {
    let mut session = Session::new(CrdtsModel::new(2));
    session.record(|app| {
        app.invoke(r(0), "set_add", [Value::from(1)]);
        app.invoke(r(1), "set_remove", [Value::from(1)]); // fails pre-sync
        app.sync_untracked(r(0), r(1));
    });
    session.set_keep_runs(true);
    let suite = TestSuite::new().with(Assertion::new("count-failures", |ctx| {
        // At least one order runs the remove before the element is visible.
        let _ = ctx.failed_ops();
        Ok(())
    }));
    let report = session.replay(&suite).unwrap();
    assert!(report.runs.iter().any(|run| run.failed_ops > 0));
    assert!(report.runs.iter().any(|run| run.failed_ops == 0));
}

#[test]
fn dfs_mode_counts_match_factorial_for_small_workloads() {
    let mut session = Session::new(CrdtsModel::new(2));
    session.record(|app| {
        app.invoke(r(0), "counter_inc", [Value::from(1)]);
        app.invoke(r(1), "counter_inc", [Value::from(2)]);
        app.invoke(r(0), "counter_dec", [Value::from(1)]);
        app.invoke(r(1), "reg_set", [Value::from(5)]);
    });
    session.set_mode(ExploreMode::Dfs);
    let report = session.replay(&TestSuite::new()).unwrap();
    assert_eq!(report.explored, 24); // 4!
}

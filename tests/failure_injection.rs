//! Failure-injection tests: the virtual cluster's adverse delivery modes
//! (reordering, loss, partitions) against the RDL substrate, and what they
//! mean for ER-π's misconception detectors.

use er_pi_model::ReplicaId;
use er_pi_rdl::{DeltaSync, OrSet, Rga};
use er_pi_replica::{Cluster, DeliveryMode, LinkFault};

fn r(i: u16) -> ReplicaId {
    ReplicaId::new(i)
}

fn elements(set: &OrSet<i64>) -> Vec<i64> {
    set.elements().into_iter().copied().collect()
}

#[test]
fn orset_converges_under_reordered_delivery() {
    // Misconception #1's flip side: the CRDT layer tolerates reordering;
    // it is the application logic on top that may not.
    let mut cluster: Cluster<OrSet<i64>> = Cluster::paper_setup(OrSet::new);
    cluster.set_delivery(DeliveryMode::Reordered { seed: 99 });
    for i in 0..10 {
        cluster.update(r((i % 3) as u16), |s| {
            s.insert(i);
        });
        cluster.sync_send(r((i % 3) as u16), r(((i + 1) % 3) as u16));
    }
    // Drain everything (multiple passes; reordering shuffles queues).
    for _ in 0..20 {
        for to in 0..3 {
            while cluster.sync_exec(r(to)).is_some() {}
        }
        // Final anti-entropy round so everyone sees everything.
        for from in 0..3 {
            for to in 0..3 {
                if from != to {
                    cluster.sync_pair(r(from), r(to));
                }
            }
        }
    }
    assert!(cluster.converged_by(elements));
    assert_eq!(cluster.state(r(0)).len(), 10);
}

#[test]
fn lossy_network_delays_but_does_not_corrupt() {
    let mut cluster: Cluster<OrSet<i64>> = Cluster::new(2, OrSet::new);
    cluster.set_delivery(DeliveryMode::Lossy {
        loss_permille: 400,
        seed: 3,
    });
    cluster.update(r(0), |s| {
        s.insert(7);
    });
    // Keep retransmitting until the op survives the lossy link.
    let mut attempts = 0;
    while !cluster.state(r(1)).contains(&7) {
        cluster.sync_send(r(0), r(1));
        let _ = cluster.sync_exec(r(1));
        attempts += 1;
        assert!(attempts < 100, "lossy link never delivered");
    }
    let (_, delivered, dropped) = cluster.network_mut().stats();
    assert!(delivered >= 1);
    assert!(dropped + delivered >= attempts as u64 / 2);
    assert!(cluster.state(r(1)).contains(&7));
}

#[test]
fn partition_heals_into_convergence() {
    let mut cluster: Cluster<OrSet<i64>> = Cluster::new(2, OrSet::new);
    cluster.network_mut().partition(r(0), r(1));
    cluster.update(r(0), |s| {
        s.insert(1);
    });
    cluster.update(r(1), |s| {
        s.insert(2);
    });
    cluster.sync_send(r(0), r(1));
    assert_eq!(cluster.sync_exec(r(1)), None, "partitioned");
    assert!(!cluster.converged_by(elements));

    cluster.network_mut().heal(r(0), r(1));
    assert!(cluster.sync_exec(r(1)).is_some());
    cluster.sync_pair(r(1), r(0));
    assert!(cluster.converged_by(elements));
    assert_eq!(cluster.state(r(0)).len(), 2);
}

#[test]
fn checkpoint_reset_discards_in_flight_damage() {
    // The replay engine's isolation guarantee: whatever a chaotic
    // interleaving did — including messages still in flight — a reset
    // restores the checkpointed world.
    let mut cluster: Cluster<Rga<i64>> = Cluster::paper_setup(Rga::new);
    cluster.update(r(0), |l| {
        l.push(1);
    });
    cluster.sync_pair(r(0), r(1));
    cluster.checkpoint_all();

    // Chaos: partial syncs, reordered deliveries, concurrent edits.
    cluster.set_delivery(DeliveryMode::Reordered { seed: 5 });
    cluster.update(r(1), |l| {
        l.push(2);
    });
    cluster.update(r(2), |l| {
        l.push(3);
    });
    cluster.sync_send(r(1), r(2));
    cluster.sync_send(r(2), r(0));
    let _ = cluster.sync_exec(r(0));

    cluster.reset_all();
    assert_eq!(cluster.state(r(0)).values(), vec![&1]);
    assert_eq!(cluster.state(r(1)).values(), vec![&1]);
    assert!(cluster.state(r(2)).is_empty());
    assert_eq!(cluster.network_mut().in_flight(), 0, "wire is clean");
}

#[test]
fn scheduled_duplicate_delivery_through_the_cluster() {
    // A scheduled LinkFault::Duplicate redelivers one sync message: the
    // substrate (idempotent CRDT ops) absorbs it, and the extra delivery is
    // visible in the network stats — the deterministic counterpart of the
    // RNG-seeded lossy/reordered modes.
    let mut cluster: Cluster<OrSet<i64>> = Cluster::new(2, OrSet::new);
    cluster
        .network_mut()
        .schedule_fault(r(0), r(1), LinkFault::Duplicate);
    cluster.update(r(0), |s| {
        s.insert(42);
    });
    cluster.sync_send(r(0), r(1));
    // First exec consumes the fault: the message is delivered but stays
    // queued; the second exec delivers it again.
    assert_eq!(cluster.sync_exec(r(1)), Some(1));
    assert_eq!(cluster.sync_exec(r(1)), Some(1), "duplicate delivery");
    assert_eq!(cluster.sync_exec(r(1)), None, "wire is drained");
    let (_, delivered, dropped) = cluster.network_mut().stats();
    assert_eq!((delivered, dropped), (2, 0));
    assert!(cluster.converged_by(elements));
    assert_eq!(cluster.state(r(1)).len(), 1, "idempotent ops deduplicate");
}

#[test]
fn crash_restart_recovers_observably_equal_state_from_the_log() {
    let mut cluster: Cluster<OrSet<i64>> = Cluster::paper_setup(OrSet::new);
    cluster.update(r(0), |s| {
        s.insert(1);
    });
    cluster.update(r(0), |s| {
        s.insert(2);
    });
    cluster.sync_pair(r(0), r(1));
    cluster.update(r(1), |s| {
        s.insert(3);
    });
    // A message still on the wire when the crash hits...
    cluster.update(r(2), |s| {
        s.insert(4);
    });
    cluster.sync_send(r(2), r(1));

    let before = elements(cluster.state(r(1)));
    let replayed = cluster.crash_restart(r(1), OrSet::new);
    // Log replay recovers every op the replica had observed: two received
    // from r0 plus its own — recovery-state equality.
    assert_eq!(replayed, 3);
    assert_eq!(elements(cluster.state(r(1))), before);

    // The in-flight message survived the crash and still applies.
    assert_eq!(cluster.sync_exec(r(1)), Some(1));
    assert!(cluster.state(r(1)).contains(&4));
    cluster.sync_pair(r(1), r(0));
    cluster.sync_pair(r(1), r(2));
    cluster.sync_pair(r(0), r(2));
    assert!(cluster.converged_by(elements));
}

#[test]
fn rga_survives_duplicated_and_reordered_ops() {
    // Apply a realistic op stream through the worst network mode and
    // verify list convergence (the substrate-level guarantee the
    // misconception detectors rely on to blame the *application*).
    let mut a = Rga::new(r(0));
    let ops: Vec<_> = (0..8).map(|i| a.push(i)).collect();
    let mut b = Rga::new(r(1));
    // Deliver twice, reversed.
    for op in ops.iter().rev() {
        b.apply_op(op);
    }
    for op in ops.iter() {
        b.apply_op(op);
    }
    assert_eq!(a.values(), b.values());
}

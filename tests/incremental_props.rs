//! Property tests for the incremental executor's eviction behaviour.
//!
//! The checkpoint trie is a pure accelerator: *which* snapshots happen to
//! be resident when a run starts must never leak into the report. These
//! properties drive randomized workloads through wildly different eviction
//! schedules — budget 0 (every run from scratch), budget ∞ (nothing ever
//! evicted) and a small random budget (constant eviction churn) — and
//! require the merged report to diff clean against the scratch executor
//! every time, sequentially and under the pool.

use proptest::prelude::*;

use er_pi::{ExploreMode, OpOutcome, Report, Session, SystemModel, TestSuite};
use er_pi_model::{Event, EventKind, ReplicaId, Value, Workload};

/// Two-replica last-write-wins register with a heap-owning state, so
/// snapshots exercise real deep clones and a non-trivial
/// `state_size_hint`.
struct HistMachine;

impl SystemModel for HistMachine {
    type State = Vec<i64>;

    fn replicas(&self) -> usize {
        2
    }

    fn init(&self, _replica: ReplicaId) -> Vec<i64> {
        Vec::new()
    }

    fn apply(&self, states: &mut [Vec<i64>], event: &Event) -> OpOutcome {
        match &event.kind {
            EventKind::LocalUpdate { op } => {
                let v = op.arg(0).and_then(Value::as_int).unwrap_or(0);
                states[event.replica.index()].push(v);
                OpOutcome::Applied
            }
            EventKind::Sync { to, .. } => {
                let from = states[event.replica.index()].clone();
                states[to.index()] = from;
                OpOutcome::Applied
            }
            _ => OpOutcome::failed("unsupported"),
        }
    }

    fn observe(&self, state: &Vec<i64>) -> Value {
        Value::from(state.iter().copied().sum::<i64>())
    }

    fn state_size_hint(&self, state: &Vec<i64>) -> usize {
        std::mem::size_of::<Vec<i64>>() + state.len() * std::mem::size_of::<i64>()
    }
}

#[derive(Debug, Clone)]
enum Step {
    Update(u16, i64),
    Sync(u16),
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            (0u16..2, 1i64..9).prop_map(|(r, v)| Step::Update(r, v)),
            (0u16..2).prop_map(Step::Sync),
        ],
        1..6,
    )
}

fn build_workload(steps: &[Step]) -> Workload {
    let mut w = Workload::builder();
    let mut last_update = None;
    for step in steps {
        match step {
            Step::Update(r, v) => {
                last_update = Some(w.update(ReplicaId::new(*r), "set", [Value::from(*v)]));
            }
            Step::Sync(r) => {
                let from = ReplicaId::new(*r);
                let to = ReplicaId::new(1 - *r);
                match last_update {
                    Some(u) => {
                        w.sync_pair(from, to, u);
                    }
                    None => {
                        w.sync_untracked(from, to);
                    }
                }
            }
        }
    }
    w.build()
}

fn replay(workload: &Workload, mode: ExploreMode, workers: usize, budget: Option<usize>) -> Report {
    let mut session = Session::new(HistMachine);
    session.set_workload(workload.clone());
    session.set_mode(mode);
    session.set_keep_runs(true);
    session.set_cap(100_000);
    session.set_workers(workers);
    match budget {
        Some(budget) => {
            session.set_incremental(true);
            session.set_cache_budget(budget);
        }
        None => {
            session.set_incremental(false);
        }
    }
    session.replay(&TestSuite::new()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Budget 0, budget ∞ and a small random budget produce the same
    /// report as the scratch executor, in both exploration modes.
    #[test]
    fn eviction_schedule_never_changes_the_report(
        steps in arb_steps(),
        random_budget in 1usize..512,
    ) {
        let workload = build_workload(&steps);
        for mode in [ExploreMode::ErPi, ExploreMode::Dfs] {
            let scratch = replay(&workload, mode, 1, None);
            for budget in [0, usize::MAX, random_budget] {
                let incremental = replay(&workload, mode, 1, Some(budget));
                prop_assert_eq!(
                    scratch.diff(&incremental),
                    None,
                    "budget {} diverged from scratch in {:?} mode",
                    budget,
                    mode
                );
            }
        }
    }

    /// Same property under the pool: per-worker tries with arbitrary
    /// eviction churn still merge into the scratch sequential report.
    #[test]
    fn pooled_eviction_schedule_never_changes_the_report(
        steps in arb_steps(),
        random_budget in 1usize..512,
    ) {
        let workload = build_workload(&steps);
        let scratch = replay(&workload, ExploreMode::Dfs, 1, None);
        for workers in [2usize, 4] {
            for budget in [0, usize::MAX, random_budget] {
                let incremental = replay(&workload, ExploreMode::Dfs, workers, Some(budget));
                prop_assert_eq!(
                    scratch.diff(&incremental),
                    None,
                    "budget {} at {} workers diverged from scratch",
                    budget,
                    workers
                );
            }
        }
    }

    /// Budget 0 admits no snapshots: every probe is a miss, nothing is
    /// saved, nothing stays resident — the degenerate case really is the
    /// scratch executor plus counters.
    #[test]
    fn zero_budget_saves_nothing(steps in arb_steps()) {
        let workload = build_workload(&steps);
        let report = replay(&workload, ExploreMode::Dfs, 1, Some(0));
        let stats = report.cache_stats.expect("incremental run reports stats");
        prop_assert_eq!(stats.hits, 0);
        prop_assert_eq!(stats.events_saved, 0);
        prop_assert_eq!(stats.sim_us_saved, 0);
        prop_assert_eq!(stats.bytes_resident, 0);
        prop_assert_eq!(stats.misses, report.explored as u64);
    }
}

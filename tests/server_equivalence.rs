//! The campaign server's determinism contract, end to end.
//!
//! 1. **Co-tenancy equivalence**: for every catalogue bug, the report a
//!    campaign produces on a shared [`ExecutorService`] — while two
//!    competing campaigns at different priorities are co-scheduled over
//!    the same workers — is byte-identical (under
//!    [`Report::canonical_json`]) to the standalone sequential session, at
//!    1, 2 and 4 service workers.
//! 2. **Socket lifecycle**: over a real TCP connection — submit, live
//!    progress, mid-campaign `DELETE` that stops *only* the targeted
//!    campaign, final report retrieval, and metrics.
//! 3. **Backpressure**: bounded admission refuses with 429 once the queue
//!    is full, and queued campaigns can be cancelled before they start.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use er_pi::{ExecutorService, Report};
use er_pi_server::{Server, ServerConfig};
use er_pi_subjects::{Bug, ReplayOptions};

const CAP: usize = 10_000;
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

fn opts() -> ReplayOptions {
    ReplayOptions {
        cap: CAP,
        stop_on_first_violation: false,
        workers: 1,
        incremental: true,
        telemetry: None,
        sanitize: false,
        ..ReplayOptions::default()
    }
}

/// For each catalogue bug: standalone sequential report vs the same spec
/// replayed as one of three concurrently submitted campaigns (priorities
/// 0, 5 and 9) on a shared service.
#[test]
fn co_scheduled_campaign_reports_are_byte_identical_to_standalone() {
    let catalogue = Bug::catalogue();
    let standalone: Vec<(String, Report)> = catalogue
        .iter()
        .map(|bug| (bug.name.to_owned(), bug.replay_report_opts(&opts())))
        .collect();
    for workers in WORKER_COUNTS {
        let service = ExecutorService::new(workers);
        for (name, baseline) in &standalone {
            let bug = Bug::by_name(name).expect("catalogue bug");
            // Two competitors keep the shared workers busy while the bug
            // under test replays; all three run concurrently.
            let competitors = [("Roshi-1", 0u8), ("Yorkie-1", 9u8)];
            let served = thread::scope(|scope| {
                for (rival, priority) in competitors {
                    let service = &service;
                    scope.spawn(move || {
                        let rival = Bug::by_name(rival).expect("catalogue bug");
                        let rival_opts = ReplayOptions {
                            cap: 1_000,
                            ..opts()
                        };
                        rival
                            .replay_report_on(service, priority, None, None, &rival_opts)
                            .expect("competitor campaigns finish");
                    });
                }
                bug.replay_report_on(&service, 5, None, None, &opts())
                    .expect("the campaign under test finishes")
            });
            assert_eq!(
                baseline.diff(&served),
                None,
                "{name} diverged at {workers} service workers"
            );
            assert_eq!(
                baseline.canonical_json(),
                served.canonical_json(),
                "{name} canonical bytes diverged at {workers} service workers"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Socket-level helpers: one Connection: close exchange per call.
// ---------------------------------------------------------------------

fn exchange(addr: &str, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to the daemon");
    stream
        .write_all(request.as_bytes())
        .expect("write the request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read the response");
    let code = response
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("a status line");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (code, body)
}

fn get(addr: &str, path: &str) -> (u16, String) {
    exchange(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: &str, path: &str, body: &str) -> (u16, String) {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn delete(addr: &str, path: &str) -> (u16, String) {
    exchange(
        addr,
        &format!("DELETE {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn field<'a>(json: &'a str, name: &str) -> Option<&'a str> {
    let key = format!("\"{name}\":");
    let at = json.find(&key)? + key.len();
    let rest = json[at..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

fn submit_id(addr: &str, spec: &str) -> String {
    let (code, body) = post(addr, "/campaigns", spec);
    assert_eq!(code, 202, "submission refused: {body}");
    field(&body, "id").expect("an id").to_owned()
}

/// Polls until the campaign reaches `want` (or any terminal state if
/// `want` is terminal-only); panics after 120 s.
fn poll_until(addr: &str, id: &str, want: &[&str]) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (code, body) = get(addr, &format!("/campaigns/{id}"));
        assert_eq!(code, 200, "status poll failed: {body}");
        let state = field(&body, "state").expect("a state").to_owned();
        if want.contains(&state.as_str()) {
            return body;
        }
        assert!(
            Instant::now() < deadline,
            "campaign {id} stuck in {state}, wanted {want:?}"
        );
        thread::sleep(Duration::from_millis(5));
    }
}

/// Polls until the campaign is running *and* has published a live
/// progress snapshot — i.e. exploration proper is under way.
fn poll_until_progress(addr: &str, id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (code, body) = get(addr, &format!("/campaigns/{id}"));
        assert_eq!(code, 200, "status poll failed: {body}");
        if body.contains("\"runs_done\"") {
            return body;
        }
        let state = field(&body, "state").expect("a state").to_owned();
        assert!(
            !["done", "cancelled", "failed"].contains(&state.as_str()),
            "campaign {id} ended ({state}) before progress was observed"
        );
        assert!(
            Instant::now() < deadline,
            "campaign {id} never published progress"
        );
        thread::sleep(Duration::from_millis(2));
    }
}

/// A trace campaign with a causally unconstrained 756 756-interleaving
/// space: 15 round-robin ledger credits over 3 replicas. Big enough that
/// a capped campaign is still mid-flight when the test lands a `DELETE`.
fn long_trace_spec(tenant: &str, priority: u8) -> String {
    let entries: Vec<String> = (0..15)
        .map(|i| {
            format!(
                r#"{{"Op": {{"replica": {}, "function": "credit", "args": [{}]}}}}"#,
                i % 3,
                i + 1
            )
        })
        .collect();
    format!(
        r#"{{"tenant": "{tenant}", "priority": {priority}, "cap": 200000, "trace": {{"target": "Ledger", "spec": {{"replicas": 3, "entries": [{}], "chain_from": null}}, "faults": []}}}}"#,
        entries.join(", ")
    )
}

/// Submit → live progress → DELETE stops only the targeted campaign →
/// the co-scheduled one still reports.
#[test]
fn delete_cancels_only_the_targeted_campaign_over_a_real_socket() {
    let handle = Server::bind(ServerConfig {
        port: 0,
        workers: 2,
        runners: 2,
        queue_cap: 8,
    })
    .expect("bind")
    .spawn()
    .expect("spawn");
    let addr = handle.addr().to_string();

    let (code, body) = get(&addr, "/healthz");
    assert_eq!((code, body.as_str()), (200, r#"{"status":"ok"}"#));

    // A long victim campaign and a short co-tenant on the same workers.
    // Wait for live progress (not just the running phase): the replay
    // proper starts only after workload analysis, and the cancellation
    // must land mid-exploration.
    let victim = submit_id(&addr, &long_trace_spec("tenant-a", 5));
    poll_until_progress(&addr, &victim);
    let cotenant = submit_id(
        &addr,
        r#"{"tenant": "tenant-b", "bug": "Roshi-1", "cap": 2000}"#,
    );

    let (code, body) = delete(&addr, &format!("/campaigns/{victim}"));
    assert_eq!(code, 202, "{body}");

    let ended = poll_until(&addr, &victim, &["cancelled", "done", "failed"]);
    assert_eq!(field(&ended, "state"), Some("cancelled"), "{ended}");
    let (code, body) = get(&addr, &format!("/campaigns/{victim}/report"));
    assert_eq!(code, 409, "cancelled campaigns have no report: {body}");

    // The co-scheduled campaign is untouched: it completes and reports.
    let done = poll_until(&addr, &cotenant, &["done", "cancelled", "failed"]);
    assert_eq!(field(&done, "state"), Some("done"), "{done}");
    let (code, report) = get(&addr, &format!("/campaigns/{cotenant}/report"));
    assert_eq!(code, 200, "{report}");
    assert!(report.contains("\"explored\""), "{report}");

    // The live path produced progress snapshots for the victim: the last
    // one is retained on the cancelled status.
    assert!(ended.contains("\"runs_done\""), "{ended}");

    let (code, metrics) = get(&addr, "/metrics");
    assert_eq!(code, 200);
    assert!(metrics.contains("\"runs_per_sec\""), "{metrics}");
    assert_eq!(field(&metrics, "cancelled"), Some("1"), "{metrics}");

    let (code, _) = get(&addr, "/campaigns/c-999");
    assert_eq!(code, 404);

    handle.shutdown();
}

/// Bounded admission: with one runner busy and a queue of one, a third
/// submission is refused with 429; a queued campaign DELETEs immediately.
#[test]
fn full_queues_refuse_submissions_with_429() {
    let handle = Server::bind(ServerConfig {
        port: 0,
        workers: 1,
        runners: 1,
        queue_cap: 1,
    })
    .expect("bind")
    .spawn()
    .expect("spawn");
    let addr = handle.addr().to_string();

    let running = submit_id(&addr, &long_trace_spec("tenant-a", 5));
    poll_until(&addr, &running, &["running"]);

    let queued = submit_id(&addr, &long_trace_spec("tenant-b", 5));
    let (code, body) = post(&addr, "/campaigns", &long_trace_spec("tenant-c", 5));
    assert_eq!(code, 429, "{body}");
    assert!(body.contains("queue full"), "{body}");

    // Bad specs are refused before admission, not enqueued.
    let (code, body) = post(&addr, "/campaigns", r#"{"bug": "No-Such-Bug"}"#);
    assert_eq!(code, 400, "{body}");

    // The queued campaign cancels without ever starting.
    let (code, body) = delete(&addr, &format!("/campaigns/{queued}"));
    assert_eq!(code, 202, "{body}");
    let ended = poll_until(&addr, &queued, &["cancelled"]);
    assert!(field(&ended, "progress").is_some(), "{ended}");

    let (code, _) = delete(&addr, &format!("/campaigns/{running}"));
    assert_eq!(code, 202);
    poll_until(&addr, &running, &["cancelled"]);

    let (_, metrics) = get(&addr, "/metrics");
    assert_eq!(field(&metrics, "rejected"), Some("1"), "{metrics}");

    handle.shutdown();
}

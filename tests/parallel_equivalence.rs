//! Differential-equivalence harness for the parallel replay pool.
//!
//! The pool's contract is that a merged parallel [`Report`] is
//! *byte-identical* to the sequential one — same runs, same order, same
//! violations, same simulated time — for any worker count. These tests pin
//! that contract across the entire 12-bug catalogue, with and without
//! `stop_on_first_violation`, at 1, 2 and 4 workers. `Report::diff`
//! compares every field except wall-clock time and per-worker load
//! (which are legitimately scheduling-dependent).

use er_pi_subjects::Bug;

const CAP: usize = 10_000;
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// `workers == 1` must take the sequential code path and therefore be the
/// reference: its report must diff clean against a plain sequential session.
#[test]
fn one_worker_is_the_sequential_path() {
    for bug in Bug::catalogue() {
        let a = bug.replay_report(CAP, true, 1);
        let b = bug.replay_report(CAP, true, 1);
        assert_eq!(
            a.diff(&b),
            None,
            "{}: sequential replay must be deterministic",
            bug.name
        );
    }
}

#[test]
fn parallel_equals_sequential_exhaustive() {
    for bug in Bug::catalogue() {
        let reference = bug.replay_report(CAP, false, 1);
        for workers in WORKER_COUNTS {
            let parallel = bug.replay_report(CAP, false, workers);
            assert_eq!(
                reference.diff(&parallel),
                None,
                "{} at {workers} workers diverged from sequential (exhaustive)",
                bug.name
            );
        }
    }
}

#[test]
fn parallel_equals_sequential_stop_on_first() {
    for bug in Bug::catalogue() {
        let reference = bug.replay_report(CAP, true, 1);
        for workers in WORKER_COUNTS {
            let parallel = bug.replay_report(CAP, true, workers);
            assert_eq!(
                reference.diff(&parallel),
                None,
                "{} at {workers} workers diverged from sequential (stop-on-first)",
                bug.name
            );
        }
    }
}

/// The first violation a parallel run reports must be the *lowest-indexed*
/// one — i.e. exactly the interleaving a sequential scan would have flagged
/// first — not merely "some" violation that happened to finish early.
#[test]
fn first_violation_index_is_scheduling_independent() {
    for bug in Bug::catalogue() {
        let reference = bug.replay_report(CAP, true, 1);
        assert!(
            reference.first_violation_at.is_some(),
            "{}: catalogue bug must manifest under ER-π pruning",
            bug.name
        );
        for workers in WORKER_COUNTS {
            let parallel = bug.replay_report(CAP, true, workers);
            assert_eq!(
                parallel.first_violation_at, reference.first_violation_at,
                "{} at {workers} workers found a different first violation",
                bug.name
            );
        }
    }
}

//! Umbrella crate for the ER-pi reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a
//! single dependency. See the individual crates for the real APIs:
//! [`er_pi`] (middleware), [`er_pi_rdl`] (CRDT library),
//! [`er_pi_interleave`] (interleaving generation and pruning),
//! [`er_pi_subjects`] (evaluation subjects and bug catalogue).
pub use er_pi;
pub use er_pi_datalog;
pub use er_pi_dlock;
pub use er_pi_interleave;
pub use er_pi_model;
pub use er_pi_rdl;
pub use er_pi_replica;
pub use er_pi_subjects;

//! Reproducing a reported production bug from its workload — the paper's
//! RQ1 scenario.
//!
//! A user of the OrbitDB-backed app filed issue #557 ("repo folder keeps
//! getting locked") but could not say which interleaving was in effect.
//! This example takes the recorded 24-event workload from the catalogue and
//! reproduces the bug under all three exploration modes, printing the
//! interleaving ER-π found so a developer can debug against it.
//!
//! Run with: `cargo run --release --example bug_hunt [bug-name]`

use er_pi::ExploreMode;
use er_pi_subjects::Bug;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "OrbitDB-5".into());
    let Some(bug) = Bug::by_name(&name) else {
        eprintln!("unknown bug {name}; pick one of:");
        for b in Bug::catalogue() {
            eprintln!("  {}", b.name);
        }
        std::process::exit(1);
    };

    println!(
        "{} (issue #{}, {} events, status: {}): hunting with a 10 000-interleaving cap",
        bug.name,
        bug.issue,
        bug.events(),
        bug.status
    );
    println!();

    for mode in [
        ExploreMode::ErPi,
        ExploreMode::Dfs,
        ExploreMode::Random { seed: 7 },
    ] {
        let repro = bug.reproduce(mode, 10_000);
        match repro.found_at {
            Some(n) => println!(
                "{:<5} reproduced after {:>5} interleavings (sim {:>9.3}s, wall {:>5}ms)",
                mode.to_string(),
                n,
                repro.sim_secs,
                repro.wall_ms
            ),
            None => println!(
                "{:<5} NOT reproduced within {} interleavings (sim {:>9.3}s)",
                mode.to_string(),
                repro.explored,
                repro.sim_secs
            ),
        }
    }

    println!();
    println!("pruning configuration ER-π used:");
    let config = bug.pruning_config();
    println!(
        "  developer-specified groups: {}",
        config.extra_groups.len()
    );
    println!(
        "  independence sets:          {}",
        config.independent_sets.len()
    );
    println!("  failed-ops rules:           {}", config.failed_ops.len());
    let stats = bug.prune_stats(10_000);
    println!(
        "  grouping collapses {} raw interleavings into each replayed one",
        stats.grouping_factor
    );
}

//! Quickstart: the paper's motivating example, end to end.
//!
//! Two residents of a town report issues into a replicated set; one of them
//! finally transmits the set to the municipality. Eventual consistency
//! guarantees the replicas converge — but nothing guarantees the
//! *transmission* happens after the last synchronization. ER-π replays
//! every interleaving of the recorded session and finds the ones that send
//! a stale, already-fixed issue to the municipality.
//!
//! Run with: `cargo run --example quickstart`

use er_pi::{ExploreMode, FailedOpsRule, PruningConfig, Session};
use er_pi_model::{ReplicaId, Value};
use er_pi_subjects::TownApp;

fn main() {
    let resident_a = ReplicaId::new(0);
    let resident_b = ReplicaId::new(1);

    // ER-π.Start(): record the application's workload through the proxies.
    let mut session = Session::new(TownApp::new(2));
    let mut events = [er_pi_model::EventId::new(0); 4];
    session.record(|app| {
        // Resident A reports an overturned trash bin.
        let ev1 = app.invoke(resident_a, "add", [Value::from("otb")]);
        app.sync(resident_a, resident_b, ev1);
        // Resident B reports a pothole.
        let ev2 = app.invoke(resident_b, "add", [Value::from("ph")]);
        app.sync(resident_b, resident_a, ev2);
        // The trash bin is fixed; Resident B removes the report.
        let ev3 = app.invoke(resident_b, "remove", [Value::from("otb")]);
        app.sync(resident_b, resident_a, ev3);
        // Resident A transmits the issue set to the municipality.
        let ev4 = app.external(resident_a, "transmit");
        events = [ev1, ev2, ev3, ev4];
    });

    let n = session.workload().unwrap().len();
    println!(
        "recorded {n} events — {}! = {} conceivable interleavings",
        n,
        { er_pi_model::factorial(n) }
    );

    // ER-π.End(assertions): replay every (pruned) interleaving.
    let report = session.replay(&TownApp::invariant()).unwrap();
    println!("\n[event grouping only] {}", report.summary());
    for v in report.violations.iter().take(3) {
        println!(
            "  violation in {}: {}",
            v.interleaving.as_ref().unwrap(),
            v.message
        );
    }
    println!(
        "  … {} violating interleavings in total",
        report.violations.len()
    );

    // A developer-provided failed-ops rule reproduces the paper's 19.
    let [ev1, ev2, ev3, ev4] = events;
    session.set_config(PruningConfig::default().with_failed_ops(FailedOpsRule {
        predecessors: vec![ev4],
        successors: vec![ev1, ev2, ev3],
    }));
    let report = session.replay(&TownApp::invariant()).unwrap();
    println!("\n[with failed-ops rule] {}", report.summary());

    // Compare against the exhaustive DFS baseline.
    session.set_mode(ExploreMode::Dfs);
    session.set_config(PruningConfig::default());
    let dfs = session.replay(&TownApp::invariant()).unwrap();
    println!("[DFS baseline]         {}", dfs.summary());
}

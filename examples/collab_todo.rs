//! A collaborative to-do app on the `crdts` collection — and the
//! sequential-ID misconception (#4) that bites it.
//!
//! The app mints to-do IDs as `max_seen_id + 1`. Two replicas creating
//! items concurrently both observe the same maximum and mint the same ID;
//! whether the clash manifests depends entirely on the interleaving.
//!
//! Run with: `cargo run --example collab_todo`

use er_pi::{Session, TestSuite};
use er_pi_model::{ReplicaId, Value};
use er_pi_subjects::{CrdtsModel, CrdtsState};

fn main() {
    let alice = ReplicaId::new(0);
    let bob = ReplicaId::new(1);

    let mut session = Session::new(CrdtsModel::new(2));
    session.set_keep_runs(true);
    session.record(|app| {
        // Alice creates a to-do; a periodic (untracked) sync follows.
        app.invoke(alice, "todo_create", [Value::from("buy milk")]);
        app.sync_untracked(alice, bob);
        // Bob and Alice create more items — in the *observed* run each sync
        // happened to land before the next creation, so everything looked
        // fine. Other interleavings race the minting.
        app.invoke(bob, "todo_create", [Value::from("walk dog")]);
        app.sync_untracked(bob, alice);
        app.invoke(alice, "todo_create", [Value::from("write paper")]);
        app.sync_untracked(alice, bob);
    });

    // The misconception-#4 test ("sequential IDs are always suitable…"):
    // after every interleaving, no two to-dos may share an ID. This is the
    // same detector `er_pi_subjects::detect_misconception` runs for the
    // Table 2 matrix.
    let suite = TestSuite::new().with_assertion(
        "todo-ids-unique",
        |ctx: &er_pi::CheckContext<'_, CrdtsState>| {
            for (i, state) in ctx.states.iter().enumerate() {
                let mut ids: Vec<i64> = state.todos.iter().map(|(id, _)| *id).collect();
                let before = ids.len();
                ids.dedup();
                if ids.len() != before {
                    return Err(format!(
                        "replica {i} holds to-dos with clashing IDs: {:?}",
                        state.todos
                    ));
                }
            }
            Ok(())
        },
    );
    let report = session.replay(&suite).unwrap();

    println!("{}", report.summary());
    match report.violations.first() {
        Some(v) => {
            println!(
                "misconception #4 exposed by {}:",
                v.interleaving.as_ref().unwrap()
            );
            println!("  {}", v.message);
            println!(
                "fix: use replica-unique IDs (random or (replica, counter) pairs)\n\
                 instead of max+1 — see AMC's guidance cited in the paper."
            );
        }
        None => println!("no clash found (unexpected — the seeding should expose one)"),
    }
}

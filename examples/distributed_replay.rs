//! The distributed-lock replay path and the runtime-constraints workflow.
//!
//! Two parts:
//!
//! 1. **Threaded replay** — replays one interleaving with one OS thread per
//!    replica, ordered by the Redis-style distributed lock (`er-pi-dlock`'s
//!    `OrderSequencer`), exactly as the paper's §4.3 describes, and checks
//!    it produces the same states as the fast inline executor.
//! 2. **Runtime constraints (workflow State 4)** — drops a JSON constraints
//!    file into a watched directory mid-session and shows ER-π absorbing it
//!    and shrinking the remaining problem space, plus the deductive-store
//!    persistence of the generated interleavings.
//!
//! Run with: `cargo run --example distributed_replay`

use er_pi::{
    FailedOpsRule, InlineExecutor, PruningConfig, Session, SystemModel, ThreadedExecutor, TimeModel,
};
use er_pi_model::{EventId, ReplicaId, Value};
use er_pi_subjects::TownApp;

fn main() {
    let a = ReplicaId::new(0);
    let b = ReplicaId::new(1);

    // Record the motivating workload once.
    let mut session = Session::new(TownApp::new(2));
    let mut ids = [EventId::new(0); 4];
    session.record(|app| {
        let ev1 = app.invoke(a, "add", [Value::from("otb")]);
        app.sync(a, b, ev1);
        let ev2 = app.invoke(b, "add", [Value::from("ph")]);
        app.sync(b, a, ev2);
        let ev3 = app.invoke(b, "remove", [Value::from("otb")]);
        app.sync(b, a, ev3);
        let ev4 = app.external(a, "transmit");
        ids = [ev1, ev2, ev3, ev4];
    });
    let workload = session.workload().unwrap().clone();

    // -- Part 1: threaded replay under the distributed lock -------------
    println!("== threaded replay under the distributed lock ==");
    let model = TownApp::new(2);
    let time = TimeModel::paper_setup();
    let il = workload.recorded_order();
    let inline = InlineExecutor::execute(&model, &workload, &il, &time);
    let threaded =
        ThreadedExecutor::execute(&model, &workload, &il, &time).expect("threads complete");
    let same = inline
        .states
        .iter()
        .zip(&threaded.states)
        .all(|(x, y)| model.observe(x) == model.observe(y));
    println!(
        "one thread per replica, {} events sequenced by the Redis-style lock",
        il.len()
    );
    println!("states identical to the inline executor: {same}");
    assert!(same);

    // -- Part 2: runtime constraints + persistence ----------------------
    println!("\n== runtime constraints (workflow State 4) ==");
    let dir = std::env::temp_dir().join(format!("er-pi-constraints-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("constraints dir");

    // The developer discovered (by watching early replays) that once the
    // transmission runs first, the rest of the order is irrelevant.
    let [ev1, ev2, ev3, ev4] = ids;
    let discovered = PruningConfig::default().with_failed_ops(FailedOpsRule {
        predecessors: vec![ev4],
        successors: vec![ev1, ev2, ev3],
    });
    std::fs::write(
        dir.join("discovered.json"),
        serde_json::to_string_pretty(&discovered).unwrap(),
    )
    .expect("write constraints");

    session.watch_constraints(&dir);
    session.set_persist(true);
    let report = session.replay(&TownApp::invariant()).unwrap();
    println!("{}", report.summary());
    println!("(19 instead of 24: the JSON constraint was ingested mid-replay)");

    let store = session.store().expect("persisted");
    println!(
        "deductive store holds {} interleavings over {} facts",
        store.len(),
        store.database().len()
    );
    // A Datalog query over the persisted interleavings: in how many does
    // the transmit precede the fix's synchronization?
    let mut store = store.clone();
    store.derive_precedes();
    let stale = store.interleavings_where_precedes(ev4, ev3);
    println!(
        "datalog query: transmit-before-remove holds in {} of the persisted orders",
        stale.len()
    );

    let _ = std::fs::remove_dir_all(&dir);
}

//! State-clone cost across the five subject models — the number that
//! justifies the incremental executor's default snapshot budget.
//!
//! Every checkpoint the [`CheckpointTrie`] caches is one deep clone of the
//! replica states (`Vec<State>`), and every cache hit is another clone on
//! the way out. The trie is only a win while cloning a prefix snapshot is
//! cheaper than re-applying the skipped prefix events. These benchmarks
//! measure that clone for a representative fully-populated state of each
//! subject: the four catalogue subjects via [`Bug::clone_probe`] (final
//! states of the bug's recorded order) and the `crdts` collection via a
//! hand-built workload, since Table 1 has no crdts bug.
//!
//! Observed scale: every subject's full-workload snapshot clones in well
//! under a microsecond and charges under a kilobyte of budget, so the
//! 64 MiB `DEFAULT_CACHE_BUDGET` keeps a whole 10k-interleaving campaign
//! resident (see DESIGN.md §10).
//!
//! [`CheckpointTrie`]: er_pi::CheckpointTrie

use criterion::{criterion_group, criterion_main, Criterion};

use er_pi::{InlineExecutor, SystemModel, TimeModel};
use er_pi_model::{ReplicaId, Value, Workload};
use er_pi_subjects::{Bug, CrdtsModel};

fn catalogue_probes(c: &mut Criterion) {
    let mut group = c.benchmark_group("state-clone");
    // One representative bug per catalogue subject, in Table 1 order.
    for name in ["Roshi-1", "OrbitDB-1", "ReplicaDB-1", "Yorkie-1"] {
        let probe = Bug::by_name(name).expect("catalogue bug").clone_probe();
        group.bench_function(name, |b| b.iter(|| probe.clone_states()));
    }
    group.finish();
}

fn crdts_probe(c: &mut Criterion) {
    // The fifth subject: a populated crdts-collection state (OR-set and
    // RGA entries across three replicas).
    let r = ReplicaId::new;
    let mut w = Workload::builder();
    for i in 0..8i64 {
        w.update(r((i % 3) as u16), "set_add", [Value::from(i)]);
        w.update(r((i % 3) as u16), "list_push", [Value::from(i)]);
    }
    let w: Workload = w.build();
    let model = CrdtsModel::new(3);
    let exec = InlineExecutor::execute(&model, &w, &w.recorded_order(), &TimeModel::paper_setup());
    let states = exec.states;

    let mut group = c.benchmark_group("state-clone");
    group.bench_function("crdts", |b| {
        b.iter(|| {
            let cloned = states.clone();
            cloned
                .iter()
                .map(|s| model.state_size_hint(s))
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, catalogue_probes, crdts_probe);
criterion_main!(benches);

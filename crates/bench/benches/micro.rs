//! Criterion micro-benchmarks backing the ablation discussion in
//! EXPERIMENTS.md: the cost of interleaving generation, the four pruning
//! filters, RDL operations, distributed-lock operations, the datalog store,
//! and end-to-end interleaving replay.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use er_pi::{ExploreMode, Session, TestSuite};
use er_pi_datalog::{atom, fact, var, Database, InterleavingStore, Rule};
use er_pi_dlock::{OrderSequencer, RedisLite, Redlock};
use er_pi_interleave::{
    failed_ops_canonical, independence_canonical, replica_specific_canonical, DfsExplorer,
    ErPiExplorer, FailedOpsRule, Permutations, PruningConfig, RandomExplorer,
};
use er_pi_model::{EventId, ReplicaId, Value, Workload};
use er_pi_rdl::{DeltaSync, OrSet, Rga, StateCrdt};
use er_pi_subjects::{Bug, TownApp};

fn r(i: u16) -> ReplicaId {
    ReplicaId::new(i)
}

/// A 10-event, two-replica workload with three sync pairs.
fn bench_workload() -> Workload {
    let mut w = Workload::builder();
    let mut last = None;
    for i in 0..4i64 {
        last = Some(w.update(r((i % 2) as u16), "op", [Value::from(i)]));
    }
    for _ in 0..3 {
        w.sync_split(r(0), r(1), last);
    }
    w.build()
}

fn interleaving_generation(c: &mut Criterion) {
    let w = bench_workload();
    let mut group = c.benchmark_group("interleaving-generation");
    group.bench_function("permutations-1k", |b| {
        b.iter(|| Permutations::new(10).take(1000).count())
    });
    group.bench_function("dfs-1k", |b| {
        b.iter(|| DfsExplorer::new(&w).take(1000).count())
    });
    group.bench_function("random-1k", |b| {
        b.iter(|| RandomExplorer::new(&w, 7).take(1000).count())
    });
    group.bench_function("erpi-grouped-1k", |b| {
        let config = PruningConfig::default();
        b.iter(|| ErPiExplorer::new(&w, &config).take(1000).count())
    });
    group.finish();
}

fn pruning_filters(c: &mut Criterion) {
    let w = bench_workload();
    let order: Vec<EventId> = w.event_ids().collect();
    let independent = vec![EventId::new(0), EventId::new(1), EventId::new(2)];
    let rule = FailedOpsRule {
        predecessors: vec![EventId::new(0)],
        successors: vec![EventId::new(1), EventId::new(2)],
    };
    let mut group = c.benchmark_group("pruning-filters");
    group.bench_function("replica-specific", |b| {
        b.iter(|| replica_specific_canonical(&w, &order, r(1)))
    });
    group.bench_function("independence", |b| {
        b.iter(|| independence_canonical(&order, &independent, &[]))
    });
    group.bench_function("failed-ops", |b| {
        b.iter(|| failed_ops_canonical(&order, &rule))
    });
    group.finish();
}

fn rdl_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("rdl");
    group.bench_function("orset-insert", |b| {
        b.iter_batched(
            || OrSet::new(r(0)),
            |mut set| {
                for i in 0..64 {
                    set.insert(i);
                }
                set
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("orset-sync-64", |b| {
        let mut source = OrSet::new(r(0));
        for i in 0..64 {
            source.insert(i);
        }
        b.iter_batched(
            || OrSet::new(r(1)),
            |mut sink| {
                sink.sync_from(&source);
                sink
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("rga-push-64", |b| {
        b.iter_batched(
            || Rga::new(r(0)),
            |mut list| {
                for i in 0..64 {
                    list.push(i);
                }
                list
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("rga-merge-64", |b| {
        let mut a = Rga::new(r(0));
        let mut bb = Rga::new(r(1));
        for i in 0..32 {
            a.push(i);
            bb.push(100 + i);
        }
        b.iter_batched(
            || a.clone(),
            |mut merged| {
                merged.merge(&bb);
                merged
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn dlock(c: &mut Criterion) {
    let mut group = c.benchmark_group("dlock");
    group.bench_function("acquire-release", |b| {
        let lock = Redlock::single(RedisLite::new(), "bench");
        b.iter(|| {
            let guard = lock.try_acquire().expect("uncontended");
            lock.release(&guard)
        })
    });
    group.bench_function("sequencer-64-tickets", |b| {
        b.iter_batched(
            || OrderSequencer::new(RedisLite::new(), "bench-seq"),
            |seq| {
                for t in 0..64 {
                    seq.run_in_order(t, || ());
                }
                seq
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn datalog(c: &mut Criterion) {
    let mut group = c.benchmark_group("datalog");
    group.bench_function("store-100-interleavings", |b| {
        let w = bench_workload();
        let ils: Vec<_> = DfsExplorer::new(&w).take(100).collect();
        b.iter_batched(
            || InterleavingStore::new(&w),
            |mut store| {
                store.store_all(ils.iter());
                store
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("transitive-closure-30", |b| {
        b.iter_batched(
            || {
                let mut db = Database::new();
                for i in 0..30i64 {
                    db.insert(fact("edge", [i, i + 1]));
                }
                db
            },
            |mut db| {
                let rules = vec![
                    Rule::new(atom("path", [var("X"), var("Y")]))
                        .when(atom("edge", [var("X"), var("Y")])),
                    Rule::new(atom("path", [var("X"), var("Z")]))
                        .when(atom("path", [var("X"), var("Y")]))
                        .when(atom("edge", [var("Y"), var("Z")])),
                ];
                er_pi_datalog::evaluate(&rules, &mut db);
                db
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay");
    group.sample_size(20);
    group.bench_function("town-24-interleavings", |b| {
        b.iter_batched(
            || {
                let mut session = Session::new(TownApp::new(2));
                session.record(|sys| {
                    let ev1 = sys.invoke(r(0), "add", [Value::from("otb")]);
                    sys.sync(r(0), r(1), ev1);
                    let ev2 = sys.invoke(r(1), "add", [Value::from("ph")]);
                    sys.sync(r(1), r(0), ev2);
                    let ev3 = sys.invoke(r(1), "remove", [Value::from("otb")]);
                    sys.sync(r(1), r(0), ev3);
                    sys.external(r(0), "transmit");
                });
                session
            },
            |mut session| session.replay(&TestSuite::new()).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("roshi1-reproduction", |b| {
        let bug = Bug::by_name("Roshi-1").unwrap();
        b.iter(|| bug.reproduce(ExploreMode::ErPi, 1000))
    });
    group.finish();
}

criterion_group!(
    benches,
    interleaving_generation,
    pruning_filters,
    rdl_ops,
    dlock,
    datalog,
    replay
);
criterion_main!(benches);

//! Shared helpers for the benchmark harness binaries.
//!
//! Each binary regenerates one table or figure of the paper's evaluation:
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `motivating` | §2.3 / §3.1–§3.5 worked examples (5040 → 24 → 19, 56×, 23, 5, 5) |
//! | `table1` | Table 1 — the bug benchmark inventory |
//! | `table2` | Table 2 — misconception detection matrix |
//! | `fig8` | Figures 8a/8b — interleavings and time to reproduce each bug |
//! | `fig8_auto` | Figure 8 variant — hand-declared vs auto-derived independence (JSON) |
//! | `fig9` | Figure 9 — per-algorithm pruning contributions |
//! | `fig10` | Figure 10 — the succeed-or-crash micro-benchmark |
//! | `fig_parallel` | Replay-pool wall-clock speedup at 1/2/4/8 workers (JSON) |
//! | `fig_prefix` | Prefix-sharing incremental replay: events applied, scratch vs incremental (JSON) |
//! | `fig_telemetry` | Telemetry overhead (NullSink vs detached) and trace-event schema (JSON) |
//! | `fig_faults` | Fault-schedule exploration: fault-space size vs pruned replays (JSON) |
//! | `fig_observability` | Metrics-registry overhead (attached vs detached) and forensic-bundle determinism (JSON) |
//!
//! Two operator-facing tools ride along with the figure binaries:
//! `er-pi-explain` prints the deterministic forensic bundle for a
//! catalogue bug's violation (the same bytes the campaign daemon serves
//! at `/campaigns/:id/violations/:n`), and `er-pi-promlint` lints a
//! Prometheus text exposition read from stdin (CI pipes the daemon's
//! `GET /metrics` scrape through it).

/// The seed used for the Random exploration mode across all experiments.
/// Fixed for reproducibility; any seed produces the same qualitative shape
/// (see `EXPERIMENTS.md`).
pub const RAND_SEED: u64 = 7;

/// The paper's exploration cap: 10 000 interleavings per bug and mode.
pub const CAP: usize = 10_000;

/// Renders a log₁₀-scaled ASCII bar for counts in `1..=cap`.
///
/// ```
/// use er_pi_bench::log_bar;
/// assert_eq!(log_bar(1, 10_000, 40), "");
/// assert_eq!(log_bar(10_000, 10_000, 40).chars().count(), 40);
/// assert!(log_bar(100, 10_000, 40).chars().count() < 40);
/// ```
pub fn log_bar(value: usize, cap: usize, width: usize) -> String {
    if value <= 1 {
        return String::new();
    }
    let scale = (value as f64).log10() / (cap as f64).log10();
    let n = ((scale * width as f64).round() as usize).min(width);
    "█".repeat(n)
}

/// Formats a reproduction result: the count, or `↑` for "not reproduced
/// within the cap" (the paper's marker).
pub fn fmt_found(found_at: Option<usize>) -> String {
    match found_at {
        Some(n) => n.to_string(),
        None => "↑".into(),
    }
}

/// Geometric mean of a non-empty slice of ratios.
///
/// ```
/// use er_pi_bench::geomean;
/// assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
/// ```
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of an empty slice");
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_grow_with_magnitude() {
        let b10 = log_bar(10, 10_000, 40);
        let b100 = log_bar(100, 10_000, 40);
        let b10k = log_bar(10_000, 10_000, 40);
        assert!(b10.chars().count() < b100.chars().count());
        assert!(b100.chars().count() < b10k.chars().count());
    }

    #[test]
    fn fmt_found_uses_the_paper_marker() {
        assert_eq!(fmt_found(Some(42)), "42");
        assert_eq!(fmt_found(None), "↑");
    }

    #[test]
    fn geomean_of_identity() {
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }
}

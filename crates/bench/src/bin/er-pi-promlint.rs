//! `er-pi-promlint` — Prometheus text-exposition linter for CI.
//!
//! Reads an exposition from stdin (as scraped from the campaign daemon's
//! `GET /metrics` with `Accept: text/plain`) and checks it against the
//! subset of the text format the registry emits: `HELP`/`TYPE` comment
//! pairs before each family, one-line samples with escaped label values,
//! histograms with cumulative `_bucket` series capped by `le="+Inf"` and
//! matching `_sum`/`_count`. Exits 0 when clean, 1 with a diagnostic on
//! stderr otherwise.
//!
//! Usage: `curl -s -H 'Accept: text/plain' :7420/metrics | er-pi-promlint`

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut exposition = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut exposition) {
        eprintln!("er-pi-promlint: reading stdin: {e}");
        return ExitCode::FAILURE;
    }
    match er_pi::telemetry::lint_exposition(&exposition) {
        Ok(()) => {
            let families = exposition
                .lines()
                .filter(|l| l.starts_with("# TYPE "))
                .count();
            println!("OK: {families} metric families");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("er-pi-promlint: {e}");
            ExitCode::FAILURE
        }
    }
}

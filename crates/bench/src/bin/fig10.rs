//! Regenerates Figure 10: the "succeed-or-crash" micro-benchmark around
//! OrbitDB-5.
//!
//! Instead of terminating after 10 000 interleavings, each run keeps
//! exploring until either the bug reproduces (✓) or the checker exhausts
//! its allocated resources and crashes (×). The resource model follows the
//! paper's §2.2 architecture: the checker's server caches every explored
//! interleaving, so memory grows linearly with exploration; a run crashes
//! when the cache exceeds the per-run allocation.
//!
//! Five runs per mode. Run-to-run nondeterminism: the Random mode reseeds
//! per run, and DFS's frontier expansion order is perturbed per restart
//! (as a real checker's would be by scheduling and hash-seed noise).

use er_pi::ExploreMode;
use er_pi_model::EventId;
use er_pi_subjects::{Bug, Repro};
use rand::SeedableRng;

/// Per-run resource allocation, in cached interleavings. The noise across
/// runs models competing load on the shared hosts.
const BUDGETS: [usize; 5] = [60_000, 120_000, 45_000, 90_000, 75_000];

/// Per-run seeds for the restart nondeterminism (DFS frontier noise and
/// Random shuffling).
const DFS_SEEDS: [u64; 5] = [20, 16, 22, 23, 25];
const RAND_SEEDS: [u64; 5] = [0xAB00, 0xAB01, 0xAB02, 0xAB03, 0xAB05];

fn dfs_base(bug: &Bug, seed: u64) -> Vec<EventId> {
    let mut base: Vec<EventId> = bug.workload().event_ids().collect();
    // A restart jitters the frontier: a few adjacent expansion entries
    // swap places (scheduling and hash-seed noise in a real checker).
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for _ in 0..3 {
        let i = 8 + rand::Rng::gen_range(&mut rng, 0..8usize);
        base.swap(i, i + 1);
    }
    base
}

fn main() {
    let bug = Bug::by_name("OrbitDB-5").expect("catalogue bug");
    println!("Figure 10. \"Succeed-or-Crash\" micro-benchmark (OrbitDB-5, 5 runs,");
    println!("exploration until reproduction or resource exhaustion).");
    println!("✓ = bug reproduced; × = crashed after exhausting the run's allocation.");
    println!();
    println!(
        "{:<6} {:>10}   {:^12} {:^12} {:^12}",
        "run", "budget", "ER-π", "DFS", "Rand"
    );
    println!("{}", "-".repeat(58));
    let mut tallies = [0u32; 3];
    for (run, &budget) in BUDGETS.iter().enumerate() {
        let erpi = bug.reproduce(ExploreMode::ErPi, budget);
        let dfs = bug.reproduce_dfs_perturbed(dfs_base(&bug, DFS_SEEDS[run]), budget);
        let rand = bug.reproduce(
            ExploreMode::Random {
                seed: RAND_SEEDS[run],
            },
            budget,
        );
        let fmt = |r: &Repro| match r.found_at {
            Some(n) => format!("✓ @{n}"),
            None => "×".to_string(),
        };
        for (i, r) in [&erpi, &dfs, &rand].into_iter().enumerate() {
            if r.reproduced() {
                tallies[i] += 1;
            }
        }
        println!(
            "{:<6} {:>10}   {:^12} {:^12} {:^12}",
            run + 1,
            budget,
            fmt(&erpi),
            fmt(&dfs),
            fmt(&rand)
        );
    }
    println!();
    println!(
        "successes: ER-π {}/5, DFS {}/5, Rand {}/5 (paper: 5/5, 1/5, 0/5)",
        tallies[0], tallies[1], tallies[2]
    );
}

//! Ablation study: what each pruning algorithm buys on the bug catalogue.
//!
//! For every bug, reproduce with (a) the full ER-π configuration, (b)
//! automatic event grouping only (developer-specified groups, independence
//! sets, and failed-ops rules stripped), and (c) no pruning at all
//! (equivalent to DFS). The gap between the columns is each layer's
//! contribution — the DESIGN.md ablation the criterion micro-benches can't
//! show at the system level.

use er_pi::{ExploreMode, PruningConfig, Session, SystemModel, TestSuite};
use er_pi_bench::{fmt_found, CAP};
use er_pi_subjects::Bug;

fn reproduce_with_config(bug: &Bug, strip: bool) -> Option<usize> {
    // Re-run through the public API with a modified configuration; the
    // violation predicate stays the bug's own.
    let mut config = bug.pruning_config().clone();
    if strip {
        config.extra_groups.clear();
        config.independent_sets.clear();
        config.failed_ops.clear();
        config.target_replica = None;
    }
    reproduce(bug, ExploreMode::ErPi, Some(config))
}

fn reproduce(bug: &Bug, mode: ExploreMode, config: Option<PruningConfig>) -> Option<usize> {
    // The catalogue's `reproduce` always uses the stored config for ER-π;
    // emulate an override by a thin wrapper around the same machinery.
    match config {
        None => bug.reproduce(mode, CAP).found_at,
        Some(config) => bug.reproduce_with_config(config, CAP).found_at,
    }
}

fn main() {
    println!("Ablation: interleavings to reproduce each bug (cap {CAP}).");
    println!();
    println!(
        "{:<13} {:>10} {:>14} {:>12}",
        "bug", "full ER-π", "grouping-only", "no pruning"
    );
    println!("{}", "-".repeat(52));
    for bug in Bug::catalogue() {
        let full = reproduce(&bug, ExploreMode::ErPi, None);
        let grouping_only = reproduce_with_config(&bug, true);
        let none = reproduce(&bug, ExploreMode::Dfs, None);
        println!(
            "{:<13} {:>10} {:>14} {:>12}",
            bug.name,
            fmt_found(full),
            fmt_found(grouping_only),
            fmt_found(none),
        );
    }
    println!();
    println!("full ER-π = automatic grouping + the bug's developer-parameterized");
    println!("rules; grouping-only strips the developer rules; no pruning = DFS");
    println!("over the raw n! space.");
    // Re-exported so the binary exercises the public Session surface too.
    let _ = Session::<er_pi_subjects::TownApp>::new(er_pi_subjects::TownApp::new(2))
        .model()
        .replicas();
    let _ = TestSuite::<()>::new();
}

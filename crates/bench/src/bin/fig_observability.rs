//! Observability overhead and forensic-determinism benchmark.
//!
//! Two questions, answered in one JSON document:
//!
//! * **Is the metrics registry write-only and cheap?** A catalogue subset
//!   is replayed detached and with a [`SessionMetrics`] handle exporting
//!   into a shared [`Registry`] — min-of-k wall time each. Attached
//!   reports are diffed against the detached reference (`divergence` must
//!   be null: the registry never touches the report), and the CI
//!   `observability-smoke` job fails when the worst per-bug overhead
//!   exceeds 10% of the detached baseline — a regression backstop set
//!   above the ±6% run-to-run noise floor a null experiment measures on
//!   single-core CI runners, catching accidental per-run locking or
//!   allocation rather than claiming sub-noise precision.
//! * **Are forensic bundles deterministic?** Each bug's first violation is
//!   explained twice; the two bundles must be byte-identical under
//!   [`ForensicBundle::canonical_json`](er_pi::ForensicBundle::canonical_json),
//!   and the document records the bundle size for drift tracking.
//!
//! Usage: `fig_observability [--cap N] [--repeats K] [--pretty]`

use std::sync::Arc;
use std::time::Instant;

use er_pi::telemetry::Registry;
use er_pi::{Report, SessionMetrics};
use er_pi_subjects::{Bug, ReplayOptions};
use serde::Serialize;

const DEFAULT_CAP: usize = 5_000;
const DEFAULT_REPEATS: usize = 5;

/// The overhead subset: one bug per subject family, covering both digest
/// sources and both executor paths.
const SUBSET: [&str; 4] = ["Roshi-1", "OrbitDB-2", "ReplicaDB-1", "Yorkie-1"];

fn replay_once(bug: &Bug, cap: usize, metrics: Option<SessionMetrics>) -> (Report, u128) {
    let opts = ReplayOptions {
        cap,
        metrics,
        ..ReplayOptions::default()
    };
    let started = Instant::now();
    let report = bug.replay_report_opts(&opts);
    (report, started.elapsed().as_micros())
}

struct Measurement {
    detached: Report,
    attached: Report,
    detached_min_us: u128,
    attached_min_us: u128,
    /// Median of the paired per-repeat ratios — the gated number.
    median_overhead_frac: f64,
}

/// Paired interleaved measurement: each repeat runs the detached and the
/// attached configuration back-to-back, so machine drift (CI neighbours,
/// thermal throttling) lands on both arms alike instead of biasing
/// whichever phase it overlaps, and the per-repeat ratio cancels it. The
/// median of those ratios is the robust overhead estimate; the min-of-k
/// walls are kept for the record.
fn measure(bug: &Bug, cap: usize, repeats: usize, name: &'static str) -> Measurement {
    let mut best_detached = u128::MAX;
    let mut best_attached = u128::MAX;
    let mut ratios = Vec::with_capacity(repeats);
    let mut last = None;
    for repeat in 0..repeats {
        // A fresh registry per repeat keeps every run's first-touch
        // registration cost inside the measurement, like a fresh campaign.
        let registry = Arc::new(Registry::new());
        let metrics = SessionMetrics::new(&registry, &[("campaign", name)]);
        // Alternate which arm goes first: on a thermally-throttling host
        // the second slot of a pair is systematically slower, and a fixed
        // order would book that as registry overhead.
        let (detached, detached_us, attached, attached_us) = if repeat % 2 == 0 {
            let (d, d_us) = replay_once(bug, cap, None);
            let (a, a_us) = replay_once(bug, cap, Some(metrics));
            (d, d_us, a, a_us)
        } else {
            let (a, a_us) = replay_once(bug, cap, Some(metrics));
            let (d, d_us) = replay_once(bug, cap, None);
            (d, d_us, a, a_us)
        };
        best_detached = best_detached.min(detached_us);
        best_attached = best_attached.min(attached_us);
        ratios.push(attached_us as f64 / detached_us.max(1) as f64 - 1.0);
        last = Some((detached, attached));
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let (detached, attached) = last.expect("repeats >= 1");
    Measurement {
        detached,
        attached,
        detached_min_us: best_detached,
        attached_min_us: best_attached,
        median_overhead_frac: ratios[ratios.len() / 2],
    }
}

#[derive(Serialize)]
struct Overhead {
    bug: &'static str,
    explored: usize,
    detached_min_us: u128,
    attached_min_us: u128,
    /// Median of the paired per-repeat `(attached - detached) / detached`
    /// ratios; negative values are measurement noise.
    overhead_frac: f64,
    /// `Report::diff` against the detached reference (must be null).
    divergence: Option<String>,
}

#[derive(Serialize)]
struct Bundle {
    bug: &'static str,
    steps: usize,
    bundle_bytes: usize,
    /// Two assemblies of the same bundle were byte-identical.
    deterministic: bool,
}

#[derive(Serialize)]
struct Document {
    cap: usize,
    repeats: usize,
    overhead: Vec<Overhead>,
    /// The headline number the CI job gates on: worst per-bug registry
    /// overhead as a fraction of the detached baseline. CI ceiling: 0.10
    /// (a backstop above the measured noise floor, not a precision claim).
    max_overhead_frac: f64,
    /// True iff every divergence field above is null.
    all_reports_identical: bool,
    bundles: Vec<Bundle>,
    /// True iff every bundle re-assembled byte-identically.
    all_bundles_deterministic: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let cap: usize = get("--cap")
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CAP)
        .max(1);
    let repeats: usize = get("--repeats")
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_REPEATS)
        .max(1);
    let pretty = args.iter().any(|a| a == "--pretty");

    let mut overhead = Vec::new();
    for name in SUBSET {
        let bug = Bug::by_name(name).expect("catalogue bug");
        let m = measure(&bug, cap, repeats, name);
        overhead.push(Overhead {
            bug: bug.name,
            explored: m.detached.explored,
            detached_min_us: m.detached_min_us,
            attached_min_us: m.attached_min_us,
            overhead_frac: m.median_overhead_frac,
            divergence: m.detached.diff(&m.attached),
        });
    }

    let mut bundles = Vec::new();
    for bug in Bug::catalogue() {
        let report = bug.replay_report_opts(&ReplayOptions {
            cap: 10_000,
            stop_on_first_violation: true,
            ..ReplayOptions::default()
        });
        let violation = report
            .violations
            .first()
            .unwrap_or_else(|| panic!("{}: catalogue bug must reproduce", bug.name));
        let first = bug
            .explain(violation)
            .unwrap_or_else(|| panic!("{}: per-run violation must explain", bug.name));
        let second = bug.explain(violation).expect("second assembly");
        let bytes = first.canonical_json();
        bundles.push(Bundle {
            bug: bug.name,
            steps: first.steps.len(),
            bundle_bytes: bytes.len(),
            deterministic: bytes == second.canonical_json(),
        });
    }

    let document = Document {
        cap,
        repeats,
        max_overhead_frac: overhead
            .iter()
            .map(|o| o.overhead_frac)
            .fold(f64::MIN, f64::max),
        all_reports_identical: overhead.iter().all(|o| o.divergence.is_none()),
        all_bundles_deterministic: bundles.iter().all(|b| b.deterministic),
        overhead,
        bundles,
    };
    let rendered = if pretty {
        serde_json::to_string_pretty(&document)
    } else {
        serde_json::to_string(&document)
    }
    .expect("document serializes");
    println!("{rendered}");
}

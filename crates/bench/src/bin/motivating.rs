//! Regenerates the paper's worked pruning examples:
//!
//! * §2.3/§3.1 — the motivating town-issues app: 7 events, 5040 raw
//!   interleavings, 24 after event grouping, 19 after the failed-ops rule
//!   (a 265× reduction), and the invariant violations ER-π finds;
//! * §3.2 — event grouping on Figure 3's 8-event workload: 56×;
//! * §3.3 — replica-specific pruning on Figure 4: 4! − 1 = 23 merged;
//! * §3.4 — event independence on Figure 5: 3! − 1 = 5 merged;
//! * §3.5 — failed ops on Figure 6: 3! − 1 = 5 merged.

use er_pi::{ExploreMode, FailedOpsRule, PruningConfig, Session};
use er_pi_interleave::{group_events, DfsExplorer, ErPiExplorer};
use er_pi_model::{reduction_factor, ReplicaId, Value, Workload};
use er_pi_subjects::TownApp;

fn r(i: u16) -> ReplicaId {
    ReplicaId::new(i)
}

fn section_motivating() {
    println!("== §2.3 / §3.1: the motivating example ==");
    let mut session = Session::new(TownApp::new(2));
    let mut ids = [er_pi_model::EventId::new(0); 4];
    session.record(|sys| {
        let ev1 = sys.invoke(r(0), "add", [Value::from("otb")]);
        sys.sync(r(0), r(1), ev1);
        let ev2 = sys.invoke(r(1), "add", [Value::from("ph")]);
        sys.sync(r(1), r(0), ev2);
        let ev3 = sys.invoke(r(1), "remove", [Value::from("otb")]);
        sys.sync(r(1), r(0), ev3);
        let ev4 = sys.external(r(0), "transmit");
        ids = [ev1, ev2, ev3, ev4];
    });
    let workload = session.workload().unwrap().clone();
    println!("events recorded:            {}", workload.len());
    println!("raw interleavings (7!):     {}", workload.total_orders());

    let report = session.replay(&TownApp::invariant()).unwrap();
    println!(
        "after event grouping:       {} ({} violations found)",
        report.explored,
        report.violations.len()
    );

    let [ev1, ev2, ev3, ev4] = ids;
    session.set_config(PruningConfig::default().with_failed_ops(FailedOpsRule {
        predecessors: vec![ev4],
        successors: vec![ev1, ev2, ev3],
    }));
    let report = session.replay(&TownApp::invariant()).unwrap();
    println!(
        "after failed-ops rule:      {} ({} violations found)",
        report.explored,
        report.violations.len()
    );
    println!(
        "problem-space reduction:    {}x (paper: 265x)",
        reduction_factor(workload.total_orders(), report.explored as u128).unwrap()
    );

    // And the baseline cost of finding the first violation:
    let mut dfs_session = Session::new(TownApp::new(2));
    dfs_session.set_workload(workload);
    dfs_session.set_mode(ExploreMode::Dfs);
    dfs_session.set_stop_on_first_violation(true);
    let dfs = dfs_session.replay(&TownApp::invariant()).unwrap();
    println!(
        "first violation at:         ER-π #{} vs DFS #{}",
        report.first_violation_at.map(|i| i + 1).unwrap(),
        dfs.first_violation_at.map(|i| i + 1).unwrap(),
    );
    println!();
}

fn section_grouping() {
    println!("== §3.2: event grouping (Figure 3) ==");
    let mut w = Workload::builder();
    let u1 = w.update(r(0), "op1", [Value::from(1)]);
    w.update(r(0), "op2", [Value::from(2)]);
    w.sync_split(r(0), r(1), Some(u1));
    let u3 = w.update(r(1), "op3", [Value::from(3)]);
    w.update(r(1), "op4", [Value::from(4)]);
    w.sync_split(r(1), r(0), Some(u3));
    let w = w.build();
    let grouped = group_events(&w, &PruningConfig::default());
    println!("events: {}   raw: {} (8!)", w.len(), w.total_orders());
    println!(
        "units after grouping: {}   orders: {} (6!)",
        grouped.len(),
        grouped.total_orders()
    );
    println!(
        "reduction: {}x (paper: 56x)",
        reduction_factor(w.total_orders(), grouped.total_orders()).unwrap()
    );
    println!();
}

fn section_replica_specific() {
    println!("== §3.3: replica-specific pruning (Figure 4) ==");
    let mut w = Workload::builder();
    let base = w.update(r(0), "base", [Value::from(0)]);
    w.sync_pair(r(0), r(1), base);
    for (name, val) in [("p", 1), ("q", 2), ("r", 3), ("s", 4)] {
        w.update(r(0), name, [Value::from(val)]);
    }
    let w = w.build();
    let config = PruningConfig::default().with_target_replica(r(1));
    let mut explorer = ErPiExplorer::new(&w, &config);
    let emitted = explorer.by_ref().count();
    let baseline = ErPiExplorer::new(&w, &PruningConfig::default()).count();
    println!("orders without the target-replica filter: {baseline}");
    println!("orders exploring replica B only:          {emitted}");
    println!(
        "pruned by canonicalizing the foreign tail: {} (paper merges 4!-1 = 23 per class)",
        baseline - emitted
    );
    println!();
}

fn section_independence() {
    println!("== §3.4: event independence (Figure 5) ==");
    let mut w = Workload::builder();
    let a = w.update(r(0), "set_idx", [Value::from(0)]);
    let b = w.update(r(1), "set_idx", [Value::from(5)]);
    let c = w.update(r(2), "set_idx", [Value::from(9)]);
    let w = w.build();
    let all = DfsExplorer::new(&w).count();
    let config = PruningConfig::default().with_independent_set(vec![a, b, c]);
    let pruned = ErPiExplorer::new(&w, &config).count();
    println!("orders of the three independent list updates: {all} (3!)");
    println!("after independence pruning:                   {pruned}");
    println!("merged: {} (paper: 3!-1 = 5)", all - pruned);
    println!();
}

fn section_failed_ops() {
    println!("== §3.5: failed ops (Figure 6) ==");
    let mut w = Workload::builder();
    let adds: Vec<_> = ["alpha", "beta", "gamma"]
        .iter()
        .map(|e| w.update(r(0), "add", [Value::from(*e)]))
        .collect();
    let f1 = w.update(r(1), "remove", [Value::from("epsilon")]);
    let f2 = w.update(r(1), "add", [Value::from("alpha")]);
    let f3 = w.update(r(1), "remove", [Value::from("sigma")]);
    let w = w.build();
    let rule = FailedOpsRule {
        predecessors: adds,
        successors: vec![f1, f2, f3],
    };
    let baseline = ErPiExplorer::new(&w, &PruningConfig::default()).count();
    let config = PruningConfig::default().with_failed_ops(rule);
    let mut explorer = ErPiExplorer::new(&w, &config);
    let pruned = explorer.by_ref().count();
    println!("orders without the rule: {baseline}");
    println!("orders with the rule:    {pruned}");
    println!(
        "merged: {} (paper's example merges 3!-1 = 5 per fired class)",
        explorer.stats().failed_ops_rejected
    );
    println!();
}

fn main() {
    section_motivating();
    section_grouping();
    section_replica_specific();
    section_independence();
    section_failed_ops();
}

//! Prefix-sharing incremental replay: events-applied and wall-clock for
//! scratch vs incremental executors at 1/2/4/8 workers.
//!
//! Two data sets, emitted as one JSON document:
//!
//! * the §6.3-capped workload: the motivating town app extended to 10
//!   events, DFS-enumerated and capped at the paper's 10 000
//!   interleavings. Lexicographically adjacent orders share long prefixes
//!   (average divergent suffix ≈ e ≈ 2.72 events regardless of N), so
//!   the incremental executor applies roughly `explored · e` events where
//!   the scratch executor applies `explored · N` — the headline
//!   `reduction_at_1` must stay ≥ 3× (the CI `bench-smoke` job fails
//!   below 2×);
//! * the 12-bug catalogue at 1/2/4 workers, where each incremental report
//!   is diffed against the scratch reference — `Report::diff` must be
//!   `null` everywhere, or the timing numbers are meaningless.
//!
//! Usage: `fig_prefix [--cap N] [--catalogue-cap N] [--pretty]`

use std::time::Instant;

use er_pi::{ExploreMode, Report, Session};
use er_pi_model::{ReplicaId, Value};
use er_pi_subjects::{Bug, TownApp};
use serde::Serialize;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const DEFAULT_CATALOGUE_CAP: usize = 2_000;
const CATALOGUE_WORKERS: [usize; 3] = [1, 2, 4];

/// Records the town workload extended to 10 events: the §2.3 recording
/// plus a second add/sync round and a remove, keeping the final transmit.
fn town_session(cap: usize) -> Session<TownApp> {
    let mut session = Session::new(TownApp::new(2));
    let r = ReplicaId::new;
    session.record(|sys| {
        let ev1 = sys.invoke(r(0), "add", [Value::from("otb")]);
        sys.sync(r(0), r(1), ev1);
        let ev2 = sys.invoke(r(1), "add", [Value::from("ph")]);
        sys.sync(r(1), r(0), ev2);
        let ev3 = sys.invoke(r(1), "remove", [Value::from("otb")]);
        sys.sync(r(1), r(0), ev3);
        let ev4 = sys.invoke(r(0), "add", [Value::from("pl")]);
        sys.sync(r(0), r(1), ev4);
        sys.invoke(r(1), "remove", [Value::from("ph")]);
        sys.external(r(0), "transmit");
    });
    // DFS enumerates the 10! space lexicographically; the cap keeps the
    // paper's 10 000-interleaving budget. Lexicographic order maximizes
    // adjacent-prefix sharing — exactly what the checkpoint trie trades on.
    session.set_mode(ExploreMode::Dfs);
    session.set_cap(cap);
    session
}

#[derive(Serialize)]
struct Point {
    workers: usize,
    incremental: bool,
    wall_ms: u128,
    /// Events physically applied: `explored · N` for scratch, minus the
    /// trie's `events_saved` for incremental.
    events_applied: u64,
    cache_hits: Option<u64>,
    cache_misses: Option<u64>,
    events_saved: Option<u64>,
    sim_us_saved: Option<u64>,
    bytes_resident: Option<usize>,
    /// `Report::diff` against the scratch single-worker reference (must
    /// be null).
    divergence: Option<String>,
}

#[derive(Serialize)]
struct CatalogueCheck {
    bug: String,
    workers: usize,
    events_saved: u64,
    /// Incremental vs scratch `Report::diff` (must be null).
    divergence: Option<String>,
}

#[derive(Serialize)]
struct Document {
    cap: usize,
    workload_events: usize,
    explored: usize,
    points: Vec<Point>,
    /// Scratch / incremental events-applied at one worker — the headline
    /// number; the CI floor is 2.0, the acceptance target 3.0.
    reduction_at_1: f64,
    catalogue_cap: usize,
    catalogue: Vec<CatalogueCheck>,
    /// True iff every divergence field in the document is null.
    all_reports_identical: bool,
}

fn measure(cap: usize, workers: usize, incremental: bool) -> (Report, u128) {
    let mut session = town_session(cap);
    session.set_workers(workers);
    session.set_incremental(incremental);
    let started = Instant::now();
    let report = session.replay(&TownApp::invariant()).expect("recorded");
    (report, started.elapsed().as_millis())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let cap: usize = get("--cap")
        .and_then(|v| v.parse().ok())
        .unwrap_or(er_pi_bench::CAP)
        .max(1);
    let catalogue_cap: usize = get("--catalogue-cap")
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CATALOGUE_CAP)
        .max(1);
    let pretty = args.iter().any(|a| a == "--pretty");

    let workload_events = town_session(1)
        .workload()
        .map(er_pi_model::Workload::len)
        .unwrap_or(0);

    let mut reference: Option<Report> = None;
    let mut points = Vec::new();
    for incremental in [false, true] {
        for workers in WORKER_COUNTS {
            let (report, wall_ms) = measure(cap, workers, incremental);
            let scratch_applied = report.explored as u64 * workload_events as u64;
            let stats = report.cache_stats;
            let divergence = match &reference {
                None => None,
                Some(reference) => reference.diff(&report),
            };
            points.push(Point {
                workers,
                incremental,
                wall_ms,
                events_applied: scratch_applied - stats.map_or(0, |s| s.events_saved),
                cache_hits: stats.map(|s| s.hits),
                cache_misses: stats.map(|s| s.misses),
                events_saved: stats.map(|s| s.events_saved),
                sim_us_saved: stats.map(|s| s.sim_us_saved),
                bytes_resident: stats.map(|s| s.bytes_resident),
                divergence,
            });
            if reference.is_none() {
                reference = Some(report);
            }
        }
    }
    let explored = reference.as_ref().map_or(0, |r| r.explored);

    let applied_at_1 = |incremental: bool| {
        points
            .iter()
            .find(|p| p.workers == 1 && p.incremental == incremental)
            .map_or(0, |p| p.events_applied)
    };
    let reduction_at_1 = applied_at_1(false) as f64 / applied_at_1(true).max(1) as f64;

    let catalogue: Vec<CatalogueCheck> = Bug::catalogue()
        .into_iter()
        .flat_map(|bug| {
            let scratch = bug.replay_report_with(catalogue_cap, false, 1, false);
            CATALOGUE_WORKERS
                .into_iter()
                .map(|workers| {
                    let incremental = bug.replay_report_with(catalogue_cap, false, workers, true);
                    CatalogueCheck {
                        bug: bug.name.to_string(),
                        workers,
                        events_saved: incremental.cache_stats.map_or(0, |s| s.events_saved),
                        divergence: scratch.diff(&incremental),
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect();

    let all_reports_identical = points.iter().all(|p| p.divergence.is_none())
        && catalogue.iter().all(|c| c.divergence.is_none());

    let doc = Document {
        cap,
        workload_events,
        explored,
        points,
        reduction_at_1,
        catalogue_cap,
        catalogue,
        all_reports_identical,
    };

    let rendered = if pretty {
        serde_json::to_string_pretty(&doc)
    } else {
        serde_json::to_string(&doc)
    }
    .expect("report serializes");
    println!("{rendered}");
}

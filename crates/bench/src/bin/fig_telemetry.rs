//! Telemetry overhead and trace-schema micro-benchmark.
//!
//! Two questions, answered in one JSON document:
//!
//! * **Is disabled telemetry free?** The same DFS-capped town workload is
//!   replayed detached, with a [`NullSink`] (reports `enabled() == false`,
//!   so every instrumented site must reduce to one dead branch), with a
//!   JSON Lines sink and with a Chrome trace sink — min-of-k wall time
//!   each. The CI `telemetry-smoke` job fails when the NullSink overhead
//!   exceeds 2% of the detached baseline.
//! * **Does a live trace carry every event kind, well-formed?** A second
//!   run pins the checkpoint-cache budget to zero so the hit-rate monitor
//!   organically emits its warning, and streams through a JSON Lines sink;
//!   the document embeds one sample line per event kind (span, instant,
//!   counter, warning) for downstream schema validation.
//!
//! Every attached report is diffed against the detached reference —
//! telemetry is write-only, so `divergence` must be null everywhere.
//!
//! Usage: `fig_telemetry [--cap N] [--repeats K] [--pretty]`

use std::sync::Arc;
use std::time::Instant;

use er_pi::telemetry::{
    ChromeTraceSink, JsonLinesSink, NullSink, SharedBuf, Sink, HIT_RATE_WINDOW,
};
use er_pi::{ExploreMode, Report, Session};
use er_pi_model::{ReplicaId, Value};
use er_pi_subjects::TownApp;
use serde::Serialize;

const DEFAULT_CAP: usize = 5_000;
const DEFAULT_REPEATS: usize = 5;

/// A named sink constructor for the overhead table.
type SinkConfig = (&'static str, fn() -> Arc<dyn Sink>);

/// The §2.3 town workload extended to 10 events (the same recording the
/// `fig_prefix` bench uses), DFS-enumerated under the cap.
fn town_session(cap: usize) -> Session<TownApp> {
    let mut session = Session::new(TownApp::new(2));
    let r = ReplicaId::new;
    session.record(|sys| {
        let ev1 = sys.invoke(r(0), "add", [Value::from("otb")]);
        sys.sync(r(0), r(1), ev1);
        let ev2 = sys.invoke(r(1), "add", [Value::from("ph")]);
        sys.sync(r(1), r(0), ev2);
        let ev3 = sys.invoke(r(1), "remove", [Value::from("otb")]);
        sys.sync(r(1), r(0), ev3);
        let ev4 = sys.invoke(r(0), "add", [Value::from("pl")]);
        sys.sync(r(0), r(1), ev4);
        sys.invoke(r(1), "remove", [Value::from("ph")]);
        sys.external(r(0), "transmit");
    });
    session.set_mode(ExploreMode::Dfs);
    session.set_cap(cap);
    session
}

fn replay_once(cap: usize, sink: Option<Arc<dyn Sink>>) -> (Report, u128) {
    let mut session = town_session(cap);
    if let Some(sink) = sink {
        session.set_telemetry(sink);
    }
    let started = Instant::now();
    let report = session.replay(&TownApp::invariant()).expect("recorded");
    (report, started.elapsed().as_micros())
}

/// Min-of-k wall time for one sink configuration; returns the last report
/// for the write-only diff.
fn measure(
    cap: usize,
    repeats: usize,
    mk_sink: impl Fn() -> Option<Arc<dyn Sink>>,
) -> (Report, u128) {
    let mut best = u128::MAX;
    let mut last = None;
    for _ in 0..repeats {
        let (report, wall_us) = replay_once(cap, mk_sink());
        best = best.min(wall_us);
        last = Some(report);
    }
    (last.expect("repeats >= 1"), best)
}

#[derive(Serialize)]
struct Timing {
    sink: &'static str,
    min_wall_us: u128,
    /// `(wall - detached_wall) / detached_wall`; negative values are
    /// measurement noise.
    overhead_vs_detached: f64,
    /// `Report::diff` against the detached reference (must be null).
    divergence: Option<String>,
}

#[derive(Serialize)]
struct KindSample {
    kind: &'static str,
    /// One verbatim line of the JSON Lines stream.
    line: String,
}

#[derive(Serialize)]
struct WarningRun {
    cap: usize,
    explored: usize,
    /// Lines per event kind in the streamed trace.
    spans: usize,
    instants: usize,
    counters: usize,
    warnings: usize,
    samples: Vec<KindSample>,
    /// `Report::diff` against the detached reference at the same cap
    /// (must be null).
    divergence: Option<String>,
}

#[derive(Serialize)]
struct Document {
    cap: usize,
    repeats: usize,
    workload_events: usize,
    explored: usize,
    timings: Vec<Timing>,
    /// The headline number: NullSink overhead as a fraction of the
    /// detached baseline. The CI ceiling is 0.02.
    null_overhead_frac: f64,
    warning_run: WarningRun,
    /// True iff every divergence field in the document is null.
    all_reports_identical: bool,
}

fn count_kind(contents: &str, kind: &str) -> usize {
    let prefix = format!("{{\"kind\":\"{kind}\"");
    contents.lines().filter(|l| l.starts_with(&prefix)).count()
}

fn sample_kind(contents: &str, kind: &'static str) -> KindSample {
    let prefix = format!("{{\"kind\":\"{kind}\"");
    KindSample {
        kind,
        line: contents
            .lines()
            .find(|l| l.starts_with(&prefix))
            .unwrap_or_else(|| panic!("trace has no {kind} event"))
            .to_string(),
    }
}

/// Replays with a zero cache budget so every incremental run misses: the
/// hit-rate monitor's warning fires organically once the window fills.
fn warning_run(cap: usize, reference: &Report) -> WarningRun {
    let buf = SharedBuf::new();
    let sink: Arc<dyn Sink> = Arc::new(JsonLinesSink::new(buf.clone()));
    let mut session = town_session(cap);
    session.set_cache_budget(0);
    session.set_telemetry(sink);
    let report = session.replay(&TownApp::invariant()).expect("recorded");
    let contents = buf.contents();
    WarningRun {
        cap,
        explored: report.explored,
        spans: count_kind(&contents, "span"),
        instants: count_kind(&contents, "instant"),
        counters: count_kind(&contents, "counter"),
        warnings: count_kind(&contents, "warning"),
        samples: vec![
            sample_kind(&contents, "span"),
            sample_kind(&contents, "instant"),
            sample_kind(&contents, "counter"),
            sample_kind(&contents, "warning"),
        ],
        divergence: reference.diff(&report),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let cap: usize = get("--cap")
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CAP)
        .max(1);
    let repeats: usize = get("--repeats")
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_REPEATS)
        .max(1);
    let pretty = args.iter().any(|a| a == "--pretty");

    let workload_events = town_session(1)
        .workload()
        .map(er_pi_model::Workload::len)
        .unwrap_or(0);

    let (reference, detached_us) = measure(cap, repeats, || None);
    let configs: [SinkConfig; 3] = [
        ("null", || Arc::new(NullSink)),
        ("jsonl", || Arc::new(JsonLinesSink::new(SharedBuf::new()))),
        ("chrome-trace", || {
            Arc::new(ChromeTraceSink::new(SharedBuf::new()))
        }),
    ];

    let mut timings = vec![Timing {
        sink: "detached",
        min_wall_us: detached_us,
        overhead_vs_detached: 0.0,
        divergence: None,
    }];
    for (name, mk) in configs {
        let (report, wall_us) = measure(cap, repeats, || Some(mk()));
        timings.push(Timing {
            sink: name,
            min_wall_us: wall_us,
            overhead_vs_detached: (wall_us as f64 - detached_us as f64) / detached_us.max(1) as f64,
            divergence: reference.diff(&report),
        });
    }
    let null_overhead_frac = timings
        .iter()
        .find(|t| t.sink == "null")
        .map_or(f64::NAN, |t| t.overhead_vs_detached);

    // The warning window must fill, whatever cap the caller picked.
    let warn_cap = cap.max(HIT_RATE_WINDOW as usize + 200);
    let warn_reference_storage;
    let warn_reference = if warn_cap == cap {
        &reference
    } else {
        warn_reference_storage = replay_once(warn_cap, None).0;
        &warn_reference_storage
    };
    let warning_run = warning_run(warn_cap, warn_reference);

    let all_reports_identical =
        timings.iter().all(|t| t.divergence.is_none()) && warning_run.divergence.is_none();

    let doc = Document {
        cap,
        repeats,
        workload_events,
        explored: reference.explored,
        timings,
        null_overhead_frac,
        warning_run,
        all_reports_identical,
    };

    let rendered = if pretty {
        serde_json::to_string_pretty(&doc)
    } else {
        serde_json::to_string(&doc)
    }
    .expect("report serializes");
    println!("{rendered}");
}

//! Regenerates Table 1: the bug benchmark inventory.

use er_pi_subjects::Bug;

fn main() {
    println!("Table 1. Bug benchmarks.");
    println!(
        "{:<13} {:>7} {:>8}  {:<7} {:<15}",
        "BugName", "Issue#", "#Events", "Status", "Reason"
    );
    println!("{}", "-".repeat(56));
    for bug in Bug::catalogue() {
        println!(
            "{:<13} {:>7} {:>8}  {:<7} {:<15}",
            bug.name,
            bug.issue,
            bug.events(),
            bug.status.to_string(),
            bug.reason.unwrap_or("—"),
        );
    }
}

//! Figure 8 variant: hand-declared vs auto-derived independence.
//!
//! For every catalogue bug this runs ER-π twice — once with the bug's
//! hand-declared pruning configuration, once with the hand-declared
//! independent sets and interference pairs deleted and replaced by what
//! the static trace analysis (`er-pi-analysis`) derives — and emits one
//! JSON document comparing pruning rate and time per bug, plus the lint
//! diagnostics the analysis raised before replay.
//!
//! Usage: `fig8_auto [--cap N] [--pretty]`

use er_pi::{analyze, ExploreMode};
use er_pi_bench::{geomean, CAP};
use er_pi_subjects::{Bug, Repro};
use serde::Serialize;

#[derive(Serialize)]
struct Attempt {
    found_at: Option<usize>,
    explored: usize,
    pruning_rate: f64,
    sim_secs: f64,
    wall_ms: u128,
}

impl Attempt {
    fn from_repro(repro: &Repro, cap: usize) -> Attempt {
        Attempt {
            found_at: repro.found_at,
            explored: repro.explored,
            pruning_rate: 1.0 - repro.explored as f64 / cap as f64,
            sim_secs: repro.sim_secs,
            wall_ms: repro.wall_ms,
        }
    }
}

#[derive(Serialize)]
struct HandSide {
    declared_sets: usize,
    attempt: Attempt,
}

#[derive(Serialize)]
struct AutoSide {
    derived_sets: usize,
    interference_pairs: usize,
    diagnostics: usize,
    attempt: Attempt,
}

#[derive(Serialize)]
struct Row {
    bug: &'static str,
    events: usize,
    hand: HandSide,
    auto: AutoSide,
}

#[derive(Serialize)]
struct Aggregate {
    auto_reproduced: usize,
    total: usize,
    /// A ratio above 1 means the hand configuration explored more
    /// interleavings than the auto-derived one before reproducing.
    explored_ratio_hand_over_auto_geomean: f64,
    sim_time_ratio_hand_over_auto_geomean: Option<f64>,
}

#[derive(Serialize)]
struct Document {
    cap: usize,
    bugs: Vec<Row>,
    aggregate: Aggregate,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    // At least 1 so the pruning-rate denominator is never zero.
    let cap: usize = get("--cap")
        .and_then(|v| v.parse().ok())
        .unwrap_or(CAP)
        .max(1);
    let pretty = args.iter().any(|a| a == "--pretty");

    let mut rows = Vec::new();
    let mut explored_ratios = Vec::new();
    let mut time_ratios = Vec::new();
    let mut auto_reproduced = 0usize;

    for bug in Bug::catalogue() {
        let hand = bug.reproduce(ExploreMode::ErPi, cap);

        let analysis = analyze(bug.workload());
        let mut config = bug.pruning_config().clone();
        let hand_sets = config.independent_sets.len();
        config.independent_sets.clear();
        config.interference.clear();
        let derived = analysis.to_pruning_config();
        let derived_sets = derived.independent_sets.len();
        let derived_pairs = derived.interference.len();
        config.absorb(derived);
        let auto = bug.reproduce_with_config(config, cap);

        if auto.reproduced() {
            auto_reproduced += 1;
        }
        explored_ratios.push(hand.explored as f64 / auto.explored.max(1) as f64);
        if auto.sim_secs > 0.0 && hand.sim_secs > 0.0 {
            time_ratios.push(hand.sim_secs / auto.sim_secs);
        }

        rows.push(Row {
            bug: bug.name,
            events: bug.events(),
            hand: HandSide {
                declared_sets: hand_sets,
                attempt: Attempt::from_repro(&hand, cap),
            },
            auto: AutoSide {
                derived_sets,
                interference_pairs: derived_pairs,
                diagnostics: analysis.diagnostics.len(),
                attempt: Attempt::from_repro(&auto, cap),
            },
        });
    }

    let doc = Document {
        cap,
        aggregate: Aggregate {
            auto_reproduced,
            total: rows.len(),
            explored_ratio_hand_over_auto_geomean: geomean(&explored_ratios),
            sim_time_ratio_hand_over_auto_geomean: if time_ratios.is_empty() {
                None
            } else {
                Some(geomean(&time_ratios))
            },
        },
        bugs: rows,
    };

    let rendered = if pretty {
        serde_json::to_string_pretty(&doc)
    } else {
        serde_json::to_string(&doc)
    }
    .expect("report serializes");
    println!("{rendered}");
}

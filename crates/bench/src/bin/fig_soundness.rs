//! Independence-soundness smoke data: certifier verdict census + sanitizer
//! overhead over the 12-bug catalogue, emitted as one JSON document
//! (`BENCH_soundness.json` in CI).
//!
//! The `soundness-smoke` CI job fails when any table claim certifies
//! UNSOUND or UNWITNESSED, when a sanitizer-enabled report diverges from
//! the sanitizer-off reference, when a catalogue run reports an
//! independence violation, or when the sanitizer's total wall-clock
//! overhead exceeds the 10% contract of DESIGN.md §12.
//!
//! Usage: `fig_soundness [--cap N] [--pretty]`

use std::time::Instant;

use er_pi::{certify_table, CertClaim, CertifiedTable, Verdict};
use er_pi_subjects::{Bug, ReplayOptions};
use serde::Serialize;

const DEFAULT_CAP: usize = 2_000;

#[derive(Serialize)]
struct ClaimRow {
    claim: String,
    verdict: Verdict,
    families: Vec<String>,
    pairs: usize,
    checks: usize,
}

#[derive(Serialize)]
struct BugRow {
    bug: String,
    explored: usize,
    wall_off_ms: u128,
    wall_on_ms: u128,
    pairs_considered: usize,
    pairs_checked: usize,
    pairs_deduped: usize,
    violations: usize,
    /// Sanitizer-on vs sanitizer-off `Report::diff` (must be null).
    divergence: Option<String>,
}

#[derive(Serialize)]
struct Document {
    cap: usize,
    /// Wall-clock of one full `certify_table` pass.
    certify_ms: u128,
    commute_claims: usize,
    conflict_claims: usize,
    table_is_sound: bool,
    unsound: Vec<ClaimRow>,
    unwitnessed: Vec<ClaimRow>,
    catalogue: Vec<BugRow>,
    total_wall_off_ms: u128,
    total_wall_on_ms: u128,
    /// (on − off) / off over the whole catalogue; the contract is < 0.10.
    sanitizer_overhead_frac: f64,
    total_violations: usize,
    all_reports_identical: bool,
    /// The full certified table: bounds, every claim, every witness.
    table: CertifiedTable,
}

fn rows(claims: Vec<&CertClaim>) -> Vec<ClaimRow> {
    claims
        .into_iter()
        .map(|c| ClaimRow {
            claim: c.claim.clone(),
            verdict: c.verdict,
            families: c.families.clone(),
            pairs: c.pairs,
            checks: c.checks,
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cap: usize = args
        .iter()
        .position(|a| a == "--cap")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CAP)
        .max(1);
    let pretty = args.iter().any(|a| a == "--pretty");

    let started = Instant::now();
    let table: CertifiedTable = certify_table();
    let certify_ms = started.elapsed().as_millis();

    let opts = |sanitize: bool| ReplayOptions {
        cap,
        stop_on_first_violation: false,
        workers: 1,
        incremental: true,
        telemetry: None,
        sanitize,
        ..ReplayOptions::default()
    };

    let mut catalogue = Vec::new();
    let (mut total_off, mut total_on) = (0u128, 0u128);
    for bug in Bug::catalogue() {
        // Warm-up run so neither side pays first-touch costs.
        let _ = bug.replay_report_opts(&opts(false));
        let started = Instant::now();
        let reference = bug.replay_report_opts(&opts(false));
        let wall_off_ms = started.elapsed().as_millis();
        let started = Instant::now();
        let (sanitized, findings) = bug.replay_report_checked(&opts(true));
        let wall_on_ms = started.elapsed().as_millis();
        let findings = findings.expect("sanitize was requested");
        total_off += wall_off_ms;
        total_on += wall_on_ms;
        catalogue.push(BugRow {
            bug: bug.name.to_string(),
            explored: sanitized.explored,
            wall_off_ms,
            wall_on_ms,
            pairs_considered: findings.pairs_considered,
            pairs_checked: findings.pairs_checked,
            pairs_deduped: findings.pairs_deduped,
            violations: findings.violations.len(),
            divergence: reference.diff(&sanitized),
        });
    }

    let doc = Document {
        cap,
        certify_ms,
        commute_claims: table.commute_claims.len(),
        conflict_claims: table.conflict_claims.len(),
        table_is_sound: table.is_sound(),
        unsound: rows(table.unsound()),
        unwitnessed: rows(table.unwitnessed()),
        total_wall_off_ms: total_off,
        total_wall_on_ms: total_on,
        sanitizer_overhead_frac: (total_on as f64 - total_off as f64) / (total_off.max(1) as f64),
        total_violations: catalogue.iter().map(|r| r.violations).sum(),
        all_reports_identical: catalogue.iter().all(|r| r.divergence.is_none()),
        catalogue,
        table,
    };

    let rendered = if pretty {
        serde_json::to_string_pretty(&doc)
    } else {
        serde_json::to_string(&doc)
    }
    .expect("report serializes");
    println!("{rendered}");
}

//! Deep-pruning reductions: state-hash subsumption and sleep-set (DPOR)
//! pruning, with and without fault schedules.
//!
//! Two workloads, emitted as one JSON document:
//!
//! * the §6.3-capped workload (the motivating town app extended to 10
//!   events, DFS, capped at 1 000 and 10 000 interleavings), where
//!   permuted prefixes converge to identical OR-set states and the
//!   subsume set answers most runs from memoized tails — the headline
//!   `subsume_reduction_at_10k` must stay ≥ 10× (the CI `dpor-smoke` job
//!   fails below 5×). Each cap is also rerun under a two-plan fault
//!   schedule (empty baseline plus a dropped remove-propagation sync) to
//!   show the reduction survives fault-digest partitioning of the key
//!   space;
//! * a commuting variant of the §2.3 recording whose lone adds of
//!   distinct elements form certified-commuting units, where the sleep
//!   filter has real commutation classes to prune.
//!
//! Subsumption points are diffed against the reductions-off baseline —
//! `divergence` must be `null`. Sleep points replay a *smaller* set, so
//! they are held to violation-set equivalence (`violations_preserved`)
//! instead.
//!
//! Usage: `fig_dpor [--cap N] [--pretty]`

use std::collections::BTreeSet;
use std::time::Instant;

use er_pi::{ExploreMode, Report, Session};
use er_pi_model::{EventId, FaultEvent, FaultKind, FaultPlan, ReplicaId, Value};
use er_pi_subjects::TownApp;
use serde::Serialize;

const CAPS: [usize; 2] = [1_000, 10_000];

/// The town workload extended to 10 events (identical to `fig_prefix`'s):
/// DFS order maximizes prefix convergence, which is what the subsume set
/// trades on. Event 5 is the propagation sync of the `remove`.
fn town_session(cap: usize) -> Session<TownApp> {
    let mut session = Session::new(TownApp::new(2));
    let r = ReplicaId::new;
    session.record(|sys| {
        let ev1 = sys.invoke(r(0), "add", [Value::from("otb")]);
        sys.sync(r(0), r(1), ev1);
        let ev2 = sys.invoke(r(1), "add", [Value::from("ph")]);
        sys.sync(r(1), r(0), ev2);
        let ev3 = sys.invoke(r(1), "remove", [Value::from("otb")]);
        sys.sync(r(1), r(0), ev3);
        let ev4 = sys.invoke(r(0), "add", [Value::from("pl")]);
        sys.sync(r(0), r(1), ev4);
        sys.invoke(r(1), "remove", [Value::from("ph")]);
        sys.external(r(0), "transmit");
    });
    session.set_mode(ExploreMode::Dfs);
    session.set_cap(cap);
    session
}

/// The commuting variant: lone adds of distinct elements on different
/// replicas are certified-commuting units, giving the sleep filter real
/// commutation classes. Event 3 is the propagation sync of the `remove`.
fn commuting_session(cap: usize) -> Session<TownApp> {
    let mut session = Session::new(TownApp::new(2));
    let r = ReplicaId::new;
    session.record(|sys| {
        let ev1 = sys.invoke(r(0), "add", [Value::from("otb")]);
        sys.sync(r(0), r(1), ev1);
        let ev3 = sys.invoke(r(1), "remove", [Value::from("otb")]);
        sys.sync(r(1), r(0), ev3);
        sys.invoke(r(0), "add", [Value::from("pl")]);
        sys.invoke(r(1), "add", [Value::from("ph")]);
        sys.invoke(r(0), "add", [Value::from("tri")]);
        sys.invoke(r(1), "add", [Value::from("sq")]);
        sys.external(r(0), "transmit");
    });
    session.set_cap(cap);
    session
}

#[derive(Serialize)]
struct Point {
    workload: &'static str,
    cap: usize,
    faults: bool,
    subsumption: bool,
    sleep_sets: bool,
    explored: usize,
    /// Interleavings physically replayed: `explored` minus the runs the
    /// subsume set answered from memoized tails.
    executed_runs: u64,
    subsumed: u64,
    sleep_rejected: u64,
    wall_ms: u128,
    distinct_violations: usize,
    /// `Report::diff` against the reductions-off baseline (must be null
    /// for subsumption-only points; sleep points legitimately replay a
    /// different set, so `diff` is not meaningful there and stays null).
    divergence: Option<String>,
    /// The distinct (assertion, message) violation set matches the
    /// baseline's — the promise every reduction mode must keep.
    violations_preserved: bool,
}

fn violation_set(report: &Report) -> BTreeSet<(String, String)> {
    report
        .violations
        .iter()
        .map(|v| (v.assertion.clone(), v.message.clone()))
        .collect()
}

struct Shape {
    workload: &'static str,
    build: fn(usize) -> Session<TownApp>,
    /// Event dropped by the faulty plan: the remove-propagation sync,
    /// under which clean interleavings become violating.
    drop_event: u32,
}

fn run(
    shape: &Shape,
    cap: usize,
    faults: bool,
    subsumption: bool,
    sleep_sets: bool,
) -> (Report, u128) {
    let mut session = (shape.build)(cap);
    if faults {
        session.set_fault_plans(vec![
            FaultPlan::empty(),
            FaultPlan::new(vec![FaultEvent::new(
                EventId::new(shape.drop_event),
                FaultKind::Drop,
            )]),
        ]);
    }
    session.set_subsumption(subsumption);
    session.set_sleep_sets(sleep_sets);
    let started = Instant::now();
    let report = session.replay(&TownApp::invariant()).expect("recorded");
    (report, started.elapsed().as_millis())
}

#[derive(Serialize)]
struct Document {
    caps: Vec<usize>,
    points: Vec<Point>,
    /// Baseline-explored over subsumption-executed on the 10k town
    /// workload, fault-free — the headline; the CI floor is 5.0, the
    /// acceptance target 10.0.
    subsume_reduction_at_10k: f64,
    /// The same ratio under the two-plan fault schedule.
    subsume_reduction_at_10k_faults: f64,
    /// Share of the commuting workload's candidate schedules the sleep
    /// filter rejected before replay (fault-free, largest cap).
    sleep_pruned_share: f64,
    /// True iff every point preserved the violation set and no
    /// subsumption point diverged byte-wise.
    all_sound: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cap_override: Option<usize> = args
        .iter()
        .position(|a| a == "--cap")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    let pretty = args.iter().any(|a| a == "--pretty");
    let caps: Vec<usize> = match cap_override {
        Some(cap) => vec![cap.max(1)],
        None => CAPS.to_vec(),
    };

    let shapes = [
        Shape {
            workload: "town10",
            build: town_session,
            drop_event: 5,
        },
        Shape {
            workload: "commuting",
            build: commuting_session,
            drop_event: 3,
        },
    ];

    let mut points = Vec::new();
    for shape in &shapes {
        for &cap in &caps {
            for faults in [false, true] {
                let (baseline, base_ms) = run(shape, cap, faults, false, false);
                let base_violations = violation_set(&baseline);
                let modes = [(false, false), (true, false), (false, true), (true, true)];
                for (subsumption, sleep_sets) in modes {
                    let (report, wall_ms) = if subsumption || sleep_sets {
                        run(shape, cap, faults, subsumption, sleep_sets)
                    } else {
                        continue;
                    };
                    let stats = report.cache_stats;
                    let executed = stats.map_or(report.explored as u64, |s| s.executed_runs());
                    let divergence = if sleep_sets {
                        None
                    } else {
                        baseline.diff(&report)
                    };
                    points.push(Point {
                        workload: shape.workload,
                        cap,
                        faults,
                        subsumption,
                        sleep_sets,
                        explored: report.explored,
                        executed_runs: executed,
                        subsumed: stats.map_or(0, |s| s.subsumed),
                        sleep_rejected: report.prune_stats.as_ref().map_or(0, |s| s.sleep_rejected),
                        wall_ms,
                        distinct_violations: violation_set(&report).len(),
                        divergence,
                        violations_preserved: violation_set(&report) == base_violations,
                    });
                }
                // The baseline itself, for the curves.
                points.push(Point {
                    workload: shape.workload,
                    cap,
                    faults,
                    subsumption: false,
                    sleep_sets: false,
                    explored: baseline.explored,
                    executed_runs: baseline.explored as u64,
                    subsumed: 0,
                    sleep_rejected: 0,
                    wall_ms: base_ms,
                    distinct_violations: base_violations.len(),
                    divergence: None,
                    violations_preserved: true,
                });
            }
        }
    }

    let top_cap = caps.iter().copied().max().unwrap_or(1);
    let reduction = |faults: bool| {
        points
            .iter()
            .find(|p| {
                p.workload == "town10"
                    && p.cap == top_cap
                    && p.faults == faults
                    && p.subsumption
                    && !p.sleep_sets
            })
            .map_or(1.0, |p| p.explored as f64 / p.executed_runs.max(1) as f64)
    };
    let sleep_pruned_share = points
        .iter()
        .find(|p| p.workload == "commuting" && p.cap == top_cap && !p.faults && p.sleep_sets)
        .map_or(0.0, |p| {
            let candidates = p.explored as u64 + p.sleep_rejected;
            p.sleep_rejected as f64 / candidates.max(1) as f64
        });
    let all_sound = points
        .iter()
        .all(|p| p.divergence.is_none() && p.violations_preserved);

    let subsume_reduction_at_10k = reduction(false);
    let subsume_reduction_at_10k_faults = reduction(true);
    let doc = Document {
        caps,
        points,
        subsume_reduction_at_10k,
        subsume_reduction_at_10k_faults,
        sleep_pruned_share,
        all_sound,
    };

    let rendered = if pretty {
        serde_json::to_string_pretty(&doc)
    } else {
        serde_json::to_string(&doc)
    }
    .expect("report serializes");
    println!("{rendered}");
}

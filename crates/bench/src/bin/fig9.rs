//! Regenerates Figure 9: each pruning algorithm's individual contribution
//! to the reduction of the number of interleavings, per bug.
//!
//! Event grouping's contribution is analytic: `n!/u!` raw interleavings
//! collapse into every grouped order. The other three algorithms define
//! equivalence classes over the grouped space; their contribution is the
//! fraction of that space they merge away, estimated by uniform sampling
//! (20 000 grouped orders per bug) since the spaces run to `12!` and
//! beyond.

use er_pi_interleave::{
    failed_ops_canonical, group_events, independence_canonical, replica_specific_canonical,
};
use er_pi_subjects::Bug;
use rand::seq::SliceRandom;
use rand::SeedableRng;

const SAMPLES: usize = 20_000;

fn main() {
    println!("Figure 9. Individual algorithm's contribution to the reduction of");
    println!("the interleavings number ({SAMPLES} uniform samples of each bug's");
    println!("grouped space; percentages = share of orders merged away).");
    println!();
    println!(
        "{:<13} {:>16} {:>10} {:>10} {:>10}",
        "bug", "grouping(x)", "replica%", "indep%", "failedops%"
    );
    println!("{}", "-".repeat(63));
    for bug in Bug::catalogue() {
        let workload = bug.workload();
        let config = bug.pruning_config();
        let grouped = group_events(workload, config);
        let grouping_factor =
            er_pi_model::reduction_factor(workload.total_orders(), grouped.total_orders())
                .unwrap_or(1);

        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut rejected = [0usize; 3]; // replica, independence, failed-ops
        let mut perm: Vec<usize> = (0..grouped.len()).collect();
        for _ in 0..SAMPLES {
            perm.shuffle(&mut rng);
            let order = grouped.flatten(&perm);
            if config
                .target_replica
                .is_some_and(|t| !replica_specific_canonical(workload, &order, t))
            {
                rejected[0] += 1;
            }
            if config
                .independent_sets
                .iter()
                .any(|set| !independence_canonical(&order, set, &config.interference))
            {
                rejected[1] += 1;
            }
            if config
                .failed_ops
                .iter()
                .any(|rule| !failed_ops_canonical(&order, rule))
            {
                rejected[2] += 1;
            }
        }
        let pct = |n: usize| 100.0 * n as f64 / SAMPLES as f64;
        println!(
            "{:<13} {:>16} {:>9.1}% {:>9.1}% {:>9.1}%",
            bug.name,
            grouping_factor,
            pct(rejected[0]),
            pct(rejected[1]),
            pct(rejected[2]),
        );
    }
    println!();
    println!("grouping(x): raw interleavings merged into each grouped order (n!/u!).");
    println!("zero columns mean the algorithm's preconditions do not apply to the");
    println!("bug's workload (no target replica / no declared independence / no");
    println!("failed-ops rule) — matching the paper's per-bug applicability.");
}

//! `er-pi-explain` — violation forensics from the command line.
//!
//! Replays a catalogue bug until its first violation (or to the 10 000-run
//! paper cap) and prints the deterministic forensic bundle for one of the
//! violations found: the exact interleaving with its fault plan, per-step
//! canonical state digests with the first divergence from the fault-free
//! recorded order, the workload's happens-before graph in Graphviz DOT,
//! and replay-space provenance. The bundle is a pure function of
//! `(subject, violation)`, so the bytes printed here match what the
//! campaign daemon serves at `GET /campaigns/:id/violations/:n` for the
//! same subject — however that campaign was scheduled.
//!
//! Usage:
//!
//! ```text
//! er-pi-explain <Bug-Name> [--violation N] [--pretty]
//! er-pi-explain --all
//! ```
//!
//! `--all` sweeps the catalogue and prints one summary line per bug
//! (steps recorded, first divergence, digest source, bundle size) —
//! a quick smoke that every catalogue violation explains.

use std::process::ExitCode;

use er_pi_subjects::{Bug, ReplayOptions};

fn replay_opts() -> ReplayOptions {
    ReplayOptions {
        cap: 10_000,
        stop_on_first_violation: true,
        ..ReplayOptions::default()
    }
}

fn explain_all() -> ExitCode {
    let mut failures = 0usize;
    for bug in Bug::catalogue() {
        let report = bug.replay_report_opts(&replay_opts());
        let Some(violation) = report.violations.first() else {
            println!("{:<14} NO VIOLATION under cap", bug.name);
            failures += 1;
            continue;
        };
        match bug.explain(violation) {
            Some(bundle) => {
                let divergence = bundle
                    .first_divergence
                    .as_ref()
                    .map(|d| format!("step {}", d.pos))
                    .unwrap_or_else(|| "none".to_owned());
                println!(
                    "{:<14} steps={:<3} divergence={:<8} digests={:?} bundle={}B",
                    bug.name,
                    bundle.steps.len(),
                    divergence,
                    bundle.provenance.digest_source,
                    bundle.canonical_json().len(),
                );
            }
            None => {
                println!("{:<14} violation is cross-run (no interleaving)", bug.name);
                failures += 1;
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut name: Option<String> = None;
    let mut violation_index = 0usize;
    let mut pretty = false;
    let mut all = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => all = true,
            "--pretty" => pretty = true,
            "--violation" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => violation_index = n,
                    None => {
                        eprintln!("--violation needs a number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!("usage: er-pi-explain <Bug-Name> [--violation N] [--pretty] | --all");
                return ExitCode::SUCCESS;
            }
            other if name.is_none() && !other.starts_with('-') => name = Some(other.to_owned()),
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    if all {
        return explain_all();
    }
    let Some(name) = name else {
        eprintln!("usage: er-pi-explain <Bug-Name> [--violation N] [--pretty] | --all");
        return ExitCode::FAILURE;
    };
    let Some(bug) = Bug::by_name(&name) else {
        eprintln!(
            "unknown bug {name:?}; catalogue: {}",
            Bug::catalogue()
                .iter()
                .map(|b| b.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::FAILURE;
    };

    // Keep replaying past the first violation only when a later one was
    // asked for — the first is the common case and stops early.
    let opts = if violation_index == 0 {
        replay_opts()
    } else {
        ReplayOptions {
            stop_on_first_violation: false,
            ..replay_opts()
        }
    };
    let report = bug.replay_report_opts(&opts);
    let Some(violation) = report.violations.get(violation_index) else {
        eprintln!(
            "{name}: violation {violation_index} out of range ({} found under cap {})",
            report.violations.len(),
            opts.cap
        );
        return ExitCode::FAILURE;
    };
    let Some(bundle) = bug.explain(violation) else {
        eprintln!(
            "{name}: violation {violation_index} is cross-run — no single interleaving to replay"
        );
        return ExitCode::FAILURE;
    };
    if pretty {
        println!(
            "{}",
            serde_json::to_string_pretty(&bundle).expect("bundle serializes")
        );
    } else {
        println!("{}", bundle.canonical_json());
    }
    ExitCode::SUCCESS
}

use er_pi::ExploreMode;
use er_pi_subjects::Bug;

fn main() {
    println!(
        "{:<12} {:>7} {:>8} {:>8} | Rand seeds 7/42/99/123/2026",
        "bug", "events", "ER-pi", "DFS"
    );
    for bug in Bug::catalogue() {
        let e = bug.reproduce(ExploreMode::ErPi, 10_000);
        let d = bug.reproduce(ExploreMode::Dfs, 10_000);
        let f = |x: Option<usize>| x.map(|n| n.to_string()).unwrap_or("FAIL".into());
        print!(
            "{:<12} {:>7} {:>8} {:>8} |",
            bug.name,
            bug.events(),
            f(e.found_at),
            f(d.found_at)
        );
        for seed in [7u64, 42, 99, 123, 2026] {
            let r = bug.reproduce(ExploreMode::Random { seed }, 10_000);
            print!(" {:>6}", f(r.found_at));
        }
        println!();
    }
}

//! Regenerates Figures 8a and 8b: the number of interleavings and the time
//! required to reproduce each of the twelve bugs, under ER-π (with its
//! applicable pruning algorithms), DFS, and Random exploration, capped at
//! 10 000 interleavings per attempt.
//!
//! Also prints the paper's §6.3 aggregate claims, recomputed from the
//! measured data: how many fewer interleavings (≈5.6× vs DFS, ≈7.4× vs
//! Rand in the paper) and how much less time (≈2.78× / ≈4.38×) ER-π needs.
//!
//! Usage: `fig8 [--part a|b] [--cap N] [--seed N]`

use er_pi::ExploreMode;
use er_pi_bench::{fmt_found, geomean, log_bar, CAP, RAND_SEED};
use er_pi_subjects::{Bug, Repro};

struct Row {
    name: &'static str,
    erpi: Repro,
    dfs: Repro,
    rand: Repro,
}

fn collect(cap: usize, seed: u64) -> Vec<Row> {
    Bug::catalogue()
        .into_iter()
        .map(|bug| Row {
            name: bug.name,
            erpi: bug.reproduce(ExploreMode::ErPi, cap),
            dfs: bug.reproduce(ExploreMode::Dfs, cap),
            rand: bug.reproduce(ExploreMode::Random { seed }, cap),
        })
        .collect()
}

fn part_a(rows: &[Row], cap: usize) {
    println!("Figure 8a. Number of interleavings to reproduce each bug (log10 bars,");
    println!("↑ = not reproduced after {cap} interleavings).");
    println!();
    for row in rows {
        println!("{}:", row.name);
        for (mode, repro) in [("ER-π", &row.erpi), ("DFS", &row.dfs), ("Rand", &row.rand)] {
            println!(
                "  {:<5} {:>6}  {}",
                mode,
                fmt_found(repro.found_at),
                log_bar(repro.found_at.unwrap_or(cap), cap, 40),
            );
        }
    }
    println!();
}

fn part_b(rows: &[Row]) {
    println!("Figure 8b. Simulated time to reproduce each bug (seconds; host model:");
    println!("i7 laptop + i5 laptop + Raspberry Pi 3; ↑ = terminated at the cap).");
    println!();
    for row in rows {
        println!("{}:", row.name);
        for (mode, repro) in [("ER-π", &row.erpi), ("DFS", &row.dfs), ("Rand", &row.rand)] {
            let marker = if repro.reproduced() { " " } else { "↑" };
            println!("  {:<5} {:>10.3}s {}", mode, repro.sim_secs, marker);
        }
    }
    println!();
}

fn summary(rows: &[Row]) {
    let mut il_vs_dfs = Vec::new();
    let mut il_vs_rand = Vec::new();
    let mut t_vs_dfs = Vec::new();
    let mut t_vs_rand = Vec::new();
    for row in rows {
        let e = row.erpi.found_at.expect("ER-π reproduces every bug") as f64;
        // The paper compares against the baseline's cost; a failed baseline
        // contributes its full exploration budget (a lower bound).
        let d = row.dfs.found_at.unwrap_or(row.dfs.explored) as f64;
        let r = row.rand.found_at.unwrap_or(row.rand.explored) as f64;
        il_vs_dfs.push(d / e);
        il_vs_rand.push(r / e);
        if row.erpi.sim_secs > 0.0 {
            t_vs_dfs.push(row.dfs.sim_secs / row.erpi.sim_secs);
            t_vs_rand.push(row.rand.sim_secs / row.erpi.sim_secs);
        }
    }
    println!("§6.3 aggregates (geometric means over the 12 bugs; failed baselines");
    println!("counted at the cap, i.e. lower bounds):");
    println!(
        "  interleavings pruned: ≈{:.1}× vs DFS (paper ≈5.6×), ≈{:.1}× vs Rand (paper ≈7.4×)",
        geomean(&il_vs_dfs),
        geomean(&il_vs_rand),
    );
    println!(
        "  time saved:           ≈{:.2}× vs DFS (paper ≈2.78×), ≈{:.2}× vs Rand (paper ≈4.38×)",
        geomean(&t_vs_dfs),
        geomean(&t_vs_rand),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let part = get("--part");
    let cap: usize = get("--cap").and_then(|v| v.parse().ok()).unwrap_or(CAP);
    let seed: u64 = get("--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(RAND_SEED);

    let rows = collect(cap, seed);
    match part.as_deref() {
        Some("a") => part_a(&rows, cap),
        Some("b") => part_b(&rows),
        _ => {
            part_a(&rows, cap);
            part_b(&rows);
        }
    }
    summary(&rows);
}

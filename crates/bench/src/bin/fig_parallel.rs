//! Replay-pool speedup curves: wall-clock scaling of the parallel replay
//! scheduler at 1, 2, 4 and 8 workers.
//!
//! Two data sets, emitted as one JSON document:
//!
//! * the §2.3 motivating town workload (7 events, DFS → 5040
//!   interleavings) under a latency-heavy variant of the town model: each
//!   event waits out a fixed round-trip delay, standing in for the
//!   Redis-backed sequencer hops of the paper's real replay deployment
//!   (§4.3). Replay campaigns are latency-bound, so the pool overlaps the
//!   waits and the curve scales with workers even on a single core;
//! * the 12-bug catalogue at a modest cap, without
//!   `stop_on_first_violation`, where pruning keeps runs short and the
//!   pool's dispenser overhead is most visible.
//!
//! Every report is diffed against the single-worker reference before its
//! timing is trusted: a speedup obtained by diverging from the sequential
//! semantics would be meaningless.
//!
//! Usage: `fig_parallel [--cap N] [--pretty]`

use std::time::{Duration, Instant};

use er_pi::{ExploreMode, OpOutcome, Report, Session, SystemModel};
use er_pi_model::{Event, ReplicaId, Value};
use er_pi_subjects::{Bug, TownApp};
use serde::Serialize;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const CATALOGUE_CAP: usize = 2_000;
/// Stand-in for one sequencer round-trip (the paper measures sub-ms hops
/// to the lock server; 40µs keeps the whole curve under ~10s wall).
const ROUND_TRIP: Duration = Duration::from_micros(40);

/// Wraps a model and charges each event a fixed round-trip wait, standing
/// in for the distributed-lock hop a real replayed event performs. The
/// wait never touches state, so replay results stay deterministic.
struct Latency<M>(M);

impl<M: SystemModel> SystemModel for Latency<M> {
    type State = M::State;

    fn replicas(&self) -> usize {
        self.0.replicas()
    }

    fn init(&self, replica: ReplicaId) -> M::State {
        self.0.init(replica)
    }

    fn apply(&self, states: &mut [M::State], event: &Event) -> OpOutcome {
        std::thread::sleep(ROUND_TRIP);
        self.0.apply(states, event)
    }

    fn observe(&self, state: &M::State) -> Value {
        self.0.observe(state)
    }

    fn state_size_hint(&self, state: &M::State) -> usize {
        // Forwarded so the wrapped model's snapshot-budget accounting
        // survives the wrapper (sessions default to incremental replay).
        self.0.state_size_hint(state)
    }
}

#[derive(Serialize)]
struct Point {
    workers: usize,
    wall_ms: u128,
    speedup: f64,
    /// `Report::diff` against the single-worker reference (must be null).
    divergence: Option<String>,
}

#[derive(Serialize)]
struct Curve {
    workload: String,
    explored: usize,
    violations: usize,
    points: Vec<Point>,
}

#[derive(Serialize)]
struct Document {
    catalogue_cap: usize,
    motivating: Curve,
    catalogue: Vec<Curve>,
    /// Speedup of the motivating curve at four workers — the acceptance
    /// threshold of the replay-pool change is ≥ 2.0 here.
    motivating_speedup_at_4: f64,
}

fn town_session(cap: usize) -> Session<Latency<TownApp>> {
    let mut session = Session::new(Latency(TownApp::new(2)));
    let r = ReplicaId::new;
    session.record(|sys| {
        let ev1 = sys.invoke(r(0), "add", [Value::from("otb")]);
        sys.sync(r(0), r(1), ev1);
        let ev2 = sys.invoke(r(1), "add", [Value::from("ph")]);
        sys.sync(r(1), r(0), ev2);
        let ev3 = sys.invoke(r(1), "remove", [Value::from("otb")]);
        sys.sync(r(1), r(0), ev3);
        sys.external(r(0), "transmit");
    });
    // DFS over all 7! orders (5040 after the builder's recorded ordering),
    // no early stop: a fixed-size, compute-heavy campaign.
    session.set_mode(ExploreMode::Dfs);
    session.set_cap(cap);
    session
}

/// Builds one speedup curve from a closure that replays at a given worker
/// count, timing each point and diffing it against the `workers == 1`
/// reference.
fn curve(workload: String, mut replay: impl FnMut(usize) -> Report) -> Curve {
    let mut reference: Option<Report> = None;
    let mut base_ms = 0u128;
    let mut points = Vec::new();
    for workers in WORKER_COUNTS {
        let started = Instant::now();
        let report = replay(workers);
        let wall = started.elapsed().as_millis();
        let divergence = match &reference {
            None => {
                base_ms = wall;
                reference = Some(report);
                None
            }
            Some(reference) => reference.diff(&report),
        };
        points.push(Point {
            workers,
            wall_ms: wall,
            speedup: base_ms as f64 / wall.max(1) as f64,
            divergence,
        });
    }
    let reference = reference.expect("at least one worker count");
    Curve {
        workload,
        explored: reference.explored,
        violations: reference.violations.len(),
        points,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let cap: usize = get("--cap")
        .and_then(|v| v.parse().ok())
        .unwrap_or(er_pi_bench::CAP)
        .max(1);
    let pretty = args.iter().any(|a| a == "--pretty");

    let motivating = curve("motivating §2.3 (latency, DFS 5040)".into(), |workers| {
        let mut session = town_session(cap);
        session.set_workers(workers);
        session.replay(&TownApp::invariant()).expect("recorded")
    });

    let catalogue: Vec<Curve> = Bug::catalogue()
        .into_iter()
        .map(|bug| {
            curve(bug.name.to_string(), |workers| {
                bug.replay_report(CATALOGUE_CAP, false, workers)
            })
        })
        .collect();

    let motivating_speedup_at_4 = motivating
        .points
        .iter()
        .find(|p| p.workers == 4)
        .map(|p| p.speedup)
        .unwrap_or(0.0);

    let doc = Document {
        catalogue_cap: CATALOGUE_CAP,
        motivating,
        catalogue,
        motivating_speedup_at_4,
    };

    let rendered = if pretty {
        serde_json::to_string_pretty(&doc)
    } else {
        serde_json::to_string(&doc)
    }
    .expect("report serializes");
    println!("{rendered}");
}

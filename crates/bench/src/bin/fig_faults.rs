//! Fault-schedule exploration: fault-space size vs pruned replays.
//!
//! For the exactly-once ledger subject and a convergence crdts subject,
//! sweeps fault-space budgets (`none`, the default duplicate-only space,
//! `all(1)`, `all(2)`) and emits, per point:
//!
//! * `plans` — the enumerated fault-plan count ([`enumerate_plans`]),
//! * `replays_unpruned` — the fault product over the *raw* order space
//!   (causal pruning off: causally invalid orders replay as wasted
//!   no-op runs, exactly as the paper counts them),
//! * `replays` — what the session executes with the causal pruner on,
//!   with the pruner's candidate/rejection totals recomputed under the
//!   fault product (`reduction` is the ratio),
//! * the violations found and how many are fault-dependent — fault-free
//!   exploration of both subjects is clean, so every finding must carry
//!   its fault schedule (`fault_model_sound`), and
//! * `divergence` — `Report::diff` of a 4-worker incremental run against
//!   the sequential scratch reference (must be null: fault plans are part
//!   of run identity).
//!
//! Usage: `fig_faults [--cap N] [--pretty]`
//!
//! [`enumerate_plans`]: er_pi::enumerate_plans

use std::time::Instant;

use er_pi::{enumerate_plans, CheckContext, FaultSpace, Report, Session, TestSuite};
use er_pi_model::{FaultPlan, ReplicaId, Value, Workload};
use er_pi_subjects::{CrdtsModel, LedgerApp, LedgerState};
use serde::Serialize;

fn r(i: u16) -> ReplicaId {
    ReplicaId::new(i)
}

/// Two credits on different replicas, each shipped to the other — the
/// workload whose duplicate-delivery bug only fault schedules reach. The
/// second credit is a read-modify-write issued after the first arrives,
/// so causally invalid unit orders exist for the pruner to reject.
fn ledger_workload() -> Workload {
    let mut w = Workload::builder();
    let a = w.update(r(0), "credit", [Value::from(10)]);
    let s1 = w.sync_pair(r(0), r(1), a);
    let b = w.update(r(1), "credit", [Value::from(20)]);
    w.depends(b, s1);
    w.sync_pair(r(1), r(0), b);
    w.build()
}

fn exactly_once_suite() -> TestSuite<LedgerState> {
    TestSuite::new().with_assertion("exactly-once", |ctx: &CheckContext<'_, LedgerState>| {
        for (i, state) in ctx.states.iter().enumerate() {
            if let Some(id) = state.duplicated_entry() {
                return Err(format!("replica {i} applied entry {id} twice"));
            }
        }
        Ok(())
    })
}

/// Two updates cross-shipped between two replicas, the second causally
/// after receiving the first.
fn crdts_workload() -> Workload {
    let mut w = Workload::builder();
    let a = w.update(r(0), "set_add", [Value::from(1)]);
    let s1 = w.sync_pair(r(0), r(1), a);
    let b = w.update(r(1), "counter_inc", [Value::from(2)]);
    w.depends(b, s1);
    w.sync_pair(r(1), r(0), b);
    w.build()
}

/// The swept fault spaces; `None` is the fault-free baseline.
fn spaces() -> Vec<(&'static str, Option<FaultSpace>)> {
    vec![
        ("none", None),
        ("default(1)", Some(FaultSpace::default())),
        ("all(1)", Some(FaultSpace::all(1))),
        ("all(2)", Some(FaultSpace::all(2))),
    ]
}

#[derive(Serialize)]
struct Point {
    subject: &'static str,
    space: &'static str,
    /// Enumerated fault plans (1 = just the empty baseline plan).
    plans: usize,
    /// Runs with the causal pruner off: every raw order × every plan,
    /// causally invalid orders replayed as wasted no-ops.
    replays_unpruned: usize,
    /// Runs with the causal pruner on — the pruned fault product.
    replays: usize,
    /// `replays_unpruned / replays`.
    reduction: f64,
    /// Pruner totals under the fault product (causal run).
    candidates_examined: u64,
    causal_rejected: u64,
    violations: usize,
    /// Violations whose runs carry a non-empty fault schedule.
    fault_dependent_violations: usize,
    wall_ms: u128,
    /// 4-worker incremental vs sequential scratch `Report::diff` (must be
    /// null).
    divergence: Option<String>,
}

#[derive(Serialize)]
struct Document {
    cap: usize,
    points: Vec<Point>,
    /// True iff every divergence field is null.
    all_reports_identical: bool,
    /// True iff fault-free exploration is clean on both subjects and every
    /// violation found anywhere carries a non-empty fault schedule.
    fault_model_sound: bool,
}

/// One subject: a fresh session per call, so reports are independent.
trait Subject {
    fn name(&self) -> &'static str;
    fn workload(&self) -> Workload;
    fn run(&self, cfg: &RunConfig) -> Report;
}

struct RunConfig {
    space: Option<FaultSpace>,
    workers: usize,
    incremental: bool,
    causal: bool,
    cap: usize,
}

struct Ledger;
struct Crdts;

fn configure<M: er_pi::SystemModel>(session: &mut Session<M>, workload: Workload, cfg: &RunConfig) {
    session
        .set_workload(workload)
        .set_workers(cfg.workers)
        .set_incremental(cfg.incremental)
        .set_cap(cfg.cap);
    match &cfg.space {
        Some(space) => session.set_fault_space(space.clone()),
        None => session.set_fault_plans(vec![FaultPlan::empty()]),
    };
    session.config_mut().require_causal = cfg.causal;
}

impl Subject for Ledger {
    fn name(&self) -> &'static str {
        "ledger"
    }
    fn workload(&self) -> Workload {
        ledger_workload()
    }
    fn run(&self, cfg: &RunConfig) -> Report {
        let mut session = Session::new(LedgerApp::new(2));
        configure(&mut session, ledger_workload(), cfg);
        session.replay(&exactly_once_suite()).expect("replays")
    }
}

impl Subject for Crdts {
    fn name(&self) -> &'static str {
        "crdts"
    }
    fn workload(&self) -> Workload {
        crdts_workload()
    }
    fn run(&self, cfg: &RunConfig) -> Report {
        let mut session = Session::new(CrdtsModel::new(2));
        configure(&mut session, crdts_workload(), cfg);
        session
            .replay(&TestSuite::new().with(er_pi::Assertion::replicas_converge("converge")))
            .expect("replays")
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let cap: usize = get("--cap")
        .and_then(|v| v.parse().ok())
        .unwrap_or(er_pi_bench::CAP)
        .max(1);
    let pretty = args.iter().any(|a| a == "--pretty");

    let subjects: Vec<Box<dyn Subject>> = vec![Box::new(Ledger), Box::new(Crdts)];
    let mut points = Vec::new();
    for subject in &subjects {
        let workload = subject.workload();
        for (label, space) in spaces() {
            let plans = match &space {
                Some(space) => enumerate_plans(&workload, space).len(),
                None => 1,
            };
            let cfg = |workers, incremental, causal| RunConfig {
                space: space.clone(),
                workers,
                incremental,
                causal,
                cap,
            };
            let unpruned = subject.run(&cfg(1, false, false));
            let started = Instant::now();
            let report = subject.run(&cfg(1, false, true));
            let wall_ms = started.elapsed().as_millis();
            let parallel = subject.run(&cfg(4, true, true));
            let fault_dependent_violations = report
                .violations
                .iter()
                .filter(|v| {
                    v.interleaving
                        .as_ref()
                        .is_some_and(|il| !il.faults().is_empty())
                })
                .count();
            let stats = report.prune_stats;
            points.push(Point {
                subject: subject.name(),
                space: label,
                plans,
                replays_unpruned: unpruned.explored,
                replays: report.explored,
                reduction: unpruned.explored as f64 / report.explored.max(1) as f64,
                candidates_examined: stats.as_ref().map_or(0, |s| s.examined()),
                causal_rejected: stats.as_ref().map_or(0, |s| s.causal_rejected),
                violations: report.violations.len(),
                fault_dependent_violations,
                wall_ms,
                divergence: report.diff(&parallel),
            });
        }
    }

    let all_reports_identical = points.iter().all(|p| p.divergence.is_none());
    let fault_model_sound = points.iter().all(|p| {
        if p.space == "none" {
            p.violations == 0
        } else {
            p.violations == p.fault_dependent_violations
        }
    });

    let doc = Document {
        cap,
        points,
        all_reports_identical,
        fault_model_sound,
    };

    let rendered = if pretty {
        serde_json::to_string_pretty(&doc)
    } else {
        serde_json::to_string(&doc)
    }
    .expect("report serializes");
    println!("{rendered}");
}

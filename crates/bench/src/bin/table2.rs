//! Regenerates Table 2: recognizing misconceptions with ER-π.
//!
//! For every applicable (subject, misconception) cell, the harness seeds
//! the misconception into a workload on the subject model (per §6.2's
//! seeding strategies), replays all interleavings, and marks the cell if
//! the built-in detector finds a violation.

use er_pi::Misconception;
use er_pi_subjects::misconception_matrix;

fn main() {
    println!("Table 2. Recognizing misconceptions with ER-π.");
    println!();
    for m in Misconception::all() {
        println!("  #{}: {}", m.number(), m.statement());
    }
    println!();
    println!(
        "{:<11} {:^4} {:^4} {:^4} {:^4} {:^4}",
        "Subject", "#1", "#2", "#3", "#4", "#5"
    );
    println!("{}", "-".repeat(36));
    for (subject, row) in misconception_matrix() {
        print!("{:<11}", subject.to_string());
        for cell in row {
            print!(" {:^4}", cell.to_string());
        }
        println!();
    }
}

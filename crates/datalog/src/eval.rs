//! Bottom-up (semi-naive) rule evaluation.

use crate::db::Bindings;
use crate::{Atom, BodyItem, Database, Rule, Term};

fn substitute(atom: &Atom, bindings: &Bindings) -> Atom {
    Atom {
        relation: atom.relation.clone(),
        terms: atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v) => bindings
                    .get(v)
                    .map(|c| Term::Const(c.clone()))
                    .unwrap_or_else(|| t.clone()),
                Term::Const(_) => t.clone(),
            })
            .collect(),
    }
}

fn resolve(term: &Term, bindings: &Bindings) -> Option<crate::Const> {
    match term {
        Term::Const(c) => Some(c.clone()),
        Term::Var(v) => bindings.get(v).cloned(),
    }
}

/// Evaluates one rule, requiring the relational subgoal at `delta_pos` to
/// match against `delta` (semi-naive restriction); everything else matches
/// against `full`. Returns the derived ground heads.
fn derive(rule: &Rule, full: &Database, delta: &Database, delta_pos: usize) -> Vec<Atom> {
    let mut states: Vec<Bindings> = vec![Bindings::new()];
    let mut atom_index = 0usize;
    for item in &rule.body {
        match item {
            BodyItem::Atom(pattern) => {
                let source = if atom_index == delta_pos { delta } else { full };
                atom_index += 1;
                let mut next = Vec::new();
                for bindings in &states {
                    let concrete = substitute(pattern, bindings);
                    for hit in source.query(&concrete) {
                        let mut merged = bindings.clone();
                        merged.extend(hit);
                        next.push(merged);
                    }
                }
                states = next;
            }
            BodyItem::Compare { op, lhs, rhs } => {
                states.retain(|bindings| {
                    match (resolve(lhs, bindings), resolve(rhs, bindings)) {
                        (Some(a), Some(b)) => op.apply(&a, &b),
                        // Unbound operands: the comparison cannot hold yet;
                        // rules should order comparisons after the atoms
                        // binding their variables.
                        _ => false,
                    }
                });
            }
        }
        if states.is_empty() {
            return Vec::new();
        }
    }
    states
        .into_iter()
        .map(|bindings| {
            let head = substitute(&rule.head, &bindings);
            assert!(
                head.is_ground(),
                "rule is not range-restricted: {} leaves variables unbound",
                rule
            );
            head
        })
        .collect()
}

fn relational_subgoals(rule: &Rule) -> usize {
    rule.body
        .iter()
        .filter(|i| matches!(i, BodyItem::Atom(_)))
        .count()
}

/// Runs `rules` bottom-up over `db` until fixpoint (semi-naive: each
/// iteration only joins through the facts derived in the previous one).
/// Returns the number of new facts derived.
///
/// # Panics
///
/// Panics if a rule's head still contains variables after applying its body
/// bindings (not range-restricted).
pub fn evaluate(rules: &[Rule], db: &mut Database) -> usize {
    let mut total_new = 0usize;
    // Initial delta: everything currently in the database.
    let mut delta = db.clone();
    loop {
        let mut next_delta = Database::new();
        for rule in rules {
            let n = relational_subgoals(rule).max(1);
            for delta_pos in 0..n {
                for head in derive(rule, db, &delta, delta_pos) {
                    if !db.contains(&head) && !next_delta.contains(&head) {
                        next_delta.insert(head);
                    }
                }
            }
        }
        if next_delta.is_empty() {
            return total_new;
        }
        for name in next_delta.relation_names().to_vec() {
            for tuple in next_delta.relation(name) {
                let fact = Atom {
                    relation: name.to_owned(),
                    terms: tuple.iter().cloned().map(Term::Const).collect(),
                };
                if db.insert(fact) {
                    total_new += 1;
                }
            }
        }
        delta = next_delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, fact, var, CmpOp};

    #[test]
    fn transitive_closure() {
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            db.insert(fact("edge", [a, b]));
        }
        let rules = vec![
            Rule::new(atom("path", [var("X"), var("Y")])).when(atom("edge", [var("X"), var("Y")])),
            Rule::new(atom("path", [var("X"), var("Z")]))
                .when(atom("path", [var("X"), var("Y")]))
                .when(atom("edge", [var("Y"), var("Z")])),
        ];
        let new = evaluate(&rules, &mut db);
        assert_eq!(db.relation_len("path"), 6); // 1-2,2-3,3-4,1-3,2-4,1-4
        assert_eq!(new, 6);
        assert!(db.contains(&fact("path", [1, 4])));
        assert!(!db.contains(&fact("path", [4, 1])));
    }

    #[test]
    fn evaluation_is_idempotent() {
        let mut db = Database::new();
        db.insert(fact("edge", [1, 2]));
        let rules =
            vec![Rule::new(atom("path", [var("X"), var("Y")]))
                .when(atom("edge", [var("X"), var("Y")]))];
        assert_eq!(evaluate(&rules, &mut db), 1);
        assert_eq!(evaluate(&rules, &mut db), 0, "second run derives nothing");
    }

    #[test]
    fn comparisons_filter_derivations() {
        let mut db = Database::new();
        for i in 0..5i64 {
            db.insert(fact("num", [i]));
        }
        let rules = vec![Rule::new(atom("big", [var("X")]))
            .when(atom("num", [var("X")]))
            .filter(var("X"), CmpOp::Gt, Term::from(2))];
        evaluate(&rules, &mut db);
        assert_eq!(db.relation_len("big"), 2); // 3 and 4
        assert!(db.contains(&fact("big", [3])));
        assert!(!db.contains(&fact("big", [2])));
    }

    #[test]
    fn join_across_two_relations() {
        let mut db = Database::new();
        db.insert(fact("parent", ["ada", "byron"]));
        db.insert(fact("parent", ["byron", "carol"]));
        db.insert(fact("female", ["ada"]));
        let rules = vec![Rule::new(atom("grandmother", [var("G"), var("C")]))
            .when(atom("female", [var("G")]))
            .when(atom("parent", [var("G"), var("P")]))
            .when(atom("parent", [var("P"), var("C")]))];
        evaluate(&rules, &mut db);
        assert!(db.contains(&fact("grandmother", ["ada", "carol"])));
        assert_eq!(db.relation_len("grandmother"), 1);
    }

    #[test]
    #[should_panic(expected = "range-restricted")]
    fn unbound_head_variable_panics() {
        let mut db = Database::new();
        db.insert(fact("a", [1]));
        let rules = vec![Rule::new(atom("b", [var("X"), var("FREE")])).when(atom("a", [var("X")]))];
        evaluate(&rules, &mut db);
    }

    #[test]
    fn self_join_counts_pairs() {
        let mut db = Database::new();
        for i in 0..3i64 {
            db.insert(fact("item", [i]));
        }
        // distinct_pair(X, Y) :- item(X), item(Y), X < Y.
        let rules = vec![Rule::new(atom("distinct_pair", [var("X"), var("Y")]))
            .when(atom("item", [var("X")]))
            .when(atom("item", [var("Y")]))
            .filter(var("X"), CmpOp::Lt, var("Y"))];
        evaluate(&rules, &mut db);
        assert_eq!(db.relation_len("distinct_pair"), 3);
    }
}

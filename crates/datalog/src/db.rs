//! The fact database.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use crate::{Atom, Const, Term};

/// A set of relations holding ground facts, with pattern queries and JSON
/// persistence.
///
/// ```
/// use er_pi_datalog::{atom, fact, var, Database};
///
/// let mut db = Database::new();
/// db.insert(fact("pos", [0, 0, 5]));
/// db.insert(fact("pos", [0, 1, 3]));
///
/// let hits = db.query(&atom("pos", [0.into(), var("Idx"), var("Ev")]));
/// assert_eq!(hits.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Database {
    relations: BTreeMap<String, BTreeSet<Vec<Const>>>,
}

/// One query answer: variable name → bound constant.
pub type Bindings = HashMap<String, Const>;

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a ground fact. Returns `true` if it was new.
    ///
    /// # Panics
    ///
    /// Panics if `fact` contains variables.
    pub fn insert(&mut self, fact: Atom) -> bool {
        let tuple = fact.ground_tuple();
        self.relations
            .entry(fact.relation)
            .or_default()
            .insert(tuple)
    }

    /// Returns `true` if the ground fact is present.
    pub fn contains(&self, fact: &Atom) -> bool {
        self.relations
            .get(&fact.relation)
            .is_some_and(|rel| rel.contains(&fact.ground_tuple()))
    }

    /// All tuples of `relation` (empty slice view if absent).
    pub fn relation(&self, relation: &str) -> Vec<&Vec<Const>> {
        self.relations
            .get(relation)
            .map(|rel| rel.iter().collect())
            .unwrap_or_default()
    }

    /// Number of facts in `relation`.
    pub fn relation_len(&self, relation: &str) -> usize {
        self.relations.get(relation).map_or(0, BTreeSet::len)
    }

    /// Total fact count.
    pub fn len(&self) -> usize {
        self.relations.values().map(BTreeSet::len).sum()
    }

    /// Returns `true` if no facts exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Relation names, sorted.
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.keys().map(String::as_str).collect()
    }

    /// Matches `pattern` against the facts of its relation, returning one
    /// [`Bindings`] per matching tuple. Repeated variables must unify.
    pub fn query(&self, pattern: &Atom) -> Vec<Bindings> {
        let Some(rel) = self.relations.get(&pattern.relation) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        'tuples: for tuple in rel {
            if tuple.len() != pattern.terms.len() {
                continue;
            }
            let mut bindings = Bindings::new();
            for (term, value) in pattern.terms.iter().zip(tuple) {
                match term {
                    Term::Const(c) => {
                        if c != value {
                            continue 'tuples;
                        }
                    }
                    Term::Var(v) => match bindings.get(v) {
                        Some(bound) if bound != value => continue 'tuples,
                        Some(_) => {}
                        None => {
                            bindings.insert(v.clone(), value.clone());
                        }
                    },
                }
            }
            out.push(bindings);
        }
        out
    }

    /// Serializes the database to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("database serializes")
    }

    /// Restores a database from [`Database::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fact, var};

    #[test]
    fn insert_is_set_semantics() {
        let mut db = Database::new();
        assert!(db.insert(fact("r", [1])));
        assert!(!db.insert(fact("r", [1])));
        assert_eq!(db.len(), 1);
        assert!(db.contains(&fact("r", [1])));
        assert!(!db.contains(&fact("r", [2])));
    }

    #[test]
    fn query_binds_variables() {
        let mut db = Database::new();
        db.insert(fact("edge", [1, 2]));
        db.insert(fact("edge", [1, 3]));
        db.insert(fact("edge", [2, 3]));
        let hits = db.query(&crate::atom("edge", [Term::from(1), var("Y")]));
        let mut ys: Vec<i64> = hits
            .iter()
            .map(|b| match &b["Y"] {
                Const::Int(i) => *i,
                _ => panic!(),
            })
            .collect();
        ys.sort_unstable();
        assert_eq!(ys, vec![2, 3]);
    }

    #[test]
    fn repeated_variables_must_unify() {
        let mut db = Database::new();
        db.insert(fact("pair", [1, 1]));
        db.insert(fact("pair", [1, 2]));
        let hits = db.query(&crate::atom("pair", [var("X"), var("X")]));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0]["X"], Const::Int(1));
    }

    #[test]
    fn arity_mismatches_do_not_match() {
        let mut db = Database::new();
        db.insert(fact("r", [1, 2]));
        assert!(db.query(&crate::atom("r", [var("X")])).is_empty());
    }

    #[test]
    fn unknown_relation_queries_are_empty() {
        let db = Database::new();
        assert!(db.query(&crate::atom("none", [var("X")])).is_empty());
        assert_eq!(db.relation_len("none"), 0);
    }

    #[test]
    fn json_roundtrip() {
        let mut db = Database::new();
        db.insert(fact("pos", [0, 1, 2]));
        db.insert(fact("name", ["alpha"]));
        let json = db.to_json();
        let back = Database::from_json(&json).unwrap();
        assert_eq!(back, db);
        assert!(Database::from_json("not json").is_err());
    }

    #[test]
    fn relation_names_sorted() {
        let mut db = Database::new();
        db.insert(fact("zeta", [1]));
        db.insert(fact("alpha", [1]));
        assert_eq!(db.relation_names(), vec!["alpha", "zeta"]);
    }
}

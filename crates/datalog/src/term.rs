//! Terms, atoms, and rules.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A ground constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Const {
    /// Integer constant.
    Int(i64),
    /// String (symbol) constant.
    Str(String),
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Int(i) => write!(f, "{i}"),
            Const::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Const {
    fn from(i: i64) -> Self {
        Const::Int(i)
    }
}

impl From<i32> for Const {
    fn from(i: i32) -> Self {
        Const::Int(i64::from(i))
    }
}

impl From<u32> for Const {
    fn from(i: u32) -> Self {
        Const::Int(i64::from(i))
    }
}

impl From<usize> for Const {
    fn from(i: usize) -> Self {
        Const::Int(i as i64)
    }
}

impl From<&str> for Const {
    fn from(s: &str) -> Self {
        Const::Str(s.to_owned())
    }
}

impl From<String> for Const {
    fn from(s: String) -> Self {
        Const::Str(s)
    }
}

/// A term: a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Term {
    /// Named logic variable.
    Var(String),
    /// Ground constant.
    Const(Const),
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl<C: Into<Const>> From<C> for Term {
    fn from(c: C) -> Self {
        Term::Const(c.into())
    }
}

/// Creates a variable term.
///
/// ```
/// use er_pi_datalog::{var, Term};
/// assert_eq!(var("X"), Term::Var("X".into()));
/// ```
pub fn var(name: &str) -> Term {
    Term::Var(name.to_owned())
}

/// An atom: `relation(t1, …, tk)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Atom {
    /// Relation name.
    pub relation: String,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Returns `true` if every term is a constant.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(|t| matches!(t, Term::Const(_)))
    }

    /// Extracts the constant tuple of a ground atom.
    ///
    /// # Panics
    ///
    /// Panics if the atom contains variables.
    pub fn ground_tuple(&self) -> Vec<Const> {
        self.terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => c.clone(),
                Term::Var(v) => panic!("atom is not ground: variable {v}"),
            })
            .collect()
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str(")")
    }
}

/// Builds an atom from mixed terms.
///
/// ```
/// use er_pi_datalog::{atom, var};
/// let a = atom("pos", [var("IL"), var("Idx"), var("Ev")]);
/// assert_eq!(a.relation, "pos");
/// ```
pub fn atom<T: Into<Term>>(relation: &str, terms: impl IntoIterator<Item = T>) -> Atom {
    Atom {
        relation: relation.to_owned(),
        terms: terms.into_iter().map(Into::into).collect(),
    }
}

/// Builds a ground fact.
///
/// ```
/// use er_pi_datalog::fact;
/// let f = fact("edge", [1, 2]);
/// assert!(f.is_ground());
/// ```
pub fn fact<C: Into<Const>>(relation: &str, consts: impl IntoIterator<Item = C>) -> Atom {
    Atom {
        relation: relation.to_owned(),
        terms: consts.into_iter().map(|c| Term::Const(c.into())).collect(),
    }
}

/// Comparison operators available as built-in body items.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `≠`
    Ne,
}

impl CmpOp {
    /// Applies the comparison to two constants (integers compare
    /// numerically, strings lexicographically; mixed types only support
    /// equality, which is `false`).
    pub fn apply(self, a: &Const, b: &Const) -> bool {
        use std::cmp::Ordering;
        let ord = match (a, b) {
            (Const::Int(x), Const::Int(y)) => x.cmp(y),
            (Const::Str(x), Const::Str(y)) => x.cmp(y),
            _ => return matches!(self, CmpOp::Ne),
        };
        matches!(
            (self, ord),
            (CmpOp::Lt, Ordering::Less)
                | (CmpOp::Le, Ordering::Less | Ordering::Equal)
                | (CmpOp::Gt, Ordering::Greater)
                | (CmpOp::Ge, Ordering::Greater | Ordering::Equal)
                | (CmpOp::Eq, Ordering::Equal)
                | (CmpOp::Ne, Ordering::Less | Ordering::Greater)
        )
    }
}

/// One body item of a rule: a relational atom or a built-in comparison.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BodyItem {
    /// Relational subgoal.
    Atom(Atom),
    /// Built-in comparison between two terms.
    Compare {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Term,
        /// Right operand.
        rhs: Term,
    },
}

/// A Datalog rule: `head :- body1, …, bodyk.`
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rule {
    /// Derived atom.
    pub head: Atom,
    /// Subgoals.
    pub body: Vec<BodyItem>,
}

impl Rule {
    /// Starts a rule with the given head.
    pub fn new(head: Atom) -> Self {
        Rule {
            head,
            body: Vec::new(),
        }
    }

    /// Adds a relational subgoal.
    #[must_use]
    pub fn when(mut self, atom: Atom) -> Self {
        self.body.push(BodyItem::Atom(atom));
        self
    }

    /// Adds a comparison subgoal.
    #[must_use]
    pub fn filter(mut self, lhs: Term, op: CmpOp, rhs: Term) -> Self {
        self.body.push(BodyItem::Compare { op, lhs, rhs });
        self
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        for (i, item) in self.body.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            match item {
                BodyItem::Atom(a) => write!(f, "{a}")?,
                BodyItem::Compare { op, lhs, rhs } => {
                    let sym = match op {
                        CmpOp::Lt => "<",
                        CmpOp::Le => "<=",
                        CmpOp::Gt => ">",
                        CmpOp::Ge => ">=",
                        CmpOp::Eq => "=",
                        CmpOp::Ne => "!=",
                    };
                    write!(f, "{lhs} {sym} {rhs}")?;
                }
            }
        }
        f.write_str(".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_display() {
        assert_eq!(Const::Int(3).to_string(), "3");
        assert_eq!(Const::from("x").to_string(), "\"x\"");
    }

    #[test]
    fn ground_detection() {
        assert!(fact("r", [1, 2]).is_ground());
        assert!(!atom("r", [var("X")]).is_ground());
        assert_eq!(fact("r", [1]).ground_tuple(), vec![Const::Int(1)]);
    }

    #[test]
    #[should_panic(expected = "not ground")]
    fn ground_tuple_rejects_variables() {
        atom("r", [var("X")]).ground_tuple();
    }

    #[test]
    fn comparisons() {
        assert!(CmpOp::Lt.apply(&Const::Int(1), &Const::Int(2)));
        assert!(!CmpOp::Lt.apply(&Const::Int(2), &Const::Int(2)));
        assert!(CmpOp::Le.apply(&Const::Int(2), &Const::Int(2)));
        assert!(CmpOp::Ne.apply(&Const::from("a"), &Const::from("b")));
        assert!(CmpOp::Eq.apply(&Const::from("a"), &Const::from("a")));
        // Mixed types: only Ne holds.
        assert!(CmpOp::Ne.apply(&Const::Int(1), &Const::from("1")));
        assert!(!CmpOp::Eq.apply(&Const::Int(1), &Const::from("1")));
        assert!(!CmpOp::Lt.apply(&Const::Int(1), &Const::from("1")));
    }

    #[test]
    fn rule_display_reads_like_datalog() {
        let r = Rule::new(atom("p", [var("X")]))
            .when(atom("q", [var("X"), var("Y")]))
            .filter(var("Y"), CmpOp::Gt, Term::from(3));
        assert_eq!(r.to_string(), "p(X) :- q(X, Y), Y > 3.");
    }
}

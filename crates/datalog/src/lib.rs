//! A small Datalog engine and the deductive interleaving store.
//!
//! The paper manages interleavings in Datalog: "ER-π initially stores the
//! exhaustive set of n! interleavings in Datalog's deductive database, using
//! logic queries to perform the applicable pruning" (§5.1, Souffle dialect).
//! This crate substitutes Souffle with a self-contained engine:
//!
//! * [`Database`] — relations of ground facts with pattern queries,
//! * [`Rule`] / [`evaluate`] — positive Datalog with built-in comparisons,
//!   evaluated bottom-up (semi-naive) to fixpoint,
//! * [`InterleavingStore`] — the ER-π-specific schema: events and
//!   interleavings as relations, plus the derived `precedes` relation the
//!   pruning queries are written against,
//! * JSON persistence ([`Database::to_json`] / [`Database::from_json`]) —
//!   the paper *persists* generated interleavings before replaying them
//!   (§4.2).
//!
//! ```
//! use er_pi_datalog::{atom, fact, var, Database, Rule, evaluate};
//!
//! let mut db = Database::new();
//! db.insert(fact("edge", [1, 2]));
//! db.insert(fact("edge", [2, 3]));
//!
//! // path(X, Y) :- edge(X, Y).
//! // path(X, Z) :- path(X, Y), edge(Y, Z).
//! let rules = vec![
//!     Rule::new(atom("path", [var("X"), var("Y")]))
//!         .when(atom("edge", [var("X"), var("Y")])),
//!     Rule::new(atom("path", [var("X"), var("Z")]))
//!         .when(atom("path", [var("X"), var("Y")]))
//!         .when(atom("edge", [var("Y"), var("Z")])),
//! ];
//! evaluate(&rules, &mut db);
//! assert!(db.contains(&fact("path", [1, 3])));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod db;
mod eval;
mod store;
mod term;

pub use db::{Bindings, Database};
pub use eval::evaluate;
pub use store::InterleavingStore;
pub use term::{atom, fact, var, Atom, BodyItem, CmpOp, Const, Rule, Term};

//! The ER-π deductive interleaving store.

use er_pi_model::{EventId, EventKind, Interleaving, Workload};

use crate::{atom, fact, var, CmpOp, Database, Rule, Term};

/// Stores a workload and its generated interleavings as Datalog relations —
/// the reproduction of the paper's Souffle-backed persistence (§4.2, §5.1).
///
/// Schema:
///
/// * `event(Id, Replica, Kind)` — one fact per workload event,
/// * `pos(Il, Idx, Event)` — one fact per position of each stored
///   interleaving,
/// * `il(Il, Len)` — one fact per stored interleaving,
/// * `precedes(Il, A, B)` — derived: event `A` runs before `B` in `Il`.
///
/// ```
/// use er_pi_datalog::InterleavingStore;
/// use er_pi_model::{Interleaving, ReplicaId, Value, Workload};
///
/// let mut w = Workload::builder();
/// let x = w.update(ReplicaId::new(0), "add", [Value::from(1)]);
/// let y = w.update(ReplicaId::new(1), "remove", [Value::from(1)]);
/// let workload = w.build();
///
/// let mut store = InterleavingStore::new(&workload);
/// store.store(&Interleaving::new(vec![x, y]));
/// store.store(&Interleaving::new(vec![y, x]));
/// store.derive_precedes();
/// assert_eq!(store.interleavings_where_precedes(x, y), vec![0]);
/// ```
#[derive(Debug, Clone)]
pub struct InterleavingStore {
    db: Database,
    next_il: usize,
}

impl InterleavingStore {
    /// Creates a store seeded with `workload`'s event relation.
    pub fn new(workload: &Workload) -> Self {
        let mut db = Database::new();
        for ev in workload.events() {
            let kind = match &ev.kind {
                EventKind::LocalUpdate { op } => format!("update:{}", op.function()),
                EventKind::SyncSend { to, .. } => format!("sync_send:{to}"),
                EventKind::SyncExec { from, .. } => format!("sync_exec:{from}"),
                EventKind::Sync { to, .. } => format!("sync:{to}"),
                EventKind::External { label } => format!("external:{label}"),
            };
            db.insert(fact(
                "event",
                [
                    crate::Const::from(ev.id.raw()),
                    crate::Const::from(ev.replica.raw() as i64),
                    crate::Const::from(kind),
                ],
            ));
        }
        InterleavingStore { db, next_il: 0 }
    }

    /// Persists one interleaving; returns its store id.
    pub fn store(&mut self, il: &Interleaving) -> usize {
        let id = self.next_il;
        self.next_il += 1;
        self.db.insert(fact("il", [id, il.len()]));
        for (idx, &ev) in il.iter().enumerate() {
            self.db.insert(fact("pos", [id, idx, ev.index()]));
        }
        id
    }

    /// Persists a batch; returns the store ids.
    pub fn store_all<'a>(&mut self, ils: impl IntoIterator<Item = &'a Interleaving>) -> Vec<usize> {
        ils.into_iter().map(|il| self.store(il)).collect()
    }

    /// Number of stored interleavings.
    pub fn len(&self) -> usize {
        self.next_il
    }

    /// Returns `true` if nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.next_il == 0
    }

    /// Reconstructs interleaving `id` from its `pos` facts.
    pub fn interleaving(&self, id: usize) -> Option<Interleaving> {
        let hits = self
            .db
            .query(&atom("pos", [Term::from(id), var("Idx"), var("Ev")]));
        if hits.is_empty() {
            return None;
        }
        let mut slots: Vec<(i64, i64)> = hits
            .into_iter()
            .map(|b| {
                let idx = match &b["Idx"] {
                    crate::Const::Int(i) => *i,
                    _ => unreachable!(),
                };
                let ev = match &b["Ev"] {
                    crate::Const::Int(i) => *i,
                    _ => unreachable!(),
                };
                (idx, ev)
            })
            .collect();
        slots.sort_unstable();
        Some(Interleaving::new(
            slots
                .into_iter()
                .map(|(_, ev)| EventId::new(ev as u32))
                .collect(),
        ))
    }

    /// Derives the `precedes(Il, A, B)` relation with the rule
    /// `precedes(Il, A, B) :- pos(Il, I, A), pos(Il, J, B), I < J.`
    /// Returns the number of derived facts.
    pub fn derive_precedes(&mut self) -> usize {
        let rules = vec![Rule::new(atom("precedes", [var("Il"), var("A"), var("B")]))
            .when(atom("pos", [var("Il"), var("I"), var("A")]))
            .when(atom("pos", [var("Il"), var("J"), var("B")]))
            .filter(var("I"), CmpOp::Lt, var("J"))];
        crate::evaluate(&rules, &mut self.db)
    }

    /// Store ids of interleavings where `a` precedes `b` (requires a prior
    /// [`InterleavingStore::derive_precedes`]).
    pub fn interleavings_where_precedes(&self, a: EventId, b: EventId) -> Vec<usize> {
        let hits = self.db.query(&atom(
            "precedes",
            [var("Il"), Term::from(a.index()), Term::from(b.index())],
        ));
        let mut ids: Vec<usize> = hits
            .into_iter()
            .map(|bind| match &bind["Il"] {
                crate::Const::Int(i) => *i as usize,
                _ => unreachable!(),
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Read access to the raw database (custom queries).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the raw database (custom rules).
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Serializes facts + counter to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&(&self.db, self.next_il)).expect("store serializes")
    }

    /// Restores a store from [`InterleavingStore::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let (db, next_il) = serde_json::from_str(json)?;
        Ok(InterleavingStore { db, next_il })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_pi_model::{ReplicaId, Value};

    fn sample() -> (Workload, Vec<EventId>) {
        let mut w = Workload::builder();
        let a = w.update(ReplicaId::new(0), "add", [Value::from(1)]);
        let s = w.sync_pair(ReplicaId::new(0), ReplicaId::new(1), a);
        let b = w.update(ReplicaId::new(1), "remove", [Value::from(1)]);
        (w.build(), vec![a, s, b])
    }

    #[test]
    fn workload_events_become_facts() {
        let (w, _) = sample();
        let store = InterleavingStore::new(&w);
        assert_eq!(store.database().relation_len("event"), 3);
    }

    #[test]
    fn store_and_reconstruct_roundtrip() {
        let (w, ids) = sample();
        let mut store = InterleavingStore::new(&w);
        let il = Interleaving::new(vec![ids[2], ids[0], ids[1]]);
        let sid = store.store(&il);
        assert_eq!(store.interleaving(sid), Some(il));
        assert_eq!(store.interleaving(99), None);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn precedes_queries_select_matching_interleavings() {
        let (w, ids) = sample();
        let mut store = InterleavingStore::new(&w);
        store.store(&Interleaving::new(vec![ids[0], ids[1], ids[2]])); // il 0
        store.store(&Interleaving::new(vec![ids[2], ids[0], ids[1]])); // il 1
        store.derive_precedes();
        assert_eq!(store.interleavings_where_precedes(ids[0], ids[2]), vec![0]);
        assert_eq!(store.interleavings_where_precedes(ids[2], ids[0]), vec![1]);
        assert_eq!(
            store.interleavings_where_precedes(ids[0], ids[1]),
            vec![0, 1]
        );
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let (w, ids) = sample();
        let mut store = InterleavingStore::new(&w);
        store.store(&Interleaving::new(vec![ids[0], ids[1], ids[2]]));
        let json = store.to_json();
        let back = InterleavingStore::from_json(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(
            back.interleaving(0),
            Some(Interleaving::new(vec![ids[0], ids[1], ids[2]]))
        );
    }

    #[test]
    fn batch_store_assigns_sequential_ids() {
        let (w, ids) = sample();
        let mut store = InterleavingStore::new(&w);
        let il1 = Interleaving::new(vec![ids[0], ids[1], ids[2]]);
        let il2 = Interleaving::new(vec![ids[2], ids[1], ids[0]]);
        let assigned = store.store_all([&il1, &il2]);
        assert_eq!(assigned, vec![0, 1]);
    }
}

//! Property tests for the Datalog engine: the semi-naive evaluator agrees
//! with a trivially correct reference on randomized edge relations.

use std::collections::BTreeSet;

use proptest::prelude::*;

use er_pi_datalog::{atom, fact, var, Database, Rule};

/// Reference transitive closure by Floyd–Warshall-style saturation.
fn reference_closure(edges: &[(i64, i64)]) -> BTreeSet<(i64, i64)> {
    let mut closure: BTreeSet<(i64, i64)> = edges.iter().copied().collect();
    loop {
        let mut added = Vec::new();
        for &(a, b) in &closure {
            for &(c, d) in &closure {
                if b == c && !closure.contains(&(a, d)) {
                    added.push((a, d));
                }
            }
        }
        if added.is_empty() {
            return closure;
        }
        closure.extend(added);
    }
}

fn engine_closure(edges: &[(i64, i64)]) -> BTreeSet<(i64, i64)> {
    let mut db = Database::new();
    for &(a, b) in edges {
        db.insert(fact("edge", [a, b]));
    }
    let rules = vec![
        Rule::new(atom("path", [var("X"), var("Y")])).when(atom("edge", [var("X"), var("Y")])),
        Rule::new(atom("path", [var("X"), var("Z")]))
            .when(atom("path", [var("X"), var("Y")]))
            .when(atom("edge", [var("Y"), var("Z")])),
    ];
    er_pi_datalog::evaluate(&rules, &mut db);
    db.relation("path")
        .into_iter()
        .map(|tuple| {
            let get = |i: usize| match &tuple[i] {
                er_pi_datalog::Const::Int(v) => *v,
                other => panic!("unexpected constant {other:?}"),
            };
            (get(0), get(1))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Semi-naive evaluation computes exactly the reference closure.
    #[test]
    fn closure_matches_reference(
        edges in proptest::collection::vec((0i64..8, 0i64..8), 0..16)
    ) {
        prop_assert_eq!(engine_closure(&edges), reference_closure(&edges));
    }

    /// Evaluation is deterministic and idempotent: re-running the rules on
    /// the saturated database derives nothing new.
    #[test]
    fn evaluation_reaches_a_fixpoint(
        edges in proptest::collection::vec((0i64..6, 0i64..6), 0..12)
    ) {
        let mut db = Database::new();
        for &(a, b) in &edges {
            db.insert(fact("edge", [a, b]));
        }
        let rules = vec![
            Rule::new(atom("path", [var("X"), var("Y")]))
                .when(atom("edge", [var("X"), var("Y")])),
            Rule::new(atom("path", [var("X"), var("Z")]))
                .when(atom("path", [var("X"), var("Y")]))
                .when(atom("edge", [var("Y"), var("Z")])),
        ];
        er_pi_datalog::evaluate(&rules, &mut db);
        let n = db.relation_len("path");
        let newly = er_pi_datalog::evaluate(&rules, &mut db);
        prop_assert_eq!(newly, 0);
        prop_assert_eq!(db.relation_len("path"), n);
    }

    /// JSON persistence round-trips arbitrary fact sets.
    #[test]
    fn database_json_roundtrip(
        facts in proptest::collection::vec((0u8..3, 0i64..40, 0i64..40), 0..20)
    ) {
        let mut db = Database::new();
        for (rel, a, b) in facts {
            db.insert(fact(&format!("r{rel}"), [a, b]));
        }
        let back = Database::from_json(&db.to_json()).unwrap();
        prop_assert_eq!(back, db);
    }
}

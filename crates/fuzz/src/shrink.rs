//! Delta-debugging shrinker: reduces a failing [`FuzzCase`] to a minimal
//! (workload, fault schedule) pair.
//!
//! The vendored proptest stand-in does no shrinking, so the fuzzer carries
//! its own: a fixpoint loop that first tries to remove workload entries
//! (cascading over tracked-sync references and remapping all indices) and
//! then tries to remove scheduled faults, keeping a candidate only when the
//! caller's predicate still accepts it. Because the campaign's predicate
//! requires the finding to stay *fault-dependent*, the shrinker can never
//! "simplify" a case into a plain ordering bug — e.g. removing a crdts
//! anti-entropy chain entry would make fault-free interleavings diverge,
//! and that candidate is rejected.

use er_pi_model::{FaultKind, ReplicaId};

use crate::spec::{FuzzCase, SpecEntry, WorkloadSpec};

/// Shrinks `case` while `still_fails` keeps returning `true` for the
/// shrunk candidate. The input case itself must satisfy the predicate.
///
/// Deterministic: candidates are tried in a fixed order (entries
/// last-to-first, then faults last-to-first) until a full pass makes no
/// progress, so equal inputs shrink to equal outputs.
pub fn shrink(case: &FuzzCase, still_fails: &dyn Fn(&FuzzCase) -> bool) -> FuzzCase {
    debug_assert!(still_fails(case), "shrinking a case that does not fail");
    let mut current = case.clone();
    loop {
        let mut progressed = false;

        let mut idx = current.spec.entries.len();
        while idx > 0 {
            idx -= 1;
            if let Some(candidate) = remove_entry(&current, idx) {
                if still_fails(&candidate) {
                    current = candidate;
                    progressed = true;
                    idx = idx.min(current.spec.entries.len());
                }
            }
        }

        let mut fault = current.faults.len();
        while fault > 0 {
            fault -= 1;
            if current.faults.len() <= 1 {
                break; // keep at least one fault: the pair is the finding
            }
            let mut candidate = current.clone();
            candidate.faults.remove(fault);
            if still_fails(&candidate) {
                current = candidate;
                progressed = true;
            }
        }

        // Canonicalization: shrink op arguments to 1 and relabel replicas
        // by first appearance, so every instance of the same bug shrinks
        // to the same fingerprint no matter which seed found it — the
        // property that keeps the regression corpus small and stable.
        for i in 0..current.spec.entries.len() {
            let SpecEntry::Op { args, .. } = &current.spec.entries[i] else {
                continue;
            };
            for j in 0..args.len() {
                let mut candidate = current.clone();
                let SpecEntry::Op { args, .. } = &mut candidate.spec.entries[i] else {
                    unreachable!()
                };
                if args[j] == 1 {
                    continue;
                }
                args[j] = 1;
                if still_fails(&candidate) {
                    current = candidate;
                    progressed = true;
                }
            }
        }
        if let Some(candidate) = canonicalize_replicas(&current) {
            if still_fails(&candidate) {
                current = candidate;
                progressed = true;
            }
        }

        if !progressed {
            return current;
        }
    }
}

/// Relabels replicas in first-appearance order and drops unused ones,
/// remapping sync endpoints and fault-kind replica references. Returns
/// `None` when the case is already canonical (or references a replica that
/// never acts, which the generators never produce).
fn canonicalize_replicas(case: &FuzzCase) -> Option<FuzzCase> {
    let mut map: Vec<Option<u16>> = vec![None; usize::from(case.spec.replicas)];
    let mut next = 0u16;
    let mut assign = |map: &mut Vec<Option<u16>>, old: u16| {
        let slot = &mut map[usize::from(old)];
        if slot.is_none() {
            *slot = Some(next);
            next += 1;
        }
    };
    for entry in &case.spec.entries {
        match entry {
            SpecEntry::Op { replica, .. } => assign(&mut map, *replica),
            SpecEntry::SyncPair { from, to, .. } => {
                assign(&mut map, *from);
                assign(&mut map, *to);
            }
        }
    }
    let lookup = |old: u16| map[usize::from(old)];
    let lookup_id = |old: ReplicaId| lookup(old.raw()).map(ReplicaId::new);

    let entries: Vec<SpecEntry> = case
        .spec
        .entries
        .iter()
        .map(|entry| match entry {
            SpecEntry::Op {
                replica,
                function,
                args,
            } => SpecEntry::Op {
                replica: lookup(*replica).expect("acting replica was assigned"),
                function: function.clone(),
                args: args.clone(),
            },
            SpecEntry::SyncPair { from, to, of } => SpecEntry::SyncPair {
                from: lookup(*from).expect("sender was assigned"),
                to: lookup(*to).expect("receiver was assigned"),
                of: *of,
            },
        })
        .collect();

    let mut faults = Vec::with_capacity(case.faults.len());
    for fault in &case.faults {
        let kind = match fault.kind {
            FaultKind::Partition { from, to } => FaultKind::Partition {
                from: lookup_id(from)?,
                to: lookup_id(to)?,
            },
            FaultKind::Heal { from, to } => FaultKind::Heal {
                from: lookup_id(from)?,
                to: lookup_id(to)?,
            },
            FaultKind::CrashRestart { replica } => FaultKind::CrashRestart {
                replica: lookup_id(replica)?,
            },
            other => other,
        };
        faults.push(crate::spec::SpecFault {
            anchor: fault.anchor,
            kind,
        });
    }

    let candidate = FuzzCase {
        target: case.target,
        spec: WorkloadSpec {
            replicas: next,
            entries,
            chain_from: case.spec.chain_from,
        },
        faults,
    };
    if candidate == *case {
        return None;
    }
    candidate.spec.validate().ok()?;
    Some(candidate)
}

/// Removes entry `idx` (plus, transitively, every tracked sync that
/// references a removed entry), remapping indices in `of`, fault anchors,
/// and `chain_from`. Returns `None` when the removal leaves an empty or
/// invalid spec.
fn remove_entry(case: &FuzzCase, idx: usize) -> Option<FuzzCase> {
    let entries = &case.spec.entries;
    let mut removed = vec![false; entries.len()];
    removed[idx] = true;
    // Cascade: a tracked sync whose `of` is gone must go too.
    loop {
        let mut changed = false;
        for (i, entry) in entries.iter().enumerate() {
            if removed[i] {
                continue;
            }
            if let SpecEntry::SyncPair { of: Some(of), .. } = entry {
                if removed[*of] {
                    removed[i] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut map: Vec<Option<usize>> = vec![None; entries.len()];
    let mut new_entries = Vec::with_capacity(entries.len() - 1);
    for (i, entry) in entries.iter().enumerate() {
        if removed[i] {
            continue;
        }
        map[i] = Some(new_entries.len());
        let mut entry = entry.clone();
        if let SpecEntry::SyncPair { of: Some(of), .. } = &mut entry {
            *of = map[*of].expect("`of` precedes its sync and survived the cascade");
        }
        new_entries.push(entry);
    }
    if new_entries.is_empty() {
        return None;
    }

    // Faults anchored on removed entries are dropped with them.
    let faults: Vec<_> = case
        .faults
        .iter()
        .filter_map(|f| {
            map[f.anchor].map(|anchor| crate::spec::SpecFault {
                anchor,
                kind: f.kind,
            })
        })
        .collect();
    if faults.is_empty() {
        return None; // a case without faults cannot stay fault-dependent
    }

    // The chain head moves to the first surviving chain entry, if any.
    let chain_from = case
        .spec
        .chain_from
        .and_then(|chain| (chain..entries.len()).find_map(|i| map[i]));

    let candidate = FuzzCase {
        target: case.target,
        spec: crate::spec::WorkloadSpec {
            replicas: case.spec.replicas,
            entries: new_entries,
            chain_from,
        },
        faults,
    };
    candidate.spec.validate().ok()?;
    Some(candidate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{SpecFault, Target, WorkloadSpec};
    use er_pi_model::FaultKind;

    /// Three credits each followed by a tracked sync; one Duplicate fault
    /// on the middle sync.
    fn fat_ledger_case() -> FuzzCase {
        let mut entries = Vec::new();
        for i in 0..3u16 {
            entries.push(SpecEntry::Op {
                replica: i % 2,
                function: "credit".into(),
                args: vec![i64::from(i) + 10],
            });
            entries.push(SpecEntry::SyncPair {
                from: i % 2,
                to: (i + 1) % 2,
                of: Some(entries.len() - 1),
            });
        }
        FuzzCase {
            target: Target::Ledger,
            spec: WorkloadSpec {
                replicas: 2,
                entries,
                chain_from: None,
            },
            faults: vec![SpecFault {
                anchor: 3,
                kind: FaultKind::Duplicate,
            }],
        }
    }

    /// Structural predicate for tests: the faulted sync and its credit
    /// survive (stand-in for "the oracle still reports the finding").
    fn has_faulted_tracked_sync(case: &FuzzCase) -> bool {
        case.faults.iter().any(|f| {
            matches!(
                case.spec.entries.get(f.anchor),
                Some(SpecEntry::SyncPair { of: Some(_), .. })
            )
        })
    }

    #[test]
    fn shrinks_to_the_minimal_credit_sync_pair() {
        let shrunk = shrink(&fat_ledger_case(), &has_faulted_tracked_sync);
        assert_eq!(shrunk.spec.entries.len(), 2, "one credit + one sync");
        assert_eq!(shrunk.faults.len(), 1);
        assert_eq!(shrunk.faults[0].anchor, 1, "anchor remapped");
        assert!(has_faulted_tracked_sync(&shrunk));
    }

    #[test]
    fn removing_a_credit_cascades_over_its_sync() {
        let mut case = fat_ledger_case();
        case.faults[0].anchor = 5; // fault on the *last* sync
        let candidate = remove_entry(&case, 2).expect("valid removal");
        // Entry 2 (credit) takes entry 3 (its sync) with it; the fault on
        // entry 5 is re-anchored to the remapped index.
        assert_eq!(candidate.spec.entries.len(), 4);
        assert_eq!(candidate.faults[0].anchor, 3);
        assert!(has_faulted_tracked_sync(&candidate));
        candidate.spec.validate().expect("remap is consistent");
    }

    #[test]
    fn removal_that_drops_the_last_fault_is_rejected() {
        let case = fat_ledger_case();
        // Removing the faulted sync (directly or via its credit's cascade)
        // would leave zero faults.
        assert!(remove_entry(&case, 3).is_none());
        assert!(remove_entry(&case, 2).is_none());
    }

    #[test]
    fn shrinking_is_deterministic() {
        let a = shrink(&fat_ledger_case(), &has_faulted_tracked_sync);
        let b = shrink(&fat_ledger_case(), &has_faulted_tracked_sync);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}

//! Proptest strategies over the full `rdl` op vocabulary plus fault plans.
//!
//! The generators only emit *oracle-sound* cases — combinations of workload
//! shape and fault kinds for which a violation is always a real bug:
//!
//! * **Crdts**: arbitrary ops over the composed CRDT collection with
//!   optional tracked mid-run syncs, always terminated by a causally pinned
//!   gather-then-scatter anti-entropy chain, so every fault-free causal
//!   interleaving converges. Generated faults cannot defeat convergence for
//!   a state-based RDL: `Duplicate` re-absorbs an idempotent snapshot,
//!   `Drop` on a mid sync is repaired by the chain, `Delay { by: 1..=2 }`
//!   intrudes at most two steps past its anchor and only ever ships a
//!   monotone superset, and `CrashRestart` loses nothing durable. A
//!   convergence finding on this target therefore indicts the replay engine
//!   itself — the target exists to fuzz the engine, not the subject.
//! * **Ledger**: credits plus tracked syncs, with `Duplicate` faults on
//!   syncs — the schedule shape that falsifies the subject's seeded
//!   exactly-once assumption. No fault-free interleaving can double-apply
//!   a sync, so every finding is fault-dependent by construction.

use er_pi_model::{FaultKind, ReplicaId};
use proptest::test_runner::TestRng;
use proptest::Strategy;

use crate::spec::{FuzzCase, SpecEntry, SpecFault, Target, WorkloadSpec};

/// Local-update vocabulary for the crdts target: `(function, arity)`.
/// Deliberately excludes ops that fail on unobserved state (`set_remove`,
/// `list_delete`, …) so failed ops in a run always mean a fault fired.
const CRDTS_OPS: &[(&str, usize)] = &[
    ("set_add", 1),
    ("list_push", 1),
    ("counter_inc", 1),
    ("reg_set", 1),
    ("todo_create", 0),
];

/// A [`Strategy`] producing well-formed [`FuzzCase`]s for one target.
#[derive(Debug, Clone, Copy)]
pub struct CaseStrategy {
    target: Target,
}

/// Creates the case strategy for `target`.
pub fn case_strategy(target: Target) -> CaseStrategy {
    CaseStrategy { target }
}

impl Strategy for CaseStrategy {
    type Value = FuzzCase;

    fn generate(&self, rng: &mut TestRng) -> FuzzCase {
        let case = match self.target {
            Target::Crdts => gen_crdts(rng),
            Target::Ledger => gen_ledger(rng),
        };
        debug_assert!(case.spec.validate().is_ok(), "generator emitted bad spec");
        case
    }
}

/// A replica other than `not` in `[0, replicas)`.
fn other_replica(rng: &mut TestRng, replicas: u16, not: u16) -> u16 {
    let pick = rng.below(u64::from(replicas) - 1) as u16;
    if pick >= not {
        pick + 1
    } else {
        pick
    }
}

fn gen_crdts(rng: &mut TestRng) -> FuzzCase {
    let replicas = 2 + rng.below(2) as u16;
    let mut entries = Vec::new();

    let ops = 2 + rng.below(4) as usize;
    for _ in 0..ops {
        let replica = rng.below(u64::from(replicas)) as u16;
        let (function, arity) = CRDTS_OPS[rng.below(CRDTS_OPS.len() as u64) as usize];
        let args = (0..arity).map(|_| 1 + rng.below(4) as i64).collect();
        let op_idx = entries.len();
        entries.push(SpecEntry::Op {
            replica,
            function: (*function).to_owned(),
            args,
        });
        if rng.below(2) == 1 {
            entries.push(SpecEntry::SyncPair {
                from: replica,
                to: other_replica(rng, replicas, replica),
                of: Some(op_idx),
            });
        }
    }

    // The pinned anti-entropy chain: gather towards the last replica, then
    // scatter back. `WorkloadSpec::build` adds the causal dependencies that
    // keep it at the end of every explored interleaving.
    let chain_from = entries.len();
    for i in 0..replicas - 1 {
        entries.push(SpecEntry::SyncPair {
            from: i,
            to: i + 1,
            of: None,
        });
    }
    for i in (0..replicas - 1).rev() {
        entries.push(SpecEntry::SyncPair {
            from: i + 1,
            to: i,
            of: None,
        });
    }

    let spec = WorkloadSpec {
        replicas,
        entries,
        chain_from: Some(chain_from),
    };
    let faults = gen_crdts_faults(rng, &spec);
    FuzzCase {
        target: Target::Crdts,
        spec,
        faults,
    }
}

/// Convergence-safe fault candidates for a crdts spec (see module docs for
/// the safety argument), picked with distinct anchors under a budget of
/// one or two.
fn gen_crdts_faults(rng: &mut TestRng, spec: &WorkloadSpec) -> Vec<SpecFault> {
    let chain_from = spec.chain_from.unwrap_or(spec.entries.len());
    let mut candidates = Vec::new();
    for (i, entry) in spec.entries.iter().enumerate() {
        if entry.is_sync() {
            candidates.push(SpecFault {
                anchor: i,
                kind: FaultKind::Duplicate,
            });
            if i < chain_from {
                candidates.push(SpecFault {
                    anchor: i,
                    kind: FaultKind::Drop,
                });
                candidates.push(SpecFault {
                    anchor: i,
                    kind: FaultKind::Delay {
                        by: 1 + rng.below(2) as u32,
                    },
                });
            }
        }
        candidates.push(SpecFault {
            anchor: i,
            kind: FaultKind::CrashRestart {
                replica: ReplicaId::new(entry.replica()),
            },
        });
    }
    let want = 1 + rng.below(2) as usize;
    pick_distinct_anchors(rng, &candidates, want)
}

fn gen_ledger(rng: &mut TestRng) -> FuzzCase {
    let replicas = 2 + rng.below(2) as u16;
    let mut entries = Vec::new();
    let mut sync_indices = Vec::new();

    let credits = 1 + rng.below(4) as usize;
    for _ in 0..credits {
        let home = rng.below(u64::from(replicas)) as u16;
        let credit_idx = entries.len();
        entries.push(SpecEntry::Op {
            replica: home,
            function: "credit".to_owned(),
            args: vec![1 + rng.below(99) as i64],
        });
        sync_indices.push(entries.len());
        entries.push(SpecEntry::SyncPair {
            from: home,
            to: other_replica(rng, replicas, home),
            of: Some(credit_idx),
        });
    }

    let candidates: Vec<SpecFault> = sync_indices
        .iter()
        .map(|&anchor| SpecFault {
            anchor,
            kind: FaultKind::Duplicate,
        })
        .collect();
    let want = (1 + rng.below(2) as usize).min(candidates.len());
    let faults = pick_distinct_anchors(rng, &candidates, want);

    FuzzCase {
        target: Target::Ledger,
        spec: WorkloadSpec {
            replicas,
            entries,
            chain_from: None,
        },
        faults,
    }
}

/// Picks up to `want` candidates with pairwise-distinct anchors.
fn pick_distinct_anchors(
    rng: &mut TestRng,
    candidates: &[SpecFault],
    want: usize,
) -> Vec<SpecFault> {
    let mut picked: Vec<SpecFault> = Vec::new();
    // Bounded retries keep generation total even when anchors are scarce.
    for _ in 0..candidates.len().saturating_mul(4) {
        if picked.len() == want || candidates.is_empty() {
            break;
        }
        let fault = candidates[rng.below(candidates.len() as u64) as usize];
        if picked.iter().all(|p| p.anchor != fault.anchor) {
            picked.push(fault);
        }
    }
    picked.sort_by_key(|f| f.anchor);
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cases(target: Target, count: u32) -> impl Iterator<Item = FuzzCase> {
        (0..count).map(move |i| {
            let mut rng = TestRng::for_case("gen-tests", i);
            case_strategy(target).generate(&mut rng)
        })
    }

    #[test]
    fn generated_specs_are_well_formed() {
        for target in [Target::Crdts, Target::Ledger] {
            for case in cases(target, 64) {
                case.spec.validate().expect("generated spec must validate");
                assert!(!case.faults.is_empty(), "every case schedules faults");
                let mut anchors: Vec<usize> = case.faults.iter().map(|f| f.anchor).collect();
                anchors.dedup();
                assert_eq!(anchors.len(), case.faults.len(), "anchors are distinct");
                // Building must succeed and map every fault to an event.
                let (workload, plan) = case.build();
                assert_eq!(plan.len(), case.faults.len());
                assert!(workload.len() >= case.spec.entries.len());
            }
        }
    }

    #[test]
    fn crdts_cases_end_in_a_pinned_anti_entropy_chain() {
        for case in cases(Target::Crdts, 32) {
            let chain = case.spec.chain_from.expect("crdts cases pin a chain");
            let replicas = usize::from(case.spec.replicas);
            assert_eq!(case.spec.entries.len() - chain, 2 * (replicas - 1));
            for entry in &case.spec.entries[chain..] {
                assert!(matches!(entry, SpecEntry::SyncPair { of: None, .. }));
            }
        }
    }

    #[test]
    fn ledger_faults_are_duplicates_on_syncs() {
        for case in cases(Target::Ledger, 32) {
            for fault in &case.faults {
                assert_eq!(fault.kind, FaultKind::Duplicate);
                assert!(case.spec.entries[fault.anchor].is_sync());
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen = |seed| {
            let mut rng = TestRng::for_case("determinism", seed);
            case_strategy(Target::Crdts).generate(&mut rng)
        };
        assert_eq!(gen(7), gen(7));
        assert_eq!(gen(7).fingerprint(), gen(7).fingerprint());
    }
}

//! Property-based workload + fault-schedule fuzzing for the ER-π replay
//! engine and its subjects.
//!
//! The catalogue-driven tests replay *known* bugs; this crate goes looking
//! for unknown ones. A campaign:
//!
//! 1. **generates** arbitrary well-formed op sequences over the full `rdl`
//!    vocabulary plus a fault plan ([`case_strategy`], deterministic per
//!    seed via the vendored proptest RNG),
//! 2. **replays** each case exhaustively under both the fault-free
//!    baseline and its schedule, judging the [`Report`] with a per-target
//!    oracle ([`run_case`]): convergence for the CRDT collection,
//!    exactly-once for the ledger,
//! 3. **shrinks** any finding to a minimal (workload, fault schedule)
//!    pair ([`shrink`]) whose violation stays *fault-dependent* — the
//!    failure needs the schedule, not just an adversarial order, and
//! 4. **matches** the shrunk case against the regression corpus
//!    ([`corpus`]); unknown findings fail the campaign and are written out
//!    as replayable artifacts.
//!
//! Everything is deterministic: a `(target, seed, case index)` triple
//! always generates the same case, the oracle's report is byte-identical
//! across worker counts and executor modes, and the shrinker tries
//! candidates in a fixed order — so a corpus file reproduces forever.
//!
//! [`Report`]: er_pi::Report

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
mod gen;
mod oracle;
mod shrink;
mod spec;

pub use gen::{case_strategy, CaseStrategy};
pub use oracle::{explain_for, report_for, report_for_on, run_case, Finding, OracleOptions};
pub use shrink::shrink;
pub use spec::{FuzzCase, SpecEntry, SpecFault, Target, WorkloadSpec};

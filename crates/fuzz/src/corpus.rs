//! The regression corpus: shrunk findings persisted as JSON files.
//!
//! Each corpus file holds one [`Finding`]; the filename embeds the case
//! fingerprint (`finding-<fingerprint:016x>.json`) so campaign runs can
//! match fresh findings against known ones without parsing. The corpus is
//! the fuzzing analogue of the bug catalogue: `tests/fuzz_corpus.rs`
//! re-runs every file deterministically on each `cargo test`.

use std::fs;
use std::path::{Path, PathBuf};

use crate::oracle::Finding;

/// The filename a finding is stored under.
pub fn file_name(finding: &Finding) -> String {
    format!("finding-{:016x}.json", finding.fingerprint)
}

/// Loads every `*.json` finding in `dir`, sorted by filename so iteration
/// order (and thus campaign output) is stable. A missing directory is an
/// empty corpus.
pub fn load(dir: &Path) -> Result<Vec<(PathBuf, Finding)>, String> {
    let mut paths: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect(),
        Err(_) => return Ok(Vec::new()),
    };
    paths.sort();
    let mut corpus = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let finding: Finding =
            serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        corpus.push((path, finding));
    }
    Ok(corpus)
}

/// Saves a finding into `dir` (created if needed) under its canonical
/// filename. Returns the path written.
pub fn save(dir: &Path, finding: &Finding) -> Result<PathBuf, String> {
    fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let path = dir.join(file_name(finding));
    let json = serde_json::to_string_pretty(finding).expect("findings are serializable");
    fs::write(&path, json).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(path)
}

/// Returns `true` if the corpus already holds this fingerprint.
pub fn contains(corpus: &[(PathBuf, Finding)], fingerprint: u64) -> bool {
    corpus.iter().any(|(_, f)| f.fingerprint == fingerprint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FuzzCase, SpecEntry, SpecFault, Target, WorkloadSpec};
    use er_pi_model::FaultKind;

    fn finding() -> Finding {
        let case = FuzzCase {
            target: Target::Ledger,
            spec: WorkloadSpec {
                replicas: 2,
                entries: vec![
                    SpecEntry::Op {
                        replica: 0,
                        function: "credit".into(),
                        args: vec![5],
                    },
                    SpecEntry::SyncPair {
                        from: 0,
                        to: 1,
                        of: Some(0),
                    },
                ],
                chain_from: None,
            },
            faults: vec![SpecFault {
                anchor: 1,
                kind: FaultKind::Duplicate,
            }],
        };
        Finding {
            fingerprint: case.fingerprint(),
            case,
            assertion: "fuzz-exactly-once".into(),
            message: "replica 1 applied entry e0 twice".into(),
            fault_dependent: true,
        }
    }

    #[test]
    fn save_load_roundtrip_and_lookup() {
        let dir = std::env::temp_dir().join(format!("er-pi-corpus-{}", std::process::id()));
        let f = finding();
        let path = save(&dir, &f).unwrap();
        assert_eq!(path.file_name().unwrap().to_str().unwrap(), file_name(&f));
        let corpus = load(&dir).unwrap();
        assert_eq!(corpus.len(), 1);
        assert_eq!(corpus[0].1, f);
        assert!(contains(&corpus, f.fingerprint));
        assert!(!contains(&corpus, f.fingerprint ^ 1));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_is_an_empty_corpus() {
        let corpus = load(Path::new("/nonexistent/er-pi-corpus")).unwrap();
        assert!(corpus.is_empty());
    }
}

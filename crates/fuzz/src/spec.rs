//! Serializable workload + fault-schedule specifications.
//!
//! A [`FuzzCase`] is the fuzzer's unit of work and the corpus' unit of
//! persistence: a [`WorkloadSpec`] (operations and syncs by *spec index*,
//! replica ids as raw integers) plus a list of [`SpecFault`]s anchored at
//! spec indices. Keeping everything index-based makes cases trivially
//! JSON-serializable, shrinkable by entry removal (indices remap), and
//! independent of the [`EventId`]s minted at build time.

use er_pi_model::{EventId, FaultEvent, FaultKind, FaultPlan, ReplicaId, Value, Workload};
use serde::{Deserialize, Serialize};

/// Which subject model a case runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Target {
    /// The composed CRDT collection ([`er_pi_subjects::CrdtsModel`]) with a
    /// convergence oracle.
    Crdts,
    /// The replicated ledger ([`er_pi_subjects::LedgerApp`]) with an
    /// exactly-once oracle.
    Ledger,
}

impl Target {
    /// Stable lowercase name (CLI argument / corpus display).
    pub fn name(self) -> &'static str {
        match self {
            Target::Crdts => "crdts",
            Target::Ledger => "ledger",
        }
    }
}

/// One entry of a workload specification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpecEntry {
    /// A local RDL update at `replica`.
    Op {
        /// Acting replica (raw id).
        replica: u16,
        /// RDL function name.
        function: String,
        /// Integer arguments.
        args: Vec<i64>,
    },
    /// A fused synchronization from `from` to `to`.
    SyncPair {
        /// Sender (raw id).
        from: u16,
        /// Receiver (raw id).
        to: u16,
        /// Spec index of the update this sync ships, if tracked. Must
        /// reference an earlier `Op` entry.
        of: Option<usize>,
    },
}

impl SpecEntry {
    /// The acting replica of the entry (the sender, for syncs).
    pub fn replica(&self) -> u16 {
        match self {
            SpecEntry::Op { replica, .. } => *replica,
            SpecEntry::SyncPair { from, .. } => *from,
        }
    }

    /// Returns `true` for sync entries.
    pub fn is_sync(&self) -> bool {
        matches!(self, SpecEntry::SyncPair { .. })
    }
}

/// A scheduled fault anchored at a spec entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecFault {
    /// Spec index of the anchor entry.
    pub anchor: usize,
    /// The fault fired there.
    pub kind: FaultKind,
}

/// A well-formed workload over the `rdl` API, by spec index.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of replicas.
    pub replicas: u16,
    /// The entries, in recorded order.
    pub entries: Vec<SpecEntry>,
    /// Index from which the trailing entries form the *final anti-entropy
    /// chain*: entry `chain_from` causally depends on every earlier entry
    /// and each later entry depends on its predecessor, pinning the chain
    /// to the end of every causal interleaving. This is what makes the
    /// convergence oracle sound for arbitrary generated workloads.
    pub chain_from: Option<usize>,
}

impl WorkloadSpec {
    /// Checks structural well-formedness (replica ranges, `of` references,
    /// chain bounds).
    pub fn validate(&self) -> Result<(), String> {
        for (i, entry) in self.entries.iter().enumerate() {
            match entry {
                SpecEntry::Op { replica, .. } if *replica >= self.replicas => {
                    return Err(format!("entry {i}: replica {replica} out of range"));
                }
                SpecEntry::SyncPair { from, to, of } => {
                    if *from >= self.replicas || *to >= self.replicas || from == to {
                        return Err(format!("entry {i}: bad sync pair {from}->{to}"));
                    }
                    if let Some(of) = of {
                        if *of >= i || !matches!(self.entries[*of], SpecEntry::Op { .. }) {
                            return Err(format!("entry {i}: `of` {of} is not an earlier op"));
                        }
                    }
                }
                _ => {}
            }
        }
        if let Some(chain) = self.chain_from {
            if chain >= self.entries.len() {
                return Err(format!("chain_from {chain} out of range"));
            }
        }
        Ok(())
    }

    /// Builds the workload, returning it plus the spec-index → [`EventId`]
    /// map.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`WorkloadSpec::validate`] — corpus files
    /// are repo-controlled, and generated specs are well-formed by
    /// construction.
    pub fn build(&self) -> (Workload, Vec<EventId>) {
        if let Err(e) = self.validate() {
            panic!("invalid workload spec: {e}");
        }
        let mut b = Workload::builder();
        let mut ids: Vec<EventId> = Vec::with_capacity(self.entries.len());
        for (i, entry) in self.entries.iter().enumerate() {
            let id = match entry {
                SpecEntry::Op {
                    replica,
                    function,
                    args,
                } => b.update(
                    ReplicaId::new(*replica),
                    function,
                    args.iter().map(|v| Value::from(*v)),
                ),
                SpecEntry::SyncPair { from, to, of } => match of {
                    Some(of) => b.sync_pair(ReplicaId::new(*from), ReplicaId::new(*to), ids[*of]),
                    None => b.sync_untracked(ReplicaId::new(*from), ReplicaId::new(*to)),
                },
            };
            if let Some(chain) = self.chain_from {
                if i == chain {
                    for &dep in &ids {
                        b.depends(id, dep);
                    }
                } else if i > chain {
                    b.depends(id, ids[i - 1]);
                }
            }
            ids.push(id);
        }
        (b.build(), ids)
    }
}

/// One fuzz case: a target, a workload spec, and a fault schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuzzCase {
    /// Subject model + oracle to run against.
    pub target: Target,
    /// The workload.
    pub spec: WorkloadSpec,
    /// Scheduled faults, anchored at spec indices.
    pub faults: Vec<SpecFault>,
}

impl FuzzCase {
    /// Builds the workload and resolves the fault schedule against the
    /// minted event ids.
    pub fn build(&self) -> (Workload, FaultPlan) {
        let (workload, ids) = self.spec.build();
        let plan = FaultPlan::new(
            self.faults
                .iter()
                .map(|f| FaultEvent::new(ids[f.anchor], f.kind))
                .collect(),
        );
        (workload, plan)
    }

    /// A stable fingerprint of the case: FNV-1a over its canonical JSON.
    /// Used to match findings against the regression corpus.
    pub fn fingerprint(&self) -> u64 {
        let json = serde_json::to_string(self).expect("fuzz cases are serializable");
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in json.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger_case() -> FuzzCase {
        FuzzCase {
            target: Target::Ledger,
            spec: WorkloadSpec {
                replicas: 2,
                entries: vec![
                    SpecEntry::Op {
                        replica: 0,
                        function: "credit".into(),
                        args: vec![100],
                    },
                    SpecEntry::SyncPair {
                        from: 0,
                        to: 1,
                        of: Some(0),
                    },
                ],
                chain_from: None,
            },
            faults: vec![SpecFault {
                anchor: 1,
                kind: FaultKind::Duplicate,
            }],
        }
    }

    #[test]
    fn build_maps_spec_indices_to_event_ids() {
        let case = ledger_case();
        let (workload, plan) = case.build();
        assert_eq!(workload.len(), 2);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.iter().next().unwrap().anchor, EventId::new(1));
    }

    #[test]
    fn chain_from_pins_the_final_syncs() {
        let spec = WorkloadSpec {
            replicas: 2,
            entries: vec![
                SpecEntry::Op {
                    replica: 0,
                    function: "set_add".into(),
                    args: vec![1],
                },
                SpecEntry::SyncPair {
                    from: 0,
                    to: 1,
                    of: None,
                },
                SpecEntry::SyncPair {
                    from: 1,
                    to: 0,
                    of: None,
                },
            ],
            chain_from: Some(1),
        };
        let (workload, ids) = spec.build();
        // The chain head depends on the op; the tail depends on the head.
        let head = workload.event(ids[1]);
        let tail = workload.event(ids[2]);
        assert!(head.deps.contains(&ids[0]));
        assert!(tail.deps.contains(&ids[1]));
    }

    #[test]
    fn validate_rejects_malformed_specs() {
        let mut bad = ledger_case().spec;
        bad.entries.push(SpecEntry::SyncPair {
            from: 0,
            to: 0,
            of: None,
        });
        assert!(bad.validate().is_err(), "self-sync");

        let mut bad = ledger_case().spec;
        bad.entries[1] = SpecEntry::SyncPair {
            from: 0,
            to: 1,
            of: Some(1),
        };
        assert!(bad.validate().is_err(), "`of` must reference an earlier op");
    }

    #[test]
    fn fingerprint_is_stable_and_distinguishes_cases() {
        let a = ledger_case();
        assert_eq!(a.fingerprint(), a.fingerprint());
        let mut b = a.clone();
        b.faults.clear();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn cases_roundtrip_through_json() {
        let case = ledger_case();
        let json = serde_json::to_string(&case).unwrap();
        let back: FuzzCase = serde_json::from_str(&json).unwrap();
        assert_eq!(case, back);
    }
}

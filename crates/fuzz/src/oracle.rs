//! The Report-driven oracle: runs a [`FuzzCase`] through a full ER-π
//! replay session and decides whether it found anything.
//!
//! Every case is replayed under two fault plans — the fault-free baseline
//! and the case's schedule — over the same causally-valid interleaving
//! space. A finding is *fault-dependent* when every violating run carries a
//! non-empty fault plan: the baseline sweep doubles as the control group
//! that rules out plain ordering bugs (which the catalogue-driven tests
//! already hunt) and pins the blame on the schedule.

use er_pi::{
    Assertion, CancelToken, ErPiError, ExecutorService, ForensicBundle, Report, Session,
    SessionMetrics, SystemModel, TestSuite, Violation,
};
use er_pi_model::FaultPlan;
use er_pi_subjects::{CrdtsModel, LedgerApp, ProgressFn};
use serde::{Deserialize, Serialize};

use crate::spec::{FuzzCase, Target};

/// Replay knobs for oracle runs.
#[derive(Debug, Clone, Copy)]
pub struct OracleOptions {
    /// Worker threads for the pooled executor (1 = sequential).
    pub workers: usize,
    /// Interleaving cap per case (runs, counting each fault plan).
    pub cap: usize,
    /// Whether the checkpoint-trie incremental executor is enabled.
    pub incremental: bool,
    /// Whether state-hash subsumption is enabled (byte-identical reports
    /// either way; subsumed runs land in the report's cache counters).
    pub subsumption: bool,
}

impl Default for OracleOptions {
    fn default() -> Self {
        OracleOptions {
            workers: 1,
            cap: 2048,
            incremental: true,
            subsumption: false,
        }
    }
}

/// A violation the fuzzer decided to keep: the (shrunk) case plus what its
/// replay reported.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// The minimized (workload, fault schedule) pair.
    pub case: FuzzCase,
    /// Name of the violated assertion.
    pub assertion: String,
    /// The violation message of the first violating run.
    pub message: String,
    /// `true` when no fault-free interleaving violates — the violation
    /// needs the fault schedule.
    pub fault_dependent: bool,
    /// [`FuzzCase::fingerprint`] of `case`, the corpus identity.
    pub fingerprint: u64,
}

/// The per-target test suite the oracle replays against.
///
/// * [`Target::Crdts`]: all replicas must observe identical state at the
///   end of every causal interleaving (sound because generated workloads
///   end in a pinned anti-entropy chain, and generated fault kinds cannot
///   defeat it for a state-based RDL — see `gen`).
/// * [`Target::Ledger`]: no replica may apply the same ledger entry twice.
fn crdts_suite() -> TestSuite<er_pi_subjects::CrdtsState> {
    TestSuite::new().with(Assertion::replicas_converge("fuzz-convergence"))
}

fn ledger_suite() -> TestSuite<er_pi_subjects::LedgerState> {
    TestSuite::new().with_assertion(
        "fuzz-exactly-once",
        |ctx: &er_pi::CheckContext<'_, er_pi_subjects::LedgerState>| {
            for (i, state) in ctx.states.iter().enumerate() {
                if let Some(id) = state.duplicated_entry() {
                    return Err(format!("replica {i} applied entry {id} twice"));
                }
            }
            Ok(())
        },
    )
}

/// Replays `case` exhaustively (up to the cap) and returns the full
/// [`Report`]. Deterministic for a given `(case, opts.cap)` — worker count
/// and incremental mode do not change the bytes (the fault-equivalence
/// tests pin this).
pub fn report_for(case: &FuzzCase, opts: &OracleOptions) -> Report {
    let (workload, plan) = case.build();
    let mut plans = vec![FaultPlan::empty()];
    if !plan.is_empty() {
        plans.push(plan);
    }
    let replicas = usize::from(case.spec.replicas);
    match case.target {
        Target::Crdts => {
            let mut session = Session::new(CrdtsModel::new(replicas));
            session
                .set_workload(workload)
                .set_fault_plans(plans)
                .set_workers(opts.workers)
                .set_cap(opts.cap)
                .set_incremental(opts.incremental)
                .set_subsumption(opts.subsumption);
            session.config_mut().require_causal = true;
            session.replay(&crdts_suite()).expect("replay cannot fail")
        }
        Target::Ledger => {
            let mut session = Session::new(LedgerApp::new(replicas));
            session
                .set_workload(workload)
                .set_fault_plans(plans)
                .set_workers(opts.workers)
                .set_cap(opts.cap)
                .set_incremental(opts.incremental)
                .set_subsumption(opts.subsumption);
            session.config_mut().require_causal = true;
            session.replay(&ledger_suite()).expect("replay cannot fail")
        }
    }
}

/// The sample period of the optional progress hook, in runs.
const PROGRESS_EVERY: usize = 16;

#[allow(clippy::too_many_arguments)]
fn replay_case_on<M>(
    model: M,
    case: &FuzzCase,
    opts: &OracleOptions,
    suite: &TestSuite<M::State>,
    service: &ExecutorService,
    priority: u8,
    cancel: Option<CancelToken>,
    progress: Option<ProgressFn>,
    metrics: Option<SessionMetrics>,
) -> Result<Report, ErPiError>
where
    M: SystemModel + Clone + Send + Sync + 'static,
    M::State: Send + Sync,
{
    let (workload, plan) = case.build();
    let mut plans = vec![FaultPlan::empty()];
    if !plan.is_empty() {
        plans.push(plan);
    }
    let mut session = Session::new(model);
    session
        .set_workload(workload)
        .set_fault_plans(plans)
        .set_cap(opts.cap)
        .set_incremental(opts.incremental)
        .set_subsumption(opts.subsumption)
        .set_cancel_token(cancel);
    if let Some(metrics) = metrics {
        session.set_metrics(metrics);
    }
    session.config_mut().require_causal = true;
    if let Some(hook) = progress {
        session.set_progress_hook(PROGRESS_EVERY, move |snap| hook(snap));
    }
    session.replay_on(service, priority, suite)
}

/// Replays `case` as one campaign on a shared [`ExecutorService`] — the
/// path the campaign server takes for submitted traces. The resulting
/// [`Report`] must be byte-identical (under [`Report::canonical_json`]) to
/// [`report_for`] with the same options, for any mix of co-scheduled
/// campaigns. `opts.workers` is ignored: the service owns the threads.
///
/// # Errors
///
/// [`ErPiError::Cancelled`] if `cancel` trips mid-campaign;
/// [`ErPiError::ExecutorPanic`] if a model panics in a worker.
///
/// `metrics`, when given, exports the campaign's run and pruning counters
/// to a shared registry ([`Session::set_metrics`]). [`OracleOptions`] stays
/// `Copy`, so the handle rides as its own argument; like telemetry it is
/// write-only and cannot change the report bytes.
#[allow(clippy::too_many_arguments)]
pub fn report_for_on(
    case: &FuzzCase,
    opts: &OracleOptions,
    service: &ExecutorService,
    priority: u8,
    cancel: Option<CancelToken>,
    progress: Option<ProgressFn>,
    metrics: Option<SessionMetrics>,
) -> Result<Report, ErPiError> {
    let replicas = usize::from(case.spec.replicas);
    match case.target {
        Target::Crdts => replay_case_on(
            CrdtsModel::new(replicas),
            case,
            opts,
            &crdts_suite(),
            service,
            priority,
            cancel,
            progress,
            metrics,
        ),
        Target::Ledger => replay_case_on(
            LedgerApp::new(replicas),
            case,
            opts,
            &ledger_suite(),
            service,
            priority,
            cancel,
            progress,
            metrics,
        ),
    }
}

/// Rebuilds `case`'s workload and assembles the deterministic forensic
/// bundle for one of its violations ([`er_pi::explain_violation`]): the
/// exact interleaving + fault plan, per-step state digests with the first
/// divergence from the recorded order, and the happens-before DOT graph.
/// Returns `None` for cross-run violations (no single interleaving).
pub fn explain_for(case: &FuzzCase, violation: &Violation) -> Option<ForensicBundle> {
    let (workload, _) = case.build();
    let replicas = usize::from(case.spec.replicas);
    match case.target {
        Target::Crdts => er_pi::explain_violation(&CrdtsModel::new(replicas), &workload, violation),
        Target::Ledger => er_pi::explain_violation(&LedgerApp::new(replicas), &workload, violation),
    }
}

/// Runs the oracle over one case. Returns a [`Finding`] if any assertion
/// was violated.
pub fn run_case(case: &FuzzCase, opts: &OracleOptions) -> Option<Finding> {
    let report = report_for(case, opts);
    let first = report.violations.first()?;
    // Fault-dependent iff every violating run executed a non-empty fault
    // schedule; a violation with no attached interleaving is counted as
    // fault-free (conservative).
    let fault_dependent = report.violations.iter().all(|v| {
        v.interleaving
            .as_ref()
            .is_some_and(|il| !il.faults().is_empty())
    });
    Some(Finding {
        case: case.clone(),
        assertion: first.assertion.clone(),
        message: first.message.clone(),
        fault_dependent,
        fingerprint: case.fingerprint(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{SpecEntry, SpecFault, WorkloadSpec};
    use er_pi_model::FaultKind;

    fn duplicated_ledger_case() -> FuzzCase {
        FuzzCase {
            target: Target::Ledger,
            spec: WorkloadSpec {
                replicas: 2,
                entries: vec![
                    SpecEntry::Op {
                        replica: 0,
                        function: "credit".into(),
                        args: vec![75],
                    },
                    SpecEntry::SyncPair {
                        from: 0,
                        to: 1,
                        of: Some(0),
                    },
                ],
                chain_from: None,
            },
            faults: vec![SpecFault {
                anchor: 1,
                kind: FaultKind::Duplicate,
            }],
        }
    }

    #[test]
    fn duplicate_delivery_is_a_fault_dependent_finding() {
        let finding = run_case(&duplicated_ledger_case(), &OracleOptions::default())
            .expect("the seeded exactly-once bug must surface");
        assert_eq!(finding.assertion, "fuzz-exactly-once");
        assert!(
            finding.fault_dependent,
            "no fault-free interleaving can double-apply a sync"
        );
    }

    #[test]
    fn the_fault_free_case_is_clean() {
        let mut case = duplicated_ledger_case();
        case.faults.clear();
        assert_eq!(run_case(&case, &OracleOptions::default()), None);
    }

    #[test]
    fn reports_are_identical_across_workers_and_modes() {
        let case = duplicated_ledger_case();
        let base = report_for(&case, &OracleOptions::default());
        for workers in [2, 4] {
            for incremental in [false, true] {
                let opts = OracleOptions {
                    workers,
                    incremental,
                    ..OracleOptions::default()
                };
                let other = report_for(&case, &opts);
                assert_eq!(
                    base.diff(&other),
                    None,
                    "oracle must be deterministic at {workers} workers"
                );
            }
        }
    }
}

//! The fuzz-campaign driver (the binary CI's nightly job runs).
//!
//! ```text
//! er-pi-fuzz [--target crdts|ledger|all] [--seeds 0,1,2] [--cases N]
//!            [--workers N] [--cap N] [--corpus DIR] [--artifacts DIR]
//!            [--check-corpus]
//! ```
//!
//! For every `(target, seed)` pair the driver generates `--cases`
//! deterministic cases, replays each through the oracle, shrinks any
//! finding to a minimal (workload, fault schedule) pair, and matches the
//! shrunk fingerprint against the regression corpus. Findings already in
//! the corpus are reported and tolerated; unknown findings are written to
//! `--artifacts` as replayable JSON and fail the run with exit code 1.
//! `--check-corpus` additionally re-runs every corpus file and fails with
//! exit code 2 if one no longer reproduces (assertion, fault dependence,
//! or fingerprint drift).
//!
//! `--promote CASE.json` takes a hand-written [`FuzzCase`], replays it,
//! and (when it fails the oracle) writes the resulting finding into
//! `--corpus` — the manual path into the regression corpus.
//!
//! [`FuzzCase`]: er_pi_fuzz::FuzzCase

use std::path::PathBuf;
use std::process::ExitCode;

use er_pi_fuzz::{case_strategy, corpus, run_case, shrink, Finding, OracleOptions, Target};
use proptest::test_runner::TestRng;
use proptest::Strategy;

struct Args {
    targets: Vec<Target>,
    seeds: Vec<u32>,
    cases: u32,
    opts: OracleOptions,
    corpus_dir: PathBuf,
    artifacts_dir: PathBuf,
    check_corpus: bool,
    promote: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        targets: vec![Target::Crdts, Target::Ledger],
        seeds: vec![0],
        cases: 32,
        opts: OracleOptions::default(),
        corpus_dir: PathBuf::from("tests/corpus"),
        artifacts_dir: PathBuf::from("target/fuzz-artifacts"),
        check_corpus: false,
        promote: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--target" => {
                args.targets = match value("--target")?.as_str() {
                    "crdts" => vec![Target::Crdts],
                    "ledger" => vec![Target::Ledger],
                    "all" => vec![Target::Crdts, Target::Ledger],
                    other => return Err(format!("unknown target {other}")),
                };
            }
            "--seeds" => {
                args.seeds = value("--seeds")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("bad seed {s}: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--cases" => {
                args.cases = value("--cases")?
                    .parse()
                    .map_err(|e| format!("bad --cases: {e}"))?;
            }
            "--workers" => {
                args.opts.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
            }
            "--cap" => {
                args.opts.cap = value("--cap")?
                    .parse()
                    .map_err(|e| format!("bad --cap: {e}"))?;
            }
            "--corpus" => args.corpus_dir = PathBuf::from(value("--corpus")?),
            "--artifacts" => args.artifacts_dir = PathBuf::from(value("--artifacts")?),
            "--check-corpus" => args.check_corpus = true,
            "--promote" => args.promote.push(PathBuf::from(value("--promote")?)),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("er-pi-fuzz: {e}");
            return ExitCode::from(2);
        }
    };

    if !args.promote.is_empty() {
        for path in &args.promote {
            let case: er_pi_fuzz::FuzzCase = match std::fs::read_to_string(path)
                .map_err(|e| e.to_string())
                .and_then(|text| serde_json::from_str(&text).map_err(|e| e.to_string()))
            {
                Ok(case) => case,
                Err(e) => {
                    eprintln!("er-pi-fuzz: cannot read case {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let Some(finding) = run_case(&case, &args.opts) else {
                eprintln!(
                    "er-pi-fuzz: case {} passes the oracle — nothing to promote",
                    path.display()
                );
                return ExitCode::from(2);
            };
            match corpus::save(&args.corpus_dir, &finding) {
                Ok(written) => println!("promoted {} -> {}", path.display(), written.display()),
                Err(e) => {
                    eprintln!("er-pi-fuzz: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    let known = match corpus::load(&args.corpus_dir) {
        Ok(known) => known,
        Err(e) => {
            eprintln!("er-pi-fuzz: corpus unreadable: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "corpus: {} known finding(s) in {}",
        known.len(),
        args.corpus_dir.display()
    );

    if args.check_corpus {
        for (path, finding) in &known {
            match run_case(&finding.case, &args.opts) {
                Some(fresh)
                    if fresh.assertion == finding.assertion
                        && fresh.fault_dependent == finding.fault_dependent
                        && fresh.fingerprint == finding.fingerprint =>
                {
                    println!("corpus ok: {}", path.display());
                }
                other => {
                    eprintln!(
                        "er-pi-fuzz: corpus file {} no longer reproduces (got {:?})",
                        path.display(),
                        other.map(|f| f.assertion)
                    );
                    return ExitCode::from(2);
                }
            }
        }
    }

    let mut explored = 0u64;
    let mut new_findings: Vec<Finding> = Vec::new();
    for &target in &args.targets {
        let strategy = case_strategy(target);
        for &seed in &args.seeds {
            let name = format!("{}-{seed}", target.name());
            for case_idx in 0..args.cases {
                let mut rng = TestRng::for_case(&name, case_idx);
                let case = strategy.generate(&mut rng);
                explored += 1;
                let Some(finding) = run_case(&case, &args.opts) else {
                    continue;
                };
                let accepts = |c: &er_pi_fuzz::FuzzCase| {
                    run_case(c, &args.opts).is_some_and(|f| {
                        f.assertion == finding.assertion
                            && f.fault_dependent == finding.fault_dependent
                    })
                };
                let minimal = shrink(&case, &accepts);
                let shrunk = run_case(&minimal, &args.opts)
                    .expect("the shrinker's last accepted candidate still fails");
                println!(
                    "finding [{}/{seed}/{case_idx}] {}: {} ({} entries, {} fault(s), \
                     fault-dependent: {}, fingerprint {:016x})",
                    target.name(),
                    shrunk.assertion,
                    shrunk.message,
                    minimal.spec.entries.len(),
                    minimal.faults.len(),
                    shrunk.fault_dependent,
                    shrunk.fingerprint
                );
                if corpus::contains(&known, shrunk.fingerprint)
                    || new_findings
                        .iter()
                        .any(|f| f.fingerprint == shrunk.fingerprint)
                {
                    println!("  -> known (in corpus), continuing");
                } else {
                    new_findings.push(shrunk);
                }
            }
        }
    }

    println!(
        "explored {explored} case(s), {} new finding(s)",
        new_findings.len()
    );
    if new_findings.is_empty() {
        return ExitCode::SUCCESS;
    }
    for finding in &new_findings {
        match corpus::save(&args.artifacts_dir, finding) {
            Ok(path) => println!("  wrote artifact {}", path.display()),
            Err(e) => eprintln!("er-pi-fuzz: failed to write artifact: {e}"),
        }
    }
    eprintln!(
        "er-pi-fuzz: {} finding(s) not in the corpus — inspect {} and either fix the bug \
         or promote the artifact into tests/corpus/",
        new_findings.len(),
        args.artifacts_dir.display()
    );
    ExitCode::FAILURE
}

//! Resource profiling — the paper's §8 future-work direction
//! ("we plan to extend the applicability and usefulness of ER-π for tasks
//! such as resource profiling"), implemented over the replay machinery.
//!
//! A [`ResourceProfile`] breaks a workload's replay cost down per replica
//! and per event kind under a [`TimeModel`], and aggregates observed
//! failure rates across a set of replayed runs. Developers use it to spot
//! hot replicas (e.g. an underpowered edge device dominating replay time)
//! before scaling out a test campaign.

use er_pi_model::{EventKind, ReplicaId, Workload};

use crate::{RunRecord, TimeModel};

/// Per-replica share of one replay's simulated cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaLoad {
    /// The replica.
    pub replica: ReplicaId,
    /// Events executing at this replica.
    pub events: usize,
    /// Local RDL updates among them.
    pub updates: usize,
    /// Synchronization events among them (any flavour).
    pub syncs: usize,
    /// Simulated cost charged to this replica per replay, microseconds.
    pub cost_us: u64,
}

/// A workload's replay-cost profile.
///
/// ```
/// use er_pi::{ResourceProfile, TimeModel};
/// use er_pi_model::{ReplicaId, Value, Workload};
///
/// let mut w = Workload::builder();
/// let u = w.update(ReplicaId::new(0), "add", [Value::from(1)]);
/// w.sync_pair(ReplicaId::new(0), ReplicaId::new(2), u);
/// let w = w.build();
///
/// let profile = ResourceProfile::for_workload(&w, &TimeModel::paper_setup());
/// // The Raspberry Pi replica (id 2) receives the sync — but the fused
/// // sync executes at the sender, so replica 0 carries the cost here.
/// assert_eq!(profile.busiest().unwrap().replica, ReplicaId::new(0));
/// assert!(profile.run_cost_us() > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceProfile {
    loads: Vec<ReplicaLoad>,
    reset_cost_us: u64,
}

impl ResourceProfile {
    /// Profiles one replay of `workload` under `time`.
    pub fn for_workload(workload: &Workload, time: &TimeModel) -> Self {
        let mut loads: Vec<ReplicaLoad> = workload
            .replicas()
            .into_iter()
            .map(|replica| ReplicaLoad {
                replica,
                events: 0,
                updates: 0,
                syncs: 0,
                cost_us: 0,
            })
            .collect();
        for event in workload.events() {
            let Some(load) = loads.iter_mut().find(|l| l.replica == event.replica) else {
                continue;
            };
            load.events += 1;
            match event.kind {
                EventKind::LocalUpdate { .. } => load.updates += 1,
                EventKind::SyncSend { .. }
                | EventKind::SyncExec { .. }
                | EventKind::Sync { .. } => load.syncs += 1,
                EventKind::External { .. } => {}
            }
            load.cost_us += time.event_cost_us(event);
        }
        ResourceProfile {
            loads,
            reset_cost_us: time.reset_cost_us,
        }
    }

    /// Per-replica loads, in replica order.
    pub fn loads(&self) -> &[ReplicaLoad] {
        &self.loads
    }

    /// The most expensive replica, or `None` for the profile of an empty
    /// workload (no replicas, nothing to attribute).
    pub fn busiest(&self) -> Option<&ReplicaLoad> {
        self.loads.iter().max_by_key(|l| l.cost_us)
    }

    /// Total simulated cost of one replay, including the checkpoint/reset
    /// overhead.
    pub fn run_cost_us(&self) -> u64 {
        self.loads.iter().map(|l| l.cost_us).sum::<u64>() + self.reset_cost_us
    }

    /// Projects the cost of a whole campaign of `interleavings` replays,
    /// in simulated seconds — the planning number behind the paper's
    /// "seven machine days" remark.
    pub fn campaign_secs(&self, interleavings: usize) -> f64 {
        self.run_cost_us() as f64 * interleavings as f64 / 1e6
    }

    /// Projects the campaign under the parallel replay pool: runs are
    /// independent, so the ideal wall-clock bound is the sequential
    /// campaign divided across `workers` (the `fig_parallel` benchmark
    /// measures how close the pool gets).
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero.
    pub fn campaign_secs_parallel(&self, interleavings: usize, workers: usize) -> f64 {
        assert!(workers > 0, "at least one worker");
        self.campaign_secs(interleavings) / workers as f64
    }
}

/// One replay worker's share of a pooled replay — how many interleavings
/// it claimed and how much simulated time they cost. Threaded into
/// [`Report::worker_loads`](crate::Report::worker_loads) so the fig8/fig9/
/// fig10 timing pipelines can attribute cost per worker; the *assignment*
/// of runs to workers is scheduling-dependent, but the totals across
/// workers are not.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WorkerLoad {
    /// Worker index within the pool (0-based).
    pub worker: usize,
    /// Interleavings this worker replayed (including runs later discarded
    /// by the lowest-violation-wins merge).
    pub runs: usize,
    /// Simulated time charged to those runs, microseconds.
    pub sim_us: u64,
}

/// Checkpoint-cache counters of an incremental replay — what the
/// [`CheckpointTrie`](crate::CheckpointTrie) saved relative to replaying
/// every interleaving from scratch.
///
/// Carried in [`Report::cache_stats`](crate::Report::cache_stats) when the
/// session ran incrementally (`None` for a scratch replay). Like
/// [`WorkerLoad`], the counters are legitimately scheduling-dependent under
/// a parallel pool (each worker owns its own trie), so they are excluded
/// from [`Report::diff`](crate::Report::diff).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Runs that resumed from a cached prefix checkpoint (depth > 0).
    pub hits: u64,
    /// Runs that found no usable checkpoint and replayed from scratch.
    pub misses: u64,
    /// Event applications skipped by resuming from cached prefixes — the
    /// headline number of the `fig_prefix` benchmark.
    pub events_saved: u64,
    /// Bytes of snapshot state currently resident in the trie (sum of
    /// [`SystemModel::state_size_hint`](crate::SystemModel::state_size_hint)
    /// over cached states, plus bookkeeping overhead).
    pub bytes_resident: usize,
    /// Simulated time the skipped prefix events would have cost,
    /// microseconds. The *reported* `sim_us` stays byte-identical to a
    /// scratch replay (each resume is still charged `reset_cost_us` — a
    /// rewind *is* a state reset); this field records how much of that
    /// total was never physically re-executed, so latency models built on
    /// `sim_us` can subtract it and stay honest.
    pub sim_us_saved: u64,
    /// Runs short-circuited by state-hash subsumption: the run reached a
    /// `(state digest, fault context, remaining suffix)` an earlier run had
    /// already explored, so its tail was stitched from the memoized run
    /// instead of executing. "Executed replays" = `hits + misses -
    /// subsumed`.
    #[serde(default)]
    pub subsumed: u64,
    /// Event applications skipped by subsumption short-circuits (beyond
    /// those already counted in `events_saved` by prefix resume).
    #[serde(default)]
    pub subsume_events_saved: u64,
}

impl CacheStats {
    /// Merges another worker's counters into this one (pooled replays sum
    /// the per-worker tries).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.events_saved += other.events_saved;
        self.bytes_resident += other.bytes_resident;
        self.sim_us_saved += other.sim_us_saved;
        self.subsumed += other.subsumed;
        self.subsume_events_saved += other.subsume_events_saved;
    }

    /// Fraction of runs that resumed from a checkpoint (0 when no runs).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Simulated seconds saved by prefix reuse.
    pub fn saved_secs(&self) -> f64 {
        self.sim_us_saved as f64 / 1e6
    }

    /// Fraction of runs short-circuited by subsumption (0 when no runs).
    pub fn subsume_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.subsumed as f64 / total as f64
        }
    }

    /// Runs that physically executed events (i.e. were not subsumed).
    pub fn executed_runs(&self) -> u64 {
        (self.hits + self.misses).saturating_sub(self.subsumed)
    }
}

/// Failure statistics across a set of replayed runs.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct FailureStats {
    /// Runs with at least one failed operation.
    pub runs_with_failures: usize,
    /// Total runs inspected.
    pub runs: usize,
    /// Total failed operations.
    pub failed_ops: usize,
}

impl FailureStats {
    /// Aggregates over run records (e.g. `Report::runs`).
    pub fn from_runs(runs: &[RunRecord]) -> Self {
        FailureStats {
            runs_with_failures: runs.iter().filter(|r| r.failed_ops > 0).count(),
            runs: runs.len(),
            failed_ops: runs.iter().map(|r| r.failed_ops).sum(),
        }
    }

    /// Fraction of runs that saw a failure (0 when no runs).
    pub fn failure_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.runs_with_failures as f64 / self.runs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_pi_model::{Interleaving, Value};

    fn workload() -> Workload {
        let mut w = Workload::builder();
        let u0 = w.update(ReplicaId::new(0), "add", [Value::from(1)]);
        w.update(ReplicaId::new(2), "add", [Value::from(2)]);
        w.sync_pair(ReplicaId::new(0), ReplicaId::new(1), u0);
        w.external(ReplicaId::new(1), "read");
        w.build()
    }

    #[test]
    fn loads_partition_the_events() {
        let profile = ResourceProfile::for_workload(&workload(), &TimeModel::paper_setup());
        let total: usize = profile.loads().iter().map(|l| l.events).sum();
        assert_eq!(total, 4);
        let r0 = &profile.loads()[0];
        assert_eq!(r0.updates, 1);
        assert_eq!(r0.syncs, 1);
    }

    #[test]
    fn pi_replica_charges_more_per_update() {
        let profile = ResourceProfile::for_workload(&workload(), &TimeModel::paper_setup());
        let pi = profile
            .loads()
            .iter()
            .find(|l| l.replica == ReplicaId::new(2))
            .unwrap();
        // One update on the Raspberry Pi profile costs over a millisecond.
        assert_eq!(pi.updates, 1);
        assert!(pi.cost_us > 1_000, "Pi op cost: {}", pi.cost_us);
    }

    #[test]
    fn busiest_is_none_for_an_empty_workload() {
        let empty = Workload::builder().build();
        let profile = ResourceProfile::for_workload(&empty, &TimeModel::paper_setup());
        assert!(profile.busiest().is_none());
        let profile = ResourceProfile::for_workload(&workload(), &TimeModel::paper_setup());
        assert!(profile.busiest().is_some());
    }

    #[test]
    fn campaign_projection_scales_linearly() {
        let profile = ResourceProfile::for_workload(&workload(), &TimeModel::paper_setup());
        let one = profile.campaign_secs(1);
        let ten_k = profile.campaign_secs(10_000);
        assert!((ten_k / one - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn cache_stats_merge_and_rates() {
        let mut a = CacheStats {
            hits: 3,
            misses: 1,
            events_saved: 30,
            bytes_resident: 100,
            sim_us_saved: 2_000_000,
            subsumed: 2,
            subsume_events_saved: 8,
        };
        let b = CacheStats {
            hits: 1,
            misses: 3,
            events_saved: 10,
            bytes_resident: 50,
            sim_us_saved: 500_000,
            subsumed: 1,
            subsume_events_saved: 4,
        };
        a.absorb(&b);
        assert_eq!(a.hits, 4);
        assert_eq!(a.misses, 4);
        assert_eq!(a.events_saved, 40);
        assert_eq!(a.bytes_resident, 150);
        assert_eq!(a.subsumed, 3);
        assert_eq!(a.subsume_events_saved, 12);
        assert!((a.hit_rate() - 0.5).abs() < 1e-12);
        assert!((a.saved_secs() - 2.5).abs() < 1e-12);
        assert!((a.subsume_rate() - 0.375).abs() < 1e-12);
        assert_eq!(a.executed_runs(), 5);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        assert_eq!(CacheStats::default().subsume_rate(), 0.0);
    }

    #[test]
    fn failure_stats_aggregate() {
        let runs = vec![
            RunRecord {
                interleaving: Interleaving::new(vec![]),
                observations: vec![],
                failed_ops: 0,
                sim_us: 0,
            },
            RunRecord {
                interleaving: Interleaving::new(vec![]),
                observations: vec![],
                failed_ops: 3,
                sim_us: 0,
            },
        ];
        let stats = FailureStats::from_runs(&runs);
        assert_eq!(stats.runs, 2);
        assert_eq!(stats.runs_with_failures, 1);
        assert_eq!(stats.failed_ops, 3);
        assert!((stats.failure_rate() - 0.5).abs() < 1e-12);
        assert_eq!(FailureStats::from_runs(&[]).failure_rate(), 0.0);
    }
}

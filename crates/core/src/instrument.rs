//! Internal bundle threading telemetry and progress through the replay
//! strategies.

use std::sync::Arc;

use er_pi_telemetry::{Progress, ProgressSnapshot, Telemetry, COORDINATOR_TRACK};

use crate::metrics::SessionMetrics;

/// The periodic progress callback installed with
/// [`Session::set_progress_hook`](crate::Session::set_progress_hook).
pub type ProgressHook = Arc<dyn Fn(&ProgressSnapshot) + Send + Sync>;

/// Everything the replay paths need to observe a campaign: the telemetry
/// handle, the shared progress aggregator, and the user's periodic hook.
/// A disabled instrument is the common case and costs one branch per
/// instrumented site. Clones share the progress aggregator and hook —
/// that is what lets the [`ExecutorService`](crate::ExecutorService) own
/// an instrument per campaign while the session keeps sampling it.
#[derive(Clone)]
pub(crate) struct Instrument {
    pub telemetry: Telemetry,
    pub progress: Option<Arc<Progress>>,
    pub hook: Option<ProgressHook>,
    /// Sample period of the progress counters and hook, in runs.
    pub every: usize,
    /// Label-scoped registry counters bumped per finished run.
    pub metrics: Option<SessionMetrics>,
}

impl Instrument {
    /// No telemetry, no progress, no hook, no registry.
    pub fn disabled() -> Self {
        Instrument {
            telemetry: Telemetry::disabled(),
            progress: None,
            hook: None,
            every: 0,
            metrics: None,
        }
    }

    /// Records one finished run on `worker`'s tally and, every
    /// [`Instrument::every`] runs, samples the progress counters into the
    /// sink and invokes the hook. `cache_hit` is `None` when incremental
    /// replay is off; `subsumed` whether state-hash subsumption stitched
    /// the run's tail instead of executing it.
    pub fn run_done(&self, worker: usize, cache_hit: Option<bool>, subsumed: bool) {
        if let Some(metrics) = &self.metrics {
            metrics.run_done(cache_hit, subsumed);
        }
        let Some(progress) = &self.progress else {
            return;
        };
        let total = progress.record_run(worker, cache_hit, subsumed);
        if self.every > 0 && total % self.every as u64 == 0 {
            self.sample(progress);
        }
    }

    /// Samples the aggregator into counters and the hook.
    pub fn sample(&self, progress: &Progress) {
        let snapshot = progress.snapshot();
        self.telemetry.counter(
            COORDINATOR_TRACK,
            "progress:runs_per_sec",
            snapshot.runs_per_sec,
        );
        if let Some(rate) = snapshot.cache_hit_rate {
            self.telemetry
                .counter(COORDINATOR_TRACK, "progress:cache_hit_rate", rate);
        }
        if let Some(eta) = snapshot.eta_secs {
            self.telemetry
                .counter(COORDINATOR_TRACK, "progress:eta_secs", eta);
        }
        if let Some(hook) = &self.hook {
            hook(&snapshot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_pi_telemetry::MemorySink;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn disabled_instrument_ignores_runs() {
        let i = Instrument::disabled();
        i.run_done(0, Some(true), false); // no progress attached: no-op
    }

    #[test]
    fn hook_fires_on_the_sample_period() {
        let sink = Arc::new(MemorySink::new());
        let fired = Arc::new(AtomicUsize::new(0));
        let fired2 = fired.clone();
        let i = Instrument {
            telemetry: Telemetry::new(sink.clone()),
            progress: Some(Arc::new(Progress::new(1))),
            hook: Some(Arc::new(move |snap: &ProgressSnapshot| {
                assert!(snap.runs_done > 0);
                fired2.fetch_add(1, Ordering::Relaxed);
            })),
            every: 3,
            metrics: None,
        };
        for _ in 0..7 {
            i.run_done(0, Some(false), false);
        }
        assert_eq!(fired.load(Ordering::Relaxed), 2, "fires at runs 3 and 6");
        assert!(sink
            .events()
            .iter()
            .any(|e| e.name == "progress:runs_per_sec"));
        assert!(sink
            .events()
            .iter()
            .any(|e| e.name == "progress:cache_hit_rate"));
    }
}

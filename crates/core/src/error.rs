//! The crate's error type.

use std::fmt;

/// Errors surfaced by the ER-π middleware.
#[derive(Debug)]
pub enum ErPiError {
    /// `replay` was called before `record`.
    NothingRecorded,
    /// The recorded workload is malformed.
    Workload(er_pi_model::WorkloadError),
    /// A constraints file could not be read or parsed.
    Constraints {
        /// Offending file path.
        path: std::path::PathBuf,
        /// Underlying cause.
        cause: String,
    },
    /// A replay worker panicked — either a replica thread of the threaded
    /// executor or a shard worker of the parallel replay pool. The panic is
    /// contained: the session stays usable and partial shard results are
    /// discarded.
    ExecutorPanic(String),
    /// The campaign was cancelled through its [`CancelToken`] before
    /// exploration finished. Partial results are discarded; the session
    /// stays usable.
    ///
    /// [`CancelToken`]: crate::CancelToken
    Cancelled,
}

impl fmt::Display for ErPiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErPiError::NothingRecorded => {
                f.write_str("no workload recorded: call Session::record before replay")
            }
            ErPiError::Workload(e) => write!(f, "invalid workload: {e}"),
            ErPiError::Constraints { path, cause } => {
                write!(f, "constraints file {}: {cause}", path.display())
            }
            ErPiError::ExecutorPanic(what) => write!(f, "replica thread panicked: {what}"),
            ErPiError::Cancelled => f.write_str("campaign cancelled before replay finished"),
        }
    }
}

impl std::error::Error for ErPiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ErPiError::Workload(e) => Some(e),
            _ => None,
        }
    }
}

impl From<er_pi_model::WorkloadError> for ErPiError {
    fn from(e: er_pi_model::WorkloadError) -> Self {
        ErPiError::Workload(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ErPiError::NothingRecorded.to_string().contains("record"));
        let e = ErPiError::Constraints {
            path: "/tmp/x.json".into(),
            cause: "bad json".into(),
        };
        assert!(e.to_string().contains("/tmp/x.json"));
        assert!(e.to_string().contains("bad json"));
    }
}

//! Test assertions: per-interleaving and cross-interleaving checks.

use std::sync::Arc;

use er_pi_model::{Interleaving, Value};

use crate::{OpOutcome, RunRecord};

/// Everything an assertion can look at after one replayed interleaving.
#[derive(Debug)]
pub struct CheckContext<'a, S> {
    /// Final replica states of this run.
    pub states: &'a [S],
    /// Per-replica observations ([`SystemModel::observe`]).
    ///
    /// [`SystemModel::observe`]: crate::SystemModel::observe
    pub observations: &'a [Value],
    /// The interleaving that was executed.
    pub interleaving: &'a Interleaving,
    /// Per-event outcomes, aligned with the interleaving's positions.
    pub outcomes: &'a [OpOutcome],
}

impl<S> CheckContext<'_, S> {
    /// Number of events that failed in this run.
    pub fn failed_ops(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_failed()).count()
    }

    /// Returns `true` if every replica observes the same value.
    pub fn observations_converged(&self) -> bool {
        self.observations.windows(2).all(|w| w[0] == w[1])
    }
}

/// The shared predicate an [`Assertion`] runs against one replayed
/// interleaving. `Arc` rather than `Box` so suites are `Clone` — campaign
///-service jobs own their suite.
type CheckFn<S> = Arc<dyn Fn(&CheckContext<'_, S>) -> Result<(), String> + Send + Sync>;

/// A per-interleaving assertion (the functions passed to `ER-π.End(...)`
/// in the paper's Go snippet).
pub struct Assertion<S> {
    name: String,
    check: CheckFn<S>,
}

// Manual impl: `S` itself need not be `Clone` (the closure is shared).
impl<S> Clone for Assertion<S> {
    fn clone(&self) -> Self {
        Assertion {
            name: self.name.clone(),
            check: Arc::clone(&self.check),
        }
    }
}

impl<S> Assertion<S> {
    /// Creates a named assertion.
    pub fn new(
        name: impl Into<String>,
        check: impl Fn(&CheckContext<'_, S>) -> Result<(), String> + Send + Sync + 'static,
    ) -> Self {
        Assertion {
            name: name.into(),
            check: Arc::new(check),
        }
    }

    /// The assertion's name (reported in violations).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Runs the assertion.
    pub fn check(&self, ctx: &CheckContext<'_, S>) -> Result<(), String> {
        (self.check)(ctx)
    }

    /// Built-in: all replicas observe identical state at the end of the
    /// interleaving.
    pub fn replicas_converge(name: impl Into<String>) -> Self {
        Assertion::new(name, |ctx: &CheckContext<'_, S>| {
            if ctx.observations_converged() {
                Ok(())
            } else {
                Err(format!(
                    "replica observations diverge: {:?}",
                    ctx.observations
                ))
            }
        })
    }

    /// Built-in: a specific replica's observation (as a list) contains no
    /// duplicate entries — the paper's `assertNoDuplication`.
    pub fn no_duplication(name: impl Into<String>, replica: usize) -> Self {
        Assertion::new(name, move |ctx: &CheckContext<'_, S>| {
            let Some(items) = ctx.observations.get(replica).and_then(Value::as_list) else {
                return Ok(());
            };
            let mut seen = Vec::new();
            for item in items {
                if seen.contains(&item) {
                    return Err(format!("duplicated entry {item} at replica {replica}"));
                }
                seen.push(item);
            }
            Ok(())
        })
    }

    /// Built-in: no event failed during the run.
    pub fn no_failed_ops(name: impl Into<String>) -> Self {
        Assertion::new(name, |ctx: &CheckContext<'_, S>| {
            let failed = ctx.failed_ops();
            if failed == 0 {
                Ok(())
            } else {
                Err(format!("{failed} operations failed"))
            }
        })
    }
}

impl<S> std::fmt::Debug for Assertion<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Assertion")
            .field("name", &self.name)
            .finish()
    }
}

/// Everything a cross-interleaving check can look at after the whole replay.
#[derive(Debug)]
pub struct CrossContext<'a> {
    /// One record per replayed interleaving, in replay order.
    pub runs: &'a [RunRecord],
}

/// The shared predicate a [`CrossCheck`] runs over the whole run set.
type CrossFn = Arc<dyn Fn(&CrossContext<'_>) -> Result<(), String> + Send + Sync>;

/// A check over *all* replayed interleavings — e.g. "this replica's final
/// state must be identical no matter the interleaving" (misconceptions #1
/// and #5 are detected this way).
#[derive(Clone)]
pub struct CrossCheck {
    name: String,
    check: CrossFn,
}

impl CrossCheck {
    /// Creates a named cross-run check.
    pub fn new(
        name: impl Into<String>,
        check: impl Fn(&CrossContext<'_>) -> Result<(), String> + Send + Sync + 'static,
    ) -> Self {
        CrossCheck {
            name: name.into(),
            check: Arc::new(check),
        }
    }

    /// The check's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Runs the check.
    pub fn check(&self, ctx: &CrossContext<'_>) -> Result<(), String> {
        (self.check)(ctx)
    }

    /// Built-in: `replica`'s final observation is identical across every
    /// replayed interleaving.
    pub fn same_state_across_interleavings(name: impl Into<String>, replica: usize) -> Self {
        CrossCheck::new(name, move |ctx: &CrossContext<'_>| {
            let mut first: Option<(&Value, usize)> = None;
            for (i, run) in ctx.runs.iter().enumerate() {
                let Some(obs) = run.observations.get(replica) else {
                    continue;
                };
                match first {
                    None => first = Some((obs, i)),
                    Some((expected, at)) if expected != obs => {
                        return Err(format!(
                            "replica {replica} diverges across interleavings: \
                             run {at} observed {expected}, run {i} observed {obs}"
                        ));
                    }
                    _ => {}
                }
            }
            Ok(())
        })
    }
}

impl std::fmt::Debug for CrossCheck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrossCheck")
            .field("name", &self.name)
            .finish()
    }
}

/// The assertions passed to one replay — the parameter of `ER-π.End(...)`.
///
/// Cloning is cheap: the check closures are shared, not re-allocated.
#[derive(Debug, Default)]
pub struct TestSuite<S> {
    per_run: Vec<Assertion<S>>,
    cross_run: Vec<CrossCheck>,
}

impl<S> Clone for TestSuite<S> {
    fn clone(&self) -> Self {
        TestSuite {
            per_run: self.per_run.clone(),
            cross_run: self.cross_run.clone(),
        }
    }
}

impl<S> TestSuite<S> {
    /// Creates an empty suite.
    pub fn new() -> Self {
        TestSuite {
            per_run: Vec::new(),
            cross_run: Vec::new(),
        }
    }

    /// Adds a pre-built per-interleaving assertion.
    #[must_use]
    pub fn with(mut self, assertion: Assertion<S>) -> Self {
        self.per_run.push(assertion);
        self
    }

    /// Adds a per-interleaving assertion from a closure.
    #[must_use]
    pub fn with_assertion(
        self,
        name: impl Into<String>,
        check: impl Fn(&CheckContext<'_, S>) -> Result<(), String> + Send + Sync + 'static,
    ) -> Self {
        self.with(Assertion::new(name, check))
    }

    /// Adds a cross-interleaving check.
    #[must_use]
    pub fn with_cross(mut self, check: CrossCheck) -> Self {
        self.cross_run.push(check);
        self
    }

    /// The per-interleaving assertions.
    pub fn assertions(&self) -> &[Assertion<S>] {
        &self.per_run
    }

    /// The cross-interleaving checks.
    pub fn cross_checks(&self) -> &[CrossCheck] {
        &self.cross_run
    }

    /// Returns `true` if the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.per_run.is_empty() && self.cross_run.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_pi_model::EventId;

    fn ctx<'a>(
        states: &'a [u32],
        observations: &'a [Value],
        interleaving: &'a Interleaving,
        outcomes: &'a [OpOutcome],
    ) -> CheckContext<'a, u32> {
        CheckContext {
            states,
            observations,
            interleaving,
            outcomes,
        }
    }

    #[test]
    fn convergence_assertion() {
        let il = Interleaving::new(vec![EventId::new(0)]);
        let same = [Value::from(1), Value::from(1)];
        let diff = [Value::from(1), Value::from(2)];
        let a = Assertion::<u32>::replicas_converge("conv");
        assert!(a.check(&ctx(&[0, 0], &same, &il, &[])).is_ok());
        assert!(a.check(&ctx(&[0, 0], &diff, &il, &[])).is_err());
        assert_eq!(a.name(), "conv");
    }

    #[test]
    fn no_duplication_assertion() {
        let il = Interleaving::new(vec![]);
        let clean = [Value::List(vec![Value::from(1), Value::from(2)])];
        let dup = [Value::List(vec![Value::from(1), Value::from(1)])];
        let not_a_list = [Value::from(3)];
        let a = Assertion::<u32>::no_duplication("dup", 0);
        assert!(a.check(&ctx(&[0], &clean, &il, &[])).is_ok());
        assert!(a.check(&ctx(&[0], &dup, &il, &[])).is_err());
        assert!(a.check(&ctx(&[0], &not_a_list, &il, &[])).is_ok());
    }

    #[test]
    fn failed_ops_counting() {
        let il = Interleaving::new(vec![]);
        let outcomes = [
            OpOutcome::Applied,
            OpOutcome::failed("x"),
            OpOutcome::failed("y"),
        ];
        let c = ctx(&[0], &[], &il, &outcomes);
        assert_eq!(c.failed_ops(), 2);
        let a = Assertion::<u32>::no_failed_ops("nf");
        assert!(a.check(&c).is_err());
    }

    #[test]
    fn cross_check_detects_divergence_across_runs() {
        let mk_run = |obs: i64| RunRecord {
            interleaving: Interleaving::new(vec![]),
            observations: vec![Value::from(obs)],
            failed_ops: 0,
            sim_us: 0,
        };
        let check = CrossCheck::same_state_across_interleavings("stable", 0);
        let same = vec![mk_run(1), mk_run(1)];
        assert!(check.check(&CrossContext { runs: &same }).is_ok());
        let diff = vec![mk_run(1), mk_run(2)];
        let err = check.check(&CrossContext { runs: &diff }).unwrap_err();
        assert!(err.contains("diverges"), "{err}");
    }

    #[test]
    fn suite_builders() {
        let suite: TestSuite<u32> = TestSuite::new()
            .with(Assertion::replicas_converge("c"))
            .with_assertion("x", |_| Ok(()))
            .with_cross(CrossCheck::same_state_across_interleavings("s", 0));
        assert_eq!(suite.assertions().len(), 2);
        assert_eq!(suite.cross_checks().len(), 1);
        assert!(!suite.is_empty());
        assert!(TestSuite::<u32>::new().is_empty());
    }
}

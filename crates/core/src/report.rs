//! Replay reports.

use er_pi_analysis::Diagnostic;
use er_pi_interleave::PruneStats;
use er_pi_model::{Interleaving, Value};

use crate::{CacheStats, SessionSummary, WorkerLoad};

/// The record of one replayed interleaving.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct RunRecord {
    /// The executed order.
    pub interleaving: Interleaving,
    /// Final per-replica observations.
    pub observations: Vec<Value>,
    /// How many events failed during the run.
    pub failed_ops: usize,
    /// Simulated execution time of this run, microseconds.
    pub sim_us: u64,
}

/// One assertion violation.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct Violation {
    /// Index of the violating run (replay order); `None` for cross-run
    /// checks, which look at the whole set.
    pub run: Option<usize>,
    /// The violated assertion's name.
    pub assertion: String,
    /// The assertion's failure message.
    pub message: String,
    /// The violating interleaving, if per-run.
    pub interleaving: Option<Interleaving>,
}

/// The result of one `Session::replay`.
#[derive(Debug, Default)]
pub struct Report {
    /// Exploration mode name ("ER-π", "DFS", "Rand").
    pub mode: String,
    /// Number of interleavings replayed.
    pub explored: usize,
    /// All assertion violations found.
    pub violations: Vec<Violation>,
    /// Replay index of the first violation, if any.
    pub first_violation_at: Option<usize>,
    /// Pruning counters (ER-π mode only).
    pub prune_stats: Option<PruneStats>,
    /// Mode-specific wasted work (Random mode's shuffle retries).
    pub wasted_work: u64,
    /// Wall-clock replay duration, milliseconds.
    pub wall_ms: u128,
    /// Total simulated time across all runs, microseconds.
    pub sim_us: u64,
    /// Per-run records (kept only when the session retains them).
    pub runs: Vec<RunRecord>,
    /// Whether the exploration stopped early (violation or cap).
    pub stopped_early: bool,
    /// Pre-replay lint diagnostics from the static trace analysis
    /// (misconception patterns flagged before any interleaving ran).
    pub diagnostics: Vec<Diagnostic>,
    /// Per-worker replay counters of the parallel pool (empty for a
    /// sequential replay). The run→worker assignment is
    /// scheduling-dependent; every other field of the report is not.
    pub worker_loads: Vec<WorkerLoad>,
    /// Checkpoint-cache counters of the incremental executor (`None` for a
    /// scratch replay). Under a pool the counters are summed over the
    /// per-worker tries, which makes them scheduling-dependent — like
    /// `worker_loads` and `wall_ms` they are excluded from [`Report::diff`].
    pub cache_stats: Option<CacheStats>,
    /// The end-of-session attribution table unifying the pruning, worker,
    /// cache, and failure counters. Aggregates the scheduling-dependent
    /// fields above (wall time, worker loads, cache counters), so it is
    /// likewise excluded from [`Report::diff`].
    pub session_summary: SessionSummary,
    /// Operational advisories (e.g. the degraded checkpoint-cache
    /// warning), surfaced here so headless campaigns see them without a
    /// telemetry sink. Derived from the scheduling-dependent cache
    /// counters, so — like `wall_ms` and `worker_loads` — advisories are
    /// excluded from [`Report::diff`] and [`Report::canonical_json`].
    pub advisories: Vec<String>,
}

impl Report {
    /// Returns `true` if no assertion was violated.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Total simulated seconds.
    pub fn sim_secs(&self) -> f64 {
        self.sim_us as f64 / 1e6
    }

    /// Simulated time actually spent executing, microseconds: the reported
    /// `sim_us` (which stays byte-identical to a scratch replay) minus the
    /// prefix costs the incremental executor never physically re-applied
    /// ([`CacheStats::sim_us_saved`]). Equal to `sim_us` for scratch runs.
    pub fn sim_us_actual(&self) -> u64 {
        self.sim_us
            .saturating_sub(self.cache_stats.map_or(0, |c| c.sim_us_saved))
    }

    /// Compares the two reports' *deterministic* fields — everything except
    /// wall-clock time, the run→worker assignment and the checkpoint-cache
    /// counters (all legitimately scheduling-dependent) — and names the first
    /// field that differs. `None` means the reports are equivalent: this is
    /// the differential oracle behind the parallel-equivalence suite, where
    /// a pooled replay must be indistinguishable from a sequential one.
    pub fn diff(&self, other: &Report) -> Option<String> {
        macro_rules! cmp {
            ($field:ident) => {
                if self.$field != other.$field {
                    return Some(format!(
                        "{}: {:?} != {:?}",
                        stringify!($field),
                        self.$field,
                        other.$field
                    ));
                }
            };
        }
        cmp!(mode);
        cmp!(explored);
        cmp!(first_violation_at);
        cmp!(prune_stats);
        cmp!(wasted_work);
        cmp!(sim_us);
        cmp!(stopped_early);
        cmp!(violations);
        cmp!(runs);
        cmp!(diagnostics);
        None
    }

    /// Serializes exactly the *deterministic* fields — the same set
    /// [`Report::diff`] compares, in the same order — as one JSON object.
    /// Two reports are [`diff`](Report::diff)-equivalent iff their canonical
    /// JSON strings are byte-identical, which is the determinism contract
    /// the campaign server's equivalence suite pins: a report served over
    /// HTTP must match the standalone session byte for byte, regardless of
    /// worker count or co-scheduled campaigns.
    pub fn canonical_json(&self) -> String {
        use serde::{Content, Serialize as _};
        let entry = |k: &str, v: Content| (Content::Str(k.to_owned()), v);
        let map = Content::Map(vec![
            entry("mode", self.mode.to_content()),
            entry("explored", self.explored.to_content()),
            entry("first_violation_at", self.first_violation_at.to_content()),
            entry("prune_stats", self.prune_stats.to_content()),
            entry("wasted_work", self.wasted_work.to_content()),
            entry("sim_us", self.sim_us.to_content()),
            entry("stopped_early", self.stopped_early.to_content()),
            entry("violations", self.violations.to_content()),
            entry("runs", self.runs.to_content()),
            entry("diagnostics", self.diagnostics.to_content()),
        ]);
        serde_json::to_string(&map).expect("deterministic report fields contain no floats")
    }

    /// Compact one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "[{}] explored {} interleavings, {} violation(s){}, sim {:.3}s, wall {}ms",
            self.mode,
            self.explored,
            self.violations.len(),
            self.first_violation_at
                .map(|i| format!(" (first at #{i})"))
                .unwrap_or_default(),
            self.sim_secs(),
            self.wall_ms,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mentions_the_essentials() {
        let report = Report {
            mode: "ER-π".into(),
            explored: 19,
            violations: vec![Violation {
                run: Some(3),
                assertion: "inv".into(),
                message: "boom".into(),
                interleaving: None,
            }],
            first_violation_at: Some(3),
            ..Report::default()
        };
        let s = report.summary();
        assert!(s.contains("ER-π"));
        assert!(s.contains("19"));
        assert!(s.contains("#3"));
        assert!(!report.passed());
    }

    #[test]
    fn empty_report_passes() {
        assert!(Report::default().passed());
    }

    #[test]
    fn diff_ignores_wall_clock_worker_assignment_and_cache_counters() {
        let a = Report {
            wall_ms: 10,
            worker_loads: vec![WorkerLoad {
                worker: 0,
                runs: 3,
                sim_us: 9,
            }],
            cache_stats: Some(CacheStats {
                hits: 5,
                misses: 1,
                events_saved: 40,
                bytes_resident: 512,
                sim_us_saved: 7,
                subsumed: 2,
                subsume_events_saved: 9,
            }),
            ..Report::default()
        };
        let b = Report {
            wall_ms: 99,
            ..Report::default()
        };
        assert_eq!(a.diff(&b), None);
    }

    #[test]
    fn sim_us_actual_subtracts_saved_prefix_cost() {
        let mut report = Report {
            sim_us: 1_000,
            ..Report::default()
        };
        assert_eq!(report.sim_us_actual(), 1_000);
        report.cache_stats = Some(CacheStats {
            sim_us_saved: 400,
            ..CacheStats::default()
        });
        assert_eq!(report.sim_us_actual(), 600);
    }

    #[test]
    fn canonical_json_tracks_diff_equivalence() {
        let base = Report {
            mode: "ER-π".into(),
            explored: 19,
            ..Report::default()
        };
        // Scheduling-dependent fields don't reach the canonical bytes.
        let rescheduled = Report {
            mode: "ER-π".into(),
            explored: 19,
            wall_ms: 777,
            worker_loads: vec![WorkerLoad {
                worker: 1,
                runs: 19,
                sim_us: 5,
            }],
            ..Report::default()
        };
        assert_eq!(base.diff(&rescheduled), None);
        assert_eq!(base.canonical_json(), rescheduled.canonical_json());
        // A deterministic field difference changes the bytes.
        let other = Report {
            mode: "ER-π".into(),
            explored: 20,
            ..Report::default()
        };
        assert!(base.diff(&other).is_some());
        assert_ne!(base.canonical_json(), other.canonical_json());
    }

    #[test]
    fn advisories_stay_outside_the_determinism_contract() {
        let quiet = Report::default();
        let warned = Report {
            advisories: vec!["checkpoint-cache hit rate 2.0% ...".into()],
            ..Report::default()
        };
        assert_eq!(quiet.diff(&warned), None);
        assert_eq!(quiet.canonical_json(), warned.canonical_json());
    }

    #[test]
    fn diff_names_the_differing_field() {
        let a = Report::default();
        let b = Report {
            explored: 7,
            ..Report::default()
        };
        let diff = a.diff(&b).unwrap();
        assert!(diff.contains("explored"), "{diff}");
    }
}

//! Deterministic interpretation of [`FaultPlan`]s during replay.
//!
//! Every executor (inline, threaded, incremental) runs scheduled faults
//! through one [`FaultInterpreter`], so the semantics — and therefore the
//! produced `(states, outcomes)` — are byte-identical across execution
//! paths. The interpreter is pure bookkeeping over the plan:
//!
//! * **Topology faults** (`Partition`/`Heal`/`CrashRestart`) fire *before*
//!   their anchor event executes.
//! * **Delivery faults** (`Drop`/`Delay`/`Duplicate`) decide what happens
//!   *to* the anchor event itself. A sync event whose endpoints are
//!   partitioned fails regardless of anchored faults.
//! * **Delayed effects** fire at the end of the step whose position reaches
//!   `anchor position + by`, in scheduling order; effects still pending when
//!   the run ends are flushed after the last event (unless partitioned).
//!
//! Fault surgery rearranges *which* state transitions happen, not the
//! simulated-time ledger: `sim_us` stays `reset_cost + Σ event costs`
//! exactly as in fault-free replay, so the time model needs no fault
//! special-casing and incremental accounting is unchanged.

use std::collections::HashSet;

use er_pi_model::{Event, EventId, FaultKind, FaultPlan, ReplicaId, Workload};

use crate::{OpOutcome, SystemModel};

/// What happens to the anchor event at its own schedule slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Delivery {
    /// Apply normally (a scheduled `Duplicate` additionally re-applies).
    Normal,
    /// The endpoints are partitioned: fail without applying.
    Partitioned,
    /// A scheduled `Drop`: fail without applying.
    Dropped,
    /// A scheduled `Delay`: fail at this slot; the effect fires later.
    Delayed,
}

/// Failure reasons recorded for faulted slots (stable strings: they are part
/// of the byte-identical report contract).
pub(crate) const REASON_PARTITIONED: &str = "fault: partitioned link";
pub(crate) const REASON_DROPPED: &str = "fault: message dropped";
pub(crate) const REASON_DELAYED: &str = "fault: delivery delayed";

/// Replays one interleaving's fault schedule deterministically.
#[derive(Debug, Clone)]
pub(crate) struct FaultInterpreter<'p> {
    plan: &'p FaultPlan,
    /// Cut links, normalized `(min, max)`.
    partitions: HashSet<(ReplicaId, ReplicaId)>,
    /// Delayed effects: `(fire_pos, event)`, in scheduling order.
    pending: Vec<(usize, EventId)>,
}

fn normalize(a: ReplicaId, b: ReplicaId) -> (ReplicaId, ReplicaId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl<'p> FaultInterpreter<'p> {
    pub(crate) fn new(plan: &'p FaultPlan) -> Self {
        FaultInterpreter {
            plan,
            partitions: HashSet::new(),
            pending: Vec::new(),
        }
    }

    /// Returns `true` when the plan schedules no faults — callers may take
    /// the zero-overhead fault-free path.
    pub(crate) fn idle(&self) -> bool {
        self.plan.is_empty()
    }

    fn is_partitioned(&self, event: &Event) -> bool {
        event
            .sync_endpoints()
            .map(|(a, b)| self.partitions.contains(&normalize(a, b)))
            .unwrap_or(false)
    }

    /// Fires the topology faults anchored at `event` (before it executes).
    pub(crate) fn begin_step<M: SystemModel>(
        &mut self,
        model: &M,
        states: &mut [M::State],
        event: &Event,
    ) {
        if self.idle() {
            return;
        }
        for fault in self.plan.at(event.id) {
            match fault.kind {
                FaultKind::Partition { from, to } => {
                    self.partitions.insert(normalize(from, to));
                }
                FaultKind::Heal { from, to } => {
                    self.partitions.remove(&normalize(from, to));
                }
                FaultKind::CrashRestart { replica } => model.recover(states, replica),
                _ => {}
            }
        }
    }

    /// Decides the anchor event's own delivery. `pos` is its schedule slot.
    ///
    /// Precedence when a plan stacks delivery faults on one anchor:
    /// partition > drop > delay > duplicate (the enumerator never stacks,
    /// but hand-written plans may).
    pub(crate) fn delivery(&mut self, event: &Event, pos: usize) -> Delivery {
        if self.idle() {
            return Delivery::Normal;
        }
        if self.is_partitioned(event) {
            return Delivery::Partitioned;
        }
        let mut delay = None;
        let mut duplicate = false;
        for fault in self.plan.at(event.id) {
            match fault.kind {
                FaultKind::Drop => return Delivery::Dropped,
                FaultKind::Delay { by } => delay = Some(by.max(1) as usize),
                FaultKind::Duplicate => duplicate = true,
                _ => {}
            }
        }
        if let Some(by) = delay {
            self.pending.push((pos + by, event.id));
            return Delivery::Delayed;
        }
        if duplicate {
            return Delivery::Normal;
        }
        Delivery::Normal
    }

    /// Returns `true` if `event` should be applied a second time (a
    /// duplicated delivery). Only meaningful after a `Normal` delivery.
    pub(crate) fn duplicate(&self, event: &Event) -> bool {
        !self.idle()
            && self
                .plan
                .at(event.id)
                .any(|f| f.kind == FaultKind::Duplicate)
    }

    /// Fires delayed effects due at or before `pos` (end of that step).
    /// Their outcomes are discarded — the schedule slot already recorded
    /// [`REASON_DELAYED`].
    pub(crate) fn end_step<M: SystemModel>(
        &mut self,
        model: &M,
        states: &mut [M::State],
        workload: &Workload,
        pos: usize,
    ) {
        if self.pending.is_empty() {
            return;
        }
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].0 <= pos {
                let (_, id) = self.pending.remove(i);
                let event = workload.event(id);
                if !self.is_partitioned(event) {
                    let _ = model.apply(states, event);
                }
            } else {
                i += 1;
            }
        }
    }

    /// Flushes every still-pending delayed effect after the last event.
    pub(crate) fn finish<M: SystemModel>(
        &mut self,
        model: &M,
        states: &mut [M::State],
        workload: &Workload,
    ) {
        let pending = std::mem::take(&mut self.pending);
        for (_, id) in pending {
            let event = workload.event(id);
            if !self.is_partitioned(event) {
                let _ = model.apply(states, event);
            }
        }
    }

    /// Rebuilds the interpreter's bookkeeping as if the events at positions
    /// `0..depth` of `order` had executed — without touching states (the
    /// checkpoint snapshot already contains their effects). Used when the
    /// incremental executor resumes from a cached prefix: partition state is
    /// replayed, and delayed effects that fired inside the prefix are
    /// discarded while those still outstanding at `depth` are retained.
    pub(crate) fn fast_forward(&mut self, workload: &Workload, order: &[EventId], depth: usize) {
        if self.idle() {
            return;
        }
        for (pos, &id) in order.iter().take(depth).enumerate() {
            for fault in self.plan.at(id) {
                match fault.kind {
                    FaultKind::Partition { from, to } => {
                        self.partitions.insert(normalize(from, to));
                    }
                    FaultKind::Heal { from, to } => {
                        self.partitions.remove(&normalize(from, to));
                    }
                    _ => {}
                }
            }
            let event = workload.event(id);
            if self.is_partitioned(event) {
                continue; // the slot failed; nothing was scheduled
            }
            if self.plan.at(id).any(|f| matches!(f.kind, FaultKind::Drop)) {
                continue;
            }
            if let Some(by) = self.plan.at(id).find_map(|f| match f.kind {
                FaultKind::Delay { by } => Some(by.max(1) as usize),
                _ => None,
            }) {
                self.pending.push((pos + by, id));
            }
            // An effect fires at the end of the first step whose position
            // reaches fire_pos; within the prefix that means fire_pos <
            // depth (steps 0..depth ran, so end-of-step fired through
            // depth-1).
            self.pending.retain(|&(fire, _)| fire > pos);
        }
    }

    /// A 64-bit digest of the interpreter's fault context: the plan itself
    /// (faults anchored at future events change suffix behavior even when
    /// nothing has fired yet), the cut links (sorted — the set is
    /// unordered), and the outstanding delayed effects in scheduling order
    /// (firing order is behavior, so the `Vec` order is hashed as-is).
    /// Subsumption folds this into its key: two runs at the same
    /// replica-state digest but under different plans, partitions, or
    /// in-flight deliveries behave differently under the same suffix.
    pub(crate) fn pending_digest(&self) -> u64 {
        let mut buf = Vec::new();
        buf.extend_from_slice(&self.plan.digest().to_le_bytes());
        let mut links: Vec<(ReplicaId, ReplicaId)> = self.partitions.iter().copied().collect();
        links.sort_unstable();
        buf.extend_from_slice(&(links.len() as u64).to_le_bytes());
        for (a, b) in links {
            buf.extend_from_slice(&a.raw().to_le_bytes());
            buf.extend_from_slice(&b.raw().to_le_bytes());
        }
        buf.extend_from_slice(&(self.pending.len() as u64).to_le_bytes());
        for &(fire, id) in &self.pending {
            buf.extend_from_slice(&(fire as u64).to_le_bytes());
            buf.extend_from_slice(&id.raw().to_le_bytes());
        }
        er_pi_rdl::fnv1a64(&buf)
    }

    /// The outcome recorded for a non-`Normal` delivery.
    pub(crate) fn faulted_outcome(delivery: Delivery) -> OpOutcome {
        match delivery {
            Delivery::Partitioned => OpOutcome::failed(REASON_PARTITIONED),
            Delivery::Dropped => OpOutcome::failed(REASON_DROPPED),
            Delivery::Delayed => OpOutcome::failed(REASON_DELAYED),
            Delivery::Normal => unreachable!("normal delivery records the model outcome"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_pi_model::{FaultEvent, Interleaving, ReplicaId, Value};

    struct Probe;

    impl SystemModel for Probe {
        type State = Vec<i64>;

        fn replicas(&self) -> usize {
            2
        }

        fn init(&self, _replica: ReplicaId) -> Vec<i64> {
            Vec::new()
        }

        fn apply(&self, states: &mut [Vec<i64>], event: &Event) -> OpOutcome {
            let v = event
                .op()
                .and_then(|op| op.arg(0))
                .and_then(Value::as_int)
                .unwrap_or(100 + event.id.raw() as i64);
            states[event.replica.index()].push(v);
            OpOutcome::Applied
        }

        fn observe(&self, state: &Vec<i64>) -> Value {
            state.iter().copied().collect()
        }
    }

    fn run(workload: &Workload, il: &Interleaving) -> (Vec<Vec<i64>>, Vec<OpOutcome>) {
        let model = Probe;
        let mut states = model.init_all();
        let mut outcomes = Vec::new();
        let mut interp = FaultInterpreter::new(il.faults());
        for (pos, &id) in il.iter().enumerate() {
            let event = workload.event(id);
            interp.begin_step(&model, &mut states, event);
            let outcome = match interp.delivery(event, pos) {
                Delivery::Normal => {
                    let out = model.apply(&mut states, event);
                    if interp.duplicate(event) {
                        let _ = model.apply(&mut states, event);
                    }
                    out
                }
                other => FaultInterpreter::faulted_outcome(other),
            };
            outcomes.push(outcome);
            interp.end_step(&model, &mut states, workload, pos);
        }
        interp.finish(&model, &mut states, workload);
        (states, outcomes)
    }

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    fn three_ops() -> (Workload, Vec<er_pi_model::EventId>) {
        let mut w = Workload::builder();
        let ids = vec![
            w.update(r(0), "op", [Value::from(1)]),
            w.update(r(0), "op", [Value::from(2)]),
            w.update(r(0), "op", [Value::from(3)]),
        ];
        (w.build(), ids)
    }

    #[test]
    fn drop_suppresses_the_anchor() {
        let (w, ids) = three_ops();
        let il = w
            .recorded_order()
            .with_faults(FaultPlan::new(vec![FaultEvent::new(
                ids[1],
                FaultKind::Drop,
            )]));
        let (states, outcomes) = run(&w, &il);
        assert_eq!(states[0], vec![1, 3]);
        assert_eq!(outcomes[1], OpOutcome::failed(REASON_DROPPED));
    }

    #[test]
    fn duplicate_applies_twice() {
        let (w, ids) = three_ops();
        let il = w
            .recorded_order()
            .with_faults(FaultPlan::new(vec![FaultEvent::new(
                ids[0],
                FaultKind::Duplicate,
            )]));
        let (states, outcomes) = run(&w, &il);
        assert_eq!(states[0], vec![1, 1, 2, 3]);
        assert_eq!(outcomes[0], OpOutcome::Applied);
    }

    #[test]
    fn delay_moves_the_effect_later() {
        let (w, ids) = three_ops();
        let il = w
            .recorded_order()
            .with_faults(FaultPlan::new(vec![FaultEvent::new(
                ids[0],
                FaultKind::Delay { by: 2 },
            )]));
        let (states, outcomes) = run(&w, &il);
        // op1 fires at the end of step 2 (after op3 applied).
        assert_eq!(states[0], vec![2, 3, 1]);
        assert_eq!(outcomes[0], OpOutcome::failed(REASON_DELAYED));
        assert_eq!(outcomes[1], OpOutcome::Applied);
    }

    #[test]
    fn delay_past_the_end_flushes_at_finish() {
        let (w, ids) = three_ops();
        let il = w
            .recorded_order()
            .with_faults(FaultPlan::new(vec![FaultEvent::new(
                ids[2],
                FaultKind::Delay { by: 5 },
            )]));
        let (states, _) = run(&w, &il);
        assert_eq!(states[0], vec![1, 2, 3], "flushed after the last event");
    }

    #[test]
    fn partition_window_fails_syncs_until_heal() {
        let mut w = Workload::builder();
        let a = w.update(r(0), "op", [Value::from(1)]);
        let s1 = w.sync_pair(r(0), r(1), a);
        let b = w.update(r(0), "op", [Value::from(2)]);
        let s2 = w.sync_pair(r(0), r(1), b);
        let w = w.build();
        let il = w.recorded_order().with_faults(FaultPlan::new(vec![
            FaultEvent::new(
                s1,
                FaultKind::Partition {
                    from: r(0),
                    to: r(1),
                },
            ),
            FaultEvent::new(
                s2,
                FaultKind::Heal {
                    from: r(0),
                    to: r(1),
                },
            ),
        ]));
        let (states, outcomes) = run(&w, &il);
        assert_eq!(outcomes[s1.index()], OpOutcome::failed(REASON_PARTITIONED));
        assert_eq!(outcomes[s2.index()], OpOutcome::Applied);
        // The probe records applies at the sender: two updates plus the
        // healed sync ran there; the partitioned sync never applied.
        assert_eq!(states[0].len(), 3);
    }

    #[test]
    fn crash_restart_reinitializes_by_default() {
        let (w, ids) = three_ops();
        let il = w
            .recorded_order()
            .with_faults(FaultPlan::new(vec![FaultEvent::new(
                ids[2],
                FaultKind::CrashRestart { replica: r(0) },
            )]));
        let (states, _) = run(&w, &il);
        // Crash before op3 wipes ops 1 and 2.
        assert_eq!(states[0], vec![3]);
    }

    #[test]
    fn pending_digest_separates_plans_topology_and_delays() {
        let (w, ids) = three_ops();
        let order: Vec<_> = w.event_ids().collect();

        let empty = FaultPlan::empty();
        let base = FaultInterpreter::new(&empty).pending_digest();

        // A different plan — even before anything fires — changes the key.
        let drop_plan = FaultPlan::new(vec![FaultEvent::new(ids[2], FaultKind::Drop)]);
        let fresh = FaultInterpreter::new(&drop_plan);
        assert_ne!(fresh.pending_digest(), base);

        // Live partition state changes the key.
        let pplan = FaultPlan::new(vec![FaultEvent::new(
            ids[0],
            FaultKind::Partition {
                from: r(0),
                to: r(1),
            },
        )]);
        let mut cut = FaultInterpreter::new(&pplan);
        let before = cut.pending_digest();
        cut.fast_forward(&w, &order, 1);
        assert_ne!(cut.pending_digest(), before);

        // Outstanding delayed effects change the key, and firing order
        // matters (the pending Vec is hashed in order).
        let dplan = FaultPlan::new(vec![FaultEvent::new(ids[1], FaultKind::Delay { by: 2 })]);
        let mut delayed = FaultInterpreter::new(&dplan);
        let before = delayed.pending_digest();
        delayed.fast_forward(&w, &order, 2);
        assert_ne!(delayed.pending_digest(), before);
    }

    #[test]
    fn fast_forward_retains_only_outstanding_delays() {
        let (w, ids) = three_ops();
        let plan = FaultPlan::new(vec![
            FaultEvent::new(ids[0], FaultKind::Delay { by: 1 }),
            FaultEvent::new(ids[1], FaultKind::Delay { by: 2 }),
        ]);
        let order: Vec<_> = w.event_ids().collect();
        // Prefix of 2 steps: delay@e0 fires at end of step 1 (inside the
        // prefix); delay@e1 fires at step 3 (outstanding).
        let mut interp = FaultInterpreter::new(&plan);
        interp.fast_forward(&w, &order, 2);
        assert_eq!(interp.pending, vec![(3, ids[1])]);
        // A full-depth fast-forward of a partition plan rebuilds topology.
        let pplan = FaultPlan::new(vec![FaultEvent::new(
            ids[0],
            FaultKind::Partition {
                from: r(0),
                to: r(1),
            },
        )]);
        let mut interp = FaultInterpreter::new(&pplan);
        interp.fast_forward(&w, &order, 3);
        assert!(interp.partitions.contains(&(r(0), r(1))));
    }
}

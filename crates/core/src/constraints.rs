//! Runtime constraint ingestion (paper §5.2).
//!
//! "ER-π periodically checks for the presence of JSON files in the
//! constraints directory. If found, ER-π then consults the files for the new
//! constraints to apply, thus further reducing the problem space."

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use er_pi_interleave::PruningConfig;

use crate::ErPiError;

/// Watches a directory for `*.json` constraint files, each containing a
/// (partial) [`PruningConfig`].
///
/// Every file is consumed at most once; [`ConstraintsDir::poll`] returns the
/// merged configuration of all *new* files since the last poll.
#[derive(Debug)]
pub struct ConstraintsDir {
    dir: PathBuf,
    consumed: HashSet<PathBuf>,
}

impl ConstraintsDir {
    /// Watches `dir` (which does not need to exist yet).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ConstraintsDir {
            dir: dir.into(),
            consumed: HashSet::new(),
        }
    }

    /// The watched directory.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Number of files consumed so far.
    pub fn consumed(&self) -> usize {
        self.consumed.len()
    }

    /// Reads all constraint files not seen before; returns the merged new
    /// constraints, or `None` if there is nothing new.
    ///
    /// # Errors
    ///
    /// Returns [`ErPiError::Constraints`] if a new file exists but cannot be
    /// read or parsed (the file is *not* marked consumed, so a fixed file is
    /// picked up on the next poll).
    pub fn poll(&mut self) -> Result<Option<PruningConfig>, ErPiError> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Ok(None); // absent directory: nothing to ingest
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|ext| ext == "json") && !self.consumed.contains(p)
            })
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Ok(None);
        }
        let mut merged = PruningConfig::default();
        for path in paths {
            let text = std::fs::read_to_string(&path).map_err(|e| ErPiError::Constraints {
                path: path.clone(),
                cause: e.to_string(),
            })?;
            let config: PruningConfig =
                serde_json::from_str(&text).map_err(|e| ErPiError::Constraints {
                    path: path.clone(),
                    cause: e.to_string(),
                })?;
            merged.absorb(config);
            self.consumed.insert(path);
        }
        Ok(Some(merged))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_pi_interleave::FailedOpsRule;
    use er_pi_model::EventId;

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("er-pi-constraints-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn absent_directory_is_quietly_empty() {
        let mut c = ConstraintsDir::new("/definitely/not/here");
        assert!(c.poll().unwrap().is_none());
    }

    #[test]
    fn files_are_consumed_once_and_merged() {
        let dir = tempdir("merge");
        let cfg1 = PruningConfig::default().with_independent_set(vec![EventId::new(1)]);
        let cfg2 = PruningConfig::default().with_failed_ops(FailedOpsRule {
            predecessors: vec![EventId::new(0)],
            successors: vec![EventId::new(2), EventId::new(3)],
        });
        std::fs::write(dir.join("a.json"), serde_json::to_string(&cfg1).unwrap()).unwrap();
        std::fs::write(dir.join("b.json"), serde_json::to_string(&cfg2).unwrap()).unwrap();
        std::fs::write(dir.join("ignored.txt"), "not json").unwrap();

        let mut c = ConstraintsDir::new(&dir);
        let merged = c.poll().unwrap().expect("new constraints");
        assert_eq!(merged.independent_sets.len(), 1);
        assert_eq!(merged.failed_ops.len(), 1);
        assert_eq!(c.consumed(), 2);
        // Second poll: nothing new.
        assert!(c.poll().unwrap().is_none());
        // A later drop is picked up.
        let cfg3 = PruningConfig::default().with_group(vec![EventId::new(4), EventId::new(5)]);
        std::fs::write(dir.join("c.json"), serde_json::to_string(&cfg3).unwrap()).unwrap();
        let merged = c.poll().unwrap().expect("third file");
        assert_eq!(merged.extra_groups.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_files_error_but_stay_pending() {
        let dir = tempdir("bad");
        std::fs::write(dir.join("bad.json"), "{ not json").unwrap();
        let mut c = ConstraintsDir::new(&dir);
        assert!(c.poll().is_err());
        assert_eq!(c.consumed(), 0);
        // Fixing the file lets the next poll succeed.
        std::fs::write(dir.join("bad.json"), "{}").unwrap();
        assert!(c.poll().unwrap().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

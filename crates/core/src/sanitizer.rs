//! Replay-time independence sanitizer — the dynamic half of the
//! independence soundness layer.
//!
//! The static certifier ([`er_pi_analysis::certify_table`]) audits the
//! conflict *table*; this module audits the independence *declarations*
//! actually used by a replay, race-detector style. After the runs of a
//! campaign finish, the sanitizer revisits every run in which two events of
//! a declared independent set executed adjacently with no declared
//! interferer inside the set's span — exactly the condition under which
//! Algorithm 3's canonical-form pruner treats the swapped order as
//! equivalent and discards it. For each such pair the sanitizer re-executes
//! the run's prefix, applies the pair in both orders, and compares the
//! FNV-hashed replica observations ([`er_pi_rdl::fnv1a64`]) plus the two
//! [`OpOutcome`](crate::OpOutcome)s (per event identity). Any difference is an
//! [`IndependenceViolation`]: the pruner merged two orders the model can
//! tell apart, so a pruned interleaving might have exposed a bug.
//!
//! The check is exact, not probabilistic: [`SystemModel::apply`] is
//! deterministic given `(states, event)`, so replaying the identical prefix
//! and swapping the adjacent pair reproduces precisely the two orders the
//! pruner identified. A memo keyed by the exact prefix event sequence (and
//! the pair) deduplicates across runs — campaigns with heavy prefix sharing
//! pay for each distinct swap once — and runs whose candidate pairs are all
//! memoized skip state re-execution entirely, which is what keeps the
//! sanitizer inside its documented overhead contract (see DESIGN.md §12).
//!
//! The sanitizer is strictly read-only with respect to the [`Report`]:
//! findings land in a separate [`SanitizerReport`] on the session
//! ([`Session::sanitizer_report`]), and `Report::diff` between a
//! sanitizer-on and sanitizer-off replay returns `None` (pinned by the
//! `sanitizer_equivalence` suite).
//!
//! [`Report`]: crate::Report
//! [`Session::sanitizer_report`]: crate::Session::sanitizer_report

use std::collections::HashSet;
use std::fmt::Write as _;

use serde::Serialize;

use er_pi_interleave::PruningConfig;
use er_pi_model::{EventId, Workload};
use er_pi_rdl::fnv1a64;

use crate::{RunRecord, SystemModel};

/// One adjacent pair the pruners treated as swappable but whose swap
/// changes the system — concrete evidence of an unsound independence
/// declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct IndependenceViolation {
    /// Index of the run (in exploration order) the pair was found in.
    pub run: usize,
    /// Position of the first event of the pair within the interleaving.
    pub position: usize,
    /// The event executed first in the recorded order.
    pub first: EventId,
    /// The adjacent event executed second.
    pub second: EventId,
    /// FNV-1a hash of the per-replica observations after first-then-second.
    pub forward_hash: u64,
    /// FNV-1a hash of the per-replica observations after second-then-first.
    pub swapped_hash: u64,
    /// Human-readable account of the divergence (states and outcomes).
    pub detail: String,
}

/// The sanitizer's findings and work counters for one replay.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct SanitizerReport {
    /// Runs examined (every retained run of the replay).
    pub runs_scanned: usize,
    /// Adjacent in-set pairs encountered, before deduplication.
    pub pairs_considered: usize,
    /// Distinct (prefix, pair) swaps actually re-executed.
    pub pairs_checked: usize,
    /// Pairs skipped because an identical prefix + pair was already checked.
    pub pairs_deduped: usize,
    /// Per-run set occurrences skipped because a declared interferer sat
    /// inside the set's span (the pruner would not have merged there).
    pub sets_skipped: usize,
    /// The violations found, in (run, position) order.
    pub violations: Vec<IndependenceViolation>,
}

impl SanitizerReport {
    /// `true` when no independence violation was found.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Renders the per-replica observations for violation details.
fn render_states<M: SystemModel>(model: &M, states: &[M::State]) -> String {
    let mut out = String::new();
    for (i, state) in states.iter().enumerate() {
        let _ = write!(out, "r{i}={:?}; ", model.observe(state));
    }
    out
}

/// Hashes the canonical observation of every replica.
fn hash_states<M: SystemModel>(model: &M, states: &[M::State]) -> u64 {
    let mut buf = String::new();
    for state in states {
        let _ = write!(buf, "{:?}\u{1f}", model.observe(state));
    }
    fnv1a64(buf.as_bytes())
}

/// Scans `runs` for adjacent declared-independent pairs and cross-checks
/// each distinct swap against the model. `config` must be the *effective*
/// pruning configuration of the replay (including any analysis-derived or
/// constraint-ingested sets), or the scan would miss the declarations the
/// pruners actually used.
pub(crate) fn sanitize<M: SystemModel>(
    model: &M,
    workload: &Workload,
    config: &PruningConfig,
    runs: &[RunRecord],
) -> SanitizerReport {
    let mut report = SanitizerReport {
        runs_scanned: runs.len(),
        ..SanitizerReport::default()
    };
    if config.independent_sets.is_empty() {
        return report;
    }
    let events = workload.events();

    // Index each declared set and its interferers once.
    let sets: Vec<(HashSet<EventId>, HashSet<EventId>)> = config
        .independent_sets
        .iter()
        .map(|set| {
            let members: HashSet<EventId> = set.iter().copied().collect();
            let interferers: HashSet<EventId> = config
                .interference
                .iter()
                .filter(|(_, y)| members.contains(y))
                .map(|(x, _)| *x)
                .filter(|x| !members.contains(x))
                .collect();
            (members, interferers)
        })
        .collect();

    // Memo of swaps already executed: exact prefix event sequence + pair.
    // Exact-sequence keying is sound because `SystemModel::apply` is
    // deterministic — an identical prefix reproduces identical states.
    let mut memo: HashSet<(u64, usize, usize)> = HashSet::new();

    for (run_idx, run) in runs.iter().enumerate() {
        let order = run.interleaving.as_slice();

        // Candidate positions: `p` such that order[p] and order[p+1] belong
        // to one declared set whose span (in this run) is interferer-free —
        // the exact precondition under which `independence_canonical`
        // merges the swapped order away.
        let mut candidates: Vec<usize> = Vec::new();
        for (members, interferers) in &sets {
            let positions: Vec<usize> = order
                .iter()
                .enumerate()
                .filter(|(_, id)| members.contains(id))
                .map(|(p, _)| p)
                .collect();
            if positions.len() < 2 {
                continue;
            }
            let (first, last) = (positions[0], positions[positions.len() - 1]);
            let blocked = order[first..=last]
                .iter()
                .any(|id| !members.contains(id) && interferers.contains(id));
            if blocked {
                report.sets_skipped += 1;
                continue;
            }
            for w in positions.windows(2) {
                if w[1] == w[0] + 1 {
                    candidates.push(w[0]);
                }
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        if candidates.is_empty() {
            continue;
        }
        report.pairs_considered += candidates.len();

        // First pass (no state execution): resolve each candidate's memo
        // key from the rolling prefix-id buffer and keep only novel swaps.
        let mut id_buf: Vec<u8> = Vec::with_capacity(order.len() * 4);
        let mut novel: Vec<(usize, (u64, usize, usize))> = Vec::new();
        let mut cursor = 0usize;
        for &p in &candidates {
            while cursor < p {
                id_buf.extend_from_slice(&(order[cursor].index() as u32).to_le_bytes());
                cursor += 1;
            }
            let key = (fnv1a64(&id_buf), order[p].index(), order[p + 1].index());
            if memo.insert(key) {
                novel.push((p, key));
            } else {
                report.pairs_deduped += 1;
            }
        }
        if novel.is_empty() {
            continue;
        }

        // Second pass: one incremental walk over the run, cloning states at
        // each novel candidate and applying the pair in both orders.
        let mut states = model.init_all();
        let mut cursor = 0usize;
        for (p, _) in novel {
            while cursor < p {
                let _ = model.apply(&mut states, &events[order[cursor].index()]);
                cursor += 1;
            }
            report.pairs_checked += 1;
            let (a, b) = (order[p], order[p + 1]);
            let mut forward = states.clone();
            let out_a_fwd = model.apply(&mut forward, &events[a.index()]);
            let out_b_fwd = model.apply(&mut forward, &events[b.index()]);
            let mut swapped = states.clone();
            let out_b_swp = model.apply(&mut swapped, &events[b.index()]);
            let out_a_swp = model.apply(&mut swapped, &events[a.index()]);
            let forward_hash = hash_states(model, &forward);
            let swapped_hash = hash_states(model, &swapped);
            if forward_hash != swapped_hash || out_a_fwd != out_a_swp || out_b_fwd != out_b_swp {
                report.violations.push(IndependenceViolation {
                    run: run_idx,
                    position: p,
                    first: a,
                    second: b,
                    forward_hash,
                    swapped_hash,
                    detail: format!(
                        "forward: {} [{a:?}={out_a_fwd:?} {b:?}={out_b_fwd:?}] | swapped: {} \
                         [{a:?}={out_a_swp:?} {b:?}={out_b_swp:?}]",
                        render_states(model, &forward),
                        render_states(model, &swapped),
                    ),
                });
            }
        }
    }
    report
}

//! Violation forensics: the per-run flight recorder and the deterministic
//! forensic bundle behind `GET /campaigns/:id/violations/:n` and the
//! `er-pi-explain` binary.
//!
//! The replay hot path records nothing — a violating run is *re-executed*
//! with the flight recorder armed, which is sound because
//! [`SystemModel::apply`] is deterministic in `(states, event)`: the same
//! interleaving and fault plan always reproduce the same run. The bundle
//! is therefore a pure function of `(model, workload, violation)` and is
//! byte-identical no matter how many workers or which executor strategy
//! originally found the violation (proven by the
//! `forensics_equivalence` differential test over the bug catalogue).
//!
//! A bundle assembles the evidence an operator needs to answer *why*:
//!
//! * the exact interleaving and fault plan (replayable verbatim);
//! * per-step canonical state digests, with the first divergence from the
//!   fault-free recorded-order baseline execution pinpointed and the
//!   observable state deltas at that step;
//! * the workload's happens-before graph as Graphviz DOT
//!   ([`HbGraph::to_dot`]);
//! * provenance: the interleaving fingerprint, the fault digest, and
//!   whether digests came from the model's canonical encoding (the same
//!   encoding state-hash subsumption trusts) or from the lossy `observe`
//!   projection.

use std::collections::VecDeque;

use er_pi_analysis::HbGraph;
use er_pi_model::{EventId, Interleaving, Workload};
use serde::Serialize;

use crate::{InlineExecutor, OpOutcome, SystemModel, TimeModel, Violation};

/// Default flight-recorder capacity, in steps. Workload segments are
/// short (tens of events); the cap only matters for adversarial inputs.
pub(crate) const RECORDER_CAPACITY: usize = 4096;

/// One recorded execution step of the violating run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ForensicStep {
    /// Position in the interleaving (0-based).
    pub pos: usize,
    /// The event's display form, e.g. `e3[R0 set(1)]`.
    pub event: String,
    /// The replica the event executed at.
    pub replica: u16,
    /// The step's outcome: `applied`, `failed: <reason>`, or
    /// `observed: <value>`.
    pub outcome: String,
    /// Hex digest of all replica states *after* the step (including the
    /// step's fault surgery).
    pub digest: String,
}

/// The first step at which the violating run's state departs from the
/// fault-free recorded-order baseline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct DivergencePoint {
    /// Position in both executions (0-based).
    pub pos: usize,
    /// The event the violating run executed at `pos`.
    pub event: String,
    /// The event the baseline executed at `pos`.
    pub baseline_event: String,
    /// Post-step state digest of the violating run.
    pub digest: String,
    /// Post-step state digest of the baseline.
    pub baseline_digest: String,
    /// Per-replica `observe` projections after the step, violating run.
    pub observations: Vec<String>,
    /// Per-replica `observe` projections after the step, baseline.
    pub baseline_observations: Vec<String>,
}

/// Where the bundle's state digests come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[serde(rename_all = "kebab-case")]
pub enum DigestSource {
    /// The model's canonical [`state_encode`](SystemModel::state_encode) —
    /// the same encoding state-hash subsumption trusts; equal digests
    /// imply behaviorally identical states.
    Canonical,
    /// The lossy [`observe`](SystemModel::observe) projection — the model
    /// declined canonical encoding, so equal digests imply equal
    /// *observable* state only.
    ObserveProjection,
}

/// Replay-space provenance of the violating run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Provenance {
    /// FNV fingerprint of the interleaving (order + fault plan).
    pub fingerprint: String,
    /// Number of scheduled faults in the run's fault plan.
    pub fault_count: usize,
    /// `true` when the run's order is exactly the recorded order.
    pub is_recorded_order: bool,
    /// What the per-step digests are computed from.
    pub digest_source: DigestSource,
}

/// The deterministic forensic bundle for one violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ForensicBundle {
    /// The violated assertion's name.
    pub assertion: String,
    /// The assertion's failure message.
    pub message: String,
    /// Exploration index of the violating run, when per-run.
    pub run: Option<usize>,
    /// The exact violating interleaving, fault plan included.
    pub interleaving: Interleaving,
    /// The recorded steps (oldest dropped first if over capacity).
    pub steps: Vec<ForensicStep>,
    /// Steps evicted from the ring buffer (0 for normal workloads).
    pub steps_dropped: usize,
    /// Per-replica `observe` projections of the final states.
    pub final_observations: Vec<String>,
    /// First step whose state departs from the fault-free recorded-order
    /// baseline; `None` when the run never diverges (the violation is
    /// order-insensitive) or the run *is* the fault-free recorded order.
    pub first_divergence: Option<DivergencePoint>,
    /// The workload's happens-before graph, Graphviz DOT.
    pub hb_dot: String,
    /// Replay-space provenance of the run.
    pub provenance: Provenance,
}

impl ForensicBundle {
    /// Canonical JSON encoding of the bundle. Field order is the struct
    /// order, map-free, no floats or wall-clock values — two bundles for
    /// the same violation serialize byte-identically.
    pub fn canonical_json(&self) -> String {
        serde_json::to_string(self).expect("bundle has no non-serializable values")
    }
}

/// A bounded ring buffer of [`ForensicStep`]s. Armed only on the
/// forensic re-execution of a violating run — never on the replay hot
/// path.
#[derive(Debug)]
pub(crate) struct FlightRecorder {
    steps: VecDeque<ForensicStep>,
    capacity: usize,
    dropped: usize,
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            steps: VecDeque::with_capacity(capacity.min(RECORDER_CAPACITY)),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    pub fn record(&mut self, step: ForensicStep) {
        if self.steps.len() == self.capacity {
            self.steps.pop_front();
            self.dropped += 1;
        }
        self.steps.push_back(step);
    }

    pub fn into_parts(self) -> (Vec<ForensicStep>, usize) {
        (self.steps.into(), self.dropped)
    }
}

fn outcome_string(outcome: &OpOutcome) -> String {
    match outcome {
        OpOutcome::Applied => "applied".to_string(),
        OpOutcome::Failed { reason } => format!("failed: {reason}"),
        OpOutcome::Observed(value) => format!("observed: {value}"),
    }
}

/// Digests `states`, preferring the model's canonical encoding and
/// falling back to the lossy `observe` projection when the model
/// declines. The fallback length-prefixes each projection's display form
/// so adjacent replicas never alias.
fn digest_states<M: SystemModel>(model: &M, states: &[M::State]) -> (String, DigestSource) {
    if let Some(digest) = model.state_digest(states) {
        return (format!("{digest:032x}"), DigestSource::Canonical);
    }
    let mut buf = Vec::new();
    for state in states {
        let rendered = model.observe(state).to_string();
        buf.extend_from_slice(&(rendered.len() as u64).to_le_bytes());
        buf.extend_from_slice(rendered.as_bytes());
    }
    (
        format!("{:032x}", er_pi_rdl::fnv1a128(&buf)),
        DigestSource::ObserveProjection,
    )
}

/// Executes `il` with the flight recorder armed, returning the recorded
/// steps, the per-step digests, the final observations, and the per-step
/// observation snapshots (for divergence deltas).
struct RecordedRun {
    steps: Vec<ForensicStep>,
    dropped: usize,
    observations: Vec<Vec<String>>,
    final_observations: Vec<String>,
    digest_source: DigestSource,
}

fn record_run<M: SystemModel>(model: &M, workload: &Workload, il: &Interleaving) -> RecordedRun {
    let time = TimeModel::paper_setup();
    let mut recorder = FlightRecorder::new(RECORDER_CAPACITY);
    let mut observations: Vec<Vec<String>> = Vec::with_capacity(il.len());
    let mut source = DigestSource::Canonical;
    let execution = InlineExecutor::execute_stepwise(
        model,
        workload,
        il,
        &time,
        |pos: usize, id: EventId, outcome: &OpOutcome, states: &[M::State]| {
            let event = workload.event(id);
            let (digest, digest_source) = digest_states(model, states);
            source = digest_source;
            recorder.record(ForensicStep {
                pos,
                event: event.to_string(),
                replica: event.replica.raw(),
                outcome: outcome_string(outcome),
                digest,
            });
            observations.push(
                states
                    .iter()
                    .map(|s| model.observe(s).to_string())
                    .collect(),
            );
        },
    );
    let (steps, dropped) = recorder.into_parts();
    RecordedRun {
        steps,
        dropped,
        observations,
        final_observations: execution
            .states
            .iter()
            .map(|s| model.observe(s).to_string())
            .collect(),
        digest_source: source,
    }
}

/// Assembles the deterministic forensic bundle for `violation`, or `None`
/// when the violation carries no interleaving (cross-run checks inspect
/// the whole run set, so there is no single run to replay).
pub fn explain_violation<M: SystemModel>(
    model: &M,
    workload: &Workload,
    violation: &Violation,
) -> Option<ForensicBundle> {
    let il = violation.interleaving.as_ref()?;
    let run = record_run(model, workload, il);

    // The divergence baseline: the fault-free recorded order — "what the
    // developer observed" — executed with the same recorder.
    let baseline_il = workload.recorded_order();
    let is_baseline = il.as_slice() == baseline_il.as_slice() && il.faults().is_empty();
    let first_divergence = if is_baseline {
        None
    } else {
        let baseline = record_run(model, workload, &baseline_il);
        run.steps
            .iter()
            .zip(baseline.steps.iter())
            .find(|(step, base)| step.digest != base.digest)
            .map(|(step, base)| DivergencePoint {
                pos: step.pos,
                event: step.event.clone(),
                baseline_event: base.event.clone(),
                digest: step.digest.clone(),
                baseline_digest: base.digest.clone(),
                observations: run.observations.get(step.pos).cloned().unwrap_or_default(),
                baseline_observations: baseline
                    .observations
                    .get(base.pos)
                    .cloned()
                    .unwrap_or_default(),
            })
    };

    let hb = HbGraph::build(workload);
    Some(ForensicBundle {
        assertion: violation.assertion.clone(),
        message: violation.message.clone(),
        run: violation.run,
        interleaving: il.clone(),
        steps: run.steps,
        steps_dropped: run.dropped,
        final_observations: run.final_observations,
        first_divergence,
        hb_dot: hb.to_dot(workload),
        provenance: Provenance {
            fingerprint: format!("{:016x}", il.fingerprint()),
            fault_count: il.faults().len(),
            is_recorded_order: il.as_slice() == baseline_il.as_slice(),
            digest_source: run.digest_source,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_pi_model::{Event, EventKind, ReplicaId, Value};

    /// Integer register per replica with canonical encoding, so digests
    /// take the canonical path.
    #[derive(Clone)]
    struct Reg;

    impl SystemModel for Reg {
        type State = i64;

        fn replicas(&self) -> usize {
            2
        }

        fn init(&self, _replica: ReplicaId) -> i64 {
            0
        }

        fn apply(&self, states: &mut [i64], event: &Event) -> OpOutcome {
            match &event.kind {
                EventKind::LocalUpdate { op } => {
                    states[event.replica.index()] = op.arg(0).and_then(Value::as_int).unwrap_or(0);
                    OpOutcome::Applied
                }
                EventKind::Sync { to, .. } => {
                    states[to.index()] = states[event.replica.index()];
                    OpOutcome::Applied
                }
                _ => OpOutcome::failed("unsupported"),
            }
        }

        fn observe(&self, state: &i64) -> Value {
            Value::from(*state)
        }

        fn state_encode(&self, state: &i64, out: &mut Vec<u8>) -> bool {
            out.extend_from_slice(&state.to_le_bytes());
            true
        }
    }

    fn workload() -> Workload {
        let a = ReplicaId::new(0);
        let b = ReplicaId::new(1);
        let mut w = Workload::builder();
        let w1 = w.update(a, "set", [Value::from(1)]);
        w.sync_pair(a, b, w1);
        let w2 = w.update(b, "set", [Value::from(2)]);
        w.sync_pair(b, a, w2);
        w.build()
    }

    fn violation_on(il: Interleaving) -> Violation {
        Violation {
            run: Some(7),
            assertion: "probe".into(),
            message: "states disagree".into(),
            interleaving: Some(il),
        }
    }

    #[test]
    fn a_cross_run_violation_has_no_bundle() {
        let w = workload();
        let v = Violation {
            run: None,
            assertion: "cross".into(),
            message: "m".into(),
            interleaving: None,
        };
        assert!(explain_violation(&Reg, &w, &v).is_none());
    }

    #[test]
    fn bundles_are_deterministic_and_locate_the_divergence() {
        let w = workload();
        // Reversed order: diverges from the recorded baseline immediately.
        let mut ids: Vec<EventId> = w.event_ids().collect();
        ids.reverse();
        let v = violation_on(Interleaving::new(ids));
        let a = explain_violation(&Reg, &w, &v).expect("per-run violation explains");
        let b = explain_violation(&Reg, &w, &v).expect("second bundle");
        assert_eq!(a.canonical_json(), b.canonical_json(), "byte-identical");
        assert_eq!(a.steps.len(), w.len());
        assert_eq!(a.steps_dropped, 0);
        assert_eq!(a.provenance.digest_source, DigestSource::Canonical);
        assert!(!a.provenance.is_recorded_order);
        let div = a.first_divergence.expect("a reversed order diverges");
        assert_eq!(div.pos, 0);
        assert_ne!(div.digest, div.baseline_digest);
        assert_eq!(div.observations.len(), 2);
        assert!(a.hb_dot.starts_with("digraph happens_before {"));
        assert_eq!(a.run, Some(7));
    }

    #[test]
    fn the_recorded_order_itself_never_diverges() {
        let w = workload();
        let v = violation_on(w.recorded_order());
        let bundle = explain_violation(&Reg, &w, &v).unwrap();
        assert!(bundle.first_divergence.is_none());
        assert!(bundle.provenance.is_recorded_order);
        assert_eq!(bundle.provenance.fault_count, 0);
    }

    #[test]
    fn models_without_canonical_encoding_fall_back_to_observe() {
        #[derive(Clone)]
        struct Opaque;
        impl SystemModel for Opaque {
            type State = i64;
            fn replicas(&self) -> usize {
                1
            }
            fn init(&self, _r: ReplicaId) -> i64 {
                0
            }
            fn apply(&self, states: &mut [i64], _e: &Event) -> OpOutcome {
                states[0] += 1;
                OpOutcome::Applied
            }
            fn observe(&self, state: &i64) -> Value {
                Value::from(*state)
            }
        }
        let mut w = Workload::builder();
        w.update(ReplicaId::new(0), "x", [Value::from(1)]);
        w.update(ReplicaId::new(0), "y", [Value::from(2)]);
        let w = w.build();
        let v = violation_on(w.recorded_order());
        let bundle = explain_violation(&Opaque, &w, &v).unwrap();
        assert_eq!(
            bundle.provenance.digest_source,
            DigestSource::ObserveProjection
        );
        assert!(bundle.steps.iter().all(|s| !s.digest.is_empty()));
    }

    #[test]
    fn the_ring_buffer_evicts_oldest_first() {
        let mut rec = FlightRecorder::new(2);
        for pos in 0..5 {
            rec.record(ForensicStep {
                pos,
                event: format!("e{pos}"),
                replica: 0,
                outcome: "applied".into(),
                digest: String::new(),
            });
        }
        let (steps, dropped) = rec.into_parts();
        assert_eq!(dropped, 3);
        assert_eq!(steps.iter().map(|s| s.pos).collect::<Vec<_>>(), [3, 4]);
    }
}

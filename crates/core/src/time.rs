//! The simulated-time model behind Figure 8b.

use er_pi_model::{Event, EventKind, Workload};
use er_pi_replica::HostProfile;

/// Charges simulated time for replayed events, based on per-replica host
/// profiles.
///
/// The paper measures wall-clock reproduction time on heterogeneous
/// hardware (two laptops + a Raspberry Pi); this model reproduces the time
/// *shape* deterministically: each event costs what its replica's host
/// charges, plus fixed per-interleaving reset overhead, plus (for the
/// Random mode) per-retry shuffle overhead.
#[derive(Debug, Clone)]
pub struct TimeModel {
    profiles: Vec<HostProfile>,
    /// Checkpoint/reset overhead charged per replayed interleaving, µs.
    pub reset_cost_us: u64,
    /// Cost of one rejected shuffle in Random mode, µs.
    pub shuffle_retry_cost_us: u64,
}

impl TimeModel {
    /// The paper's three-host setup.
    pub fn paper_setup() -> Self {
        TimeModel {
            profiles: HostProfile::paper_trio().to_vec(),
            reset_cost_us: 2_500,
            shuffle_retry_cost_us: 40,
        }
    }

    /// A model with explicit profiles (cycled if fewer than replicas).
    pub fn new(profiles: Vec<HostProfile>) -> Self {
        assert!(!profiles.is_empty(), "at least one host profile");
        TimeModel {
            profiles,
            reset_cost_us: 2_500,
            shuffle_retry_cost_us: 40,
        }
    }

    fn profile(&self, replica: usize) -> &HostProfile {
        &self.profiles[replica % self.profiles.len()]
    }

    /// Cost of one event, microseconds.
    pub fn event_cost_us(&self, event: &Event) -> u64 {
        let host = self.profile(event.replica.index());
        match &event.kind {
            EventKind::LocalUpdate { .. } | EventKind::External { .. } => host.op_cost_us,
            EventKind::SyncSend { .. } => host.net_latency_us,
            EventKind::SyncExec { .. } => host.sync_cost_us,
            EventKind::Sync { .. } => host.net_latency_us + host.sync_cost_us,
        }
    }

    /// Cost of replaying one full interleaving of `workload` (events +
    /// reset), microseconds.
    pub fn run_cost_us(&self, workload: &Workload) -> u64 {
        let events: u64 = workload
            .events()
            .iter()
            .map(|e| self.event_cost_us(e))
            .sum();
        events + self.reset_cost_us
    }
}

impl Default for TimeModel {
    fn default() -> Self {
        Self::paper_setup()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_pi_model::{ReplicaId, Value};

    #[test]
    fn sync_costs_more_than_update() {
        let model = TimeModel::paper_setup();
        let mut w = Workload::builder();
        let u = w.update(ReplicaId::new(0), "op", [Value::from(1)]);
        let s = w.sync_pair(ReplicaId::new(0), ReplicaId::new(1), u);
        let w = w.build();
        let cu = model.event_cost_us(w.event(u));
        let cs = model.event_cost_us(w.event(s));
        assert!(cs > cu);
    }

    #[test]
    fn pi_replica_is_slower() {
        let model = TimeModel::paper_setup();
        let mut w = Workload::builder();
        let fast = w.update(ReplicaId::new(0), "op", [Value::from(1)]);
        let slow = w.update(ReplicaId::new(2), "op", [Value::from(1)]);
        let w = w.build();
        assert!(model.event_cost_us(w.event(slow)) > model.event_cost_us(w.event(fast)));
    }

    #[test]
    fn run_cost_includes_reset() {
        let model = TimeModel::paper_setup();
        let mut w = Workload::builder();
        w.update(ReplicaId::new(0), "op", [Value::from(1)]);
        let w = w.build();
        assert_eq!(
            model.run_cost_us(&w),
            model.event_cost_us(w.event(er_pi_model::EventId::new(0))) + model.reset_cost_us
        );
    }

    #[test]
    fn profiles_cycle_beyond_their_count() {
        let model = TimeModel::new(vec![HostProfile::laptop_i7(), HostProfile::raspberry_pi3()]);
        let mut w = Workload::builder();
        let e0 = w.update(ReplicaId::new(0), "op", [Value::from(1)]);
        let e2 = w.update(ReplicaId::new(2), "op", [Value::from(1)]);
        let w = w.build();
        assert_eq!(
            model.event_cost_us(w.event(e0)),
            model.event_cost_us(w.event(e2)),
            "replica 2 wraps to profile 0"
        );
    }
}

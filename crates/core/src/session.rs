//! The testing session: `ER-π.Start()` … `ER-π.End(assertions)`.

use std::sync::Arc;
use std::time::Instant;

use er_pi_datalog::InterleavingStore;
use er_pi_interleave::{
    enumerate_plans, DfsExplorer, ErPiExplorer, ExploreMode, Explorer, FaultProduct, FaultSpace,
    FilterTimings, IndexedSource, PruneStats, PruningConfig, RandomExplorer,
};
use er_pi_model::{
    EventId, FaultPlan, Interleaving, OpDescriptor, ReplicaId, Value, Workload, WorkloadBuilder,
};
use er_pi_telemetry::{
    HitRateMonitor, Progress, ProgressSnapshot, Sink, Telemetry, COORDINATOR_TRACK,
    HIT_RATE_THRESHOLD, HIT_RATE_WINDOW,
};

use er_pi_analysis::{Diagnostic, TraceAnalysis};

use crate::instrument::{Instrument, ProgressHook};
use crate::service::CampaignParams;
use crate::subsume::SubsumeSet;
use crate::{
    CacheStats, CancelToken, CheckContext, ConstraintsDir, CrossContext, ErPiError,
    ExecutorService, FailureStats, IncrementalExecutor, InlineExecutor, OpOutcome, ReplayPool,
    Report, ResourceProfile, RunRecord, SanitizerReport, SessionMetrics, SessionSummary,
    SystemModel, TestSuite, TimeModel, Violation, WorkerLoad, DEFAULT_CACHE_BUDGET,
    DEFAULT_CHUNK_SIZE,
};

/// The live, recording instance of the system under test.
///
/// During `Session::record`, application code drives its workload through
/// this handle. Each call executes immediately against the real model *and*
/// is intercepted as an [`Event`](er_pi_model::Event) — the Rust equivalent
/// of the paper's RDL proxies (§4.1).
pub struct LiveSystem<'m, M: SystemModel> {
    model: &'m M,
    states: Vec<M::State>,
    builder: WorkloadBuilder,
    outcomes: Vec<OpOutcome>,
}

impl<'m, M: SystemModel> LiveSystem<'m, M> {
    fn new(model: &'m M) -> Self {
        LiveSystem {
            states: model.init_all(),
            model,
            builder: WorkloadBuilder::new(),
            outcomes: Vec::new(),
        }
    }

    fn run_last(&mut self, id: EventId) -> EventId {
        let event = self.builder.event(id).clone();
        let outcome = self.model.apply(&mut self.states, &event);
        self.outcomes.push(outcome);
        id
    }

    /// Invokes (and records) an RDL function at `replica`.
    pub fn invoke<A>(&mut self, replica: ReplicaId, function: &str, args: A) -> EventId
    where
        A: IntoIterator,
        A::Item: Into<Value>,
    {
        let id = self.builder.update(replica, function, args);
        self.run_last(id)
    }

    /// Invokes (and records) a pre-built operation descriptor.
    pub fn invoke_op(&mut self, replica: ReplicaId, op: OpDescriptor) -> EventId {
        let id = self.builder.update_op(replica, op);
        self.run_last(id)
    }

    /// Performs (and records) a fused synchronization shipping update `of`
    /// from `from` to `to`.
    pub fn sync(&mut self, from: ReplicaId, to: ReplicaId, of: EventId) -> EventId {
        let id = self.builder.sync_pair(from, to, of);
        self.run_last(id)
    }

    /// Performs (and records) a fused synchronization with no tracked
    /// source update.
    pub fn sync_untracked(&mut self, from: ReplicaId, to: ReplicaId) -> EventId {
        let id = self.builder.sync_untracked(from, to);
        self.run_last(id)
    }

    /// Performs (and records) a split synchronization: a send event followed
    /// by the matching execute event.
    pub fn sync_split(
        &mut self,
        from: ReplicaId,
        to: ReplicaId,
        of: Option<EventId>,
    ) -> (EventId, EventId) {
        let send = self.builder.sync_send(from, to, of);
        self.run_last(send);
        let exec = self.builder.sync_exec(to, from, send);
        self.run_last(exec);
        (send, exec)
    }

    /// Performs (and records) an external effect at `replica`.
    pub fn external(&mut self, replica: ReplicaId, label: impl Into<String>) -> EventId {
        let id = self.builder.external(replica, label);
        self.run_last(id)
    }

    /// Declares an explicit causal dependency between recorded events.
    pub fn depends(&mut self, event: EventId, dep: EventId) {
        self.builder.depends(event, dep);
    }

    /// The current live state of `replica` (reads are not recorded).
    pub fn state(&self, replica: ReplicaId) -> &M::State {
        &self.states[replica.index()]
    }

    /// The recorded outcome of `event` during the live run.
    pub fn outcome(&self, event: EventId) -> &OpOutcome {
        &self.outcomes[event.index()]
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.builder.len()
    }

    /// Returns `true` if nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.builder.is_empty()
    }
}

/// An exploration source over any of the three modes.
enum AnyExplorer<'w> {
    ErPi(Box<ErPiExplorer<'w>>),
    Dfs(DfsExplorer),
    Rand(RandomExplorer),
}

impl Iterator for AnyExplorer<'_> {
    type Item = Interleaving;

    fn next(&mut self) -> Option<Interleaving> {
        match self {
            AnyExplorer::ErPi(e) => e.next(),
            AnyExplorer::Dfs(e) => e.next(),
            AnyExplorer::Rand(e) => e.next(),
        }
    }
}

impl AnyExplorer<'_> {
    fn mode_name(&self) -> &'static str {
        match self {
            AnyExplorer::ErPi(e) => e.name(),
            AnyExplorer::Dfs(e) => e.name(),
            AnyExplorer::Rand(e) => e.name(),
        }
    }

    fn wasted(&self) -> u64 {
        match self {
            AnyExplorer::ErPi(e) => e.wasted_work(),
            AnyExplorer::Dfs(e) => e.wasted_work(),
            AnyExplorer::Rand(e) => e.wasted_work(),
        }
    }

    fn stats(&self) -> Option<PruneStats> {
        match self {
            AnyExplorer::ErPi(e) => Some(e.stats()),
            _ => None,
        }
    }

    /// Turns on per-filter wall-time measurement (ER-π mode only; the
    /// other modes have no filters to time).
    fn enable_timing(&mut self) {
        if let AnyExplorer::ErPi(e) = self {
            e.enable_timing();
        }
    }

    fn timings(&self) -> Option<FilterTimings> {
        match self {
            AnyExplorer::ErPi(e) => Some(e.timings()),
            _ => None,
        }
    }

    /// Attaches the live sleep-set prune tally (ER-π mode only; inert when
    /// sleep sets are off or no pair of units commutes).
    fn set_sleep_tally(&mut self, tally: Arc<std::sync::atomic::AtomicU64>) {
        if let AnyExplorer::ErPi(e) = self {
            e.set_sleep_tally(tally);
        }
    }
}

/// One integration-testing session over a [`SystemModel`].
///
/// Mirrors the paper's workflow: [`Session::record`] is State 1 (event
/// extraction through proxies); [`Session::replay`] runs States 2–4
/// (generate + prune + persist, execute each interleaving with checkpointed
/// state, ingest runtime constraints). See the
/// [crate-level example](crate).
pub struct Session<M: SystemModel> {
    model: M,
    config: PruningConfig,
    mode: ExploreMode,
    auto_independence: bool,
    /// The paper's experiment cap: 10 000 interleavings.
    max_interleavings: usize,
    stop_on_first_violation: bool,
    keep_runs: bool,
    workers: usize,
    incremental: bool,
    cache_budget: usize,
    subsume: bool,
    sleep_sets: bool,
    chunk_size: usize,
    time: TimeModel,
    constraints: Option<ConstraintsDir>,
    constraint_poll_every: usize,
    persist: bool,
    sanitize: bool,
    certify: bool,
    workload: Option<Workload>,
    fault_plans: Option<Vec<FaultPlan>>,
    fault_space: Option<FaultSpace>,
    store: Option<InterleavingStore>,
    sanitizer_report: Option<SanitizerReport>,
    telemetry: Telemetry,
    progress_hook: Option<ProgressHook>,
    progress_every: usize,
    cancel: Option<CancelToken>,
    metrics: Option<SessionMetrics>,
}

/// What either replay strategy produces before the report is assembled.
struct ReplayOutcome {
    mode: String,
    runs: Vec<RunRecord>,
    violations: Vec<Violation>,
    first_violation_at: Option<usize>,
    sim_us: u64,
    stopped_early: bool,
    prune_stats: Option<PruneStats>,
    wasted: u64,
    store: Option<InterleavingStore>,
    worker_loads: Vec<WorkerLoad>,
    cache_stats: Option<CacheStats>,
    filter_timings: Option<FilterTimings>,
}

impl<M: SystemModel> Session<M> {
    /// Creates a session with default settings: ER-π mode, the paper's
    /// 10 000-interleaving cap, and the three-host time model.
    pub fn new(model: M) -> Self {
        Session {
            model,
            config: PruningConfig::default(),
            mode: ExploreMode::ErPi,
            auto_independence: false,
            max_interleavings: 10_000,
            stop_on_first_violation: false,
            keep_runs: false,
            workers: ReplayPool::available_workers(),
            incremental: true,
            cache_budget: DEFAULT_CACHE_BUDGET,
            subsume: false,
            sleep_sets: false,
            chunk_size: DEFAULT_CHUNK_SIZE,
            time: TimeModel::paper_setup(),
            constraints: None,
            constraint_poll_every: 100,
            persist: false,
            sanitize: false,
            certify: false,
            workload: None,
            fault_plans: None,
            fault_space: None,
            store: None,
            sanitizer_report: None,
            telemetry: Telemetry::disabled(),
            progress_hook: None,
            progress_every: 256,
            cancel: None,
            metrics: None,
        }
    }

    /// The system under test.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the pruning configuration.
    pub fn config_mut(&mut self) -> &mut PruningConfig {
        &mut self.config
    }

    /// Replaces the pruning configuration.
    pub fn set_config(&mut self, config: PruningConfig) -> &mut Self {
        self.config = config;
        self
    }

    /// Selects the exploration mode (ER-π, DFS, or Random).
    pub fn set_mode(&mut self, mode: ExploreMode) -> &mut Self {
        self.mode = mode;
        self
    }

    /// Enables the static analysis pass as the source of Algorithm 3's
    /// inputs: the independent sets and interference relation derived by
    /// [`er_pi_analysis::analyze`] are merged into the pruning
    /// configuration for every replay, replacing hand declarations.
    pub fn set_auto_independence(&mut self, auto: bool) -> &mut Self {
        self.auto_independence = auto;
        self
    }

    /// Caps the number of replayed interleavings (paper default: 10 000).
    pub fn set_cap(&mut self, cap: usize) -> &mut Self {
        self.max_interleavings = cap;
        self
    }

    /// Stops the replay at the first violation (bug-reproduction mode).
    pub fn set_stop_on_first_violation(&mut self, stop: bool) -> &mut Self {
        self.stop_on_first_violation = stop;
        self
    }

    /// Keeps the full per-run records in the report.
    pub fn set_keep_runs(&mut self, keep: bool) -> &mut Self {
        self.keep_runs = keep;
        self
    }

    /// Sets the number of replay worker threads (default: all available
    /// cores; `0` also means "all available cores").
    ///
    /// With more than one worker, [`Session::replay`] fans the pruned
    /// interleaving set across a [`ReplayPool`]; the merged report is
    /// deterministically identical to the sequential one (compare with
    /// [`Report::diff`]). `1` forces the sequential in-situ path — the
    /// reference the differential-equivalence suite checks the pool
    /// against. Sessions watching a constraints directory replay
    /// sequentially regardless, because State-4 ingestion is a feedback
    /// loop on the live exploration order.
    pub fn set_workers(&mut self, workers: usize) -> &mut Self {
        self.workers = if workers == 0 {
            ReplayPool::available_workers()
        } else {
            workers
        };
        self
    }

    /// The configured replay worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Enables or disables prefix-sharing incremental replay (default:
    /// **on**).
    ///
    /// Incrementally replayed sessions resume each interleaving from the
    /// deepest cached common prefix in a [`CheckpointTrie`], applying only
    /// the divergent suffix — the report stays byte-identical to a scratch
    /// replay ([`Report::diff`] returns `None` between the two), but the
    /// cache counters land in [`Report::cache_stats`] and the wall-clock
    /// drops with the workload's prefix locality. Disable it to force the
    /// §4.3 scratch semantics (e.g. when `SystemModel::apply` is not
    /// deterministic — which also breaks replay itself — or to baseline
    /// the saving, as `fig_prefix` does).
    ///
    /// [`CheckpointTrie`]: crate::CheckpointTrie
    pub fn set_incremental(&mut self, incremental: bool) -> &mut Self {
        self.incremental = incremental;
        self
    }

    /// Whether incremental replay is enabled.
    pub fn incremental(&self) -> bool {
        self.incremental
    }

    /// Sets the snapshot budget of the incremental executor, in
    /// [`state_size_hint`](SystemModel::state_size_hint)-accounted bytes
    /// (default: [`DEFAULT_CACHE_BUDGET`], 64 MiB). Each pool worker gets
    /// its own trie with this budget. A budget of `0` keeps incremental
    /// bookkeeping but caches no snapshots — every run replays from
    /// scratch.
    ///
    /// [`DEFAULT_CACHE_BUDGET`]: crate::DEFAULT_CACHE_BUDGET
    pub fn set_cache_budget(&mut self, bytes: usize) -> &mut Self {
        self.cache_budget = bytes;
        self
    }

    /// The configured snapshot budget.
    pub fn cache_budget(&self) -> usize {
        self.cache_budget
    }

    /// Enables or disables state-hash subsumption (default: **off**).
    ///
    /// Each replay then keeps a campaign-wide explored-set of
    /// `(state digest, fault digest, suffix hash, depth)` keys; whenever a
    /// run reaches a state some memoized run already continued from — with
    /// the same pending faults and the same remaining events — the
    /// memoized tail is stitched in instead of executed. The report stays
    /// byte-identical to a subsumption-off replay ([`Report::diff`]
    /// returns `None`; the dpor-equivalence suite pins it), and
    /// [`CacheStats::subsumed`] / [`CacheStats::subsume_events_saved`]
    /// count the skipped work.
    ///
    /// Requires [`SystemModel::state_encode`]: models that decline it run
    /// unchanged (the set never fires). `ER_PI_SUBSUME_AUDIT=1` keeps the
    /// full encodings next to the digests and panics on any 128-bit
    /// collision or false subsumption.
    pub fn set_subsumption(&mut self, subsume: bool) -> &mut Self {
        self.subsume = subsume;
        self
    }

    /// Whether state-hash subsumption is enabled.
    pub fn subsumption(&self) -> bool {
        self.subsume
    }

    /// Enables or disables sleep-set (DPOR-style) pruning (default:
    /// **off**); equivalent to setting
    /// [`PruningConfig::sleep_sets`] on the session's configuration, except
    /// that the session flag also merges the auto-derived (certified)
    /// independence relation into the effective pruning configuration, so
    /// workloads that declare no independent sets by hand still get a live
    /// commute matrix.
    ///
    /// Unit permutations with a descending adjacent pair of commuting
    /// units (every cross event pair declared independent) are rejected
    /// before they are even flattened. Sound — one representative per
    /// commutation class always survives, so the violation set is
    /// unchanged — but the surviving representative may differ from the
    /// one the event-level independence filter would have kept, so reports
    /// are violation-equivalent rather than byte-identical.
    pub fn set_sleep_sets(&mut self, sleep: bool) -> &mut Self {
        self.sleep_sets = sleep;
        self
    }

    /// Whether sleep-set pruning is enabled.
    pub fn sleep_sets(&self) -> bool {
        self.sleep_sets
    }

    /// Sets the pool dispenser's claim granularity, in interleavings per
    /// claim (default: [`DEFAULT_CHUNK_SIZE`]; values below 1 are
    /// clamped). Larger chunks amortize the dispenser lock and keep each
    /// worker's stream prefix-coherent (hotter checkpoint tries); smaller
    /// chunks react faster to stop-on-first-violation cancellation, which
    /// is only checked between chunks. Sequential replay ignores it.
    pub fn set_chunk_size(&mut self, chunk: usize) -> &mut Self {
        self.chunk_size = chunk.max(1);
        self
    }

    /// The configured claim-chunk granularity.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Replaces the simulated-time model.
    pub fn set_time_model(&mut self, time: TimeModel) -> &mut Self {
        self.time = time;
        self
    }

    /// Watches `dir` for runtime constraint files (State 4 of the paper's
    /// workflow).
    pub fn watch_constraints(&mut self, dir: impl Into<std::path::PathBuf>) -> &mut Self {
        self.constraints = Some(ConstraintsDir::new(dir));
        self
    }

    /// Persists generated interleavings into the deductive store, queryable
    /// afterwards via [`Session::store`].
    pub fn set_persist(&mut self, persist: bool) -> &mut Self {
        self.persist = persist;
        self
    }

    /// Enables the replay-time independence sanitizer (default: **off**).
    ///
    /// After each [`Session::replay`], every run in which two events of a
    /// declared independent set executed adjacently (with no declared
    /// interferer inside the set's span — the precondition for Algorithm
    /// 3's merging) is re-checked: the run's prefix is re-executed, the
    /// pair is applied in both orders, and the hashed replica observations
    /// plus per-event [`OpOutcome`]s are compared. Any difference lands in
    /// [`Session::sanitizer_report`] as an
    /// [`IndependenceViolation`](crate::IndependenceViolation).
    ///
    /// The sanitizer never changes the [`Report`]: a sanitizer-on replay is
    /// byte-identical to a sanitizer-off one under [`Report::diff`] (pinned
    /// by the `sanitizer_equivalence` suite).
    pub fn set_sanitizer(&mut self, sanitize: bool) -> &mut Self {
        self.sanitize = sanitize;
        self
    }

    /// Whether the independence sanitizer is enabled.
    pub fn sanitizer(&self) -> bool {
        self.sanitize
    }

    /// The independence findings of the last sanitizer-enabled replay
    /// (`None` before the first such replay, or while the sanitizer is
    /// off).
    pub fn sanitizer_report(&self) -> Option<&SanitizerReport> {
        self.sanitizer_report.as_ref()
    }

    /// Enables pre-replay certification of the commutativity table
    /// (default: **off**).
    ///
    /// Each [`Session::replay`] then runs the bounded certifier
    /// ([`er_pi_analysis::certify_table`]) and validates both the table and
    /// the replay's effective independence declarations against it; any
    /// unsound or vacuous entry is appended to [`Report::diagnostics`] as
    /// an `independence-soundness` lint (misconception number 0), alongside
    /// the five misconception lints.
    pub fn set_certify(&mut self, certify: bool) -> &mut Self {
        self.certify = certify;
        self
    }

    /// Whether pre-replay table certification is enabled.
    pub fn certify(&self) -> bool {
        self.certify
    }

    /// Attaches a telemetry sink: recording, enumeration, each pruning
    /// algorithm, dispatch, every replayed run, constraint checking, and
    /// the end-of-session summary emit structured events into it (see the
    /// `er_pi_telemetry` crate for the sinks).
    ///
    /// Telemetry is strictly write-only — attaching any sink leaves the
    /// [`Report`] byte-identical to a detached run ([`Report::diff`]
    /// returns `None` between the two; the `telemetry_equivalence` suite
    /// pins this). The default is [`er_pi_telemetry::NullSink`], which
    /// disables the whole layer down to one dead branch per instrumented
    /// site.
    pub fn set_telemetry(&mut self, sink: Arc<dyn Sink>) -> &mut Self {
        self.telemetry = Telemetry::new(sink);
        self
    }

    /// Attaches label-scoped registry metrics
    /// ([`SessionMetrics`](crate::SessionMetrics)): every subsequent
    /// replay bumps the campaign's run/cache/subsumption counters per
    /// finished run and folds pruner statistics and the final cache hit
    /// rate in when the replay completes.
    ///
    /// Like telemetry sinks, the registry is strictly write-only: an
    /// attached registry leaves the [`Report`] byte-identical to a
    /// detached run.
    pub fn set_metrics(&mut self, metrics: SessionMetrics) -> &mut Self {
        self.metrics = Some(metrics);
        self
    }

    /// Installs a periodic progress callback, invoked every `every`
    /// finished runs (from whichever thread crosses the boundary) with a
    /// live [`ProgressSnapshot`]: runs/sec, measured ETA, the a-priori
    /// [`ResourceProfile::campaign_secs`] projection, cache hit rate, and
    /// per-worker utilization.
    pub fn set_progress_hook(
        &mut self,
        every: usize,
        hook: impl Fn(&ProgressSnapshot) + Send + Sync + 'static,
    ) -> &mut Self {
        self.progress_every = every.max(1);
        self.progress_hook = Some(Arc::new(hook));
        self
    }

    /// Attaches a cooperative [`CancelToken`] to every subsequent replay.
    ///
    /// Cancellation is checked between runs (sequential strategy) or
    /// between claimed chunks (pooled and service strategies): tripping
    /// the token makes the in-flight replay stop at the next boundary and
    /// return [`ErPiError::Cancelled`], discarding its partial results.
    /// The session stays usable — replace or clear the token and replay
    /// again. The campaign server trips a per-campaign token from its
    /// `DELETE /campaigns/:id` handler.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) -> &mut Self {
        self.cancel = token;
        self
    }

    /// `ER-π.Start()` … `ER-π.End()`: runs `drive` against a live instance
    /// of the system, intercepting every call as an event. Returns the
    /// extracted workload.
    pub fn record(&mut self, drive: impl FnOnce(&mut LiveSystem<'_, M>)) -> &Workload {
        let t_record = self.telemetry.start();
        let mut live = LiveSystem::new(&self.model);
        drive(&mut live);
        self.telemetry.span_since(
            COORDINATOR_TRACK,
            "record",
            t_record,
            vec![("events", live.builder.len().into())],
        );
        self.workload = Some(live.builder.build());
        self.workload.as_ref().expect("just set")
    }

    /// Installs a pre-built workload (used by the bug catalogue, where the
    /// event sets come from the reported issues).
    pub fn set_workload(&mut self, workload: Workload) -> &mut Self {
        self.workload = Some(workload);
        self
    }

    /// Schedules an explicit list of fault plans: every replay explores the
    /// product `orders × plans`, with each plan interpreted
    /// deterministically (drops, duplicates, delays, partition windows,
    /// crash-restarts are *scheduled choice points*, not random draws).
    ///
    /// Fault plans are part of run identity — they enter interleaving
    /// fingerprints, dedup, persistence, and the checkpoint-trie keys — so
    /// pooled, incremental, and sequential replays of the same plan list
    /// produce byte-identical reports ([`Report::diff`] returns `None`).
    ///
    /// Takes precedence over [`Session::set_fault_space`]. An empty list
    /// (or neither setter called) keeps the fault-free pipeline
    /// bit-identical to previous releases.
    pub fn set_fault_plans(&mut self, plans: Vec<FaultPlan>) -> &mut Self {
        self.fault_plans = Some(plans);
        self
    }

    /// Schedules a [`FaultSpace`]: each replay enumerates its budget-bounded
    /// plan list over the *current* workload via [`enumerate_plans`] and
    /// explores the product `orders × plans` (baseline first when the space
    /// includes it). See [`Session::set_fault_plans`] for the determinism
    /// contract.
    pub fn set_fault_space(&mut self, space: FaultSpace) -> &mut Self {
        self.fault_space = Some(space);
        self
    }

    /// The fault plans the next replay will explore over `workload`:
    /// explicit plans win, else the configured space is enumerated, else
    /// the single fault-free baseline.
    fn resolve_fault_plans(&self, workload: &Workload) -> Vec<FaultPlan> {
        if let Some(plans) = &self.fault_plans {
            return plans.clone();
        }
        if let Some(space) = &self.fault_space {
            return enumerate_plans(workload, space);
        }
        Vec::new()
    }

    /// The recorded workload, if any.
    pub fn workload(&self) -> Option<&Workload> {
        self.workload.as_ref()
    }

    /// The deductive store filled by the last persisted replay.
    pub fn store(&self) -> Option<&InterleavingStore> {
        self.store.as_ref()
    }

    /// Runs the static trace analysis over the recorded workload:
    /// happens-before graph, commutativity classification, derived
    /// independence, and the misconception lints.
    ///
    /// # Errors
    ///
    /// [`ErPiError::NothingRecorded`] without a prior
    /// [`Session::record`]/[`Session::set_workload`].
    pub fn analyze(&self) -> Result<TraceAnalysis, ErPiError> {
        self.workload
            .as_ref()
            .map(er_pi_analysis::analyze)
            .ok_or(ErPiError::NothingRecorded)
    }

    /// Builds the exploration source for one replay: the mode's explorer
    /// lifted to the `orders × plans` product. With no fault configuration
    /// the product holds the single empty plan and is a transparent
    /// pass-through — emitted interleavings are bit-identical to the bare
    /// explorer's.
    fn build_explorer<'w>(
        &self,
        workload: &'w Workload,
        config: &PruningConfig,
        plans: &[FaultPlan],
    ) -> FaultProduct<AnyExplorer<'w>> {
        let explorer = match self.mode {
            ExploreMode::ErPi => AnyExplorer::ErPi(Box::new(ErPiExplorer::new(workload, config))),
            ExploreMode::Dfs => AnyExplorer::Dfs(DfsExplorer::new(workload)),
            ExploreMode::Random { seed } => AnyExplorer::Rand(RandomExplorer::new(workload, seed)),
        };
        FaultProduct::new(explorer, plans.to_vec())
    }

    /// [`Session::build_explorer`] with an owned workload: the `'static`
    /// source a campaign needs to outlive this call on the shared
    /// [`ExecutorService`] threads. Emits bit-identical interleavings —
    /// [`ErPiExplorer::owned`] is the same explorer over a `Cow::Owned`
    /// workload, and the other two modes never borrowed it to begin with.
    fn build_explorer_owned(
        &self,
        workload: &Workload,
        config: &PruningConfig,
        plans: &[FaultPlan],
    ) -> FaultProduct<AnyExplorer<'static>> {
        let explorer = match self.mode {
            ExploreMode::ErPi => {
                AnyExplorer::ErPi(Box::new(ErPiExplorer::owned(workload.clone(), config)))
            }
            ExploreMode::Dfs => AnyExplorer::Dfs(DfsExplorer::new(workload)),
            ExploreMode::Random { seed } => AnyExplorer::Rand(RandomExplorer::new(workload, seed)),
        };
        FaultProduct::new(explorer, plans.to_vec())
    }

    /// Replays the recorded workload's interleavings and checks `suite`
    /// after each one — States 2–4 of the paper's workflow.
    ///
    /// With the session's worker count above one (the default is all
    /// available cores, see [`Session::set_workers`]), the pruned set is
    /// fanned across a [`ReplayPool`]; the merged report is
    /// deterministically identical to a single-worker replay.
    ///
    /// # Errors
    ///
    /// [`ErPiError::NothingRecorded`] without a prior
    /// [`Session::record`]/[`Session::set_workload`];
    /// [`ErPiError::Constraints`] if a constraints file is malformed;
    /// [`ErPiError::ExecutorPanic`] if the model panics inside a pooled
    /// replay worker (the session stays usable).
    pub fn replay(&mut self, suite: &TestSuite<M::State>) -> Result<Report, ErPiError>
    where
        M: Sync,
        M::State: Send + Sync,
    {
        let workload = self.workload.clone().ok_or(ErPiError::NothingRecorded)?;
        let started = Instant::now();
        let slots = if self.workers > 1 && self.constraints.is_none() {
            self.workers
        } else {
            1
        };
        let instrument = self.build_instrument(&workload, slots);
        let (diagnostics, mut effective) = self.prepare_replay(&workload)?;

        // Constraint watching is a feedback loop on the live exploration
        // order (State 4 → State 2), so it pins the sequential strategy.
        let outcome = if self.workers > 1 && self.constraints.is_none() {
            self.replay_pooled(&workload, &effective, suite, &instrument)?
        } else {
            self.replay_sequential(&workload, &mut effective, suite, &instrument)?
        };

        Ok(self.finish_replay(
            &workload,
            &effective,
            suite,
            &instrument,
            started,
            outcome,
            diagnostics,
        ))
    }

    /// Replays the recorded workload on a shared [`ExecutorService`]
    /// instead of a private [`ReplayPool`]: the campaign is queued at
    /// `priority` (lower is more urgent) and its chunks are multiplexed
    /// over the service's process-wide worker threads alongside every
    /// co-scheduled campaign. The merged report is deterministically
    /// identical to [`Session::replay`] on the same session — byte for
    /// byte under [`Report::canonical_json`], for any co-tenancy mix — the
    /// contract the `server_equivalence` suite pins.
    ///
    /// Unlike [`Session::replay`], the service path needs to ship the
    /// campaign to threads that outlive this call, hence the stronger
    /// bounds (`M: Clone + Send + Sync + 'static`). A watched constraints
    /// directory is polled once before generation (as always) but not
    /// between runs — State-4 live ingestion stays a sequential-replay
    /// feature.
    ///
    /// # Errors
    ///
    /// Everything [`Session::replay`] returns, plus
    /// [`ErPiError::Cancelled`] if the session's
    /// [cancel token](Session::set_cancel_token) trips mid-campaign.
    pub fn replay_on(
        &mut self,
        service: &ExecutorService,
        priority: u8,
        suite: &TestSuite<M::State>,
    ) -> Result<Report, ErPiError>
    where
        M: Clone + Send + Sync + 'static,
        M::State: Send + Sync,
    {
        let workload = self.workload.clone().ok_or(ErPiError::NothingRecorded)?;
        let started = Instant::now();
        let instrument = self.build_instrument(&workload, service.workers());
        let (diagnostics, effective) = self.prepare_replay(&workload)?;
        let outcome =
            self.replay_service(service, priority, &workload, &effective, suite, &instrument)?;
        Ok(self.finish_replay(
            &workload,
            &effective,
            suite,
            &instrument,
            started,
            outcome,
            diagnostics,
        ))
    }

    /// The shared pre-replay pipeline: static analysis, pending-constraint
    /// ingestion, the effective pruning configuration, and (optionally)
    /// table certification. Returns the pre-replay diagnostics plus the
    /// configuration the exploration will run under.
    fn prepare_replay(
        &mut self,
        workload: &Workload,
    ) -> Result<(Vec<Diagnostic>, PruningConfig), ErPiError> {
        // The static pass always runs: its lints land in the report, and —
        // if enabled — its derived independence feeds Algorithm 3.
        let t_analyze = self.telemetry.start();
        let analysis = er_pi_analysis::analyze(workload);
        let mut diagnostics = analysis.diagnostics.clone();
        self.telemetry.span_since(
            COORDINATOR_TRACK,
            "analyze",
            t_analyze,
            vec![
                ("events", workload.len().into()),
                ("diagnostics", diagnostics.len().into()),
            ],
        );

        // Ingest any constraints already waiting before generating (the
        // State 4 → State 2 loop can begin with pre-discovered rules).
        if let Some(constraints) = self.constraints.as_mut() {
            if let Some(newer) = constraints.poll()? {
                self.config.absorb(newer);
            }
        }

        // The effective configuration for this replay: the session's own
        // rules, optionally extended by the analysis-derived independence.
        // Kept local so repeated replays never accumulate duplicates.
        let mut effective = self.config.clone();
        // Sleep sets consume the analysis-derived independence relation, so
        // enabling them implies the auto-independence merge.
        if self.auto_independence || self.sleep_sets {
            effective.absorb(analysis.to_pruning_config());
        }
        effective.sleep_sets |= self.sleep_sets;

        // Pre-campaign certification: audit the commutativity table itself
        // and cross-check the effective independence declarations against
        // the certified verdicts. Findings join the misconception lints.
        if self.certify {
            let t_certify = self.telemetry.start();
            let table = er_pi_analysis::certify_table();
            let mut findings = er_pi_analysis::validate_table(&table);
            findings.extend(er_pi_analysis::validate_independence(
                workload, &effective, &table,
            ));
            self.telemetry.span_since(
                COORDINATOR_TRACK,
                "certify",
                t_certify,
                vec![
                    (
                        "claims",
                        (table.commute_claims.len() + table.conflict_claims.len()).into(),
                    ),
                    ("findings", findings.len().into()),
                ],
            );
            diagnostics.extend(findings);
        }

        Ok((diagnostics, effective))
    }

    /// The shared post-replay pipeline: the independence sanitizer, the
    /// cross-interleaving checks, retry-cost accounting, pruner spans, the
    /// session summary, and the assembled [`Report`].
    #[allow(clippy::too_many_arguments)]
    fn finish_replay(
        &mut self,
        workload: &Workload,
        effective: &PruningConfig,
        suite: &TestSuite<M::State>,
        instrument: &Instrument,
        started: Instant,
        mut outcome: ReplayOutcome,
        diagnostics: Vec<Diagnostic>,
    ) -> Report {
        // Dynamic independence cross-check: re-execute every adjacent
        // declared-independent pair swap the pruners relied on. Strictly
        // read-only with respect to the report — findings live on the
        // session only.
        self.sanitizer_report = self.sanitize.then(|| {
            let t_sanitize = self.telemetry.start();
            let report =
                crate::sanitizer::sanitize(&self.model, workload, effective, &outcome.runs);
            self.telemetry.span_since(
                COORDINATOR_TRACK,
                "sanitize",
                t_sanitize,
                vec![
                    ("pairs_checked", report.pairs_checked.into()),
                    ("violations", report.violations.len().into()),
                ],
            );
            report
        });

        // Cross-interleaving checks (misconceptions #1/#5 detectors).
        let cross_ctx = CrossContext {
            runs: &outcome.runs,
        };
        for check in suite.cross_checks() {
            if let Err(message) = check.check(&cross_ctx) {
                outcome.violations.push(Violation {
                    run: None,
                    assertion: check.name().to_owned(),
                    message,
                    interleaving: None,
                });
            }
        }

        // Charge the Random mode's shuffle-retry overhead.
        let sim_us_total = outcome.sim_us + outcome.wasted * self.time.shuffle_retry_cost_us;
        let wall_ms = started.elapsed().as_millis();

        // Per-pruner attribution spans: one aggregate span per filter,
        // placed back-to-back at the end of the coordinator track with the
        // measured in-filter wall time as the duration.
        self.emit_prune_spans(
            outcome.prune_stats.as_ref(),
            outcome.filter_timings.as_ref(),
        );

        let session_summary = SessionSummary {
            mode: outcome.mode.clone(),
            explored: outcome.runs.len(),
            violations: outcome.violations.len(),
            sim_us: sim_us_total,
            wall_ms,
            grouping_factor: outcome.prune_stats.map(|s| s.grouping_factor),
            pruners: SessionSummary::pruner_rows(
                outcome.prune_stats.as_ref(),
                outcome.filter_timings.as_ref(),
            ),
            workers: outcome.worker_loads.clone(),
            cache: outcome.cache_stats,
            failures: FailureStats::from_runs(&outcome.runs),
        };
        if self.telemetry.is_active() {
            self.telemetry.instant(
                COORDINATOR_TRACK,
                "summary",
                vec![
                    ("explored", session_summary.explored.into()),
                    ("violations", session_summary.violations.into()),
                    ("sim_us", session_summary.sim_us.into()),
                    ("rendered", session_summary.render().into()),
                ],
            );
        }
        if let Some(progress) = &instrument.progress {
            instrument.sample(progress);
        }
        self.telemetry.flush();

        // Headless surfacing of the degraded-cache warning (the sink-side
        // `HitRateMonitor` sees it live; this covers campaigns with no
        // sink attached, across every replay strategy). Advisories are
        // scheduling-dependent — pooled attribution depends on which
        // worker got which run — so they live OUTSIDE the byte-identical
        // report contract, like `wall_ms` and `worker_loads`.
        let mut advisories: Vec<String> = Vec::new();
        if self.incremental {
            if let Some(cache) = &outcome.cache_stats {
                let attributed = cache.hits + cache.misses;
                if attributed >= HIT_RATE_WINDOW {
                    let rate = cache.hits as f64 / attributed as f64;
                    if rate < HIT_RATE_THRESHOLD {
                        advisories.push(format!(
                            "checkpoint-cache hit rate {:.1}% over {attributed} attributed \
                             runs is below the {:.0}% floor — raise the cache budget or \
                             disable incremental replay",
                            rate * 100.0,
                            HIT_RATE_THRESHOLD * 100.0,
                        ));
                        if let Some(metrics) = &self.metrics {
                            metrics.warn_low_hit_rate();
                        }
                    }
                }
            }
        }

        self.store = outcome.store;
        let report = Report {
            mode: outcome.mode,
            explored: outcome.runs.len(),
            first_violation_at: outcome.first_violation_at,
            prune_stats: outcome.prune_stats,
            wasted_work: outcome.wasted,
            wall_ms,
            sim_us: sim_us_total,
            runs: if self.keep_runs || !suite.cross_checks().is_empty() {
                outcome.runs
            } else {
                Vec::new()
            },
            violations: outcome.violations,
            stopped_early: outcome.stopped_early,
            diagnostics,
            worker_loads: outcome.worker_loads,
            cache_stats: outcome.cache_stats,
            session_summary,
            advisories,
        };
        if let Some(metrics) = &self.metrics {
            metrics.finish(&report);
        }
        report
    }

    /// Builds the per-replay instrument: the cloned telemetry handle plus —
    /// when anyone is watching — the shared progress aggregator sized for
    /// `slots` worker tallies and seeded with the session cap and the
    /// a-priori campaign projection.
    fn build_instrument(&self, workload: &Workload, slots: usize) -> Instrument {
        let watching =
            self.telemetry.is_active() || self.progress_hook.is_some() || self.metrics.is_some();
        if !watching {
            return Instrument::disabled();
        }
        let workers = slots.max(1);
        let expected =
            (self.max_interleavings < usize::MAX).then_some(self.max_interleavings as u64);
        let campaign_secs = expected.map(|cap| {
            ResourceProfile::for_workload(workload, &self.time).campaign_secs(cap as usize)
        });
        Instrument {
            telemetry: self.telemetry.clone(),
            progress: Some(Arc::new(
                Progress::new(workers)
                    .with_expected_total(expected)
                    .with_campaign_secs(campaign_secs),
            )),
            hook: self.progress_hook.clone(),
            every: self.progress_every,
            metrics: self.metrics.clone(),
        }
    }

    /// Emits the per-pruner aggregate spans (`prune:<filter>`): checked /
    /// rejected counts with the measured in-filter wall time as span
    /// duration, laid out back-to-back so Perfetto renders the four
    /// algorithms as adjacent blocks.
    fn emit_prune_spans(&self, stats: Option<&PruneStats>, timings: Option<&FilterTimings>) {
        if !self.telemetry.is_active() {
            return;
        }
        let rows = SessionSummary::pruner_rows(stats, timings);
        let mut cursor = self.telemetry.now_us();
        for row in rows {
            let label = match row.name {
                "replica-specific" => "prune:replica-specific",
                "independence" => "prune:independence",
                "failed-ops" => "prune:failed-ops",
                "causal" => "prune:causal",
                "sleep" => "prune:sleep",
                _ => "prune:other",
            };
            let dur_us = row.wall_ns / 1_000;
            self.telemetry.span(
                COORDINATOR_TRACK,
                label,
                cursor,
                dur_us,
                vec![
                    ("checked", row.checked.into()),
                    ("rejected", row.rejected.into()),
                    ("wall_ns", row.wall_ns.into()),
                ],
            );
            cursor += dur_us.max(1);
        }
    }

    /// The in-situ sequential strategy: one interleaving at a time, with
    /// State-4 constraint ingestion and regeneration between runs. This is
    /// the reference semantics the parallel pool is checked against.
    fn replay_sequential(
        &mut self,
        workload: &Workload,
        effective: &mut PruningConfig,
        suite: &TestSuite<M::State>,
        instrument: &Instrument,
    ) -> Result<ReplayOutcome, ErPiError> {
        let telemetry = instrument.telemetry.clone();
        let plans = self.resolve_fault_plans(workload);
        let mut explorer = self.build_explorer(workload, effective, &plans);
        if telemetry.is_active() {
            explorer.inner_mut().enable_timing();
        }
        if let Some(progress) = &instrument.progress {
            explorer.inner_mut().set_sleep_tally(progress.sleep_tally());
        }
        let mode = explorer.inner().mode_name().to_owned();
        let mut source = IndexedSource::new(explorer, self.max_interleavings);
        let mut runs: Vec<RunRecord> = Vec::new();
        let mut violations: Vec<Violation> = Vec::new();
        let mut first_violation_at = None;
        let mut sim_us: u64 = 0;
        let mut stopped_by_violation = false;
        let mut store = self.persist.then(|| InterleavingStore::new(workload));
        // Subsumption without incremental replay still rides on the
        // incremental executor — with a zero snapshot budget, so the trie
        // caches nothing and only the explored-set layer is live.
        let mut incremental = (self.incremental || self.subsume).then(|| {
            let budget = if self.incremental {
                self.cache_budget
            } else {
                0
            };
            let mut e = IncrementalExecutor::<M>::new(budget);
            if self.subsume {
                e.enable_subsumption(Arc::new(SubsumeSet::new()));
            }
            e
        });
        let mut hit_monitor = (self.incremental
            && (telemetry.is_active() || self.metrics.is_some()))
        .then(HitRateMonitor::default);

        while let Some((run_index, il)) = source.next() {
            // Cooperative cancellation: between runs only, so a cancelled
            // campaign never leaves a half-executed interleaving behind.
            if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                return Err(ErPiError::Cancelled);
            }
            if let Some(store) = store.as_mut() {
                store.store(&il);
            }

            // State 3: checkpointed execution of one interleaving. Fresh
            // states per run are the checkpoint/reset of §4.3; the
            // incremental executor reaches the same states by resuming
            // from the deepest cached prefix (byte-identical execution —
            // see the correctness argument in `incremental`).
            let t_run = telemetry.start();
            let exec = match incremental.as_mut() {
                Some(executor) => executor.execute(&self.model, workload, &il, &self.time),
                None => InlineExecutor::execute(&self.model, workload, &il, &self.time),
            };
            let resumed_depth = incremental.as_ref().map(|e| e.last_resume_depth());
            sim_us += exec.sim_us;
            let observations: Vec<Value> =
                exec.states.iter().map(|s| self.model.observe(s)).collect();

            let ctx = CheckContext {
                states: &exec.states,
                observations: &observations,
                interleaving: &il,
                outcomes: &exec.outcomes,
            };
            let t_check = telemetry.start();
            let mut violated = false;
            for assertion in suite.assertions() {
                if let Err(message) = assertion.check(&ctx) {
                    violated = true;
                    violations.push(Violation {
                        run: Some(run_index),
                        assertion: assertion.name().to_owned(),
                        message,
                        interleaving: Some(il.clone()),
                    });
                }
            }
            if violated && first_violation_at.is_none() {
                first_violation_at = Some(run_index);
            }
            if telemetry.is_active() {
                telemetry.span_since(
                    COORDINATOR_TRACK,
                    "check",
                    t_check,
                    vec![
                        ("assertions", suite.assertions().len().into()),
                        ("violated", violated.into()),
                    ],
                );
                telemetry.span_since(
                    COORDINATOR_TRACK,
                    "run",
                    t_run,
                    vec![
                        ("index", run_index.into()),
                        ("resumed_depth", resumed_depth.unwrap_or(0).into()),
                        ("sim_us", exec.sim_us.into()),
                        ("violated", violated.into()),
                        ("failed_ops", ctx_failed(&exec.outcomes).into()),
                    ],
                );
            }
            // No hit/miss attribution from a zero-budget subsumption-only
            // executor — it always resumes from depth 0.
            let cache_hit = self.incremental.then(|| resumed_depth.unwrap_or(0) > 0);
            if let (Some(monitor), Some(hit)) = (hit_monitor.as_mut(), cache_hit) {
                if let Some(message) = monitor.record(hit) {
                    if let Some(metrics) = &self.metrics {
                        metrics.warn_low_hit_rate();
                    }
                    telemetry.warn(COORDINATOR_TRACK, "cache:low-hit-rate", message);
                }
            }
            let subsumed = incremental
                .as_ref()
                .is_some_and(IncrementalExecutor::last_run_subsumed);
            instrument.run_done(0, cache_hit, subsumed);

            runs.push(RunRecord {
                interleaving: il,
                observations,
                failed_ops: ctx_failed(&exec.outcomes),
                sim_us: exec.sim_us,
            });

            if violated && self.stop_on_first_violation {
                stopped_by_violation = true;
                break;
            }

            // State 4: periodically ingest runtime constraints and
            // regenerate the (pruned) interleavings; the source's dedup
            // set skips everything already replayed.
            if let Some(constraints) = self.constraints.as_mut() {
                if runs.len().is_multiple_of(self.constraint_poll_every) {
                    if let Some(newer) = constraints.poll()? {
                        self.config.absorb(newer.clone());
                        effective.absorb(newer);
                        if matches!(self.mode, ExploreMode::ErPi) {
                            source.reseed(self.build_explorer(workload, effective, &plans));
                        }
                    }
                }
            }
        }

        let stopped_early = stopped_by_violation || source.truncated();
        let explorer = source.inner().inner();
        Ok(ReplayOutcome {
            mode,
            runs,
            violations,
            first_violation_at,
            sim_us,
            stopped_early,
            prune_stats: explorer.stats(),
            wasted: explorer.wasted(),
            store,
            worker_loads: Vec::new(),
            cache_stats: incremental.map(|e| e.stats()),
            filter_timings: explorer.timings(),
        })
    }

    /// The pooled strategy: the same dispensing discipline, with execution
    /// fanned across [`ReplayPool`] workers and results merged back into
    /// exploration order.
    fn replay_pooled(
        &self,
        workload: &Workload,
        effective: &PruningConfig,
        suite: &TestSuite<M::State>,
        instrument: &Instrument,
    ) -> Result<ReplayOutcome, ErPiError>
    where
        M: Sync,
        M::State: Send + Sync,
    {
        let plans = self.resolve_fault_plans(workload);
        let mut explorer = self.build_explorer(workload, effective, &plans);
        if instrument.telemetry.is_active() {
            explorer.inner_mut().enable_timing();
        }
        if let Some(progress) = &instrument.progress {
            explorer.inner_mut().set_sleep_tally(progress.sleep_tally());
        }
        let mode = explorer.inner().mode_name().to_owned();
        let mut source = IndexedSource::new(explorer, self.max_interleavings);
        let pool = ReplayPool::new(self.workers);
        let subsume = self.subsume.then(|| Arc::new(SubsumeSet::new()));
        let out = pool.run(
            &self.model,
            workload,
            &mut source,
            &self.time,
            suite,
            self.stop_on_first_violation,
            self.incremental.then_some(self.cache_budget),
            subsume.as_ref(),
            self.chunk_size,
            instrument,
            self.cancel.as_ref(),
        )?;

        // Deterministic explorer counters: after a cooperative cancellation
        // the pool has usually dispensed past the sequential stop point, so
        // the live explorer's pruning/retry counters depend on scheduling.
        // Re-derive them by dispensing exactly the retained run count from
        // a fresh explorer — cheap (generation only) and bit-equal to what
        // the sequential strategy would have observed.
        let (prune_stats, wasted) = if out.cancelled {
            let mut redo = IndexedSource::new(
                self.build_explorer(workload, effective, &plans),
                self.max_interleavings,
            );
            for _ in 0..out.runs.len() {
                redo.next();
            }
            (redo.inner().inner().stats(), redo.inner().inner().wasted())
        } else {
            (
                source.inner().inner().stats(),
                source.inner().inner().wasted(),
            )
        };

        // The persisted store mirrors the retained runs in dispatch order.
        let store = self.persist.then(|| {
            let mut store = InterleavingStore::new(workload);
            for run in &out.runs {
                store.store(&run.interleaving);
            }
            store
        });

        // Timings come from the *live* explorer: they are wall time, so —
        // unlike the counters above — the dispensed-past-the-stop-point
        // measurement is exactly what was really spent.
        let filter_timings = source.inner().inner().timings();

        Ok(ReplayOutcome {
            mode,
            stopped_early: out.cancelled || source.truncated(),
            runs: out.runs,
            violations: out.violations,
            first_violation_at: out.first_violation_at,
            sim_us: out.sim_us,
            prune_stats,
            wasted,
            store,
            worker_loads: out.worker_loads,
            cache_stats: out.cache_stats,
            filter_timings,
        })
    }

    /// The service strategy: [`Session::replay_pooled`] with the worker
    /// threads replaced by a shared, process-wide [`ExecutorService`]. The
    /// campaign owns its exploration source; the service multiplexes chunk
    /// claims over its slots and hands the source back for the same
    /// post-processing the pooled path does.
    fn replay_service(
        &self,
        service: &ExecutorService,
        priority: u8,
        workload: &Workload,
        effective: &PruningConfig,
        suite: &TestSuite<M::State>,
        instrument: &Instrument,
    ) -> Result<ReplayOutcome, ErPiError>
    where
        M: Clone + Send + Sync + 'static,
        M::State: Send + Sync,
    {
        let plans = self.resolve_fault_plans(workload);
        let mut explorer = self.build_explorer_owned(workload, effective, &plans);
        if instrument.telemetry.is_active() {
            explorer.inner_mut().enable_timing();
        }
        if let Some(progress) = &instrument.progress {
            explorer.inner_mut().set_sleep_tally(progress.sleep_tally());
        }
        let mode = explorer.inner().mode_name().to_owned();
        let source = IndexedSource::new(explorer, self.max_interleavings);
        let params = CampaignParams {
            model: self.model.clone(),
            workload: workload.clone(),
            time: self.time.clone(),
            suite: suite.clone(),
            stop_on_first_violation: self.stop_on_first_violation,
            incremental_budget: self.incremental.then_some(self.cache_budget),
            subsume: self.subsume.then(|| Arc::new(SubsumeSet::new())),
            chunk_size: self.chunk_size,
            instrument: instrument.clone(),
            cancel: self.cancel.clone(),
        };
        let (out, source) = service.run_campaign(params, source, priority)?;

        // Deterministic explorer counters after a stop-on-first
        // cancellation: same re-derivation as the pooled path (see
        // `replay_pooled`).
        let (prune_stats, wasted) = if out.cancelled {
            let mut redo = IndexedSource::new(
                self.build_explorer(workload, effective, &plans),
                self.max_interleavings,
            );
            for _ in 0..out.runs.len() {
                redo.next();
            }
            (redo.inner().inner().stats(), redo.inner().inner().wasted())
        } else {
            (
                source.inner().inner().stats(),
                source.inner().inner().wasted(),
            )
        };

        // The persisted store mirrors the retained runs in dispatch order.
        let store = self.persist.then(|| {
            let mut store = InterleavingStore::new(workload);
            for run in &out.runs {
                store.store(&run.interleaving);
            }
            store
        });

        let filter_timings = source.inner().inner().timings();

        Ok(ReplayOutcome {
            mode,
            stopped_early: out.cancelled || source.truncated(),
            runs: out.runs,
            violations: out.violations,
            first_violation_at: out.first_violation_at,
            sim_us: out.sim_us,
            prune_stats,
            wasted,
            store,
            worker_loads: out.worker_loads,
            cache_stats: out.cache_stats,
            filter_timings,
        })
    }
}

fn ctx_failed(outcomes: &[OpOutcome]) -> usize {
    outcomes.iter().filter(|o| o.is_failed()).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_pi_model::{Event, EventKind};

    /// Two-replica register with fused sync: replica states are integers;
    /// `set(v)` writes locally, sync copies the source value over.
    struct RegApp;

    impl SystemModel for RegApp {
        type State = i64;

        fn replicas(&self) -> usize {
            2
        }

        fn init(&self, _replica: ReplicaId) -> i64 {
            0
        }

        fn apply(&self, states: &mut [i64], event: &Event) -> OpOutcome {
            match &event.kind {
                EventKind::LocalUpdate { op } => {
                    states[event.replica.index()] = op.arg(0).and_then(Value::as_int).unwrap_or(0);
                    OpOutcome::Applied
                }
                EventKind::Sync { to, .. } => {
                    states[to.index()] = states[event.replica.index()];
                    OpOutcome::Applied
                }
                _ => OpOutcome::failed("unsupported"),
            }
        }

        fn observe(&self, state: &i64) -> Value {
            Value::from(*state)
        }
    }

    fn record_two_writes(session: &mut Session<RegApp>) {
        let a = ReplicaId::new(0);
        let b = ReplicaId::new(1);
        session.record(|sys| {
            let w1 = sys.invoke(a, "set", [Value::from(1)]);
            sys.sync(a, b, w1);
            let w2 = sys.invoke(b, "set", [Value::from(2)]);
            sys.sync(b, a, w2);
        });
    }

    #[test]
    fn replay_without_recording_errors() {
        let mut session = Session::new(RegApp);
        let err = session.replay(&TestSuite::new());
        assert!(matches!(err, Err(ErPiError::NothingRecorded)));
    }

    #[test]
    fn recording_executes_live_and_extracts_events() {
        let mut session = Session::new(RegApp);
        let a = ReplicaId::new(0);
        let workload_len = {
            session.record(|sys| {
                let w = sys.invoke(a, "set", [Value::from(9)]);
                assert_eq!(*sys.state(a), 9, "live execution happens during record");
                assert_eq!(sys.outcome(w), &OpOutcome::Applied);
                assert_eq!(sys.len(), 1);
            });
            session.workload().unwrap().len()
        };
        assert_eq!(workload_len, 1);
    }

    #[test]
    fn replay_explores_grouped_space() {
        let mut session = Session::new(RegApp);
        record_two_writes(&mut session);
        let report = session.replay(&TestSuite::new()).unwrap();
        // 4 events, 2 (update, sync) pairs → 2 units → 2 interleavings.
        assert_eq!(report.explored, 2);
        assert_eq!(report.mode, "ER-π");
        assert!(report.passed());
        assert!(report.prune_stats.is_some());
        assert!(report.sim_us > 0);
    }

    #[test]
    fn dfs_mode_explores_everything() {
        let mut session = Session::new(RegApp);
        record_two_writes(&mut session);
        session.set_mode(ExploreMode::Dfs);
        let report = session.replay(&TestSuite::new()).unwrap();
        assert_eq!(report.explored, 24); // 4!
        assert_eq!(report.mode, "DFS");
        assert!(report.prune_stats.is_none());
    }

    #[test]
    fn random_mode_is_capped_and_tracks_retries() {
        let mut session = Session::new(RegApp);
        record_two_writes(&mut session);
        session.set_mode(ExploreMode::Random { seed: 5 });
        session.set_cap(10);
        let report = session.replay(&TestSuite::new()).unwrap();
        assert_eq!(report.explored, 10);
        assert!(report.stopped_early);
        assert_eq!(report.mode, "Rand");
    }

    #[test]
    fn violations_are_reported_with_interleavings() {
        let mut session = Session::new(RegApp);
        record_two_writes(&mut session);
        session.set_mode(ExploreMode::Dfs);
        // Final convergence only holds when the last sync runs last; many
        // DFS orders violate it.
        let suite = TestSuite::new().with(Assertion::replicas_converge("conv"));
        let report = session.replay(&suite).unwrap();
        assert!(!report.passed());
        assert!(report.first_violation_at.is_some());
        let v = &report.violations[0];
        assert_eq!(v.assertion, "conv");
        assert!(v.interleaving.is_some());
    }

    #[test]
    fn stop_on_first_violation_halts_early() {
        let mut session = Session::new(RegApp);
        record_two_writes(&mut session);
        session.set_mode(ExploreMode::Dfs);
        session.set_stop_on_first_violation(true);
        let suite = TestSuite::new().with(Assertion::replicas_converge("conv"));
        let report = session.replay(&suite).unwrap();
        assert_eq!(report.violations.len(), 1);
        assert!(report.stopped_early);
        assert_eq!(
            report.first_violation_at.map(|i| i + 1),
            Some(report.explored)
        );
    }

    #[test]
    fn incremental_default_diffs_clean_against_scratch() {
        // `set_incremental` defaults on; its report must be byte-identical
        // to the scratch executor's, sequentially and pooled, with the
        // cache counters present only on the incremental side.
        for workers in [1, 4] {
            let mut incremental = Session::new(RegApp);
            record_two_writes(&mut incremental);
            incremental.set_mode(ExploreMode::Dfs).set_workers(workers);
            assert!(incremental.incremental(), "incremental defaults on");
            let inc = incremental.replay(&TestSuite::new()).unwrap();

            let mut scratch = Session::new(RegApp);
            record_two_writes(&mut scratch);
            scratch
                .set_mode(ExploreMode::Dfs)
                .set_workers(workers)
                .set_incremental(false);
            let base = scratch.replay(&TestSuite::new()).unwrap();

            assert_eq!(inc.diff(&base), None, "at {workers} workers");
            assert!(base.cache_stats.is_none());
            let stats = inc.cache_stats.expect("incremental counters");
            assert_eq!(stats.hits + stats.misses, 24);
            assert!(inc.sim_us_actual() <= inc.sim_us);
        }
    }

    #[test]
    fn persistence_fills_the_deductive_store() {
        let mut session = Session::new(RegApp);
        record_two_writes(&mut session);
        session.set_persist(true);
        let report = session.replay(&TestSuite::new()).unwrap();
        let store = session.store().expect("persisted");
        assert_eq!(store.len(), report.explored);
        assert!(store.interleaving(0).is_some());
    }

    #[test]
    fn auto_independence_merges_commuting_updates() {
        // Two concurrent counter increments at different replicas: with
        // hand-declared rules absent, ER-π explores both orders; the static
        // analysis derives their independence and merges them into one.
        let mut session = Session::new(RegApp);
        session.record(|sys| {
            sys.invoke(ReplicaId::new(0), "counter_inc", [Value::from(1)]);
            sys.invoke(ReplicaId::new(1), "counter_inc", [Value::from(1)]);
        });
        let baseline = session.replay(&TestSuite::new()).unwrap();
        assert_eq!(baseline.explored, 2);

        session.set_auto_independence(true);
        let report = session.replay(&TestSuite::new()).unwrap();
        assert_eq!(report.explored, 1, "derived independence merges the pair");

        // The analysis is re-derived per replay; repeating does not
        // accumulate duplicate sets or change the result.
        let again = session.replay(&TestSuite::new()).unwrap();
        assert_eq!(again.explored, 1);
        assert!(session.config_mut().independent_sets.is_empty());
    }

    #[test]
    fn auto_independence_leaves_conflicting_updates_alone() {
        // Two concurrent LWW-register writes conflict (last writer wins, so
        // order matters): the static pass must not merge them even when
        // enabled.
        let mut session = Session::new(RegApp);
        session.record(|sys| {
            sys.invoke(ReplicaId::new(0), "reg_set", [Value::from(1)]);
            sys.invoke(ReplicaId::new(1), "reg_set", [Value::from(2)]);
        });
        session.set_auto_independence(true);
        let report = session.replay(&TestSuite::new()).unwrap();
        assert_eq!(report.explored, 2);
    }

    #[test]
    fn reports_carry_pre_replay_diagnostics() {
        let mut session = Session::new(RegApp);
        session.record(|sys| {
            sys.invoke(ReplicaId::new(0), "todo_create", [Value::from(1)]);
            sys.invoke(ReplicaId::new(1), "todo_create", [Value::from(2)]);
        });
        let report = session.replay(&TestSuite::new()).unwrap();
        assert!(report.diagnostics.iter().any(|d| d.misconception == 4));
    }

    #[test]
    fn analyze_exposes_the_static_pass() {
        let mut session = Session::new(RegApp);
        assert!(session.analyze().is_err(), "nothing recorded yet");
        session.record(|sys| {
            sys.invoke(ReplicaId::new(0), "reg_set", [Value::from(1)]);
            sys.invoke(ReplicaId::new(1), "reg_set", [Value::from(2)]);
        });
        let analysis = session.analyze().unwrap();
        assert!(
            analysis.independence.sets.is_empty(),
            "LWW register writes conflict"
        );
    }

    #[test]
    fn telemetry_covers_the_pipeline_and_never_changes_the_report() {
        let sink = Arc::new(er_pi_telemetry::MemorySink::new());
        let mut watched = Session::new(RegApp);
        watched.set_telemetry(sink.clone());
        record_two_writes(&mut watched);
        watched.set_mode(ExploreMode::Dfs).set_workers(1);
        let report = watched.replay(&TestSuite::new()).unwrap();

        let mut plain = Session::new(RegApp);
        record_two_writes(&mut plain);
        plain.set_mode(ExploreMode::Dfs).set_workers(1);
        let base = plain.replay(&TestSuite::new()).unwrap();
        assert_eq!(report.diff(&base), None, "telemetry is write-only");

        let events = sink.events();
        for expected in ["record", "analyze", "run", "check", "summary"] {
            assert!(
                events.iter().any(|e| e.name == expected),
                "missing {expected} event"
            );
        }
        let runs = events.iter().filter(|e| e.name == "run").count();
        assert_eq!(runs, report.explored);
        assert_eq!(report.session_summary.explored, report.explored);
        assert_eq!(report.session_summary.mode, report.mode);
    }

    #[test]
    fn pooled_telemetry_lands_runs_on_worker_tracks() {
        let sink = Arc::new(er_pi_telemetry::MemorySink::new());
        let mut session = Session::new(RegApp);
        session.set_telemetry(sink.clone());
        record_two_writes(&mut session);
        session.set_mode(ExploreMode::Dfs).set_workers(2);
        let report = session.replay(&TestSuite::new()).unwrap();
        assert_eq!(report.explored, 24);

        let events = sink.events();
        let run_tracks: std::collections::BTreeSet<u32> = events
            .iter()
            .filter(|e| e.name == "run")
            .map(|e| e.track)
            .collect();
        assert!(
            run_tracks.iter().all(|&t| t >= 1),
            "pooled runs live on worker tracks, got {run_tracks:?}"
        );
        assert!(events.iter().any(|e| e.name == "claim"));
        assert_eq!(report.session_summary.workers.len(), 2);
    }

    #[test]
    fn erpi_mode_emits_per_pruner_spans() {
        let sink = Arc::new(er_pi_telemetry::MemorySink::new());
        let mut session = Session::new(RegApp);
        session.set_telemetry(sink.clone());
        record_two_writes(&mut session);
        // Force a filter to actually run: require causal validity.
        session.config_mut().require_causal = true;
        session.set_workers(1);
        let report = session.replay(&TestSuite::new()).unwrap();
        assert!(sink.events().iter().any(|e| e.name == "prune:causal"));
        let row = &report.session_summary.pruners[0];
        assert_eq!(row.name, "causal");
        assert!(row.checked > 0);
    }

    #[test]
    fn progress_hook_fires_with_live_counters() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let fired = Arc::new(AtomicUsize::new(0));
        let fired2 = fired.clone();
        let mut session = Session::new(RegApp);
        record_two_writes(&mut session);
        session.set_mode(ExploreMode::Dfs).set_workers(1);
        session.set_progress_hook(8, move |snap| {
            assert!(snap.runs_done > 0);
            assert!(snap.expected_total.is_some());
            assert!(snap.campaign_secs_hint.is_some());
            fired2.fetch_add(1, Ordering::Relaxed);
        });
        let report = session.replay(&TestSuite::new()).unwrap();
        assert_eq!(report.explored, 24);
        // Every 8 runs (3×) plus the final end-of-replay sample.
        assert_eq!(fired.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn sanitizer_catches_false_independence_declaration() {
        // Two same-replica register writes do NOT commute (the second one
        // wins); declaring them independent is unsound, and the sanitizer
        // proves it dynamically from the retained runs — even though the
        // pruner already merged the swapped order away.
        let mut session = Session::new(RegApp);
        let r0 = ReplicaId::new(0);
        session.record(|sys| {
            sys.invoke(r0, "set", [Value::from(1)]);
            sys.invoke(r0, "set", [Value::from(2)]);
        });
        session
            .config_mut()
            .independent_sets
            .push(vec![EventId::new(0), EventId::new(1)]);
        session.set_workers(1).set_sanitizer(true);
        assert!(session.sanitizer());
        let with = session.replay(&TestSuite::new()).unwrap();
        let findings = session.sanitizer_report().expect("sanitizer ran").clone();
        assert!(!findings.passed());
        assert_eq!(findings.violations[0].first, EventId::new(0));
        assert_eq!(findings.violations[0].second, EventId::new(1));
        assert!(findings.pairs_checked >= 1);

        // The report itself is untouched by the sanitizer.
        session.set_sanitizer(false);
        let without = session.replay(&TestSuite::new()).unwrap();
        assert_eq!(with.diff(&without), None);
        assert!(session.sanitizer_report().is_none());
    }

    #[test]
    fn sanitizer_accepts_sound_independence() {
        // Writes at different replicas with no sync genuinely commute:
        // zero violations, and dedup keeps re-execution bounded.
        let mut session = Session::new(RegApp);
        session.record(|sys| {
            sys.invoke(ReplicaId::new(0), "set", [Value::from(1)]);
            sys.invoke(ReplicaId::new(1), "set", [Value::from(2)]);
        });
        session
            .config_mut()
            .independent_sets
            .push(vec![EventId::new(0), EventId::new(1)]);
        session.set_mode(ExploreMode::Dfs).set_workers(1);
        session.set_sanitizer(true);
        session.replay(&TestSuite::new()).unwrap();
        let findings = session.sanitizer_report().unwrap();
        assert!(findings.passed(), "{:?}", findings.violations);
        assert_eq!(findings.runs_scanned, 2);
        assert!(findings.pairs_checked >= 1);
    }

    #[test]
    fn certify_surfaces_unsound_declarations_as_diagnostics() {
        let mut session = Session::new(RegApp);
        session.record(|sys| {
            sys.invoke(ReplicaId::new(0), "reg_set", [Value::from(1)]);
            sys.invoke(ReplicaId::new(1), "reg_set", [Value::from(2)]);
        });
        session.set_certify(true);
        assert!(session.certify());

        // Healthy table, no declarations: certification is silent.
        let clean = session.replay(&TestSuite::new()).unwrap();
        assert!(clean
            .diagnostics
            .iter()
            .all(|d| d.pattern != crate::LintPattern::IndependenceSoundness));

        // Declaring the conflicting LWW writes independent is flagged
        // before the campaign, with the certified conflict reason.
        session
            .config_mut()
            .independent_sets
            .push(vec![EventId::new(0), EventId::new(1)]);
        let flagged = session.replay(&TestSuite::new()).unwrap();
        let finding = flagged
            .diagnostics
            .iter()
            .find(|d| d.pattern == crate::LintPattern::IndependenceSoundness)
            .expect("soundness diagnostic");
        assert_eq!(finding.misconception, 0);
        assert!(finding.message.contains("register writes tie-break"));
        session.config_mut().independent_sets.clear();
    }

    #[test]
    fn fault_space_multiplies_run_identity_deterministically() {
        use er_pi_interleave::FaultSpace;
        // Default space over two syncs: baseline + (duplicate, delay@1) at
        // each sync = 5 plans; DFS explores 24 orders → 120 product runs.
        let mut plain = Session::new(RegApp);
        record_two_writes(&mut plain);
        plain.set_mode(ExploreMode::Dfs).set_workers(1);
        let base = plain.replay(&TestSuite::new()).unwrap();
        assert_eq!(base.explored, 24);

        let mut reference = None;
        for workers in [1, 2, 4] {
            for incremental in [false, true] {
                let mut session = Session::new(RegApp);
                record_two_writes(&mut session);
                session
                    .set_mode(ExploreMode::Dfs)
                    .set_workers(workers)
                    .set_incremental(incremental)
                    .set_fault_space(FaultSpace::default());
                let report = session.replay(&TestSuite::new()).unwrap();
                assert_eq!(report.explored, 120, "24 orders x 5 plans");
                match &reference {
                    None => reference = Some(report),
                    Some(first) => assert_eq!(
                        report.diff(first),
                        None,
                        "workers={workers} incremental={incremental}"
                    ),
                }
            }
        }
    }

    #[test]
    fn explicit_plans_win_and_baseline_only_is_transparent() {
        use er_pi_model::FaultPlan;
        let mut plain = Session::new(RegApp);
        record_two_writes(&mut plain);
        plain.set_mode(ExploreMode::Dfs).set_workers(1);
        let base = plain.replay(&TestSuite::new()).unwrap();

        // Explicit plans override the configured space; the single empty
        // plan leaves the report byte-identical to a fault-free session.
        let mut session = Session::new(RegApp);
        record_two_writes(&mut session);
        session
            .set_mode(ExploreMode::Dfs)
            .set_workers(1)
            .set_fault_space(er_pi_interleave::FaultSpace::all(2))
            .set_fault_plans(vec![FaultPlan::empty()]);
        let report = session.replay(&TestSuite::new()).unwrap();
        assert_eq!(report.diff(&base), None);
    }

    #[test]
    fn cross_checks_see_all_runs() {
        let mut session = Session::new(RegApp);
        record_two_writes(&mut session);
        session.set_mode(ExploreMode::Dfs);
        let suite = TestSuite::new().with_cross(
            crate::CrossCheck::same_state_across_interleavings("stable-a", 0),
        );
        let report = session.replay(&suite).unwrap();
        // Different interleavings leave replica 0 in different states.
        assert!(!report.passed());
        assert!(report.violations.iter().any(|v| v.run.is_none()));
        assert!(!report.runs.is_empty(), "cross checks retain runs");
    }

    use crate::Assertion;
}

//! The end-of-session attribution summary.

use er_pi_interleave::{FilterTimings, PruneStats};

use crate::{CacheStats, FailureStats, WorkerLoad};

/// One pruning algorithm's row in the attribution table.
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize)]
pub struct PrunerRow {
    /// Filter name (`replica-specific`, `independence`, `failed-ops`,
    /// `causal`).
    pub name: &'static str,
    /// Candidates that reached this filter (count-in).
    pub checked: u64,
    /// Candidates this filter eliminated.
    pub rejected: u64,
    /// Wall-clock nanoseconds spent inside the filter (0 unless the
    /// session ran with telemetry attached — per-filter timing costs two
    /// clock reads per candidate, so it is only measured when someone is
    /// watching).
    pub wall_ns: u64,
}

/// The unified attribution table rendered at the end of every
/// `Session::replay`: what the previously scattered [`WorkerLoad`],
/// [`CacheStats`], [`FailureStats`] and [`PruneStats`] counters say about
/// one campaign, in one place.
///
/// Serialized into [`Report::session_summary`](crate::Report::session_summary).
/// It aggregates scheduling-dependent inputs (wall time, run→worker
/// assignment, per-worker cache counters), so — like those inputs — it is
/// excluded from [`Report::diff`](crate::Report::diff).
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize)]
pub struct SessionSummary {
    /// Exploration mode name.
    pub mode: String,
    /// Interleavings replayed.
    pub explored: usize,
    /// Assertion violations found.
    pub violations: usize,
    /// Total simulated time, microseconds.
    pub sim_us: u64,
    /// Wall-clock replay duration, milliseconds.
    pub wall_ms: u128,
    /// The analytic grouping reduction (`n!/u!`), ER-π mode only.
    pub grouping_factor: Option<u128>,
    /// Per-pruner attribution rows, in filter evaluation order; empty for
    /// the non-pruning modes or when no filter saw a candidate.
    pub pruners: Vec<PrunerRow>,
    /// Per-worker replay counters (one row for a sequential replay is
    /// represented as an empty list, matching `Report::worker_loads`).
    pub workers: Vec<WorkerLoad>,
    /// Checkpoint-cache counters (`None` for scratch replay).
    pub cache: Option<CacheStats>,
    /// Failed-operation statistics across the replayed runs.
    pub failures: FailureStats,
}

impl SessionSummary {
    /// Builds the pruner rows by joining counter and timing tables.
    pub(crate) fn pruner_rows(
        stats: Option<&PruneStats>,
        timings: Option<&FilterTimings>,
    ) -> Vec<PrunerRow> {
        let Some(stats) = stats else {
            return Vec::new();
        };
        let timings = timings.copied().unwrap_or_default();
        stats
            .per_filter()
            .into_iter()
            .map(|(name, checked, rejected)| PrunerRow {
                name,
                checked,
                rejected,
                wall_ns: timings
                    .per_filter()
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map_or(0, |&(_, ns)| ns),
            })
            .collect()
    }

    /// Serializes the summary as one JSON object — the machine-readable
    /// sibling of [`SessionSummary::render`], served verbatim by the
    /// campaign server and reusable by the `fig_*` bench binaries.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("summary has no non-finite floats")
    }

    /// Renders the multi-line attribution table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "session summary [{}]: {} runs, {} violation(s), sim {:.3}s, wall {}ms",
            self.mode,
            self.explored,
            self.violations,
            self.sim_us as f64 / 1e6,
            self.wall_ms,
        );
        if self.grouping_factor.is_some() || !self.pruners.is_empty() {
            let factor = self
                .grouping_factor
                .map(|f| format!(" (grouping factor {f}x)"))
                .unwrap_or_default();
            let _ = writeln!(out, "  pruning{factor}:");
            for row in &self.pruners {
                let timing = if row.wall_ns > 0 {
                    format!("  {:.1}us", row.wall_ns as f64 / 1e3)
                } else {
                    String::new()
                };
                let _ = writeln!(
                    out,
                    "    {:<17} checked {:<8} rejected {:<8}{timing}",
                    row.name, row.checked, row.rejected,
                );
            }
        }
        if !self.workers.is_empty() {
            let _ = writeln!(out, "  workers:");
            for load in &self.workers {
                let _ = writeln!(
                    out,
                    "    worker {}: {} runs, sim {}us",
                    load.worker, load.runs, load.sim_us
                );
            }
        }
        if let Some(cache) = &self.cache {
            let _ = writeln!(
                out,
                "  cache: {}/{} hits ({:.1}%), {} events saved, {:.3}s saved, {} B resident",
                cache.hits,
                cache.hits + cache.misses,
                cache.hit_rate() * 100.0,
                cache.events_saved,
                cache.saved_secs(),
                cache.bytes_resident,
            );
            if cache.subsumed > 0 {
                let _ = writeln!(
                    out,
                    "  subsumption: {} runs short-circuited ({:.1}%), {} executed, {} events skipped",
                    cache.subsumed,
                    cache.subsume_rate() * 100.0,
                    cache.executed_runs(),
                    cache.subsume_events_saved,
                );
            }
        }
        let _ = writeln!(
            out,
            "  failures: {}/{} runs with failed ops ({} total)",
            self.failures.runs_with_failures, self.failures.runs, self.failures.failed_ops,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruner_rows_join_counts_and_timings() {
        let stats = PruneStats {
            failed_ops_checked: 24,
            failed_ops_rejected: 5,
            causal_checked: 19,
            causal_rejected: 2,
            emitted: 17,
            ..PruneStats::default()
        };
        let timings = FilterTimings {
            failed_ops_ns: 1_500,
            ..FilterTimings::default()
        };
        let rows = SessionSummary::pruner_rows(Some(&stats), Some(&timings));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "failed-ops");
        assert_eq!(rows[0].checked, 24);
        assert_eq!(rows[0].rejected, 5);
        assert_eq!(rows[0].wall_ns, 1_500);
        assert_eq!(rows[1].name, "causal");
        assert_eq!(rows[1].wall_ns, 0);
        assert!(SessionSummary::pruner_rows(None, None).is_empty());
    }

    #[test]
    fn render_mentions_every_section() {
        let summary = SessionSummary {
            mode: "ER-π".into(),
            explored: 19,
            violations: 1,
            sim_us: 123_000,
            wall_ms: 4,
            grouping_factor: Some(210),
            pruners: vec![PrunerRow {
                name: "failed-ops",
                checked: 24,
                rejected: 5,
                wall_ns: 1_500,
            }],
            workers: vec![WorkerLoad {
                worker: 0,
                runs: 19,
                sim_us: 123_000,
            }],
            cache: Some(CacheStats {
                hits: 18,
                misses: 1,
                events_saved: 40,
                bytes_resident: 512,
                sim_us_saved: 2_000,
                subsumed: 6,
                subsume_events_saved: 24,
            }),
            failures: FailureStats {
                runs_with_failures: 5,
                runs: 19,
                failed_ops: 5,
            },
        };
        let text = summary.render();
        assert!(text.contains("ER-π"), "{text}");
        assert!(text.contains("grouping factor 210x"), "{text}");
        assert!(text.contains("failed-ops"), "{text}");
        assert!(text.contains("worker 0"), "{text}");
        assert!(text.contains("94.7%"), "{text}");
        assert!(text.contains("subsumption: 6 runs"), "{text}");
        assert!(text.contains("13 executed"), "{text}");
        assert!(text.contains("5/19 runs"), "{text}");
    }

    #[test]
    fn to_json_exposes_every_field() {
        let summary = SessionSummary {
            mode: "ER-π".into(),
            explored: 19,
            violations: 1,
            sim_us: 123_000,
            wall_ms: 4,
            grouping_factor: Some(210),
            pruners: vec![PrunerRow {
                name: "failed-ops",
                checked: 24,
                rejected: 5,
                wall_ns: 1_500,
            }],
            workers: Vec::new(),
            cache: None,
            failures: FailureStats::default(),
        };
        let json = summary.to_json();
        for key in [
            "\"mode\"",
            "\"explored\"",
            "\"violations\"",
            "\"sim_us\"",
            "\"wall_ms\"",
            "\"grouping_factor\"",
            "\"pruners\"",
            "\"failed-ops\"",
            "\"workers\"",
            "\"cache\"",
            "\"failures\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn default_summary_renders_minimal() {
        let text = SessionSummary::default().render();
        assert!(text.contains("0 runs"));
        assert!(!text.contains("pruning"));
        assert!(!text.contains("cache:"));
    }
}

//! The system-under-test abstraction.

use er_pi_model::{Event, ReplicaId, Value};

/// The outcome of applying one event during recording or replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpOutcome {
    /// The event executed and changed (or legitimately read) state.
    Applied,
    /// The event failed — e.g. a data-structure constraint refused it, or
    /// an execute-sync ran before its send under an aggressive interleaving.
    /// Failed ops are first-class in ER-π: Algorithm 4 prunes around them.
    Failed {
        /// Human-readable reason.
        reason: String,
    },
    /// The event produced an observable value (reads, transmissions).
    Observed(Value),
}

impl OpOutcome {
    /// Convenience constructor for failures.
    pub fn failed(reason: impl Into<String>) -> Self {
        OpOutcome::Failed {
            reason: reason.into(),
        }
    }

    /// Returns `true` for [`OpOutcome::Failed`].
    pub fn is_failed(&self) -> bool {
        matches!(self, OpOutcome::Failed { .. })
    }
}

/// A system under integration test: application logic + the RDL it uses.
///
/// This is the Rust equivalent of the paper's proxy boundary. The
/// language-specific proxies of the original (Go AST rewriting, JS monkey
/// patching, Java dynamic proxies) intercept RDL calls at runtime; here the
/// same call stream flows through [`SystemModel::apply`], which both the
/// recording phase and the replay engine drive. Implementations interpret
/// each [`Event`] against the replica states:
///
/// * `LocalUpdate` — invoke the corresponding RDL function at the event's
///   replica;
/// * `SyncSend` / `SyncExec` / `Sync` — move operations between replicas
///   (how is up to the model: state merge, delta shipping, or an explicit
///   message queue inside `State`);
/// * `External` — application-level effects (transmissions, reads).
///
/// `apply` receives *all* replica states because synchronization inherently
/// spans two of them.
pub trait SystemModel {
    /// Per-replica state. The `Clone` bound is the snapshot contract of the
    /// replay engine: checkpoint/reset clones states between runs, and the
    /// incremental [`CheckpointTrie`](crate::CheckpointTrie) additionally
    /// caches cloned prefix snapshots for copy-on-write reuse. A clone must
    /// be an independent deep copy — replaying against it must not be
    /// observable from the original.
    type State: Clone;

    /// Number of replicas in the system (the paper's setup uses three).
    fn replicas(&self) -> usize;

    /// Builds the initial state of one replica.
    fn init(&self, replica: ReplicaId) -> Self::State;

    /// Executes one event against the states. Must be deterministic given
    /// `(states, event)` — replay correctness depends on it.
    fn apply(&self, states: &mut [Self::State], event: &Event) -> OpOutcome;

    /// Projects a replica's state to a comparable [`Value`] — the basis for
    /// convergence assertions and cross-interleaving comparisons.
    fn observe(&self, state: &Self::State) -> Value;

    /// Builds all initial states.
    fn init_all(&self) -> Vec<Self::State> {
        (0..self.replicas() as u16)
            .map(|i| self.init(ReplicaId::new(i)))
            .collect()
    }

    /// Recovers `replica` after a scheduled crash-restart fault
    /// ([`FaultKind::CrashRestart`](er_pi_model::FaultKind)).
    ///
    /// The default models a replica with no durable log: volatile state is
    /// lost and the replica restarts from [`init`](SystemModel::init).
    /// Models whose RDL keeps a durable op log should override this with
    /// log replay (e.g. re-apply `DeltaSync::missing_since(⊥)` into a
    /// fresh state) so recovery preserves acknowledged updates.
    ///
    /// Like [`apply`](SystemModel::apply), this must be deterministic in
    /// `(states, replica)` — replay correctness depends on it.
    fn recover(&self, states: &mut [Self::State], replica: ReplicaId) {
        states[replica.index()] = self.init(replica);
    }

    /// Writes a *canonical encoding* of one replica's state into `out` and
    /// returns `true`, or returns `false` (writing nothing) when the model
    /// cannot encode its state faithfully.
    ///
    /// This is the soundness gate of state-hash subsumption
    /// ([`Session::set_subsumption`](crate::Session::set_subsumption)):
    /// equal encodings must imply *behaviorally identical* states — same
    /// outcomes, observations, and reachable states under every suffix of
    /// events. [`observe`](SystemModel::observe) is deliberately NOT used
    /// as a fallback: it is a lossy projection (an OR-set's element view
    /// drops add-tags and tombstones that change future remove semantics),
    /// and hashing it would merge states that still behave differently.
    ///
    /// The default declines, which silently disables subsumption for the
    /// model — a safe no-op. Override it (typically via
    /// [`CanonicalEncode`](er_pi_model::CanonicalEncode)) only when the
    /// encoding covers every field that influences future behavior.
    fn state_encode(&self, _state: &Self::State, _out: &mut Vec<u8>) -> bool {
        false
    }

    /// A 128-bit digest over all replicas' canonical encodings, or `None`
    /// when the model declines [`state_encode`](SystemModel::state_encode).
    ///
    /// The default length-prefixes each replica's encoding (so adjacent
    /// replicas can never alias) and hashes the concatenation with
    /// [`fnv1a128`](er_pi_rdl::fnv1a128). Override only to swap the digest
    /// function; the subsumption layer treats the value as opaque.
    fn state_digest(&self, states: &[Self::State]) -> Option<u128> {
        let mut buf = Vec::new();
        for state in states {
            let at = buf.len();
            buf.extend_from_slice(&[0u8; 8]); // length placeholder
            if !self.state_encode(state, &mut buf) {
                return None;
            }
            let len = (buf.len() - at - 8) as u64;
            buf[at..at + 8].copy_from_slice(&len.to_le_bytes());
        }
        Some(er_pi_rdl::fnv1a128(&buf))
    }

    /// A cheap estimate of one state's resident size in bytes — the unit
    /// the incremental executor's snapshot budget is accounted in (see
    /// [`Session::set_cache_budget`](crate::Session::set_cache_budget)).
    ///
    /// The default is `size_of::<State>()`, which ignores heap payloads;
    /// models whose states own significant heap data (sets, logs,
    /// documents) should override it with a proportional estimate. Only
    /// *relative* accuracy matters: the budget bounds cache growth, it
    /// does not meter allocations.
    fn state_size_hint(&self, _state: &Self::State) -> usize {
        std::mem::size_of::<Self::State>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_outcome_constructors() {
        assert!(OpOutcome::failed("nope").is_failed());
        assert!(!OpOutcome::Applied.is_failed());
        assert!(!OpOutcome::Observed(Value::from(1)).is_failed());
        match OpOutcome::failed("reason") {
            OpOutcome::Failed { reason } => assert_eq!(reason, "reason"),
            _ => unreachable!(),
        }
    }

    struct Dummy;

    impl SystemModel for Dummy {
        type State = u32;

        fn replicas(&self) -> usize {
            3
        }

        fn init(&self, replica: ReplicaId) -> u32 {
            u32::from(replica.raw())
        }

        fn apply(&self, states: &mut [u32], event: &Event) -> OpOutcome {
            states[event.replica.index()] += 1;
            OpOutcome::Applied
        }

        fn observe(&self, state: &u32) -> Value {
            Value::from(i64::from(*state))
        }
    }

    #[test]
    fn init_all_builds_one_state_per_replica() {
        let states = Dummy.init_all();
        assert_eq!(states, vec![0, 1, 2]);
    }

    #[test]
    fn default_state_size_hint_is_shallow_size() {
        assert_eq!(Dummy.state_size_hint(&7), std::mem::size_of::<u32>());
    }

    #[test]
    fn default_state_digest_declines() {
        assert_eq!(Dummy.state_digest(&[1, 2, 3]), None);
    }

    struct Encodable;

    impl SystemModel for Encodable {
        type State = u32;

        fn replicas(&self) -> usize {
            2
        }

        fn init(&self, replica: ReplicaId) -> u32 {
            u32::from(replica.raw())
        }

        fn apply(&self, _states: &mut [u32], _event: &Event) -> OpOutcome {
            OpOutcome::Applied
        }

        fn observe(&self, state: &u32) -> Value {
            Value::from(i64::from(*state))
        }

        fn state_encode(&self, state: &u32, out: &mut Vec<u8>) -> bool {
            out.extend_from_slice(&state.to_le_bytes());
            true
        }
    }

    #[test]
    fn state_digest_distinguishes_states_and_replica_boundaries() {
        let m = Encodable;
        let d1 = m.state_digest(&[1, 2]).expect("encodable");
        assert_eq!(m.state_digest(&[1, 2]), Some(d1), "deterministic");
        assert_ne!(m.state_digest(&[2, 1]), Some(d1), "per-replica placement");
        assert_ne!(m.state_digest(&[1, 3]), Some(d1));
    }
}

//! Registry instrumentation for sessions and the executor service.
//!
//! [`SessionMetrics`] is the per-campaign face of the fleet metric
//! registry: a campaign (typically the daemon's runner, but any embedder)
//! constructs one with its identifying labels and attaches it via
//! [`Session::set_metrics`](crate::Session::set_metrics). Replay workers
//! then bump label-scoped counters per finished run — a couple of relaxed
//! atomic adds, no locks — and the session folds enumeration-side pruner
//! statistics and cache rates in once, at the end of the replay.
//!
//! Everything recorded here is observational: metric values never feed
//! back into replay results, so an attached registry leaves `Report`s
//! byte-identical to a detached run (the same write-only contract the
//! telemetry sinks honour).

use std::sync::Arc;

use er_pi_telemetry::{Counter, Gauge, Histogram, Registry};

use crate::Report;

/// Per-campaign handles into a metric [`Registry`], pre-registered with
/// the campaign's identifying labels (e.g. `tenant`, `campaign`). Cloning
/// shares the underlying series.
#[derive(Clone)]
pub struct SessionMetrics {
    registry: Arc<Registry>,
    labels: Vec<(String, String)>,
    runs: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    subsumed: Counter,
    hit_rate: Gauge,
    low_hit_rate: Gauge,
}

impl std::fmt::Debug for SessionMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionMetrics")
            .field("labels", &self.labels)
            .field("runs", &self.runs.get())
            .finish()
    }
}

impl SessionMetrics {
    /// Registers the campaign's series under `labels` and returns the
    /// handle bundle. Re-registering the same labels shares the series.
    pub fn new(registry: &Arc<Registry>, labels: &[(&str, &str)]) -> Self {
        SessionMetrics {
            registry: Arc::clone(registry),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            runs: registry.counter(
                "er_pi_campaign_runs_total",
                "Interleavings replayed by this campaign.",
                labels,
            ),
            cache_hits: registry.counter(
                "er_pi_campaign_cache_hits_total",
                "Runs resumed from a checkpoint-trie prefix.",
                labels,
            ),
            cache_misses: registry.counter(
                "er_pi_campaign_cache_misses_total",
                "Runs replayed from scratch despite incremental replay.",
                labels,
            ),
            subsumed: registry.counter(
                "er_pi_campaign_subsumed_total",
                "Runs short-circuited by state-hash subsumption.",
                labels,
            ),
            hit_rate: registry.gauge(
                "er_pi_campaign_cache_hit_rate",
                "Final checkpoint-trie hit rate of the campaign (0-1).",
                labels,
            ),
            low_hit_rate: registry.gauge(
                "er_pi_cache_low_hit_rate",
                "1 when the campaign's checkpoint-trie hit rate fell below \
                 the degraded-cache threshold, else 0.",
                labels,
            ),
        }
    }

    /// Records one finished run (hot path: 1-3 relaxed atomic adds).
    pub(crate) fn run_done(&self, cache_hit: Option<bool>, subsumed: bool) {
        self.runs.inc();
        match cache_hit {
            Some(true) => self.cache_hits.inc(),
            Some(false) => self.cache_misses.inc(),
            None => {}
        }
        if subsumed {
            self.subsumed.inc();
        }
    }

    /// Latches the degraded-cache gauge (mirrors the
    /// [`HitRateMonitor`](er_pi_telemetry::HitRateMonitor) sink warning).
    pub(crate) fn warn_low_hit_rate(&self) {
        self.low_hit_rate.set(1.0);
    }

    /// Folds the finished report's enumeration-side statistics into the
    /// registry: per-algorithm pruner rejections and the final cache hit
    /// rate. Called once per replay, off the hot path.
    pub(crate) fn finish(&self, report: &Report) {
        if let Some(stats) = &report.prune_stats {
            let owned: Vec<(&str, &str)> = self
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            for (algorithm, rejected) in [
                ("sleep-set", stats.sleep_rejected),
                ("replica-specific", stats.replica_specific_rejected),
                ("independence", stats.independence_rejected),
                ("failed-ops", stats.failed_ops_rejected),
                ("causal", stats.causal_rejected),
            ] {
                let mut labels = owned.clone();
                labels.push(("algorithm", algorithm));
                self.registry
                    .counter(
                        "er_pi_campaign_pruned_total",
                        "Interleaving candidates rejected per pruning algorithm.",
                        &labels,
                    )
                    .add(rejected);
            }
        }
        if let Some(cache) = &report.cache_stats {
            let attributed = cache.hits + cache.misses;
            if attributed > 0 {
                self.hit_rate.set(cache.hits as f64 / attributed as f64);
            }
        }
    }
}

/// Service-wide latency histograms, registered once per
/// [`ExecutorService`](crate::ExecutorService) and observed by every
/// worker slot.
#[derive(Clone)]
pub(crate) struct SvcMetrics {
    /// Time a worker spent acquiring a campaign dispenser and claiming a
    /// chunk, microseconds.
    pub claim_wait: Histogram,
    /// Wall-clock latency of one interleaving replay, microseconds.
    pub run_latency: Histogram,
}

impl SvcMetrics {
    pub fn new(registry: &Registry) -> Self {
        SvcMetrics {
            claim_wait: registry.histogram(
                "er_pi_chunk_claim_wait_us",
                "Time a service worker spent claiming a chunk from a \
                 campaign dispenser, microseconds.",
                &[],
            ),
            run_latency: registry.histogram(
                "er_pi_run_latency_us",
                "Wall-clock latency of one interleaving replay on a \
                 service worker, microseconds.",
                &[],
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_done_scopes_counters_to_the_campaign_labels() {
        let registry = Arc::new(Registry::new());
        let m = SessionMetrics::new(&registry, &[("tenant", "acme"), ("campaign", "c-1")]);
        m.run_done(Some(true), false);
        m.run_done(Some(false), true);
        m.run_done(None, false);
        let text = registry.render_prometheus();
        assert!(
            text.contains("er_pi_campaign_runs_total{tenant=\"acme\",campaign=\"c-1\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("er_pi_campaign_cache_hits_total{tenant=\"acme\",campaign=\"c-1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("er_pi_campaign_subsumed_total{tenant=\"acme\",campaign=\"c-1\"} 1"),
            "{text}"
        );
        er_pi_telemetry::lint_exposition(&text).expect("lints clean");
    }
}

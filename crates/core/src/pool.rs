//! The parallel replay scheduler: cross-interleaving parallelism.
//!
//! The paper's cost model is dominated by State-4 replay — every surviving
//! interleaving is executed with checkpoint/reset. [`ThreadedExecutor`]
//! parallelizes the replicas *within* one interleaving (faithful to §4.3's
//! distributed lock, and bounded by it); the [`ReplayPool`] instead fans the
//! pruned set itself across worker threads, each replaying whole
//! interleavings independently against its own cloned checkpoint. Replays
//! are embarrassingly parallel — runs share no state — so the only work is
//! making the *merged* result indistinguishable from the sequential one:
//!
//! * every dispensed interleaving carries a stable exploration index
//!   ([`IndexedSource`]), and merged runs are ordered by it;
//! * under `stop_on_first_violation`, cancellation is cooperative (an
//!   `AtomicBool` checked between interleavings) and the *lowest-indexed*
//!   violation wins: runs past it are discarded, so the bug-reproduction
//!   output is deterministic no matter which worker found what first;
//! * a panicking model surfaces as [`ErPiError::ExecutorPanic`] and the
//!   whole result set is discarded — the session itself is left usable.
//!
//! [`ThreadedExecutor`]: crate::ThreadedExecutor

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use er_pi_interleave::IndexedSource;
use er_pi_model::{Interleaving, Value, Workload};
use er_pi_telemetry::{worker_track, HitRateMonitor, Telemetry, TrackId};
use parking_lot::Mutex;

use crate::instrument::Instrument;
use crate::subsume::SubsumeSet;
use crate::{
    CacheStats, CancelToken, CheckContext, ErPiError, IncrementalExecutor, InlineExecutor, Report,
    RunRecord, SystemModel, TestSuite, TimeModel, Violation, WorkerLoad,
};

/// Sentinel for "no violation found yet" in the atomic minimum.
pub(crate) const NO_VIOLATION: usize = usize::MAX;

/// Default interleavings claimed per dispenser lock acquisition
/// (tunable per session via
/// [`Session::set_chunk_size`](crate::Session::set_chunk_size)).
/// Contiguous chunks (rather than strided or item-at-a-time claims)
/// preserve per-worker prefix locality: lexicographically adjacent
/// interleavings land in the same worker's checkpoint trie, so incremental
/// resumes stay hot. Chunks also amortize the dispenser lock. Cooperative
/// cancellation is checked *between* chunks only — a claimed chunk always
/// executes to completion, keeping the dispensed index range dense for the
/// merge.
pub const DEFAULT_CHUNK_SIZE: usize = 32;

/// A pool of replay workers fanning the pruned interleaving set across
/// threads.
///
/// Constructed by [`Session::replay`](crate::Session::replay) whenever the
/// session's worker count is above one; also usable standalone through
/// [`ReplayPool::replay`] for custom exploration sources.
#[derive(Debug, Clone, Copy)]
pub struct ReplayPool {
    workers: usize,
}

/// What one worker hands back per replayed interleaving.
pub(crate) struct WorkerRun {
    pub(crate) index: usize,
    pub(crate) record: RunRecord,
    pub(crate) violations: Vec<(String, String)>,
}

/// The merged result of a pooled replay, before the session dresses it up
/// as a [`Report`].
pub(crate) struct PoolOutput {
    /// Retained runs, ordered by exploration index (dense from 0).
    pub runs: Vec<RunRecord>,
    /// Per-run violations of the retained runs, in (run, assertion) order.
    pub violations: Vec<Violation>,
    /// Lowest run index with a violation, if any.
    pub first_violation_at: Option<usize>,
    /// Σ `sim_us` over the retained runs.
    pub sim_us: u64,
    /// Whether cooperative cancellation fired (stop-on-first-violation).
    pub cancelled: bool,
    /// Per-worker replay counters, in worker order.
    pub worker_loads: Vec<WorkerLoad>,
    /// Checkpoint-cache counters summed over the per-worker tries; `None`
    /// when the pool ran the scratch executor.
    pub cache_stats: Option<CacheStats>,
}

impl ReplayPool {
    /// Creates a pool with `workers` threads (`0` means "all available
    /// cores").
    pub fn new(workers: usize) -> Self {
        ReplayPool {
            workers: if workers == 0 {
                Self::available_workers()
            } else {
                workers
            },
        }
    }

    /// The number of worker threads this pool spawns.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The platform's available parallelism (used for worker count `0` and
    /// the session default); `1` when it cannot be queried.
    ///
    /// An `ER_PI_WORKERS` environment variable overrides the probe:
    /// cgroup-limited deployments (containers with a CPU quota) report the
    /// host's core count through `available_parallelism`, so operators pin
    /// the real budget explicitly. Unparsable or zero values are ignored.
    pub fn available_workers() -> usize {
        std::env::var("ER_PI_WORKERS")
            .ok()
            .as_deref()
            .and_then(parse_workers_override)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
    }

    /// Replays everything `source` dispenses and merges the results into a
    /// [`Report`] deterministically equal to a sequential replay of the
    /// same source (compare with [`Report::diff`]).
    ///
    /// This is the standalone entry point over an explicit exploration
    /// source; [`Session::replay`](crate::Session::replay) wires the same
    /// machinery to the session's explorer, pruning configuration, and
    /// static-analysis pass.
    ///
    /// # Errors
    ///
    /// [`ErPiError::ExecutorPanic`] if the model panics in any worker; all
    /// shard results are discarded.
    pub fn replay<M, I>(
        &self,
        model: &M,
        workload: &Workload,
        source: I,
        time: &TimeModel,
        suite: &TestSuite<M::State>,
        stop_on_first_violation: bool,
    ) -> Result<Report, ErPiError>
    where
        M: SystemModel + Sync,
        M::State: Send + Sync,
        I: Iterator<Item = Interleaving> + Send,
    {
        let started = std::time::Instant::now();
        let mut source = IndexedSource::new(source, usize::MAX);
        let out = self.run(
            model,
            workload,
            &mut source,
            time,
            suite,
            stop_on_first_violation,
            None,
            None,
            DEFAULT_CHUNK_SIZE,
            &Instrument::disabled(),
            None,
        )?;
        let keep = !suite.cross_checks().is_empty();
        let mut violations = out.violations;
        for check in suite.cross_checks() {
            if let Err(message) = check.check(&crate::CrossContext { runs: &out.runs }) {
                violations.push(Violation {
                    run: None,
                    assertion: check.name().to_owned(),
                    message,
                    interleaving: None,
                });
            }
        }
        let wall_ms = started.elapsed().as_millis();
        let session_summary = crate::SessionSummary {
            mode: "pool".into(),
            explored: out.runs.len(),
            violations: violations.len(),
            sim_us: out.sim_us,
            wall_ms,
            grouping_factor: None,
            pruners: Vec::new(),
            workers: out.worker_loads.clone(),
            cache: out.cache_stats,
            failures: crate::FailureStats::from_runs(&out.runs),
        };
        Ok(Report {
            mode: "pool".into(),
            explored: out.runs.len(),
            first_violation_at: out.first_violation_at,
            prune_stats: None,
            wasted_work: 0,
            wall_ms,
            sim_us: out.sim_us,
            runs: if keep { out.runs } else { Vec::new() },
            violations,
            stopped_early: out.cancelled || source.truncated(),
            diagnostics: Vec::new(),
            worker_loads: out.worker_loads,
            cache_stats: out.cache_stats,
            session_summary,
            advisories: Vec::new(),
        })
    }

    /// The scheduling core: workers claim contiguous chunks of
    /// `(index, interleaving)` pairs from the shared source, execute them
    /// against fresh checkpoints — or, with `incremental_budget` set,
    /// against a per-worker [`IncrementalExecutor`] resuming from cached
    /// prefixes — and push results into a shared sink; the merge restores
    /// sequential order. Used by both [`ReplayPool::replay`] and the
    /// session.
    ///
    /// `external_cancel` is the campaign-level [`CancelToken`]: polled at
    /// the same chunk boundaries as the internal stop-on-first flag, and
    /// when tripped the whole result set is discarded as
    /// [`ErPiError::Cancelled`].
    ///
    /// `subsume` is the campaign-wide explored-set for state-hash
    /// subsumption, shared across all workers (each worker's executor
    /// probes and feeds it); with subsumption on but incremental replay
    /// off, every worker still gets an executor — with a zero snapshot
    /// budget, so the trie caches nothing and only the subsumption layer
    /// is live. `chunk_size` is the dispenser claim granularity (see
    /// [`DEFAULT_CHUNK_SIZE`] for the trade-off; values below 1 are clamped).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run<M, I>(
        &self,
        model: &M,
        workload: &Workload,
        source: &mut IndexedSource<I>,
        time: &TimeModel,
        suite: &TestSuite<M::State>,
        stop_on_first_violation: bool,
        incremental_budget: Option<usize>,
        subsume: Option<&Arc<SubsumeSet<M::State>>>,
        chunk_size: usize,
        instrument: &Instrument,
        external_cancel: Option<&CancelToken>,
    ) -> Result<PoolOutput, ErPiError>
    where
        M: SystemModel + Sync,
        M::State: Send + Sync,
        I: Iterator<Item = Interleaving> + Send,
    {
        let chunk_size = chunk_size.max(1);
        let dispenser = Mutex::new(source);
        let sink: Mutex<Vec<WorkerRun>> = Mutex::new(Vec::new());
        let cancel = AtomicBool::new(false);
        let lowest_violation = AtomicUsize::new(NO_VIOLATION);
        let panicked: Mutex<Option<String>> = Mutex::new(None);

        let worker_results = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.workers)
                .map(|worker| {
                    let dispenser = &dispenser;
                    let sink = &sink;
                    let cancel = &cancel;
                    let lowest_violation = &lowest_violation;
                    let panicked = &panicked;
                    scope.spawn(move || {
                        let mut load = WorkerLoad {
                            worker,
                            runs: 0,
                            sim_us: 0,
                        };
                        let telemetry = instrument.telemetry.clone();
                        let track = worker_track(worker);
                        // Each worker owns its trie: no cross-thread
                        // snapshot sharing, and the chunked dispenser keeps
                        // the worker's stream prefix-coherent.
                        let mut executor = match (incremental_budget, subsume) {
                            (None, None) => None,
                            (budget, sub) => {
                                let mut e = IncrementalExecutor::<M>::new(budget.unwrap_or(0));
                                if let Some(set) = sub {
                                    e.enable_subsumption(Arc::clone(set));
                                }
                                Some(e)
                            }
                        };
                        // Each worker also watches its own trie's hit rate
                        // — the warning names the worker via its track.
                        let mut hit_monitor = (incremental_budget.is_some()
                            && telemetry.is_active())
                        .then(HitRateMonitor::default);
                        'claim: loop {
                            if cancel.load(Ordering::Acquire)
                                || external_cancel.is_some_and(CancelToken::is_cancelled)
                            {
                                break;
                            }
                            // Claim-then-execute: once a chunk is claimed it
                            // is always executed in full (cancellation is
                            // only checked between chunks), so the dispensed
                            // index range stays dense — the merge relies on
                            // it.
                            let t_claim = telemetry.start();
                            let chunk = dispenser.lock().next_chunk(chunk_size);
                            if chunk.is_empty() {
                                break;
                            }
                            if telemetry.is_active() {
                                telemetry.span_since(
                                    track,
                                    "claim",
                                    t_claim,
                                    vec![
                                        ("first_index", chunk[0].0.into()),
                                        ("count", chunk.len().into()),
                                    ],
                                );
                            }
                            for (index, il) in chunk {
                                let t_run = telemetry.start();
                                let executed = catch_unwind(AssertUnwindSafe(|| {
                                    execute_one(
                                        model,
                                        workload,
                                        index,
                                        il,
                                        time,
                                        suite,
                                        executor.as_mut(),
                                        &telemetry,
                                        track,
                                    )
                                }));
                                match executed {
                                    Ok(run) => {
                                        load.runs += 1;
                                        load.sim_us += run.record.sim_us;
                                        let violated = !run.violations.is_empty();
                                        if violated {
                                            lowest_violation.fetch_min(run.index, Ordering::AcqRel);
                                            if stop_on_first_violation {
                                                cancel.store(true, Ordering::Release);
                                            }
                                        }
                                        let resumed_depth =
                                            executor.as_ref().map(|e| e.last_resume_depth());
                                        if telemetry.is_active() {
                                            telemetry.span_since(
                                                track,
                                                "run",
                                                t_run,
                                                vec![
                                                    ("index", run.index.into()),
                                                    (
                                                        "resumed_depth",
                                                        resumed_depth.unwrap_or(0).into(),
                                                    ),
                                                    ("sim_us", run.record.sim_us.into()),
                                                    ("violated", violated.into()),
                                                    ("failed_ops", run.record.failed_ops.into()),
                                                ],
                                            );
                                        }
                                        // Only attribute hit/miss when the
                                        // trie has a budget: a zero-budget
                                        // subsumption-only executor always
                                        // resumes from depth 0 and would
                                        // report a fictitious 0% hit rate.
                                        let cache_hit =
                                            incremental_budget.and(resumed_depth).map(|d| d > 0);
                                        if let (Some(monitor), Some(hit)) =
                                            (hit_monitor.as_mut(), cache_hit)
                                        {
                                            if let Some(message) = monitor.record(hit) {
                                                telemetry.warn(
                                                    track,
                                                    "cache:low-hit-rate",
                                                    message,
                                                );
                                            }
                                        }
                                        let subsumed = executor
                                            .as_ref()
                                            .is_some_and(IncrementalExecutor::last_run_subsumed);
                                        instrument.run_done(worker, cache_hit, subsumed);
                                        sink.lock().push(run);
                                    }
                                    Err(payload) => {
                                        let mut note = panicked.lock();
                                        if note.is_none() {
                                            *note = Some(panic_message(payload.as_ref()));
                                        }
                                        cancel.store(true, Ordering::Release);
                                        break 'claim;
                                    }
                                }
                            }
                        }
                        (load, executor.map(|e| e.stats()))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pool workers catch model panics"))
                .collect::<Vec<(WorkerLoad, Option<CacheStats>)>>()
        });

        if let Some(what) = panicked.into_inner() {
            // Discard every shard's results; the session stays usable.
            return Err(ErPiError::ExecutorPanic(what));
        }
        if external_cancel.is_some_and(CancelToken::is_cancelled) {
            // The campaign was cancelled from outside: partial results are
            // discarded wholesale (no deterministic prefix is promised —
            // the caller asked for the campaign to stop, not for an
            // answer). The session itself stays usable.
            return Err(ErPiError::Cancelled);
        }

        let mut worker_loads = Vec::with_capacity(worker_results.len());
        let mut cache_stats: Option<CacheStats> = None;
        for (load, stats) in worker_results {
            worker_loads.push(load);
            if let Some(stats) = stats {
                cache_stats
                    .get_or_insert_with(CacheStats::default)
                    .absorb(&stats);
            }
        }

        let mut produced = sink.into_inner();
        produced.sort_unstable_by_key(|run| run.index);

        // Lowest-indexed violation wins: under stop-on-first, runs beyond
        // it were speculative and are discarded so the merged report equals
        // the sequential one byte for byte.
        let lowest = lowest_violation.into_inner();
        let cancelled = stop_on_first_violation && lowest != NO_VIOLATION;
        if cancelled {
            produced.truncate(lowest + 1);
        }

        let mut runs = Vec::with_capacity(produced.len());
        let mut violations = Vec::new();
        let mut sim_us = 0u64;
        for run in produced {
            debug_assert_eq!(run.index, runs.len(), "merged indices must be dense");
            sim_us += run.record.sim_us;
            for (assertion, message) in run.violations {
                violations.push(Violation {
                    run: Some(run.index),
                    assertion,
                    message,
                    interleaving: Some(run.record.interleaving.clone()),
                });
            }
            runs.push(run.record);
        }

        Ok(PoolOutput {
            runs,
            violations,
            first_violation_at: (lowest != NO_VIOLATION).then_some(lowest),
            sim_us,
            cancelled,
            worker_loads,
            cache_stats,
        })
    }
}

/// Executes one interleaving — against a fresh checkpoint, or resuming
/// from the worker's trie when an incremental executor is supplied — and
/// checks the suite. The per-item body shared by all workers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_one<M: SystemModel>(
    model: &M,
    workload: &Workload,
    index: usize,
    il: Interleaving,
    time: &TimeModel,
    suite: &TestSuite<M::State>,
    executor: Option<&mut IncrementalExecutor<M>>,
    telemetry: &Telemetry,
    track: TrackId,
) -> WorkerRun {
    let exec = match executor {
        Some(incremental) => incremental.execute(model, workload, &il, time),
        None => InlineExecutor::execute(model, workload, &il, time),
    };
    let observations: Vec<Value> = exec.states.iter().map(|s| model.observe(s)).collect();
    let ctx = CheckContext {
        states: &exec.states,
        observations: &observations,
        interleaving: &il,
        outcomes: &exec.outcomes,
    };
    let t_check = telemetry.start();
    let mut violations = Vec::new();
    for assertion in suite.assertions() {
        if let Err(message) = assertion.check(&ctx) {
            violations.push((assertion.name().to_owned(), message));
        }
    }
    if telemetry.is_active() {
        telemetry.span_since(
            track,
            "check",
            t_check,
            vec![
                ("assertions", suite.assertions().len().into()),
                ("violated", (!violations.is_empty()).into()),
            ],
        );
    }
    let failed_ops = exec.outcomes.iter().filter(|o| o.is_failed()).count();
    WorkerRun {
        index,
        record: RunRecord {
            interleaving: il,
            observations,
            failed_ops,
            sim_us: exec.sim_us,
        },
        violations,
    }
}

/// Parses an `ER_PI_WORKERS` override: a positive integer (surrounding
/// whitespace tolerated). Anything else — empty, zero, garbage — is `None`
/// so the platform probe stays authoritative.
fn parse_workers_override(raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => None,
    }
}

/// Extracts a human-readable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Assertion;
    use er_pi_interleave::DfsExplorer;
    use er_pi_model::{Event, EventKind, ReplicaId};

    /// Integer register per replica; `set(v)` writes, fused sync copies.
    struct RegApp;

    impl SystemModel for RegApp {
        type State = i64;

        fn replicas(&self) -> usize {
            2
        }

        fn init(&self, _replica: ReplicaId) -> i64 {
            0
        }

        fn apply(&self, states: &mut [i64], event: &Event) -> crate::OpOutcome {
            match &event.kind {
                EventKind::LocalUpdate { op } => {
                    states[event.replica.index()] = op.arg(0).and_then(Value::as_int).unwrap_or(0);
                    crate::OpOutcome::Applied
                }
                EventKind::Sync { to, .. } => {
                    states[to.index()] = states[event.replica.index()];
                    crate::OpOutcome::Applied
                }
                _ => crate::OpOutcome::failed("unsupported"),
            }
        }

        fn observe(&self, state: &i64) -> Value {
            Value::from(*state)
        }

        fn state_encode(&self, state: &i64, out: &mut Vec<u8>) -> bool {
            out.extend_from_slice(&state.to_le_bytes());
            true
        }
    }

    fn two_writes() -> Workload {
        let a = ReplicaId::new(0);
        let b = ReplicaId::new(1);
        let mut w = Workload::builder();
        let w1 = w.update(a, "set", [Value::from(1)]);
        w.sync_pair(a, b, w1);
        let w2 = w.update(b, "set", [Value::from(2)]);
        w.sync_pair(b, a, w2);
        w.build()
    }

    #[test]
    fn pool_covers_the_space_in_stable_order() {
        let w = two_writes();
        let time = TimeModel::paper_setup();
        let suite = TestSuite::new().with_cross(crate::CrossCheck::new("keep", |_| Ok(())));
        let sequential: Vec<Interleaving> = DfsExplorer::new(&w).collect();
        for workers in [1, 2, 4] {
            let pool = ReplayPool::new(workers);
            let report = pool
                .replay(&RegApp, &w, DfsExplorer::new(&w), &time, &suite, false)
                .unwrap();
            assert_eq!(report.explored, 24);
            let replayed: Vec<&Interleaving> =
                report.runs.iter().map(|r| &r.interleaving).collect();
            assert_eq!(
                replayed,
                sequential.iter().collect::<Vec<_>>(),
                "{workers} workers must preserve exploration order"
            );
            assert_eq!(report.worker_loads.len(), workers);
            let total: usize = report.worker_loads.iter().map(|l| l.runs).sum();
            assert_eq!(total, 24, "no lost or duplicated runs across workers");
        }
    }

    #[test]
    fn lowest_indexed_violation_wins() {
        let w = two_writes();
        let time = TimeModel::paper_setup();
        let suite = TestSuite::new().with(Assertion::replicas_converge("conv"));
        let baseline = ReplayPool::new(1)
            .replay(&RegApp, &w, DfsExplorer::new(&w), &time, &suite, true)
            .unwrap();
        for workers in [2, 4, 8] {
            let report = ReplayPool::new(workers)
                .replay(&RegApp, &w, DfsExplorer::new(&w), &time, &suite, true)
                .unwrap();
            assert_eq!(report.first_violation_at, baseline.first_violation_at);
            assert_eq!(report.explored, baseline.explored);
            assert_eq!(report.violations, baseline.violations);
            assert_eq!(report.sim_us, baseline.sim_us);
            assert!(report.stopped_early);
        }
    }

    #[test]
    fn incremental_pool_matches_scratch_pool() {
        let w = two_writes();
        let time = TimeModel::paper_setup();
        let suite = TestSuite::new().with_cross(crate::CrossCheck::new("keep", |_| Ok(())));
        for workers in [1, 2, 4] {
            let pool = ReplayPool::new(workers);
            let mut scratch_src = IndexedSource::new(DfsExplorer::new(&w), usize::MAX);
            let scratch = pool
                .run(
                    &RegApp,
                    &w,
                    &mut scratch_src,
                    &time,
                    &suite,
                    false,
                    None,
                    None,
                    DEFAULT_CHUNK_SIZE,
                    &Instrument::disabled(),
                    None,
                )
                .unwrap();
            let mut inc_src = IndexedSource::new(DfsExplorer::new(&w), usize::MAX);
            let incremental = pool
                .run(
                    &RegApp,
                    &w,
                    &mut inc_src,
                    &time,
                    &suite,
                    false,
                    Some(crate::DEFAULT_CACHE_BUDGET),
                    None,
                    DEFAULT_CHUNK_SIZE,
                    &Instrument::disabled(),
                    None,
                )
                .unwrap();
            assert_eq!(scratch.runs, incremental.runs);
            assert_eq!(scratch.violations, incremental.violations);
            assert_eq!(scratch.sim_us, incremental.sim_us);
            assert!(scratch.cache_stats.is_none());
            let stats = incremental.cache_stats.expect("incremental counters");
            assert_eq!(stats.hits + stats.misses, 24);
        }
    }

    #[test]
    fn subsuming_pool_matches_plain_pool() {
        let w = two_writes();
        let time = TimeModel::paper_setup();
        let suite = TestSuite::new().with_cross(crate::CrossCheck::new("keep", |_| Ok(())));
        for workers in [1, 2, 4] {
            let pool = ReplayPool::new(workers);
            let mut plain_src = IndexedSource::new(DfsExplorer::new(&w), usize::MAX);
            let plain = pool
                .run(
                    &RegApp,
                    &w,
                    &mut plain_src,
                    &time,
                    &suite,
                    false,
                    None,
                    None,
                    DEFAULT_CHUNK_SIZE,
                    &Instrument::disabled(),
                    None,
                )
                .unwrap();
            let set = Arc::new(SubsumeSet::new());
            let mut sub_src = IndexedSource::new(DfsExplorer::new(&w), usize::MAX);
            let subsuming = pool
                .run(
                    &RegApp,
                    &w,
                    &mut sub_src,
                    &time,
                    &suite,
                    false,
                    None,
                    Some(&set),
                    DEFAULT_CHUNK_SIZE,
                    &Instrument::disabled(),
                    None,
                )
                .unwrap();
            assert_eq!(plain.runs, subsuming.runs);
            assert_eq!(plain.violations, subsuming.violations);
            assert!(plain.cache_stats.is_none());
            assert!(set.len() > 0, "every worker feeds the shared set");
            let stats = subsuming.cache_stats.expect("subsumption-only counters");
            assert_eq!(stats.hits + stats.misses, 24);
            if workers == 1 {
                // Deterministic with a single worker: later permutations of
                // the two-writes space re-reach explored states.
                assert!(stats.subsumed > 0, "subsumption must fire");
            }
        }
    }

    #[test]
    fn model_panics_surface_as_executor_panic() {
        struct Bomb;
        impl SystemModel for Bomb {
            type State = ();
            fn replicas(&self) -> usize {
                1
            }
            fn init(&self, _r: ReplicaId) {}
            fn apply(&self, _s: &mut [()], _e: &Event) -> crate::OpOutcome {
                panic!("pool kaboom");
            }
            fn observe(&self, _s: &()) -> Value {
                Value::Null
            }
        }
        let mut w = Workload::builder();
        w.update(ReplicaId::new(0), "x", [Value::from(1)]);
        w.update(ReplicaId::new(0), "y", [Value::from(2)]);
        let w = w.build();
        let err = ReplayPool::new(4).replay(
            &Bomb,
            &w,
            DfsExplorer::new(&w),
            &TimeModel::paper_setup(),
            &TestSuite::new(),
            false,
        );
        match err {
            Err(ErPiError::ExecutorPanic(what)) => assert!(what.contains("pool kaboom")),
            other => panic!("expected ExecutorPanic, got {other:?}"),
        }
    }

    #[test]
    fn workers_override_parses_strictly() {
        assert_eq!(parse_workers_override("4"), Some(4));
        assert_eq!(parse_workers_override(" 16 "), Some(16));
        assert_eq!(parse_workers_override("0"), None, "zero workers is absurd");
        assert_eq!(parse_workers_override(""), None);
        assert_eq!(parse_workers_override("-2"), None);
        assert_eq!(parse_workers_override("many"), None);
        assert_eq!(parse_workers_override("4.5"), None);
    }

    // One test covers both the platform probe and the env override:
    // `available_workers` reads `ER_PI_WORKERS` on every call, so keeping
    // the two scenarios in a single #[test] stops the parallel harness
    // from interleaving them.
    #[test]
    fn zero_workers_and_the_er_pi_workers_override() {
        let pool = ReplayPool::new(0);
        assert_eq!(pool.workers(), ReplayPool::available_workers());
        assert!(pool.workers() >= 1);

        std::env::set_var("ER_PI_WORKERS", "3");
        let seen = ReplayPool::available_workers();
        let pinned = ReplayPool::new(0);
        std::env::remove_var("ER_PI_WORKERS");
        assert_eq!(seen, 3, "cgroup-limited deployments pin the real budget");
        assert_eq!(pinned.workers(), 3);

        std::env::set_var("ER_PI_WORKERS", "not-a-number");
        let garbage = ReplayPool::available_workers();
        std::env::remove_var("ER_PI_WORKERS");
        assert!(garbage >= 1, "garbage overrides fall back to the probe");
    }

    #[test]
    fn a_pre_tripped_token_cancels_the_pool() {
        let w = two_writes();
        let time = TimeModel::paper_setup();
        let suite = TestSuite::new();
        let token = CancelToken::new();
        token.cancel();
        let mut source = IndexedSource::new(DfsExplorer::new(&w), usize::MAX);
        let result = ReplayPool::new(2).run(
            &RegApp,
            &w,
            &mut source,
            &time,
            &suite,
            false,
            None,
            None,
            DEFAULT_CHUNK_SIZE,
            &Instrument::disabled(),
            Some(&token),
        );
        match result {
            Err(ErPiError::Cancelled) => {}
            other => panic!("expected Cancelled, got {:?}", other.map(|o| o.runs.len())),
        }
    }
}

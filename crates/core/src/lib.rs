//! # ER-π — exhaustive interleaving replay for RDL integration testing
//!
//! This crate is the middleware itself: the reproduction of the system
//! described in *"ER-π: Exhaustive Interleaving Replay for Testing
//! Replicated Data Library Integration"* (Middleware 2025).
//!
//! ER-π tests the *integration* between application logic and a replicated
//! data library (RDL). Eventual consistency guarantees that replicas
//! converge — it does **not** guarantee that the application built on top is
//! correct. Bugs hide in specific event interleavings; ER-π finds them by
//! (1) intercepting the RDL calls an application segment makes,
//! (2) generating every interleaving of those events, (3) pruning the
//! factorial space with four domain-specific algorithms, and (4) replaying
//! each surviving interleaving under a distributed lock while checking test
//! assertions.
//!
//! ## Workflow (paper §5.2)
//!
//! ```text
//! ER-π.Start()
//!   State 1: extract events via proxies            → Session::record
//!   State 2: generate + prune + persist            → Session::replay
//!   State 3: execute each interleaving, run tests  → Session::replay
//!   State 4: ingest new constraints, goto State 2  → constraints directory
//! ER-π.End(assertions)
//! ```
//!
//! ## Example
//!
//! The paper's motivating town-issues app: an eventually consistent set of
//! reported problems, where transmitting the set *before* the last
//! synchronization sends stale data.
//!
//! ```
//! use er_pi::{OpOutcome, Session, SystemModel, TestSuite};
//! use er_pi_model::{Event, EventKind, ReplicaId, Value};
//! use er_pi_rdl::{DeltaSync, OrSet};
//!
//! struct TownApp;
//!
//! #[derive(Clone)]
//! struct TownState {
//!     issues: OrSet<String>,
//!     transmitted: Option<Vec<String>>,
//! }
//!
//! impl SystemModel for TownApp {
//!     type State = TownState;
//!
//!     fn replicas(&self) -> usize { 2 }
//!
//!     fn init(&self, replica: ReplicaId) -> TownState {
//!         TownState { issues: OrSet::new(replica), transmitted: None }
//!     }
//!
//!     fn apply(&self, states: &mut [TownState], event: &Event) -> OpOutcome {
//!         let at = event.replica.index();
//!         match &event.kind {
//!             EventKind::LocalUpdate { op } => {
//!                 let arg = op.arg(0).and_then(Value::as_str).unwrap_or("").to_owned();
//!                 match op.function() {
//!                     "add" => { states[at].issues.insert(arg); OpOutcome::Applied }
//!                     "remove" => match states[at].issues.remove(&arg) {
//!                         Some(_) => OpOutcome::Applied,
//!                         None => OpOutcome::failed("remove of absent element"),
//!                     },
//!                     other => OpOutcome::failed(format!("unknown op {other}")),
//!                 }
//!             }
//!             EventKind::Sync { to, .. } => {
//!                 let (src, dst) = (at, to.index());
//!                 let snapshot = states[src].issues.clone();
//!                 states[dst].issues.sync_from(&snapshot);
//!                 OpOutcome::Applied
//!             }
//!             EventKind::External { .. } => {
//!                 let snapshot: Vec<String> =
//!                     states[at].issues.elements().into_iter().cloned().collect();
//!                 states[at].transmitted = Some(snapshot);
//!                 OpOutcome::Applied
//!             }
//!             _ => OpOutcome::failed("unused event kind"),
//!         }
//!     }
//!
//!     fn observe(&self, state: &TownState) -> Value {
//!         state
//!             .transmitted
//!             .clone()
//!             .map(|v| v.into_iter().collect())
//!             .unwrap_or(Value::Null)
//!     }
//! }
//!
//! let mut session = Session::new(TownApp);
//! let a = ReplicaId::new(0);
//! let b = ReplicaId::new(1);
//! session.record(|sys| {
//!     let ev1 = sys.invoke(a, "add", [Value::from("otb")]);
//!     sys.sync(a, b, ev1);
//!     let ev2 = sys.invoke(b, "add", [Value::from("ph")]);
//!     sys.sync(b, a, ev2);
//!     let ev3 = sys.invoke(b, "remove", [Value::from("otb")]);
//!     sys.sync(b, a, ev3);
//!     sys.external(a, "transmit");
//! });
//!
//! // Invariant: whatever A transmits must equal the fully synced set.
//! let suite = TestSuite::new().with_assertion(
//!     "transmit-reflects-remove",
//!     |ctx: &er_pi::CheckContext<'_, TownState>| {
//!         match &ctx.states[0].transmitted {
//!             Some(items) if items.contains(&"otb".to_owned()) => {
//!                 Err("stale issue transmitted to the municipality".into())
//!             }
//!             _ => Ok(()),
//!         }
//!     },
//! );
//!
//! let report = session.replay(&suite).unwrap();
//! assert_eq!(report.explored, 24); // event grouping: 4 units
//! assert!(!report.violations.is_empty(), "ER-π exposes the bad interleavings");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cancel;
mod checks;
mod constraints;
mod error;
mod executor;
mod faultexec;
mod forensics;
mod incremental;
mod instrument;
mod metrics;
mod misconceptions;
mod pool;
mod profile;
mod report;
mod sanitizer;
mod service;
mod session;
mod subsume;
mod summary;
mod system;
mod time;

pub use cancel::CancelToken;
pub use checks::{Assertion, CheckContext, CrossCheck, CrossContext, TestSuite};
pub use constraints::ConstraintsDir;
pub use error::ErPiError;
pub use executor::{Execution, InlineExecutor, ThreadedExecutor};
pub use forensics::{
    explain_violation, DigestSource, DivergencePoint, ForensicBundle, ForensicStep, Provenance,
};
pub use incremental::{CheckpointTrie, IncrementalExecutor, DEFAULT_CACHE_BUDGET};
pub use metrics::SessionMetrics;
pub use misconceptions::{misconception, Misconception};
pub use pool::{ReplayPool, DEFAULT_CHUNK_SIZE};
pub use profile::{CacheStats, FailureStats, ReplicaLoad, ResourceProfile, WorkerLoad};
pub use report::{Report, RunRecord, Violation};
pub use sanitizer::{IndependenceViolation, SanitizerReport};
pub use service::ExecutorService;
pub use session::{LiveSystem, Session};
pub use summary::{PrunerRow, SessionSummary};
pub use system::{OpOutcome, SystemModel};
pub use time::TimeModel;

// Re-export the neighbours users need at the API boundary.
pub use er_pi_analysis::{
    analyze, certify_table, certify_table_with, validate_independence, validate_table, CertBounds,
    CertClaim, CertSummary, CertWitness, CertifiedTable, Diagnostic, LintPattern, TraceAnalysis,
    Verdict,
};
pub use er_pi_interleave::{
    enumerate_plans, ExploreMode, FailedOpsRule, FaultProduct, FaultSpace, FilterTimings,
    PruningConfig,
};
pub use er_pi_model::{FaultEvent, FaultKind, FaultPlan};
/// The structured telemetry layer (sinks, progress, trace export) — see
/// [`Session::set_telemetry`].
pub use er_pi_telemetry as telemetry;

//! State-hash subsumption: the campaign-wide explored-set that lets replay
//! short-circuit any run whose remaining work an earlier run already did.
//!
//! The four ER-π pruners and the sleep-set filter reason about *schedules*;
//! subsumption reasons about *states*. Two interleavings that permute only
//! commuting events converge to the same replica states a step or two past
//! their divergence point — from there on they are the same computation. The
//! [`SubsumeSet`] records, for every depth of every executed run, the key
//!
//! ```text
//! (state digest, fault-context digest, remaining-suffix hash, depth)
//! ```
//!
//! together with a memo of that run's full outcome vector and final states.
//! When a later run reaches an already-recorded key, its tail is *stitched*
//! from the memo instead of executed: by determinism of
//! [`SystemModel::apply`](crate::SystemModel::apply), equal states + equal
//! fault context + the same remaining event sequence at the same positions
//! must reproduce exactly the memoized outcomes and final states, so the
//! stitched run is byte-identical to what execution would have produced —
//! the violation set cannot change (DESIGN.md §15).
//!
//! Soundness rests on [`SystemModel::state_encode`] being *faithful*: equal
//! encodings must imply behaviorally identical states. Models decline by
//! default (subsumption is then silently inert), and the
//! `ER_PI_SUBSUME_AUDIT=1` mode re-executes every would-be-subsumed tail
//! and fails loudly on either a 128-bit digest collision or an unfaithful
//! encoding.

use std::collections::hash_map::Entry as MapEntry;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::OpOutcome;

/// The explored-set key: everything that determines a run's remaining
/// behavior at a given depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct SubsumeKey {
    /// 128-bit digest over all replicas' canonical state encodings
    /// ([`SystemModel::state_digest`](crate::SystemModel::state_digest)).
    pub state: u128,
    /// Digest of the fault context: the plan plus the interpreter's live
    /// partitions and outstanding delayed effects
    /// (`FaultInterpreter::pending_digest`).
    pub faults: u64,
    /// Hash of the remaining `(event, fault-anchor digest)` suffix, in
    /// order.
    pub suffix: u64,
    /// Prefix length already executed. Delayed effects fire at absolute
    /// positions, so the same suffix at a different depth is a different
    /// computation.
    pub depth: u32,
}

/// What an earlier run recorded at some key: its full outcome vector and
/// its final (post-fault-flush) replica states. Shared via `Arc` across the
/// many depths of one run.
#[derive(Debug)]
pub(crate) struct RunMemo<S> {
    /// Outcomes of the donor run, all positions.
    pub outcomes: Vec<OpOutcome>,
    /// Final replica states of the donor run.
    pub states: Vec<S>,
}

#[derive(Debug)]
struct StoredEntry<S> {
    memo: Arc<RunMemo<S>>,
    /// Canonical state bytes at the key's depth — kept only in audit mode,
    /// to distinguish a genuine digest collision from a true hit.
    bytes: Option<Arc<[u8]>>,
}

/// A successful lookup.
#[derive(Debug)]
pub(crate) struct SubsumeHit<S> {
    pub memo: Arc<RunMemo<S>>,
    pub bytes: Option<Arc<[u8]>>,
}

/// The campaign-wide explored-set, shared by every worker of a replay
/// (sequential, pooled, or service-hosted). Thread-safe; by the determinism
/// contract any two inserts under the same key hold equivalent memos, so
/// first-writer-wins is exact, not approximate.
#[derive(Debug)]
pub(crate) struct SubsumeSet<S> {
    map: Mutex<HashMap<SubsumeKey, StoredEntry<S>>>,
    audit: bool,
}

impl<S> SubsumeSet<S> {
    /// Creates an empty set. Audit mode is read from the
    /// `ER_PI_SUBSUME_AUDIT` environment variable (`1` enables it) once,
    /// here — every executor sharing the set sees the same decision.
    pub(crate) fn new() -> Self {
        let audit = std::env::var_os("ER_PI_SUBSUME_AUDIT").is_some_and(|v| v == *"1");
        SubsumeSet {
            map: Mutex::new(HashMap::new()),
            audit,
        }
    }

    /// Returns `true` when `ER_PI_SUBSUME_AUDIT=1` was set at construction.
    pub(crate) fn audit(&self) -> bool {
        self.audit
    }

    /// Looks up `key`, cloning the memo handle out of the lock.
    pub(crate) fn lookup(&self, key: &SubsumeKey) -> Option<SubsumeHit<S>> {
        let map = self.map.lock().expect("subsume set lock");
        map.get(key).map(|e| SubsumeHit {
            memo: Arc::clone(&e.memo),
            bytes: e.bytes.clone(),
        })
    }

    /// Records `memo` under `key`. First writer wins; concurrent inserts
    /// under one key are byte-equivalent by determinism, so dropping the
    /// loser changes nothing observable.
    pub(crate) fn insert(&self, key: SubsumeKey, memo: Arc<RunMemo<S>>, bytes: Option<Arc<[u8]>>) {
        let mut map = self.map.lock().expect("subsume set lock");
        if let MapEntry::Vacant(slot) = map.entry(key) {
            slot.insert(StoredEntry { memo, bytes });
        }
    }

    /// Number of recorded keys (tests / diagnostics).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.map.lock().expect("subsume set lock").len()
    }
}

/// Right-fold suffix hashes for one interleaving: `out[pos]` is a hash of
/// the `(event id, fault-anchor digest)` sequence from `pos` to the end
/// (`out[len]` covers the empty suffix). Computed once per run in O(N).
pub(crate) fn suffix_hashes(il: &er_pi_model::Interleaving) -> Vec<u64> {
    let n = il.len();
    let mut out = vec![0u64; n + 1];
    for pos in (0..n).rev() {
        let id = il.as_slice()[pos];
        let mut item = [0u8; 12];
        item[..4].copy_from_slice(&id.raw().to_le_bytes());
        item[4..].copy_from_slice(&il.faults().digest_at(id).to_le_bytes());
        // FNV-prime right-fold: injective enough for a 64-bit slot of the
        // composite key, and O(1) per position.
        out[pos] = out[pos + 1].wrapping_mul(0x0000_0100_0000_01b3) ^ er_pi_rdl::fnv1a64(&item);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_pi_model::{EventId, Interleaving};

    fn il(ids: &[u32]) -> Interleaving {
        ids.iter().copied().map(EventId::new).collect()
    }

    #[test]
    fn suffix_hashes_depend_on_order_and_position() {
        let a = suffix_hashes(&il(&[0, 1, 2, 3]));
        let b = suffix_hashes(&il(&[1, 0, 2, 3]));
        assert_eq!(a.len(), 5);
        // Divergent prefixes, identical suffixes: the tails agree...
        assert_eq!(a[2..], b[2..]);
        // ...but the full orders differ.
        assert_ne!(a[0], b[0]);
        // The empty suffix is the fixed point.
        assert_eq!(a[4], b[4]);
        assert_eq!(a[4], 0);
    }

    #[test]
    fn suffix_hashes_see_fault_anchors() {
        use er_pi_model::{FaultEvent, FaultKind, FaultPlan};
        let plain = il(&[0, 1, 2]);
        let faulted = il(&[0, 1, 2]).with_faults(FaultPlan::new(vec![FaultEvent::new(
            EventId::new(1),
            FaultKind::Drop,
        )]));
        let a = suffix_hashes(&plain);
        let b = suffix_hashes(&faulted);
        assert_ne!(a[0], b[0]);
        assert_ne!(a[1], b[1], "anchor inside the suffix changes it");
        assert_eq!(a[2], b[2], "anchor before the suffix does not");
    }

    #[test]
    fn set_is_first_writer_wins() {
        let set: SubsumeSet<u32> = SubsumeSet::new();
        let key = SubsumeKey {
            state: 1,
            faults: 2,
            suffix: 3,
            depth: 4,
        };
        assert!(set.lookup(&key).is_none());
        set.insert(
            key,
            Arc::new(RunMemo {
                outcomes: vec![OpOutcome::Applied],
                states: vec![7],
            }),
            None,
        );
        set.insert(
            key,
            Arc::new(RunMemo {
                outcomes: vec![],
                states: vec![9],
            }),
            None,
        );
        let hit = set.lookup(&key).expect("recorded");
        assert_eq!(hit.memo.states, vec![7], "first writer won");
        assert_eq!(set.len(), 1);
    }
}

//! Prefix-sharing incremental replay: the checkpoint trie and the
//! executor that resumes from it.
//!
//! The scratch path ([`InlineExecutor`](crate::InlineExecutor)) re-executes
//! every surviving interleaving from `init_all()` — O(runs · N) event
//! applications. But the lexicographic explorers emit interleavings in an
//! order where adjacent schedules share long common prefixes (the average
//! divergent suffix of a next-permutation stream is `e ≈ 2.72` events,
//! independent of N). The [`CheckpointTrie`] caches cloned replica-state
//! snapshots at prefix nodes; the [`IncrementalExecutor`] walks the trie to
//! the deepest cached prefix of the requested interleaving, clones that
//! snapshot, and applies only the divergent suffix.
//!
//! ## Correctness (DESIGN.md §10)
//!
//! [`SystemModel::apply`] is required to be deterministic in
//! `(states, event)` and `State: Clone` must produce an independent deep
//! copy. Under those two contracts, the state reached by applying events
//! `e₀…e_{d-1}` is a pure function of that prefix — so resuming from a
//! snapshot taken at depth `d` and applying `e_d…e_{N-1}` reaches exactly
//! the state a scratch replay would. Outcomes of the skipped prefix are
//! replayed from the trie (each edge stores the [`OpOutcome`] observed when
//! it was first executed), and simulated time is recomputed from the
//! [`TimeModel`] over the *full* interleaving, so `Execution` — states,
//! outcomes, `sim_us` — is byte-identical to the scratch executor's.
//! `CacheStats::sim_us_saved` separately records how much of that total was
//! never physically re-executed.

use std::sync::Arc;

use er_pi_model::{EventId, Interleaving, Workload};

use crate::faultexec::{Delivery, FaultInterpreter};
use crate::subsume::{suffix_hashes, RunMemo, SubsumeHit, SubsumeKey, SubsumeSet};
use crate::{CacheStats, Execution, OpOutcome, SystemModel, TimeModel};

/// Default snapshot budget for incremental sessions: 64 MiB of
/// [`state_size_hint`](SystemModel::state_size_hint)-accounted state.
///
/// The `state_clone` microbench in `crates/bench` puts a full-workload
/// snapshot of every subject model well under a kilobyte, so 64 MiB keeps
/// every prefix of a 10k-interleaving campaign resident with room to spare
/// while still bounding pathological models.
pub const DEFAULT_CACHE_BUDGET: usize = 64 * 1024 * 1024;

/// A cached set of replica states at some prefix depth.
#[derive(Debug)]
struct Snapshot<S> {
    states: Vec<S>,
    /// Budget charge for this snapshot (Σ `state_size_hint`, at least 1).
    bytes: usize,
    /// Last-use tick for LRU eviction.
    tick: u64,
}

/// One trie node. The edge *into* the node is labelled by `(event, fault
/// digest)`: the node at depth `d` along a path represents the prefix
/// `il[0..d]` *under the faults anchored inside it*, and stores the
/// [`OpOutcome`] that `il[d-1]` produced when first executed.
///
/// The digest is [`FaultPlan::digest_at`](er_pi_model::FaultPlan::digest_at)
/// for the edge's event (0 when no fault anchors there), which makes fault
/// schedules part of the trie key: two plans that agree on every anchor
/// along a prefix deterministically reach the same states there (all
/// derived effects of an anchor — delayed firings, partition windows, crash
/// recovery — occur at or after the anchor's own step), so they may share
/// that prefix's snapshots; plans that disagree diverge at the first
/// differing anchor and never share deeper nodes.
#[derive(Debug)]
struct Node<S> {
    /// Event labelling the edge from the parent (unused for the root).
    event: EventId,
    /// Digest of the faults anchored at `event` under the path's plan.
    digest: u64,
    /// Outcome of applying that event at this prefix (root: placeholder).
    outcome: OpOutcome,
    /// Depth of this node (= prefix length it represents).
    depth: u32,
    /// Child node indices, searched linearly (branching factor ≤ N).
    children: Vec<u32>,
    /// Cached states after the prefix, if not evicted.
    snapshot: Option<Snapshot<S>>,
}

/// A trie over interleaving prefixes caching cloned replica-state
/// snapshots under a memory budget.
///
/// Nodes are created for every prefix ever executed (they are a few dozen
/// bytes each and record the per-edge outcome needed to replay skipped
/// prefixes); only *snapshots* — the cloned `Vec<State>` payloads — are
/// budgeted. When inserting a snapshot would exceed the budget, the
/// least-recently-used snapshot is evicted first, with *deeper* snapshots
/// evicted first on a tick tie (shallow prefixes are shared by more future
/// interleavings, so they are the more valuable residents). A budget of 0
/// disables caching entirely: every run replays from scratch.
#[derive(Debug)]
pub struct CheckpointTrie<S> {
    nodes: Vec<Node<S>>,
    /// Indices of nodes currently holding a snapshot.
    cached: Vec<u32>,
    budget: usize,
    bytes_resident: usize,
    tick: u64,
}

impl<S> CheckpointTrie<S> {
    /// Creates an empty trie with the given snapshot budget in
    /// [`state_size_hint`](SystemModel::state_size_hint)-accounted bytes.
    pub fn new(budget: usize) -> Self {
        CheckpointTrie {
            nodes: vec![Node {
                event: EventId::new(0),
                digest: 0,
                outcome: OpOutcome::Applied,
                depth: 0,
                children: Vec::new(),
                snapshot: None,
            }],
            cached: Vec::new(),
            budget,
            bytes_resident: 0,
            tick: 0,
        }
    }

    /// The configured snapshot budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Bytes of snapshot state currently resident.
    pub fn bytes_resident(&self) -> usize {
        self.bytes_resident
    }

    /// Number of prefix nodes (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the trie holds only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Number of snapshots currently cached.
    pub fn cached_snapshots(&self) -> usize {
        self.cached.len()
    }

    fn child(&self, node: u32, event: EventId, digest: u64) -> Option<u32> {
        self.nodes[node as usize]
            .children
            .iter()
            .copied()
            .find(|&c| {
                let child = &self.nodes[c as usize];
                child.event == event && child.digest == digest
            })
    }

    fn child_or_insert(
        &mut self,
        node: u32,
        event: EventId,
        digest: u64,
        outcome: OpOutcome,
    ) -> u32 {
        if let Some(existing) = self.child(node, event, digest) {
            debug_assert_eq!(
                self.nodes[existing as usize].outcome, outcome,
                "non-deterministic SystemModel::apply at a shared prefix"
            );
            return existing;
        }
        let idx = self.nodes.len() as u32;
        let depth = self.nodes[node as usize].depth + 1;
        self.nodes.push(Node {
            event,
            digest,
            outcome,
            depth,
            children: Vec::new(),
            snapshot: None,
        });
        self.nodes[node as usize].children.push(idx);
        idx
    }

    /// Stores `states` as the snapshot at `node`, evicting LRU snapshots
    /// if the budget is exceeded. A zero budget (or a snapshot larger than
    /// the whole budget) skips the insert.
    fn store<M>(&mut self, model: &M, node: u32, states: &[S])
    where
        S: Clone,
        M: SystemModel<State = S>,
    {
        if self.budget == 0 || self.nodes[node as usize].snapshot.is_some() {
            return;
        }
        let bytes = states
            .iter()
            .map(|s| model.state_size_hint(s))
            .sum::<usize>()
            .max(1);
        if bytes > self.budget {
            return;
        }
        self.tick += 1;
        self.nodes[node as usize].snapshot = Some(Snapshot {
            states: states.to_vec(),
            bytes,
            tick: self.tick,
        });
        self.cached.push(node);
        self.bytes_resident += bytes;
        self.evict_to_budget();
    }

    /// Evicts least-recently-used snapshots until within budget. Tick ties
    /// break toward the *deeper* node: shallow prefixes front more of the
    /// remaining enumeration, so they stay resident longer.
    fn evict_to_budget(&mut self) {
        while self.bytes_resident > self.budget && !self.cached.is_empty() {
            let victim_pos = self
                .cached
                .iter()
                .enumerate()
                .min_by_key(|(_, &n)| {
                    let node = &self.nodes[n as usize];
                    let snap = node.snapshot.as_ref().expect("cached node has snapshot");
                    (snap.tick, u32::MAX - node.depth)
                })
                .map(|(pos, _)| pos)
                .expect("non-empty cached list");
            let victim = self.cached.swap_remove(victim_pos);
            let snap = self.nodes[victim as usize]
                .snapshot
                .take()
                .expect("victim holds a snapshot");
            self.bytes_resident -= snap.bytes;
        }
    }

    /// Walks `il` from the root, returning the path of node indices
    /// (`path[d]` is the node representing `il[0..d]`) up to the deepest
    /// prefix already present in the trie.
    fn walk(&self, il: &Interleaving) -> Vec<u32> {
        let mut path = Vec::with_capacity(il.len() + 1);
        path.push(0u32);
        let mut cur = 0u32;
        for &id in il.iter() {
            match self.child(cur, id, il.faults().digest_at(id)) {
                Some(next) => {
                    cur = next;
                    path.push(next);
                }
                None => break,
            }
        }
        path
    }

    /// Clones the snapshot at `node` (refreshing its LRU tick), if present.
    fn resume(&mut self, node: u32) -> Option<Vec<S>>
    where
        S: Clone,
    {
        self.tick += 1;
        let tick = self.tick;
        let snap = self.nodes[node as usize].snapshot.as_mut()?;
        snap.tick = tick;
        Some(snap.states.clone())
    }
}

/// Replays interleavings by resuming from the deepest cached common prefix
/// in a [`CheckpointTrie`], applying only the divergent suffix.
///
/// Produces [`Execution`]s byte-identical to
/// [`InlineExecutor`](crate::InlineExecutor) — states, outcomes and
/// `sim_us` — for any eviction schedule; the differential-equivalence
/// harness (`tests/incremental_equivalence.rs`, `tests/incremental_props.rs`)
/// pins this. Each executor owns its trie, so pooled replay gives one to
/// each worker; the chunked dispenser keeps each worker's stream
/// prefix-coherent.
#[derive(Debug)]
pub struct IncrementalExecutor<M: SystemModel> {
    trie: CheckpointTrie<M::State>,
    stats: CacheStats,
    last_resume_depth: usize,
    last_run_subsumed: bool,
    /// The campaign-wide explored-set, when state-hash subsumption is on.
    subsume: Option<Arc<SubsumeSet<M::State>>>,
    /// Whether the model supports a faithful state encoding — probed once
    /// per executor on the first run (`None` = not yet probed).
    subsume_supported: Option<bool>,
}

impl<M: SystemModel> IncrementalExecutor<M> {
    /// Creates an executor with an empty trie and the given snapshot
    /// budget (see [`DEFAULT_CACHE_BUDGET`]).
    pub fn new(budget: usize) -> Self {
        IncrementalExecutor {
            trie: CheckpointTrie::new(budget),
            stats: CacheStats::default(),
            last_resume_depth: 0,
            last_run_subsumed: false,
            subsume: None,
            subsume_supported: None,
        }
    }

    /// Attaches the campaign's shared explored-set; subsequent runs may be
    /// short-circuited by subsumption (and feed the set). Inert when the
    /// model declines [`SystemModel::state_encode`].
    pub(crate) fn enable_subsumption(&mut self, set: Arc<SubsumeSet<M::State>>) {
        self.subsume = Some(set);
    }

    /// The prefix depth the most recent [`IncrementalExecutor::execute`]
    /// resumed from (0 = scratch replay). Telemetry reads this to attribute
    /// each run as a cache hit or miss.
    pub fn last_resume_depth(&self) -> usize {
        self.last_resume_depth
    }

    /// Whether the most recent run was short-circuited (or, in audit mode,
    /// verified) by state-hash subsumption.
    pub fn last_run_subsumed(&self) -> bool {
        self.last_run_subsumed
    }

    /// The cache counters so far. `bytes_resident` reflects the trie's
    /// current occupancy; the other fields are cumulative.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            bytes_resident: self.trie.bytes_resident(),
            ..self.stats
        }
    }

    /// The underlying trie (inspection / tests).
    pub fn trie(&self) -> &CheckpointTrie<M::State> {
        &self.trie
    }

    /// Executes `il`, resuming from the deepest cached prefix.
    ///
    /// The returned [`Execution`] is byte-identical to
    /// [`InlineExecutor::execute`](crate::InlineExecutor::execute): the
    /// reported `sim_us` still charges `reset_cost_us` plus every event's
    /// cost (a rewind *is* a state reset, and skipped prefix events are
    /// charged as if replayed); [`CacheStats::sim_us_saved`] records the
    /// portion that was never physically re-executed.
    pub fn execute(
        &mut self,
        model: &M,
        workload: &Workload,
        il: &Interleaving,
        time: &TimeModel,
    ) -> Execution<M::State> {
        let path = self.trie.walk(il);
        // Deepest node on the path still holding a snapshot.
        let resume_depth = (0..path.len())
            .rev()
            .find(|&d| d > 0 && self.trie.nodes[path[d] as usize].snapshot.is_some())
            .unwrap_or(0);
        self.last_resume_depth = resume_depth;

        let mut outcomes = Vec::with_capacity(il.len());
        let mut sim_us = time.reset_cost_us;
        let mut saved_us = 0u64;
        for (pos, &id) in il.iter().enumerate() {
            let cost = time.event_cost_us(workload.event(id));
            sim_us += cost;
            if pos < resume_depth {
                saved_us += cost;
            }
        }

        let mut states = if resume_depth > 0 {
            self.stats.hits += 1;
            self.stats.events_saved += resume_depth as u64;
            self.stats.sim_us_saved += saved_us;
            for &node in &path[1..=resume_depth] {
                outcomes.push(self.trie.nodes[node as usize].outcome.clone());
            }
            self.trie
                .resume(path[resume_depth])
                .expect("resume depth points at a cached snapshot")
        } else {
            self.stats.misses += 1;
            model.init_all()
        };

        // Rebuild the fault interpreter's bookkeeping (partition topology,
        // outstanding delayed effects) as of the resume depth; the snapshot
        // states already contain everything the skipped prefix did.
        let mut faults = FaultInterpreter::new(il.faults());
        faults.fast_forward(workload, il.as_slice(), resume_depth);

        // Subsumption bookkeeping. The probe runs at the resume depth
        // (states come straight from the snapshot — a hit costs zero event
        // applications) and again after every applied suffix step: two
        // orders that permute only commuting events coincide a step or two
        // *past* their divergence point, so the resume-depth probe alone
        // would miss nearly every hit.
        self.last_run_subsumed = false;
        if self.subsume.is_some() && self.subsume_supported.is_none() {
            self.subsume_supported = Some(model.state_digest(&model.init_all()).is_some());
        }
        let n = il.len();
        let sub: Option<&SubsumeSet<M::State>> = match self.subsume_supported {
            Some(true) => self.subsume.as_deref(),
            _ => None,
        };
        let suffixes = sub.map(|_| suffix_hashes(il));
        let mut pending: Vec<(SubsumeKey, Option<Arc<[u8]>>)> = Vec::new();
        // In audit mode a hit does not short-circuit: the tail executes
        // anyway and is compared against the memo at the end of the run.
        let mut audit_hit: Option<(usize, SubsumeHit<M::State>)> = None;
        let mut stitched_at: Option<usize> = None;

        let mut probe = |states: &[M::State],
                         faults: &FaultInterpreter<'_>,
                         depth: usize|
         -> Option<SubsumeHit<M::State>> {
            let set = sub?;
            if depth >= n {
                return None;
            }
            let digest = model.state_digest(states)?;
            let bytes: Option<Arc<[u8]>> = if set.audit() {
                encode_states(model, states).map(Arc::from)
            } else {
                None
            };
            let key = SubsumeKey {
                state: digest,
                faults: faults.pending_digest(),
                suffix: suffixes.as_ref().expect("suffixes computed with sub")[depth],
                depth: depth as u32,
            };
            if let Some(hit) = set.lookup(&key) {
                if let (Some(a), Some(b)) = (&bytes, &hit.bytes) {
                    assert!(
                        a == b,
                        "ER_PI_SUBSUME_AUDIT: 128-bit digest collision at depth {depth}: \
                         distinct canonical states share digest {digest:#034x}"
                    );
                }
                return Some(hit);
            }
            pending.push((key, bytes));
            None
        };

        if let Some(hit) = probe(&states, &faults, resume_depth) {
            if self.subsume.as_deref().is_some_and(SubsumeSet::audit) {
                audit_hit = Some((resume_depth, hit));
            } else {
                outcomes.extend_from_slice(&hit.memo.outcomes[resume_depth..]);
                states = hit.memo.states.clone();
                stitched_at = Some(resume_depth);
            }
        }

        if stitched_at.is_none() {
            let mut cur = path[resume_depth];
            for (pos, &id) in il.iter().enumerate().skip(resume_depth) {
                let event = workload.event(id);
                faults.begin_step(model, &mut states, event);
                let outcome = match faults.delivery(event, pos) {
                    Delivery::Normal => {
                        let out = model.apply(&mut states, event);
                        if faults.duplicate(event) {
                            let _ = model.apply(&mut states, event);
                        }
                        out
                    }
                    other => FaultInterpreter::faulted_outcome(other),
                };
                cur =
                    self.trie
                        .child_or_insert(cur, id, il.faults().digest_at(id), outcome.clone());
                outcomes.push(outcome);
                // Delayed effects due at this step land before the snapshot, so
                // a stored prefix is the full deterministic function of its
                // `(events, anchored faults)` path.
                faults.end_step(model, &mut states, workload, pos);
                // Snapshot every interior prefix we just reached; the final
                // depth is never resumed from (a repeat of the same
                // interleaving resumes at N-1 and re-applies the last event),
                // and the end-of-run fault flush below therefore never leaks
                // into a cached snapshot.
                if pos + 1 < il.len() {
                    self.trie.store(model, cur, &states);
                }
                if audit_hit.is_none() {
                    if let Some(hit) = probe(&states, &faults, pos + 1) {
                        if self.subsume.as_deref().is_some_and(SubsumeSet::audit) {
                            audit_hit = Some((pos + 1, hit));
                        } else {
                            outcomes.extend_from_slice(&hit.memo.outcomes[pos + 1..]);
                            states = hit.memo.states.clone();
                            stitched_at = Some(pos + 1);
                            break;
                        }
                    }
                }
            }
            if stitched_at.is_none() {
                faults.finish(model, &mut states, workload);
            }
        }

        if let Some((depth, hit)) = audit_hit {
            assert_eq!(
                &outcomes[depth..],
                &hit.memo.outcomes[depth..],
                "ER_PI_SUBSUME_AUDIT: false subsumption at depth {depth}: \
                 executed outcomes diverge from the memoized run"
            );
            assert_eq!(
                encode_states(model, &states),
                encode_states(model, &hit.memo.states),
                "ER_PI_SUBSUME_AUDIT: false subsumption at depth {depth}: \
                 final states diverge from the memoized run"
            );
            stitched_at = Some(depth);
        }
        if let Some(depth) = stitched_at {
            self.stats.subsumed += 1;
            self.stats.subsume_events_saved += (n - depth) as u64;
            self.last_run_subsumed = true;
        }
        if let Some(set) = sub {
            if !pending.is_empty() {
                // The run's full outcome vector and final states are now
                // known (executed, stitched, or audit-verified — all
                // byte-identical by determinism): every depth probed as a
                // miss becomes a donor entry, shared through one memo.
                let memo = Arc::new(RunMemo {
                    outcomes: outcomes.clone(),
                    states: states.clone(),
                });
                for (key, bytes) in pending {
                    set.insert(key, Arc::clone(&memo), bytes);
                }
            }
        }

        Execution {
            states,
            outcomes,
            sim_us,
        }
    }
}

/// Concatenates every replica's canonical encoding, each length-prefixed so
/// adjacent replicas can never alias — the byte string whose digest is
/// [`SystemModel::state_digest`]'s default. Audit mode stores and compares
/// these bytes to tell digest collisions from honest hits. `None` when the
/// model declines encoding.
fn encode_states<M: SystemModel>(model: &M, states: &[M::State]) -> Option<Vec<u8>> {
    let mut buf = Vec::new();
    for state in states {
        let at = buf.len();
        buf.extend_from_slice(&[0u8; 8]);
        if !model.state_encode(state, &mut buf) {
            return None;
        }
        let len = (buf.len() - at - 8) as u64;
        buf[at..at + 8].copy_from_slice(&len.to_le_bytes());
    }
    Some(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InlineExecutor;
    use er_pi_model::{Event, EventKind, ReplicaId, Value};

    /// Heap-owning state so `Clone` independence actually matters.
    struct LogModel;

    impl SystemModel for LogModel {
        type State = Vec<i64>;

        fn replicas(&self) -> usize {
            2
        }

        fn init(&self, _replica: ReplicaId) -> Vec<i64> {
            Vec::new()
        }

        fn apply(&self, states: &mut [Vec<i64>], event: &Event) -> OpOutcome {
            if let EventKind::LocalUpdate { op } = &event.kind {
                let v = op.arg(0).and_then(Value::as_int).unwrap_or(-1);
                states[event.replica.index()].push(v);
                if v % 3 == 0 {
                    return OpOutcome::failed("multiple of three");
                }
            }
            OpOutcome::Applied
        }

        fn observe(&self, state: &Vec<i64>) -> Value {
            state.iter().copied().collect()
        }

        fn state_size_hint(&self, state: &Vec<i64>) -> usize {
            state.len() * std::mem::size_of::<i64>() + std::mem::size_of::<Vec<i64>>()
        }
    }

    fn workload(n: i64) -> Workload {
        let mut w = Workload::builder();
        for i in 0..n {
            w.update(ReplicaId::new((i % 2) as u16), "op", [Value::from(i)]);
        }
        w.build()
    }

    fn lexicographic_orders(n: u32) -> Vec<Interleaving> {
        // All permutations of 0..n in lexicographic order.
        fn recurse(prefix: &mut Vec<u32>, rest: &[u32], out: &mut Vec<Interleaving>) {
            if rest.is_empty() {
                out.push(prefix.iter().copied().map(EventId::new).collect());
                return;
            }
            for (i, &x) in rest.iter().enumerate() {
                let mut next: Vec<u32> = rest.to_vec();
                next.remove(i);
                prefix.push(x);
                recurse(prefix, &next, out);
                prefix.pop();
            }
        }
        let mut out = Vec::new();
        recurse(&mut Vec::new(), &(0..n).collect::<Vec<_>>(), &mut out);
        out
    }

    fn assert_matches_inline(budget: usize, n: u32) -> CacheStats {
        let w = workload(n as i64);
        let time = TimeModel::paper_setup();
        let mut exec = IncrementalExecutor::<LogModel>::new(budget);
        for il in lexicographic_orders(n) {
            let scratch = InlineExecutor::execute(&LogModel, &w, &il, &time);
            let inc = exec.execute(&LogModel, &w, &il, &time);
            assert_eq!(scratch.states, inc.states, "states diverged on {il}");
            assert_eq!(scratch.outcomes, inc.outcomes, "outcomes diverged on {il}");
            assert_eq!(scratch.sim_us, inc.sim_us, "sim_us diverged on {il}");
        }
        exec.stats()
    }

    #[test]
    fn matches_inline_over_all_permutations() {
        let stats = assert_matches_inline(DEFAULT_CACHE_BUDGET, 5);
        // 120 runs; the first permutation of each depth-1 block (5 of
        // them) necessarily misses, everything else resumes from a
        // cached prefix.
        assert_eq!(stats.misses, 5);
        assert_eq!(stats.hits, 115);
        assert!(stats.events_saved > 0);
        assert!(stats.sim_us_saved > 0);
        assert!(stats.bytes_resident > 0);
    }

    #[test]
    fn zero_budget_is_scratch() {
        let stats = assert_matches_inline(0, 4);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 24);
        assert_eq!(stats.events_saved, 0);
        assert_eq!(stats.bytes_resident, 0);
    }

    #[test]
    fn tiny_budget_still_byte_identical() {
        // Room for roughly one snapshot: constant eviction churn.
        let stats = assert_matches_inline(64, 5);
        assert_eq!(stats.hits + stats.misses, 120);
    }

    #[test]
    fn repeat_of_same_interleaving_resumes_at_depth_n_minus_one() {
        let w = workload(6);
        let time = TimeModel::paper_setup();
        let il = w.recorded_order();
        let mut exec = IncrementalExecutor::<LogModel>::new(DEFAULT_CACHE_BUDGET);
        exec.execute(&LogModel, &w, &il, &time);
        let before = exec.stats();
        let again = exec.execute(&LogModel, &w, &il, &time);
        let after = exec.stats();
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.events_saved, before.events_saved + 5);
        let scratch = InlineExecutor::execute(&LogModel, &w, &il, &time);
        assert_eq!(scratch.sim_us, again.sim_us);
        assert_eq!(scratch.states, again.states);
    }

    #[test]
    fn eviction_prefers_older_then_deeper() {
        let w = workload(3);
        let time = TimeModel::paper_setup();
        let orders = lexicographic_orders(3);
        // Budget sized from real hints so at least one eviction happens.
        let mut exec = IncrementalExecutor::<LogModel>::new(2 * 80);
        for il in &orders {
            exec.execute(&LogModel, &w, il, &time);
        }
        let trie = exec.trie();
        assert!(trie.bytes_resident() <= trie.budget());
        assert!(trie.cached_snapshots() > 0);
    }

    #[test]
    fn matches_inline_across_fault_plans_sharing_one_trie() {
        use er_pi_model::{FaultEvent, FaultKind, FaultPlan};
        let w = workload(4);
        let time = TimeModel::paper_setup();
        let ids: Vec<EventId> = w.event_ids().collect();
        let plans = vec![
            FaultPlan::empty(),
            FaultPlan::new(vec![FaultEvent::new(ids[1], FaultKind::Drop)]),
            FaultPlan::new(vec![FaultEvent::new(ids[1], FaultKind::Duplicate)]),
            FaultPlan::new(vec![FaultEvent::new(ids[0], FaultKind::Delay { by: 2 })]),
            FaultPlan::new(vec![FaultEvent::new(
                ids[2],
                FaultKind::CrashRestart {
                    replica: ReplicaId::new(0),
                },
            )]),
        ];
        // One trie serves the whole product (plan-minor, like the session's
        // fault product explorer): every execution must stay byte-identical
        // to scratch replay even though plans interleave in the cache.
        let mut exec = IncrementalExecutor::<LogModel>::new(DEFAULT_CACHE_BUDGET);
        for base in lexicographic_orders(4) {
            for plan in &plans {
                let il = base.clone().with_faults(plan.clone());
                let scratch = InlineExecutor::execute(&LogModel, &w, &il, &time);
                let inc = exec.execute(&LogModel, &w, &il, &time);
                assert_eq!(scratch.states, inc.states, "states diverged on {il}");
                assert_eq!(scratch.outcomes, inc.outcomes, "outcomes diverged on {il}");
                assert_eq!(scratch.sim_us, inc.sim_us, "sim_us diverged on {il}");
            }
        }
        let stats = exec.stats();
        assert!(stats.hits > 0, "fault product still shares prefixes");
    }

    #[test]
    fn snapshot_clone_is_independent() {
        // Mutating states after a run must not corrupt cached snapshots:
        // replay the same interleaving twice and a scrambled one in between.
        let w = workload(4);
        let time = TimeModel::paper_setup();
        let mut exec = IncrementalExecutor::<LogModel>::new(DEFAULT_CACHE_BUDGET);
        let a = w.recorded_order();
        let b: Interleaving = [3u32, 2, 1, 0].into_iter().map(EventId::new).collect();
        let first = exec.execute(&LogModel, &w, &a, &time);
        drop(first);
        exec.execute(&LogModel, &w, &b, &time);
        let again = exec.execute(&LogModel, &w, &a, &time);
        let scratch = InlineExecutor::execute(&LogModel, &w, &a, &time);
        assert_eq!(scratch.states, again.states);
        assert_eq!(scratch.outcomes, again.outcomes);
    }
}

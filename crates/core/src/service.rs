//! The shared replay executor: one process-wide worker pool multiplexing
//! many concurrent campaigns.
//!
//! [`ReplayPool`](crate::ReplayPool) spawns scoped threads per replay —
//! the right shape for one session, the wrong one for a daemon running
//! many. [`ExecutorService`] lifts the pool's scheduling discipline into
//! long-lived threads shared by every campaign in the process:
//!
//! * each campaign keeps its own [`IndexedSource`] dispenser, so the
//!   exploration indices — and therefore the merged, deterministic result
//!   — are exactly what a private pool (or the sequential loop) would
//!   produce, no matter how many campaigns are co-scheduled;
//! * worker threads always serve the oldest campaign of the most urgent
//!   priority (`(priority, submission)` order — FIFO within a priority
//!   band), claiming contiguous chunks of the campaign's configured size
//!   ([`DEFAULT_CHUNK_SIZE`](crate::DEFAULT_CHUNK_SIZE) by default) exactly like
//!   the pool, with per-`(campaign, slot)` checkpoint tries so incremental
//!   prefix locality survives the multiplexing;
//! * cancellation is cooperative and per-campaign: a tripped
//!   [`CancelToken`] stops that campaign at its next chunk boundary
//!   ([`ErPiError::Cancelled`], partial results discarded) without
//!   disturbing anything co-scheduled — the contract behind the campaign
//!   server's `DELETE /campaigns/:id`.
//!
//! Campaigns are submitted through
//! [`Session::replay_on`](crate::Session::replay_on), which blocks the
//! *submitting* thread until the service finishes the campaign — the
//! service parallelizes runs within and across campaigns, not the
//! submitters themselves.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use er_pi_interleave::IndexedSource;
use er_pi_model::{Interleaving, Workload};
use er_pi_telemetry::{worker_track, Registry};
use parking_lot::{Condvar, Mutex};

use crate::instrument::Instrument;
use crate::metrics::SvcMetrics;
use crate::pool::{execute_one, panic_message, PoolOutput, WorkerRun, NO_VIOLATION};
use crate::subsume::SubsumeSet;
use crate::{
    CacheStats, CancelToken, ErPiError, IncrementalExecutor, ReplayPool, SystemModel, TestSuite,
    TimeModel, Violation, WorkerLoad,
};

/// Everything a campaign ships to the service besides its exploration
/// source: the cloned model, workload, suite, and replay knobs.
pub(crate) struct CampaignParams<M: SystemModel> {
    pub model: M,
    pub workload: Workload,
    pub time: TimeModel,
    pub suite: TestSuite<M::State>,
    pub stop_on_first_violation: bool,
    pub incremental_budget: Option<usize>,
    /// The campaign-wide explored-set for state-hash subsumption, shared
    /// by every slot's executor (`None` when subsumption is off).
    pub subsume: Option<Arc<SubsumeSet<M::State>>>,
    /// Dispenser claim granularity, in interleavings (min 1).
    pub chunk_size: usize,
    pub instrument: Instrument,
    pub cancel: Option<CancelToken>,
}

/// What the worker threads see of a campaign: claim-and-execute one chunk,
/// or abort. Type-erased so campaigns over different models share a queue.
trait ServiceJob: Send + Sync {
    /// Scheduling key: `(priority, submission sequence)` — lower first.
    fn order_key(&self) -> (u8, u64);
    /// Claims and executes one chunk on worker `slot`. Returns `true` when
    /// the campaign will never hand out another chunk (drained, stopped,
    /// or cancelled) and should leave the queue. `metrics` is the
    /// service's shared latency histograms, when a registry is attached.
    fn run_chunk(&self, slot: usize, metrics: Option<&SvcMetrics>) -> bool;
    /// Fulfils the campaign as cancelled (service shutdown path).
    fn abort(&self);
}

/// The state guarded by the campaign's dispenser lock: the indexed source
/// plus the bookkeeping that decides who finalizes.
struct DispState<I> {
    /// `Some` until the submitter harvests it back after completion.
    source: Option<IndexedSource<I>>,
    /// Chunks claimed but not yet fully executed.
    inflight: usize,
    /// No further chunks will ever be claimed.
    exhausted: bool,
    /// The campaign's own [`CancelToken`] tripped at a chunk boundary.
    ext_cancelled: bool,
}

/// One queued campaign: the pool's shared-state machinery (sink, lowest
/// violation, panic note, per-slot executors) reified into a long-lived
/// object instead of scoped-thread captures.
struct CampaignTask<M: SystemModel, I> {
    params: CampaignParams<M>,
    priority: u8,
    seq: u64,
    disp: Mutex<DispState<I>>,
    sink: Mutex<Vec<WorkerRun>>,
    lowest_violation: AtomicUsize,
    /// Internal stop: a violation under stop-on-first, or a model panic.
    stop: AtomicBool,
    panicked: Mutex<Option<String>>,
    /// Per-slot incremental executors, taken out for the duration of a
    /// chunk and put back — the service's equivalent of the pool's
    /// one-trie-per-worker locality.
    executors: Mutex<BTreeMap<usize, IncrementalExecutor<M>>>,
    loads: Mutex<BTreeMap<usize, WorkerLoad>>,
    finalized: AtomicBool,
    done: Mutex<Option<Result<PoolOutput, ErPiError>>>,
    done_cv: Condvar,
}

impl<M, I> CampaignTask<M, I>
where
    M: SystemModel + Send + Sync,
    M::State: Send + Sync,
    I: Iterator<Item = Interleaving> + Send,
{
    /// Finalizes the campaign if every claimed chunk has completed and no
    /// more will be claimed. Called under the dispenser lock, by whichever
    /// worker gets there last — exactly once.
    fn maybe_finalize(&self, disp: &mut DispState<I>) {
        if !disp.exhausted || disp.inflight != 0 {
            return;
        }
        if self.finalized.swap(true, Ordering::AcqRel) {
            return;
        }
        let result = if disp.ext_cancelled {
            // Partial results are discarded wholesale: the caller asked the
            // campaign to stop, not for an answer.
            Err(ErPiError::Cancelled)
        } else if let Some(what) = self.panicked.lock().take() {
            Err(ErPiError::ExecutorPanic(what))
        } else {
            Ok(self.merge())
        };
        *self.done.lock() = Some(result);
        self.done_cv.notify_all();
    }

    /// The pool's merge, verbatim: sort by exploration index, truncate at
    /// the lowest violation under stop-on-first, sum the rest.
    fn merge(&self) -> PoolOutput {
        let mut produced = std::mem::take(&mut *self.sink.lock());
        produced.sort_unstable_by_key(|run| run.index);

        let lowest = self.lowest_violation.load(Ordering::Acquire);
        let cancelled = self.params.stop_on_first_violation && lowest != NO_VIOLATION;
        if cancelled {
            produced.truncate(lowest + 1);
        }

        let mut runs = Vec::with_capacity(produced.len());
        let mut violations = Vec::new();
        let mut sim_us = 0u64;
        for run in produced {
            debug_assert_eq!(run.index, runs.len(), "merged indices must be dense");
            sim_us += run.record.sim_us;
            for (assertion, message) in run.violations {
                violations.push(Violation {
                    run: Some(run.index),
                    assertion,
                    message,
                    interleaving: Some(run.record.interleaving.clone()),
                });
            }
            runs.push(run.record);
        }

        let mut cache_stats: Option<CacheStats> = None;
        for executor in std::mem::take(&mut *self.executors.lock()).into_values() {
            cache_stats
                .get_or_insert_with(CacheStats::default)
                .absorb(&executor.stats());
        }

        PoolOutput {
            runs,
            violations,
            first_violation_at: (lowest != NO_VIOLATION).then_some(lowest),
            sim_us,
            cancelled,
            worker_loads: std::mem::take(&mut *self.loads.lock())
                .into_values()
                .collect(),
            cache_stats,
        }
    }
}

impl<M, I> ServiceJob for CampaignTask<M, I>
where
    M: SystemModel + Send + Sync,
    M::State: Send + Sync,
    I: Iterator<Item = Interleaving> + Send,
{
    fn order_key(&self) -> (u8, u64) {
        (self.priority, self.seq)
    }

    fn run_chunk(&self, slot: usize, metrics: Option<&SvcMetrics>) -> bool {
        // Claim-then-execute under the campaign's own dispenser lock —
        // chunk boundaries are the only places stop flags and the cancel
        // token are honoured, so a claimed chunk always executes in full
        // and the dispensed index range stays dense for the merge.
        let claim_started = metrics.map(|_| std::time::Instant::now());
        let chunk = {
            let mut disp = self.disp.lock();
            if disp.exhausted {
                return true;
            }
            if self
                .params
                .cancel
                .as_ref()
                .is_some_and(CancelToken::is_cancelled)
            {
                disp.ext_cancelled = true;
                disp.exhausted = true;
                self.maybe_finalize(&mut disp);
                return true;
            }
            if self.stop.load(Ordering::Acquire) {
                disp.exhausted = true;
                self.maybe_finalize(&mut disp);
                return true;
            }
            let chunk = disp
                .source
                .as_mut()
                .expect("source stays in place until the campaign completes")
                .next_chunk(self.params.chunk_size.max(1));
            if chunk.is_empty() {
                disp.exhausted = true;
                self.maybe_finalize(&mut disp);
                return true;
            }
            disp.inflight += 1;
            chunk
        };
        if let (Some(metrics), Some(started)) = (metrics, claim_started) {
            metrics
                .claim_wait
                .observe_us(started.elapsed().as_micros() as u64);
        }

        let telemetry = self.params.instrument.telemetry.clone();
        let track = worker_track(slot);
        // Take the slot's trie out for the whole chunk; another slot
        // serving this campaign concurrently uses its own.
        let mut executor = self.executors.lock().remove(&slot).or_else(|| {
            match (self.params.incremental_budget, &self.params.subsume) {
                (None, None) => None,
                (budget, sub) => {
                    let mut e = IncrementalExecutor::<M>::new(budget.unwrap_or(0));
                    if let Some(set) = sub {
                        e.enable_subsumption(Arc::clone(set));
                    }
                    Some(e)
                }
            }
        });

        for (index, il) in chunk {
            let run_started = metrics.map(|_| std::time::Instant::now());
            let executed = catch_unwind(AssertUnwindSafe(|| {
                execute_one(
                    &self.params.model,
                    &self.params.workload,
                    index,
                    il,
                    &self.params.time,
                    &self.params.suite,
                    executor.as_mut(),
                    &telemetry,
                    track,
                )
            }));
            if let (Some(metrics), Some(started)) = (metrics, run_started) {
                metrics
                    .run_latency
                    .observe_us(started.elapsed().as_micros() as u64);
            }
            match executed {
                Ok(run) => {
                    {
                        let mut loads = self.loads.lock();
                        let load = loads.entry(slot).or_insert(WorkerLoad {
                            worker: slot,
                            runs: 0,
                            sim_us: 0,
                        });
                        load.runs += 1;
                        load.sim_us += run.record.sim_us;
                    }
                    if !run.violations.is_empty() {
                        self.lowest_violation.fetch_min(run.index, Ordering::AcqRel);
                        if self.params.stop_on_first_violation {
                            self.stop.store(true, Ordering::Release);
                        }
                    }
                    // As in the pool: no hit/miss attribution from a
                    // zero-budget subsumption-only executor.
                    let cache_hit = self
                        .params
                        .incremental_budget
                        .and_then(|_| executor.as_ref().map(|e| e.last_resume_depth() > 0));
                    let subsumed = executor
                        .as_ref()
                        .is_some_and(IncrementalExecutor::last_run_subsumed);
                    self.params.instrument.run_done(slot, cache_hit, subsumed);
                    self.sink.lock().push(run);
                }
                Err(payload) => {
                    let mut note = self.panicked.lock();
                    if note.is_none() {
                        *note = Some(panic_message(payload.as_ref()));
                    }
                    self.stop.store(true, Ordering::Release);
                    break;
                }
            }
        }

        if let Some(executor) = executor {
            self.executors.lock().insert(slot, executor);
        }

        let mut disp = self.disp.lock();
        disp.inflight -= 1;
        self.maybe_finalize(&mut disp);
        false
    }

    fn abort(&self) {
        let mut disp = self.disp.lock();
        disp.ext_cancelled = true;
        disp.exhausted = true;
        self.maybe_finalize(&mut disp);
    }
}

/// The queue and wake-up machinery shared between the service handle and
/// its worker threads.
struct ServiceCore {
    /// Queued campaigns; scanned for the minimum
    /// [`order_key`](ServiceJob::order_key) on every pick. Campaign counts
    /// are small (a server queue, not a task graph), so a scan beats a
    /// heap that would need re-keying on removal.
    queue: Mutex<Vec<Arc<dyn ServiceJob>>>,
    available: Condvar,
    shutdown: AtomicBool,
    /// Shared latency histograms, when the embedder attached a metric
    /// registry ([`ExecutorService::with_registry`]). Installed before the
    /// workers spawn, immutable after.
    metrics: Option<SvcMetrics>,
}

impl ServiceCore {
    /// The most urgent claimable campaign, if any.
    fn pick(queue: &[Arc<dyn ServiceJob>]) -> Option<Arc<dyn ServiceJob>> {
        queue
            .iter()
            .min_by_key(|job| job.order_key())
            .map(Arc::clone)
    }

    fn worker_loop(&self, slot: usize) {
        loop {
            let job = {
                let mut queue = self.queue.lock();
                loop {
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    if let Some(job) = Self::pick(&queue) {
                        break job;
                    }
                    queue = self.available.wait(queue);
                }
            };
            if job.run_chunk(slot, self.metrics.as_ref()) {
                // The campaign is drained: drop it from the queue. Retain
                // by identity — several slots can discover the drain and
                // the removal must be idempotent.
                self.queue.lock().retain(|j| !Arc::ptr_eq(j, &job));
            }
        }
    }
}

/// A process-wide pool of replay worker threads multiplexing many
/// concurrent campaigns, each submitted with
/// [`Session::replay_on`](crate::Session::replay_on).
///
/// Campaigns are served in `(priority, submission)` order — priority `0`
/// is the most urgent, and within a priority band the service drains
/// campaigns FIFO, ganging every idle worker onto the front campaign (the
/// same chunked dispensing a private [`ReplayPool`] would do, so reports
/// stay byte-identical to standalone replays). Dropping the service joins
/// its threads; campaigns still queued at that point complete with
/// [`ErPiError::Cancelled`] so no submitter is left waiting.
///
/// ```
/// use er_pi::ExecutorService;
///
/// let service = ExecutorService::new(2);
/// assert_eq!(service.workers(), 2);
/// // `Session::replay_on(&service, priority, &suite)` replays campaigns
/// // on it — see the session docs.
/// ```
pub struct ExecutorService {
    core: Arc<ServiceCore>,
    workers: usize,
    seq: AtomicU64,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ExecutorService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutorService")
            .field("workers", &self.workers)
            .field("queued", &self.core.queue.lock().len())
            .finish()
    }
}

impl ExecutorService {
    /// Spawns a service with `workers` threads (`0` means "all available
    /// cores", honouring the `ER_PI_WORKERS` override like
    /// [`ReplayPool::new`]).
    pub fn new(workers: usize) -> Self {
        Self::spawn(workers, None)
    }

    /// Like [`ExecutorService::new`], with service-wide latency histograms
    /// (chunk-claim wait, per-run replay latency) registered into
    /// `registry`. The registry must be attached at construction because
    /// the worker threads capture their observation handles when they
    /// spawn.
    pub fn with_registry(workers: usize, registry: &Registry) -> Self {
        Self::spawn(workers, Some(SvcMetrics::new(registry)))
    }

    fn spawn(workers: usize, metrics: Option<SvcMetrics>) -> Self {
        let workers = if workers == 0 {
            ReplayPool::available_workers()
        } else {
            workers
        };
        let core = Arc::new(ServiceCore {
            queue: Mutex::new(Vec::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            metrics,
        });
        let handles = (0..workers)
            .map(|slot| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("er-pi-svc-{slot}"))
                    .spawn(move || core.worker_loop(slot))
                    .expect("spawn service worker")
            })
            .collect();
        ExecutorService {
            core,
            workers,
            seq: AtomicU64::new(0),
            handles,
        }
    }

    /// The number of worker threads (and therefore concurrent replay
    /// slots) this service multiplexes campaigns over.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Campaigns currently queued or executing.
    pub fn queued(&self) -> usize {
        self.core.queue.lock().len()
    }

    /// Submits one campaign and blocks until the service completes it,
    /// returning the merged output plus the exploration source (for the
    /// session's post-replay counter harvesting).
    ///
    /// # Errors
    ///
    /// [`ErPiError::Cancelled`] if the campaign's token tripped (or the
    /// service shut down) before it finished;
    /// [`ErPiError::ExecutorPanic`] if the model panicked in a worker.
    pub(crate) fn run_campaign<M, I>(
        &self,
        params: CampaignParams<M>,
        source: IndexedSource<I>,
        priority: u8,
    ) -> Result<(PoolOutput, IndexedSource<I>), ErPiError>
    where
        M: SystemModel + Send + Sync + 'static,
        M::State: Send + Sync,
        I: Iterator<Item = Interleaving> + Send + 'static,
    {
        let task = Arc::new(CampaignTask {
            params,
            priority,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            disp: Mutex::new(DispState {
                source: Some(source),
                inflight: 0,
                exhausted: false,
                ext_cancelled: false,
            }),
            sink: Mutex::new(Vec::new()),
            lowest_violation: AtomicUsize::new(NO_VIOLATION),
            stop: AtomicBool::new(false),
            panicked: Mutex::new(None),
            executors: Mutex::new(BTreeMap::new()),
            loads: Mutex::new(BTreeMap::new()),
            finalized: AtomicBool::new(false),
            done: Mutex::new(None),
            done_cv: Condvar::new(),
        });
        {
            let mut queue = self.core.queue.lock();
            queue.push(Arc::clone(&task) as Arc<dyn ServiceJob>);
            self.core.available.notify_all();
        }
        let result = {
            let mut done = task.done.lock();
            while done.is_none() {
                done = task.done_cv.wait(done);
            }
            done.take().expect("checked above")
        };
        let output = result?;
        let source = task
            .disp
            .lock()
            .source
            .take()
            .expect("source is harvested exactly once, after completion");
        Ok((output, source))
    }
}

impl Drop for ExecutorService {
    fn drop(&mut self) {
        self.core.shutdown.store(true, Ordering::Release);
        self.core.available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        // Whatever is still queued will never run: fulfil each campaign as
        // cancelled so no submitter blocks forever.
        for job in std::mem::take(&mut *self.core.queue.lock()) {
            job.abort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Assertion, OpOutcome, Report, TestSuite};
    use er_pi_interleave::DfsExplorer;
    use er_pi_model::{Event, EventKind, ReplicaId, Value};

    /// Integer register per replica; `set(v)` writes, fused sync copies.
    #[derive(Clone)]
    struct RegApp;

    impl SystemModel for RegApp {
        type State = i64;

        fn replicas(&self) -> usize {
            2
        }

        fn init(&self, _replica: ReplicaId) -> i64 {
            0
        }

        fn apply(&self, states: &mut [i64], event: &Event) -> OpOutcome {
            match &event.kind {
                EventKind::LocalUpdate { op } => {
                    states[event.replica.index()] = op.arg(0).and_then(Value::as_int).unwrap_or(0);
                    OpOutcome::Applied
                }
                EventKind::Sync { to, .. } => {
                    states[to.index()] = states[event.replica.index()];
                    OpOutcome::Applied
                }
                _ => OpOutcome::failed("unsupported"),
            }
        }

        fn observe(&self, state: &i64) -> Value {
            Value::from(*state)
        }
    }

    fn two_writes() -> Workload {
        let a = ReplicaId::new(0);
        let b = ReplicaId::new(1);
        let mut w = Workload::builder();
        let w1 = w.update(a, "set", [Value::from(1)]);
        w.sync_pair(a, b, w1);
        let w2 = w.update(b, "set", [Value::from(2)]);
        w.sync_pair(b, a, w2);
        w.build()
    }

    fn params(
        stop_on_first_violation: bool,
        suite: TestSuite<i64>,
        cancel: Option<CancelToken>,
    ) -> CampaignParams<RegApp> {
        CampaignParams {
            model: RegApp,
            workload: two_writes(),
            time: TimeModel::paper_setup(),
            suite,
            stop_on_first_violation,
            incremental_budget: None,
            subsume: None,
            chunk_size: crate::DEFAULT_CHUNK_SIZE,
            instrument: Instrument::disabled(),
            cancel,
        }
    }

    fn dfs_source(w: &Workload) -> IndexedSource<DfsExplorer> {
        IndexedSource::new(DfsExplorer::new(w), usize::MAX)
    }

    #[test]
    fn one_campaign_matches_the_private_pool() {
        let w = two_writes();
        let time = TimeModel::paper_setup();
        let suite = TestSuite::new().with_cross(crate::CrossCheck::new("keep", |_| Ok(())));
        let baseline: Report = ReplayPool::new(1)
            .replay(&RegApp, &w, DfsExplorer::new(&w), &time, &suite, false)
            .unwrap();
        for workers in [1, 2, 4] {
            let service = ExecutorService::new(workers);
            let (out, source) = service
                .run_campaign(params(false, suite.clone(), None), dfs_source(&w), 5)
                .unwrap();
            assert_eq!(out.runs.len(), 24);
            assert_eq!(out.sim_us, baseline.sim_us);
            assert_eq!(
                out.runs.iter().map(|r| &r.interleaving).collect::<Vec<_>>(),
                baseline
                    .runs
                    .iter()
                    .map(|r| &r.interleaving)
                    .collect::<Vec<_>>(),
                "{workers} service workers must preserve exploration order"
            );
            assert!(!source.truncated());
        }
    }

    #[test]
    fn co_scheduled_campaigns_do_not_interfere() {
        let w = two_writes();
        let service = Arc::new(ExecutorService::new(2));
        let suite = TestSuite::new().with(Assertion::replicas_converge("conv"));
        let handles: Vec<_> = (0..3u8)
            .map(|priority| {
                let service = Arc::clone(&service);
                let suite = suite.clone();
                let w = w.clone();
                std::thread::spawn(move || {
                    service
                        .run_campaign(params(true, suite, None), dfs_source(&w), priority)
                        .unwrap()
                })
            })
            .collect();
        let time = TimeModel::paper_setup();
        let baseline = ReplayPool::new(1)
            .replay(&RegApp, &w, DfsExplorer::new(&w), &time, &suite, true)
            .unwrap();
        for handle in handles {
            let (out, _) = handle.join().unwrap();
            assert_eq!(out.first_violation_at, baseline.first_violation_at);
            assert_eq!(out.runs.len(), baseline.explored);
            assert_eq!(out.sim_us, baseline.sim_us);
            assert!(out.cancelled);
        }
        assert_eq!(service.queued(), 0);
    }

    #[test]
    fn a_tripped_token_cancels_only_that_campaign() {
        let w = two_writes();
        let service = ExecutorService::new(2);
        let token = CancelToken::new();
        token.cancel();
        let suite = TestSuite::new();
        let cancelled =
            service.run_campaign(params(false, suite.clone(), Some(token)), dfs_source(&w), 0);
        assert!(matches!(cancelled, Err(ErPiError::Cancelled)));
        // A co-resident campaign without a tripped token still completes.
        let (out, _) = service
            .run_campaign(params(false, suite, None), dfs_source(&w), 0)
            .unwrap();
        assert_eq!(out.runs.len(), 24);
    }

    #[test]
    fn model_panics_surface_without_poisoning_the_service() {
        #[derive(Clone)]
        struct Bomb;
        impl SystemModel for Bomb {
            type State = ();
            fn replicas(&self) -> usize {
                1
            }
            fn init(&self, _r: ReplicaId) {}
            fn apply(&self, _s: &mut [()], _e: &Event) -> OpOutcome {
                panic!("service kaboom");
            }
            fn observe(&self, _s: &()) -> Value {
                Value::Null
            }
        }
        let mut w = Workload::builder();
        w.update(ReplicaId::new(0), "x", [Value::from(1)]);
        w.update(ReplicaId::new(0), "y", [Value::from(2)]);
        let w = w.build();
        let service = ExecutorService::new(2);
        let err = service.run_campaign(
            CampaignParams {
                model: Bomb,
                workload: w.clone(),
                time: TimeModel::paper_setup(),
                suite: TestSuite::new(),
                stop_on_first_violation: false,
                incremental_budget: None,
                subsume: None,
                chunk_size: crate::DEFAULT_CHUNK_SIZE,
                instrument: Instrument::disabled(),
                cancel: None,
            },
            IndexedSource::new(DfsExplorer::new(&w), usize::MAX),
            0,
        );
        match err {
            Err(ErPiError::ExecutorPanic(what)) => assert!(what.contains("service kaboom")),
            other => panic!(
                "expected ExecutorPanic, got {:?}",
                other.map(|(o, _)| o.runs.len())
            ),
        }
        // The service itself survives the panic.
        let good = two_writes();
        let (out, _) = service
            .run_campaign(params(false, TestSuite::new(), None), dfs_source(&good), 0)
            .unwrap();
        assert_eq!(out.runs.len(), 24);
    }

    #[test]
    fn abort_fulfils_the_campaign_as_cancelled() {
        // The shutdown path Drop relies on: aborting a never-picked
        // campaign fulfils it so its submitter cannot block forever.
        let w = two_writes();
        let task = Arc::new(CampaignTask {
            params: params(false, TestSuite::new(), None),
            priority: 0,
            seq: 0,
            disp: Mutex::new(DispState {
                source: Some(dfs_source(&w)),
                inflight: 0,
                exhausted: false,
                ext_cancelled: false,
            }),
            sink: Mutex::new(Vec::new()),
            lowest_violation: AtomicUsize::new(NO_VIOLATION),
            stop: AtomicBool::new(false),
            panicked: Mutex::new(None),
            executors: Mutex::new(BTreeMap::new()),
            loads: Mutex::new(BTreeMap::new()),
            finalized: AtomicBool::new(false),
            done: Mutex::new(None),
            done_cv: Condvar::new(),
        });
        let job: Arc<dyn ServiceJob> = Arc::clone(&task) as Arc<dyn ServiceJob>;
        job.abort();
        let done = task.done.lock().take().expect("abort fulfils the result");
        assert!(matches!(done, Err(ErPiError::Cancelled)));
        // Idempotent: a second abort (e.g. a redundant Drop sweep) is a
        // no-op on the already-finalized campaign.
        job.abort();
        assert!(task.done.lock().is_none(), "taken once, not refilled");
    }

    #[test]
    fn an_idle_service_shuts_down_cleanly() {
        let service = ExecutorService::new(3);
        assert_eq!(service.workers(), 3);
        assert_eq!(service.queued(), 0);
        drop(service); // joins the three idle workers without hanging
    }
}

//! Interleaving executors: fast inline replay and the distributed-lock
//! threaded replay.

use er_pi_dlock::{OrderSequencer, RedisLite};
use er_pi_model::{Interleaving, Workload};
use parking_lot::Mutex;

use crate::faultexec::{Delivery, FaultInterpreter};
use crate::{ErPiError, OpOutcome, SystemModel, TimeModel};

/// The result of executing one interleaving.
#[derive(Debug)]
pub struct Execution<S> {
    /// Final replica states.
    pub states: Vec<S>,
    /// Per-event outcomes, aligned with the interleaving.
    pub outcomes: Vec<OpOutcome>,
    /// Simulated time charged, microseconds.
    pub sim_us: u64,
}

/// Replays interleavings on the current thread — the fast path used for the
/// 10 000-interleaving experiments of §6.3.
#[derive(Debug, Clone, Copy, Default)]
pub struct InlineExecutor;

impl InlineExecutor {
    /// Executes `il` against fresh states of `model`, interpreting the
    /// interleaving's fault schedule deterministically (fault surgery
    /// rearranges state transitions; the simulated-time ledger is unchanged
    /// from fault-free replay).
    pub fn execute<M: SystemModel>(
        model: &M,
        workload: &Workload,
        il: &Interleaving,
        time: &TimeModel,
    ) -> Execution<M::State> {
        Self::execute_stepwise(model, workload, il, time, |_, _, _, _| {})
    }

    /// Like [`InlineExecutor::execute`], invoking `on_step` after every
    /// completed step with `(position, event id, outcome, states)` — the
    /// states as left *after* the step's fault surgery. The closure is
    /// observational only; the default no-op compiles away, so the fast
    /// path is unchanged. Used by the violation flight recorder to capture
    /// per-step state digests without a second executor.
    pub fn execute_stepwise<M, F>(
        model: &M,
        workload: &Workload,
        il: &Interleaving,
        time: &TimeModel,
        mut on_step: F,
    ) -> Execution<M::State>
    where
        M: SystemModel,
        F: FnMut(usize, er_pi_model::EventId, &OpOutcome, &[M::State]),
    {
        let mut states = model.init_all();
        let mut outcomes = Vec::with_capacity(il.len());
        let mut sim_us = time.reset_cost_us;
        let mut faults = FaultInterpreter::new(il.faults());
        for (pos, &id) in il.iter().enumerate() {
            let event = workload.event(id);
            sim_us += time.event_cost_us(event);
            faults.begin_step(model, &mut states, event);
            let outcome = match faults.delivery(event, pos) {
                Delivery::Normal => {
                    let out = model.apply(&mut states, event);
                    if faults.duplicate(event) {
                        let _ = model.apply(&mut states, event);
                    }
                    out
                }
                other => FaultInterpreter::faulted_outcome(other),
            };
            faults.end_step(model, &mut states, workload, pos);
            on_step(pos, id, &outcome, &states);
            outcomes.push(outcome);
        }
        faults.finish(model, &mut states, workload);
        Execution {
            states,
            outcomes,
            sim_us,
        }
    }
}

/// Replays interleavings with one thread per replica, gated by the
/// distributed-lock [`OrderSequencer`] — the faithful reproduction of the
/// paper's §4.3 replay mechanism ("a mutex with a shared key managed by a
/// Redis server, thus effecting the required distributed order").
///
/// Event *i* of the interleaving is ticket *i*; the thread owning the
/// event's replica blocks on the sequencer until every earlier ticket has
/// completed. By construction the executed order is exactly the scheduled
/// one — asserted equivalent to [`InlineExecutor`] in the integration tests.
#[derive(Debug, Default)]
pub struct ThreadedExecutor;

impl ThreadedExecutor {
    /// Executes `il` with one thread per replica.
    ///
    /// # Errors
    ///
    /// Returns [`ErPiError::ExecutorPanic`] if a replica thread panics
    /// (e.g. an assertion inside the model).
    pub fn execute<M>(
        model: &M,
        workload: &Workload,
        il: &Interleaving,
        time: &TimeModel,
    ) -> Result<Execution<M::State>, ErPiError>
    where
        M: SystemModel + Sync,
        M::State: Send,
    {
        let sequencer = OrderSequencer::new(RedisLite::new(), "er-pi-replay");
        let states = Mutex::new(model.init_all());
        let outcomes = Mutex::new(vec![OpOutcome::Applied; il.len()]);
        // The sequencer already imposes the total schedule order, so the
        // fault interpreter can live behind one lock and observe exactly
        // the same step sequence as the inline executor.
        let faults = Mutex::new(FaultInterpreter::new(il.faults()));

        // Partition tickets by owning replica.
        let replica_count = model.replicas();
        let mut tickets_per_replica: Vec<Vec<(u64, er_pi_model::EventId)>> =
            vec![Vec::new(); replica_count];
        for (pos, &id) in il.iter().enumerate() {
            let replica = workload.event(id).replica.index();
            assert!(
                replica < replica_count,
                "event {id} executes at replica {replica}, but the model has {replica_count}"
            );
            tickets_per_replica[replica].push((pos as u64, id));
        }

        // Each replica thread accumulates its own simulated-time partial
        // and returns it through `join`; the partials are then summed in
        // replica order. This keeps the total structurally independent of
        // thread completion order (and off the hot lock), so it is always
        // equal to the inline executor's sum.
        let result: Result<Vec<u64>, String> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for tickets in tickets_per_replica {
                let sequencer = &sequencer;
                let states = &states;
                let outcomes = &outcomes;
                let faults = &faults;
                handles.push(scope.spawn(move || {
                    let mut local_us = 0u64;
                    for (ticket, id) in tickets {
                        sequencer.run_in_order(ticket, || {
                            let event = workload.event(id);
                            let pos = ticket as usize;
                            let mut guard = states.lock();
                            let mut interp = faults.lock();
                            interp.begin_step(model, &mut guard, event);
                            let outcome = match interp.delivery(event, pos) {
                                Delivery::Normal => {
                                    let out = model.apply(&mut guard, event);
                                    if interp.duplicate(event) {
                                        let _ = model.apply(&mut guard, event);
                                    }
                                    out
                                }
                                other => FaultInterpreter::faulted_outcome(other),
                            };
                            outcomes.lock()[pos] = outcome;
                            interp.end_step(model, &mut guard, workload, pos);
                            local_us += time.event_cost_us(event);
                        });
                    }
                    local_us
                }));
            }
            let mut partials = Vec::with_capacity(replica_count);
            for handle in handles {
                partials.push(handle.join().map_err(|e| format!("{e:?}"))?);
            }
            Ok(partials)
        });
        let partials = result.map_err(ErPiError::ExecutorPanic)?;

        let mut final_states = states.into_inner();
        faults
            .into_inner()
            .finish(model, &mut final_states, workload);
        Ok(Execution {
            states: final_states,
            outcomes: outcomes.into_inner(),
            sim_us: time.reset_cost_us + partials.iter().sum::<u64>(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_pi_model::{Event, EventKind, ReplicaId, Value};

    /// A model whose state is the list of op arguments applied, so the
    /// execution order is directly observable.
    struct OrderProbe;

    impl SystemModel for OrderProbe {
        type State = Vec<i64>;

        fn replicas(&self) -> usize {
            3
        }

        fn init(&self, _replica: ReplicaId) -> Vec<i64> {
            Vec::new()
        }

        fn apply(&self, states: &mut [Vec<i64>], event: &Event) -> OpOutcome {
            if let EventKind::LocalUpdate { op } = &event.kind {
                let v = op.arg(0).and_then(Value::as_int).unwrap_or(-1);
                // Record globally (at replica 0) to observe the total order.
                states[0].push(v);
            }
            OpOutcome::Applied
        }

        fn observe(&self, state: &Vec<i64>) -> Value {
            state.iter().copied().collect()
        }
    }

    fn probe_workload() -> Workload {
        let mut w = Workload::builder();
        for i in 0..6i64 {
            w.update(ReplicaId::new((i % 3) as u16), "op", [Value::from(i)]);
        }
        w.build()
    }

    #[test]
    fn inline_executes_in_scheduled_order() {
        let w = probe_workload();
        let mut ids: Vec<er_pi_model::EventId> = w.event_ids().collect();
        ids.reverse();
        let il = Interleaving::new(ids);
        let exec = InlineExecutor::execute(&OrderProbe, &w, &il, &TimeModel::paper_setup());
        assert_eq!(exec.states[0][..6], [5, 4, 3, 2, 1, 0]);
        assert_eq!(exec.outcomes.len(), 6);
        assert!(exec.sim_us > 0);
    }

    #[test]
    fn threaded_matches_inline_exactly() {
        let w = probe_workload();
        let time = TimeModel::paper_setup();
        // A deliberately scrambled order.
        let il: Interleaving = [3u32, 0, 5, 1, 4, 2]
            .into_iter()
            .map(er_pi_model::EventId::new)
            .collect();
        let inline = InlineExecutor::execute(&OrderProbe, &w, &il, &time);
        let threaded = ThreadedExecutor::execute(&OrderProbe, &w, &il, &time).unwrap();
        assert_eq!(inline.states, threaded.states);
        assert_eq!(inline.outcomes, threaded.outcomes);
        assert_eq!(inline.sim_us, threaded.sim_us);

        // Regression: on a multi-sync workload the per-event costs differ
        // per replica (sync vs update, host profiles), so any accounting
        // that depended on thread completion order would drift here. The
        // per-thread partial sums must still equal the inline total.
        let mut mw = Workload::builder();
        let u0 = mw.update(ReplicaId::new(0), "op", [Value::from(0)]);
        mw.sync_pair(ReplicaId::new(0), ReplicaId::new(1), u0);
        let u1 = mw.update(ReplicaId::new(1), "op", [Value::from(1)]);
        mw.sync_pair(ReplicaId::new(1), ReplicaId::new(2), u1);
        let send = mw.sync_send(ReplicaId::new(2), ReplicaId::new(0), Some(u1));
        mw.sync_exec(ReplicaId::new(0), ReplicaId::new(2), send);
        mw.update(ReplicaId::new(2), "op", [Value::from(2)]);
        let mw = mw.build();
        let scrambled: Interleaving = [2u32, 0, 6, 1, 4, 3, 5]
            .into_iter()
            .map(er_pi_model::EventId::new)
            .collect();
        for il in [mw.recorded_order(), scrambled] {
            let inline = InlineExecutor::execute(&OrderProbe, &mw, &il, &time);
            let threaded = ThreadedExecutor::execute(&OrderProbe, &mw, &il, &time).unwrap();
            assert_eq!(inline.sim_us, threaded.sim_us, "sim_us drift on {il}");
            assert_eq!(inline.states, threaded.states);
            assert_eq!(inline.outcomes, threaded.outcomes);
        }
    }

    #[test]
    fn threaded_matches_inline_under_faults() {
        use er_pi_model::{FaultEvent, FaultKind, FaultPlan};
        let w = probe_workload();
        let time = TimeModel::paper_setup();
        let ids: Vec<er_pi_model::EventId> = w.event_ids().collect();
        let plan = FaultPlan::new(vec![
            FaultEvent::new(ids[1], FaultKind::Drop),
            FaultEvent::new(ids[2], FaultKind::Duplicate),
            FaultEvent::new(ids[3], FaultKind::Delay { by: 2 }),
        ]);
        let il = w.recorded_order().with_faults(plan);
        let inline = InlineExecutor::execute(&OrderProbe, &w, &il, &time);
        let threaded = ThreadedExecutor::execute(&OrderProbe, &w, &il, &time).unwrap();
        assert_eq!(inline.states, threaded.states);
        assert_eq!(inline.outcomes, threaded.outcomes);
        assert_eq!(inline.sim_us, threaded.sim_us);
        // Faults do not change the simulated-time ledger.
        let fault_free = InlineExecutor::execute(&OrderProbe, &w, &w.recorded_order(), &time);
        assert_eq!(inline.sim_us, fault_free.sim_us);
    }

    #[test]
    fn threaded_reports_panics_as_errors() {
        struct Bomb;
        impl SystemModel for Bomb {
            type State = ();
            fn replicas(&self) -> usize {
                1
            }
            fn init(&self, _r: ReplicaId) {}
            fn apply(&self, _s: &mut [()], _e: &Event) -> OpOutcome {
                panic!("kaboom");
            }
            fn observe(&self, _s: &()) -> Value {
                Value::Null
            }
        }
        let mut w = Workload::builder();
        w.update(ReplicaId::new(0), "x", [Value::from(1)]);
        let w = w.build();
        let il = w.recorded_order();
        let err = ThreadedExecutor::execute(&Bomb, &w, &il, &TimeModel::paper_setup());
        assert!(matches!(err, Err(ErPiError::ExecutorPanic(_))));
    }
}

//! Cooperative cancellation for replay campaigns.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag threaded through a replay campaign.
///
/// Cancellation is *cooperative*: workers poll the token between runs
/// (sequential replay) or between claimed chunks (pooled and service
/// replay) — a chunk that has already been claimed always executes to
/// completion, which keeps dispensed index ranges dense and the merge
/// deterministic. A cancelled campaign surfaces as
/// [`ErPiError::Cancelled`](crate::ErPiError::Cancelled) and discards its
/// partial results; co-scheduled campaigns on a shared
/// [`ExecutorService`](crate::ExecutorService) are unaffected.
///
/// Tokens are cheap to clone (an `Arc` around one atomic) and safe to
/// trip from any thread — the campaign server's `DELETE /campaigns/:id`
/// handler does exactly that.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Trips the token. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_is_visible_through_clones() {
        let token = CancelToken::new();
        let seen_by_worker = token.clone();
        assert!(!seen_by_worker.is_cancelled());
        token.cancel();
        assert!(seen_by_worker.is_cancelled());
        token.cancel(); // idempotent
        assert!(token.is_cancelled());
    }
}

//! The built-in test library for the five common RDL misconceptions
//! (paper §6.2).
//!
//! "ER-π provides a test library of commonly held wrong assumptions and
//! misconceptions of RDL usage. Provided as functions, the tests can be
//! invoked after each interleaving."

use er_pi_model::Value;

use crate::{Assertion, CrossCheck, TestSuite};

/// The five misconceptions of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Misconception {
    /// #1 — "The underlying network ensures causal delivery."
    CausalDelivery,
    /// #2 — "The order of List elements is always consistent."
    ListOrderConsistency,
    /// #3 — "Moving items in a List doesn't cause duplication."
    MoveNoDuplication,
    /// #4 — "Sequential IDs are always suitable for creating new items."
    SequentialIds,
    /// #5 — "Multiple replicas in different regions mathematically resolve
    /// to the same state without coordination."
    CoordinationFree,
}

impl Misconception {
    /// All five, in Table 2 order.
    pub fn all() -> [Misconception; 5] {
        [
            Misconception::CausalDelivery,
            Misconception::ListOrderConsistency,
            Misconception::MoveNoDuplication,
            Misconception::SequentialIds,
            Misconception::CoordinationFree,
        ]
    }

    /// The paper's label number (1–5).
    pub fn number(&self) -> u8 {
        match self {
            Misconception::CausalDelivery => 1,
            Misconception::ListOrderConsistency => 2,
            Misconception::MoveNoDuplication => 3,
            Misconception::SequentialIds => 4,
            Misconception::CoordinationFree => 5,
        }
    }

    /// The misconception statement, verbatim from the paper.
    pub fn statement(&self) -> &'static str {
        match self {
            Misconception::CausalDelivery => "the underlying network ensures causal delivery",
            Misconception::ListOrderConsistency => {
                "the order of List elements is always consistent"
            }
            Misconception::MoveNoDuplication => "moving items in a List doesn't cause duplication",
            Misconception::SequentialIds => {
                "sequential IDs are always suitable for creating new items in a to-do list"
            }
            Misconception::CoordinationFree => {
                "multiple replicas in different regions mathematically resolve to the same \
                 state without coordination"
            }
        }
    }

    /// Attaches this misconception's detector to `suite`.
    ///
    /// `target_replica` parameterizes the detectors that examine one
    /// replica (following the paper's seeding procedure, which disables
    /// conflict resolution / coordination *for a particular replica*).
    #[must_use]
    pub fn attach<S>(self, suite: TestSuite<S>, target_replica: usize) -> TestSuite<S> {
        let name = format!("misconception-#{}", self.number());
        match self {
            // #1: without an explicit conflict-resolution step, the target
            // replica's state must NOT depend on the interleaving — if it
            // does, the network alone did not deliver causally.
            Misconception::CausalDelivery => suite.with_cross(
                CrossCheck::same_state_across_interleavings(name, target_replica),
            ),
            // #2: all replicas must observe the same list (content AND
            // order) at the end of every interleaving.
            Misconception::ListOrderConsistency => {
                suite.with(Assertion::new(name, |ctx: &crate::CheckContext<'_, S>| {
                    for pair in ctx.observations.windows(2) {
                        if pair[0] != pair[1] {
                            return Err(format!(
                                "list order differs between replicas: {} vs {}",
                                pair[0], pair[1]
                            ));
                        }
                    }
                    Ok(())
                }))
            }
            // #3: no replica's list observation may contain duplicates
            // after a move.
            Misconception::MoveNoDuplication => {
                let mut s = suite;
                // Duplication can appear at any replica.
                for r in 0..8 {
                    s = s.with(Assertion::no_duplication(
                        format!("misconception-#3@replica{r}"),
                        r,
                    ));
                }
                s
            }
            // #4: IDs minted across replicas must be globally unique.
            Misconception::SequentialIds => {
                suite.with(Assertion::new(name, |ctx: &crate::CheckContext<'_, S>| {
                    let mut seen: Vec<&Value> = Vec::new();
                    for obs in ctx.observations {
                        let Some(ids) = obs.as_list() else { continue };
                        for id in ids {
                            if seen.contains(&id) {
                                return Err(format!("ID clash across replicas: {id}"));
                            }
                            seen.push(id);
                        }
                    }
                    Ok(())
                }))
            }
            // #5: same detector shape as #1 — the uncoordinated replica's
            // state must not vary across interleavings if the assumption
            // held.
            Misconception::CoordinationFree => suite.with_cross(
                CrossCheck::same_state_across_interleavings(name, target_replica),
            ),
        }
    }
}

impl std::fmt::Display for Misconception {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{} ({})", self.number(), self.statement())
    }
}

/// Looks up a misconception by its paper number (1–5).
pub fn misconception(number: u8) -> Option<Misconception> {
    Misconception::all()
        .into_iter()
        .find(|m| m.number() == number)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CheckContext, CrossContext, RunRecord};
    use er_pi_model::Interleaving;

    #[test]
    fn lookup_by_number() {
        for n in 1..=5 {
            assert_eq!(misconception(n).unwrap().number(), n);
        }
        assert!(misconception(0).is_none());
        assert!(misconception(6).is_none());
    }

    #[test]
    fn display_quotes_the_statement() {
        let s = Misconception::CausalDelivery.to_string();
        assert!(s.contains("#1"));
        assert!(s.contains("causal delivery"));
    }

    fn ctx<'a>(observations: &'a [Value], il: &'a Interleaving) -> CheckContext<'a, ()> {
        CheckContext {
            states: &[],
            observations,
            interleaving: il,
            outcomes: &[],
        }
    }

    #[test]
    fn list_order_detector_flags_divergent_replicas() {
        let suite = Misconception::ListOrderConsistency.attach(TestSuite::<()>::new(), 0);
        let il = Interleaving::new(vec![]);
        let same = [
            Value::List(vec![Value::from(1), Value::from(2)]),
            Value::List(vec![Value::from(1), Value::from(2)]),
        ];
        let diff = [
            Value::List(vec![Value::from(1), Value::from(2)]),
            Value::List(vec![Value::from(2), Value::from(1)]),
        ];
        let a = &suite.assertions()[0];
        assert!(a.check(&ctx(&same, &il)).is_ok());
        assert!(a.check(&ctx(&diff, &il)).is_err());
    }

    #[test]
    fn sequential_id_detector_flags_cross_replica_clashes() {
        let suite = Misconception::SequentialIds.attach(TestSuite::<()>::new(), 0);
        let il = Interleaving::new(vec![]);
        let clash = [
            Value::List(vec![Value::from(1), Value::from(2)]),
            Value::List(vec![Value::from(2)]),
        ];
        let clean = [
            Value::List(vec![Value::from(1)]),
            Value::List(vec![Value::from(2)]),
        ];
        let a = &suite.assertions()[0];
        assert!(a.check(&ctx(&clash, &il)).is_err());
        assert!(a.check(&ctx(&clean, &il)).is_ok());
    }

    #[test]
    fn coordination_free_detector_is_cross_run() {
        let suite = Misconception::CoordinationFree.attach(TestSuite::<()>::new(), 1);
        assert_eq!(suite.cross_checks().len(), 1);
        let mk = |v: i64| RunRecord {
            interleaving: Interleaving::new(vec![]),
            observations: vec![Value::Null, Value::from(v)],
            failed_ops: 0,
            sim_us: 0,
        };
        let runs = vec![mk(1), mk(2)];
        let err = suite.cross_checks()[0]
            .check(&CrossContext { runs: &runs })
            .unwrap_err();
        assert!(err.contains("diverges"));
    }

    #[test]
    fn move_duplication_detector_covers_multiple_replicas() {
        let suite = Misconception::MoveNoDuplication.attach(TestSuite::<()>::new(), 0);
        assert!(suite.assertions().len() >= 3);
        let il = Interleaving::new(vec![]);
        let dup_at_r2 = [
            Value::List(vec![Value::from(1)]),
            Value::List(vec![Value::from(1)]),
            Value::List(vec![Value::from(7), Value::from(7)]),
        ];
        let violations: usize = suite
            .assertions()
            .iter()
            .filter(|a| a.check(&ctx(&dup_at_r2, &il)).is_err())
            .count();
        assert_eq!(violations, 1, "exactly the replica-2 detector fires");
    }
}

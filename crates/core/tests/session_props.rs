//! Session-level property tests: the pruned exploration relates correctly
//! to the exhaustive baseline on randomized workloads.

use std::collections::BTreeSet;

use proptest::prelude::*;

use er_pi::{ExploreMode, OpOutcome, Session, SystemModel, TestSuite};
use er_pi_model::{Event, EventKind, ReplicaId, Value, Workload};

/// A two-replica register machine: `set(v)` writes locally; a fused sync
/// copies the sender's value over the receiver's. Deliberately
/// order-sensitive (last write wins by arrival), so distinct interleavings
/// produce distinct observations.
struct RegMachine;

impl SystemModel for RegMachine {
    type State = i64;

    fn replicas(&self) -> usize {
        2
    }

    fn init(&self, _replica: ReplicaId) -> i64 {
        0
    }

    fn apply(&self, states: &mut [i64], event: &Event) -> OpOutcome {
        match &event.kind {
            EventKind::LocalUpdate { op } => {
                states[event.replica.index()] = op.arg(0).and_then(Value::as_int).unwrap_or(0);
                OpOutcome::Applied
            }
            EventKind::Sync { to, .. } => {
                states[to.index()] = states[event.replica.index()];
                OpOutcome::Applied
            }
            _ => OpOutcome::failed("unsupported"),
        }
    }

    fn observe(&self, state: &i64) -> Value {
        Value::from(*state)
    }
}

/// A commutative counter machine: `add(v)` adds; sync merges by max.
/// Order-insensitive by construction.
struct MaxMachine;

impl SystemModel for MaxMachine {
    type State = i64;

    fn replicas(&self) -> usize {
        2
    }

    fn init(&self, _replica: ReplicaId) -> i64 {
        0
    }

    fn apply(&self, states: &mut [i64], event: &Event) -> OpOutcome {
        match &event.kind {
            EventKind::LocalUpdate { op } => {
                let v = op.arg(0).and_then(Value::as_int).unwrap_or(0);
                let slot = &mut states[event.replica.index()];
                *slot = (*slot).max(v);
                OpOutcome::Applied
            }
            EventKind::Sync { to, .. } => {
                let v = states[event.replica.index()];
                let slot = &mut states[to.index()];
                *slot = (*slot).max(v);
                OpOutcome::Applied
            }
            _ => OpOutcome::failed("unsupported"),
        }
    }

    fn observe(&self, state: &i64) -> Value {
        Value::from(*state)
    }
}

#[derive(Debug, Clone)]
enum Step {
    Update(u16, i64),
    Sync(u16),
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            (0u16..2, 1i64..9).prop_map(|(r, v)| Step::Update(r, v)),
            (0u16..2).prop_map(Step::Sync),
        ],
        1..6,
    )
}

fn build_workload(steps: &[Step]) -> Workload {
    let mut w = Workload::builder();
    let mut last_update = None;
    for step in steps {
        match step {
            Step::Update(r, v) => {
                last_update = Some(w.update(ReplicaId::new(*r), "set", [Value::from(*v)]));
            }
            Step::Sync(r) => {
                let from = ReplicaId::new(*r);
                let to = ReplicaId::new(1 - *r);
                match last_update {
                    Some(u) => {
                        w.sync_pair(from, to, u);
                    }
                    None => {
                        w.sync_untracked(from, to);
                    }
                }
            }
        }
    }
    w.build()
}

fn observation_set<M>(
    model: M,
    workload: &Workload,
    mode: ExploreMode,
) -> (usize, BTreeSet<Vec<Value>>)
where
    M: SystemModel + Sync,
    M::State: Send + Sync + 'static,
{
    let mut session = Session::new(model);
    session.set_workload(workload.clone());
    session.set_mode(mode);
    session.set_keep_runs(true);
    session.set_cap(100_000);
    let report = session.replay(&TestSuite::new()).unwrap();
    let set = report
        .runs
        .iter()
        .map(|run| run.observations.clone())
        .collect();
    (report.explored, set)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// ER-π explores no more interleavings than DFS, and every outcome it
    /// produces is a DFS outcome (it replays a subset of the raw orders).
    #[test]
    fn erpi_outcomes_are_a_subset_of_dfs(steps in arb_steps()) {
        let workload = build_workload(&steps);
        let (n_erpi, erpi) = observation_set(RegMachine, &workload, ExploreMode::ErPi);
        let (n_dfs, dfs) = observation_set(RegMachine, &workload, ExploreMode::Dfs);
        prop_assert!(n_erpi <= n_dfs);
        prop_assert!(erpi.is_subset(&dfs), "ER-π produced a non-DFS outcome");
    }

    /// For an order-insensitive (commutative) system, pruning loses no
    /// *causally valid* outcome: ER-π's observation set equals the DFS set
    /// restricted to causally valid interleavings. (Unrestricted DFS also
    /// replays invalid orders — syncs before the updates they ship — whose
    /// wasted outcomes ER-π's grouping deliberately skips.)
    #[test]
    fn commutative_systems_lose_no_valid_outcome(steps in arb_steps()) {
        let workload = build_workload(&steps);
        let (_, erpi) = observation_set(MaxMachine, &workload, ExploreMode::ErPi);

        // DFS over causally valid orders only.
        let mut session = Session::new(MaxMachine);
        session.set_workload(workload.clone());
        session.set_mode(ExploreMode::Dfs);
        session.set_keep_runs(true);
        session.set_cap(100_000);
        let report = session.replay(&TestSuite::new()).unwrap();
        let dfs_valid: BTreeSet<Vec<Value>> = report
            .runs
            .iter()
            .filter(|run| workload.is_causally_valid(&run.interleaving))
            .map(|run| run.observations.clone())
            .collect();
        prop_assert_eq!(erpi, dfs_valid);
    }

    /// Random mode (uncapped within the space) covers exactly the DFS
    /// outcome set too — it is the same space in a different order.
    #[test]
    fn random_covers_the_same_space(steps in arb_steps()) {
        let workload = build_workload(&steps);
        let (n_rand, rand) = observation_set(RegMachine, &workload, ExploreMode::Random { seed: 11 });
        let (n_dfs, dfs) = observation_set(RegMachine, &workload, ExploreMode::Dfs);
        prop_assert_eq!(n_rand, n_dfs);
        prop_assert_eq!(rand, dfs);
    }
}

//! A deliberately small HTTP/1.1 layer over `std::net` — request parsing,
//! the route table, and canned responses. One thread per connection,
//! `Connection: close`; campaign replays never run on connection threads,
//! so a slow client cannot stall the service.
//!
//! The one exception to request/response/close is
//! `GET /campaigns/:id/events`: that connection switches to a
//! Server-Sent-Events stream over keep-alive and its thread tails the
//! campaign's [`EventLog`](crate::EventLog) until the terminal frame.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::campaign::ExplainError;
use crate::ServerState;

/// Upper bound on request size (headers + body); larger submissions are
/// refused with 413.
const MAX_REQUEST_BYTES: usize = 4 << 20;

/// How long an idle SSE stream waits for news before emitting a
/// `: keep-alive` comment so proxies and clients see a live socket.
const SSE_KEEP_ALIVE: Duration = Duration::from_secs(10);

/// A parsed request.
struct Request {
    method: String,
    path: String,
    /// Header `(name, value)` pairs, names lowercased.
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Request {
    /// First value of `name` (lowercase), if present.
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the `Accept` header asks for the Prometheus text format
    /// rather than JSON. Prometheus scrapers send `text/plain` (with a
    /// `version=` parameter) or `application/openmetrics-text`.
    fn wants_prometheus_text(&self) -> bool {
        self.header("accept")
            .is_some_and(|accept| accept.contains("text/plain") || accept.contains("openmetrics"))
    }
}

/// Accept loop. Returns when the state's shutdown flag is raised (the
/// shutdown path makes one dummy connection to unblock `accept`).
pub(crate) fn serve(state: Arc<ServerState>, listener: TcpListener) {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let state = Arc::clone(&state);
        let _ = thread::Builder::new()
            .name("er-pi-http".to_owned())
            .spawn(move || handle(&state, stream));
    }
}

/// Serves one connection: parse, route, respond, close.
fn handle(state: &ServerState, mut stream: TcpStream) {
    let request = match read_request(&mut stream) {
        Ok(Some(request)) => request,
        Ok(None) => {
            respond(
                &mut stream,
                413,
                "Payload Too Large",
                JSON,
                error_body("too large"),
            );
            return;
        }
        Err(_) => {
            respond(
                &mut stream,
                400,
                "Bad Request",
                JSON,
                error_body("malformed request"),
            );
            return;
        }
    };
    // The SSE endpoint streams instead of responding once; everything
    // else goes through the route table.
    {
        let segments = path_segments(&request.path);
        if request.method == "GET"
            && segments.len() == 3
            && segments[0] == "campaigns"
            && segments[2] == "events"
        {
            stream_events(state, stream, segments[1]);
            return;
        }
    }
    let (code, reason, content_type, body) = route(state, &request);
    respond(&mut stream, code, reason, content_type, body);
}

fn path_segments(path: &str) -> Vec<&str> {
    path.split('?')
        .next()
        .unwrap_or("")
        .split('/')
        .filter(|s| !s.is_empty())
        .collect()
}

const JSON: &str = "application/json";
/// The Prometheus text exposition format's content type.
const PROM_TEXT: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Dispatches one request to its handler.
fn route(state: &ServerState, request: &Request) -> (u16, &'static str, &'static str, String) {
    let segments = path_segments(&request.path);
    let json = |code, reason, body| (code, reason, JSON, body);
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => json(200, "OK", r#"{"status":"ok"}"#.to_owned()),
        ("GET", ["metrics"]) if request.wants_prometheus_text() => {
            (200, "OK", PROM_TEXT, prometheus_body(state))
        }
        ("GET", ["metrics"]) => json(200, "OK", metrics_body(state)),
        ("POST", ["campaigns"]) => {
            let (code, reason, body) = submit(state, &request.body);
            json(code, reason, body)
        }
        ("GET", ["campaigns", id]) => match state.campaign(id) {
            Some(c) => json(200, "OK", c.status_json()),
            None => not_found(id),
        },
        ("GET", ["campaigns", id, "report"]) => match state.campaign(id) {
            Some(c) => match c.report_json() {
                Some(body) => json(200, "OK", body),
                None => json(
                    409,
                    "Conflict",
                    error_body(&format!("campaign is {}", c.phase().as_str())),
                ),
            },
            None => not_found(id),
        },
        ("GET", ["campaigns", id, "violations", n]) => match state.campaign(id) {
            Some(c) => match n.parse::<usize>() {
                Ok(n) => match c.violation_json(n) {
                    Ok(body) => json(200, "OK", body),
                    Err(ExplainError::NotDone) => json(
                        409,
                        "Conflict",
                        error_body(&format!("campaign is {}", c.phase().as_str())),
                    ),
                    Err(ExplainError::OutOfRange) => {
                        json(404, "Not Found", error_body(&format!("no violation {n}")))
                    }
                    Err(ExplainError::NoInterleaving) => json(
                        422,
                        "Unprocessable Entity",
                        error_body("cross-run violation has no interleaving to replay"),
                    ),
                },
                Err(_) => json(
                    400,
                    "Bad Request",
                    error_body("violation index not a number"),
                ),
            },
            None => not_found(id),
        },
        ("DELETE", ["campaigns", id]) => match state.cancel_campaign(id) {
            Some(phase) => json(
                202,
                "Accepted",
                format!(r#"{{"id":{},"state":"{}"}}"#, json_str(id), phase),
            ),
            None => not_found(id),
        },
        (_, ["healthz" | "metrics" | "campaigns", ..]) => {
            json(405, "Method Not Allowed", error_body("method not allowed"))
        }
        _ => json(404, "Not Found", error_body("no such route")),
    }
}

/// `GET /campaigns/:id/events`: switch the connection to a Server-Sent-
/// Events stream. The client immediately gets a `status` frame, then the
/// campaign's full event history, then live frames as the runner appends
/// them, then the terminal frame — at which point the stream ends.
fn stream_events(state: &ServerState, mut stream: TcpStream, id: &str) {
    let Some(campaign) = state.campaign(id) else {
        let (code, reason, body) = (404, "Not Found", error_body(&format!("no campaign {id}")));
        respond(&mut stream, code, reason, JSON, body);
        return;
    };
    let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: keep-alive\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    // The greeting frame guarantees at least one event even for a
    // campaign that is still queued (and, with the terminal frame, at
    // least two over any complete stream).
    let greeting = format!("event: status\ndata: {}\n\n", campaign.status_json());
    if stream.write_all(greeting.as_bytes()).is_err() {
        return;
    }
    let mut cursor = 0usize;
    loop {
        let (frames, closed) = campaign.events.wait_from(cursor, SSE_KEEP_ALIVE);
        if frames.is_empty() {
            if closed {
                return;
            }
            // Nothing new within the window: prove the socket is alive.
            if stream.write_all(b": keep-alive\n\n").is_err() {
                return;
            }
            continue;
        }
        cursor += frames.len();
        for frame in frames {
            if stream.write_all(frame.as_bytes()).is_err() {
                return;
            }
        }
        if closed {
            return;
        }
        let _ = stream.flush();
    }
}

/// `POST /campaigns`: parse, validate, admit.
fn submit(state: &ServerState, body: &[u8]) -> (u16, &'static str, String) {
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => return (400, "Bad Request", error_body("body is not UTF-8")),
    };
    match state.submit(text) {
        Ok(campaign) => (
            202,
            "Accepted",
            format!(r#"{{"id":{},"state":"queued"}}"#, json_str(&campaign.id)),
        ),
        Err(crate::SubmitError::Invalid(e)) => (400, "Bad Request", error_body(&e)),
        Err(crate::SubmitError::QueueFull) => {
            // The rejection counters (fleet + per-tenant) are bumped in
            // `ServerState::submit`, where the tenant is known.
            (429, "Too Many Requests", error_body("queue full"))
        }
    }
}

fn metrics_body(state: &ServerState) -> String {
    let running = state.running_count();
    let body = state.metrics.body(
        state.queue.depth(),
        running,
        state.service.workers(),
        state.service.queued(),
    );
    serde_json::to_string(&body).expect("metrics bodies are serializable")
}

/// The Prometheus text exposition: refresh the scrape-time gauges from
/// live daemon state, then render every family in the shared registry.
fn prometheus_body(state: &ServerState) -> String {
    state.metrics.set_live(
        state.queue.depth(),
        state.running_count(),
        state.service.workers(),
        state.service.queued(),
        &state.queue.tenant_depths(),
    );
    state.metrics.registry().render_prometheus()
}

fn not_found(id: &str) -> (u16, &'static str, &'static str, String) {
    (
        404,
        "Not Found",
        JSON,
        error_body(&format!("no campaign {id}")),
    )
}

fn error_body(message: &str) -> String {
    format!(r#"{{"error":{}}}"#, json_str(message))
}

/// Minimal JSON string escaping for hand-built bodies.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Reads one request. `Ok(None)` means the request exceeded
/// [`MAX_REQUEST_BYTES`].
fn read_request(stream: &mut TcpStream) -> std::io::Result<Option<Request>> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(at) = find_header_end(&buf) {
            break at;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return Ok(None);
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-request",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 header"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_owned();
    let path = parts.next().unwrap_or("").to_owned();
    if method.is_empty() || path.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "bad request line",
        ));
    }
    let mut content_length = 0usize;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    if content_length > MAX_REQUEST_BYTES {
        return Ok(None);
    }
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes one response and lets the connection close.
fn respond(stream: &mut TcpStream, code: u16, reason: &str, content_type: &str, body: String) {
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("plain"), r#""plain""#);
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn header_end_detection() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_header_end(b"partial\r\n"), None);
    }

    // The route table itself is exercised end-to-end (over a real socket)
    // by the workspace-level `server_equivalence` suite.

    #[test]
    fn phase_names_are_wire_stable() {
        use crate::campaign::Phase;
        // The report endpoint leans on these names in its 409 body.
        assert_eq!(Phase::Queued.as_str(), "queued");
        assert_eq!(Phase::Running.as_str(), "running");
    }
}

//! Runner threads: pop admitted campaigns and replay them as jobs on the
//! shared [`ExecutorService`](er_pi::ExecutorService).
//!
//! The runner count bounds how many campaigns are *co-scheduled* — each
//! occupies one blocked runner thread while its chunks are multiplexed
//! over the service's workers. The service picks chunks by the same
//! `(priority, seq)` key the queue uses, so a high-priority submission
//! overtakes lower classes at both hand-offs.

use std::sync::Arc;

use er_pi::telemetry::ProgressSnapshot;
use er_pi::ErPiError;
use er_pi_fuzz::{report_for_on, OracleOptions};
use er_pi_subjects::{ProgressFn, ReplayOptions};

use crate::campaign::{Campaign, Phase};
use crate::metrics::Metrics;
use crate::spec::SubjectSpec;
use crate::ServerState;

/// One runner thread: drain the queue until it closes.
pub(crate) fn runner_loop(state: Arc<ServerState>) {
    while let Some(campaign) = state.queue.pop() {
        run_one(&state, &campaign);
    }
}

/// Replays one campaign and records its outcome.
fn run_one(state: &ServerState, campaign: &Arc<Campaign>) {
    if campaign.cancel.is_cancelled() {
        // DELETE raced the pop; honour it without spending worker time.
        campaign.status.lock().phase = Phase::Cancelled;
        Metrics::bump(&state.metrics.cancelled);
        return;
    }
    campaign.status.lock().phase = Phase::Running;
    let progress: ProgressFn = {
        let campaign = Arc::clone(campaign);
        Arc::new(move |snap: &ProgressSnapshot| {
            campaign.status.lock().progress = Some(snap.clone());
        })
    };
    let spec = &campaign.spec;
    let result = match &spec.subject {
        SubjectSpec::Bug(bug) => bug.replay_report_on(
            &state.service,
            spec.priority,
            Some(campaign.cancel.clone()),
            Some(progress),
            &ReplayOptions {
                cap: spec.cap,
                stop_on_first_violation: spec.stop_on_first_violation,
                workers: 1,
                incremental: spec.incremental,
                subsumption: spec.subsumption,
                sleep_sets: spec.sleep_sets,
                ..ReplayOptions::default()
            },
        ),
        SubjectSpec::Trace(case) => report_for_on(
            case,
            &OracleOptions {
                workers: 1,
                cap: spec.cap,
                incremental: spec.incremental,
                subsumption: spec.subsumption,
            },
            &state.service,
            spec.priority,
            Some(campaign.cancel.clone()),
            Some(progress),
        ),
    };
    let mut status = campaign.status.lock();
    match result {
        Ok(report) => {
            state.metrics.add_runs(report.explored as u64);
            if let Some(cache) = &report.cache_stats {
                state.metrics.add_subsumed(cache.subsumed);
            }
            if let Some(prune) = &report.prune_stats {
                state.metrics.add_sleep_prunes(prune.sleep_rejected);
            }
            Metrics::bump(&state.metrics.completed);
            status.report = Some(report);
            status.phase = Phase::Done;
        }
        Err(ErPiError::Cancelled) => {
            Metrics::bump(&state.metrics.cancelled);
            status.phase = Phase::Cancelled;
        }
        Err(e) => {
            Metrics::bump(&state.metrics.failed);
            status.error = Some(e.to_string());
            status.phase = Phase::Failed;
        }
    }
}

//! Runner threads: pop admitted campaigns and replay them as jobs on the
//! shared [`ExecutorService`](er_pi::ExecutorService).
//!
//! The runner count bounds how many campaigns are *co-scheduled* — each
//! occupies one blocked runner thread while its chunks are multiplexed
//! over the service's workers. The service picks chunks by the same
//! `(priority, seq)` key the queue uses, so a high-priority submission
//! overtakes lower classes at both hand-offs.
//!
//! Each campaign also feeds the observability plane from here: a
//! [`SessionMetrics`] handle labelled `{tenant, campaign}` exports its run
//! and pruning counters into the shared registry, and the progress hook
//! doubles as the SSE producer — `progress` deltas, one-shot pruner
//! milestones, and the terminal `done`/`cancelled`/`failed` frame.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use er_pi::telemetry::ProgressSnapshot;
use er_pi::{ErPiError, SessionMetrics};
use er_pi_fuzz::{report_for_on, OracleOptions};
use er_pi_subjects::{ProgressFn, ReplayOptions};

use crate::campaign::{Campaign, Phase};
use crate::spec::SubjectSpec;
use crate::ServerState;

/// One runner thread: drain the queue until it closes.
pub(crate) fn runner_loop(state: Arc<ServerState>) {
    while let Some(campaign) = state.queue.pop() {
        run_one(&state, &campaign);
    }
}

/// Replays one campaign and records its outcome.
fn run_one(state: &ServerState, campaign: &Arc<Campaign>) {
    if campaign.cancel.is_cancelled() {
        // DELETE raced the pop; honour it without spending worker time.
        campaign.finish(Phase::Cancelled);
        state.metrics.inc_cancelled();
        return;
    }
    state
        .metrics
        .observe_queue_wait_us(campaign.submitted_at.elapsed().as_micros() as u64);
    campaign.status.lock().phase = Phase::Running;
    campaign.events.push("status", &campaign.status_json());
    let progress: ProgressFn = {
        let campaign = Arc::clone(campaign);
        let subsumption_seen = AtomicBool::new(false);
        let sleep_seen = AtomicBool::new(false);
        Arc::new(move |snap: &ProgressSnapshot| {
            campaign.status.lock().progress = Some(snap.clone());
            let json = serde_json::to_string(snap).expect("progress snapshots are serializable");
            campaign.events.push("progress", &json);
            // One-shot pruner milestones: the first run answered by
            // state-hash subsumption, the first sleep-set rejection.
            if snap.subsumed_runs > 0 && !subsumption_seen.swap(true, Ordering::Relaxed) {
                campaign.events.push(
                    "milestone",
                    &format!(
                        r#"{{"kind":"subsumption-active","runs_done":{}}}"#,
                        snap.runs_done
                    ),
                );
            }
            if snap.sleep_prunes > 0 && !sleep_seen.swap(true, Ordering::Relaxed) {
                campaign.events.push(
                    "milestone",
                    &format!(
                        r#"{{"kind":"sleep-set-active","runs_done":{}}}"#,
                        snap.runs_done
                    ),
                );
            }
        })
    };
    let spec = &campaign.spec;
    let metrics = SessionMetrics::new(
        state.metrics.registry(),
        &[("tenant", &spec.tenant), ("campaign", &campaign.id)],
    );
    let result = match &spec.subject {
        SubjectSpec::Bug(bug) => bug.replay_report_on(
            &state.service,
            spec.priority,
            Some(campaign.cancel.clone()),
            Some(progress),
            &ReplayOptions {
                cap: spec.cap,
                stop_on_first_violation: spec.stop_on_first_violation,
                workers: 1,
                incremental: spec.incremental,
                subsumption: spec.subsumption,
                sleep_sets: spec.sleep_sets,
                metrics: Some(metrics),
                ..ReplayOptions::default()
            },
        ),
        SubjectSpec::Trace(case) => report_for_on(
            case,
            &OracleOptions {
                workers: 1,
                cap: spec.cap,
                incremental: spec.incremental,
                subsumption: spec.subsumption,
            },
            &state.service,
            spec.priority,
            Some(campaign.cancel.clone()),
            Some(progress),
            Some(metrics),
        ),
    };
    match result {
        Ok(report) => {
            state.metrics.add_runs(report.explored as u64);
            if let Some(cache) = &report.cache_stats {
                state.metrics.add_subsumed(cache.subsumed);
            }
            if let Some(prune) = &report.prune_stats {
                state.metrics.add_sleep_prunes(prune.sleep_rejected);
            }
            state.metrics.inc_completed();
            state
                .metrics
                .observe_submit_to_report_us(campaign.submitted_at.elapsed().as_micros() as u64);
            campaign.status.lock().report = Some(report);
            campaign.finish(Phase::Done);
        }
        Err(ErPiError::Cancelled) => {
            state.metrics.inc_cancelled();
            campaign.finish(Phase::Cancelled);
        }
        Err(e) => {
            state.metrics.inc_failed();
            campaign.status.lock().error = Some(e.to_string());
            campaign.finish(Phase::Failed);
        }
    }
}

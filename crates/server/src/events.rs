//! The per-campaign event log behind `GET /campaigns/:id/events`.
//!
//! Runners append pre-rendered Server-Sent-Event frames while a campaign
//! runs; any number of HTTP connection threads replay the log from the
//! start and then block for more, so a client that connects late still
//! sees the full history, and a client that connects after the terminal
//! event gets the whole stream and an immediate end.

use std::time::Duration;

use parking_lot::{Condvar, Mutex};

struct LogState {
    /// Pre-rendered SSE frames (`event: …\ndata: …\n\n`), in order.
    frames: Vec<String>,
    /// Set once the terminal frame is in; no further pushes land.
    closed: bool,
}

/// An append-only, multi-reader event log. One per [`Campaign`](crate::Campaign).
pub struct EventLog {
    state: Mutex<LogState>,
    available: Condvar,
}

impl EventLog {
    /// An empty, open log.
    pub fn new() -> Self {
        EventLog {
            state: Mutex::new(LogState {
                frames: Vec::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Appends one event. `data` must be a single line (JSON from
    /// `serde_json` never contains raw newlines). Ignored once closed, so
    /// a progress hook racing the terminal transition cannot append after
    /// `done`.
    pub fn push(&self, event: &str, data: &str) {
        debug_assert!(!data.contains('\n'), "SSE data must be one line");
        let mut state = self.state.lock();
        if state.closed {
            return;
        }
        state
            .frames
            .push(format!("event: {event}\ndata: {data}\n\n"));
        drop(state);
        self.available.notify_all();
    }

    /// Appends the terminal event and closes the log; readers drain what
    /// is left and stop.
    pub fn close_with(&self, event: &str, data: &str) {
        let mut state = self.state.lock();
        if !state.closed {
            state
                .frames
                .push(format!("event: {event}\ndata: {data}\n\n"));
            state.closed = true;
        }
        drop(state);
        self.available.notify_all();
    }

    /// Returns the frames at index `from..` as soon as any exist, waiting
    /// at most `timeout` for news. The bool is the closed flag: once it is
    /// `true` and the returned batch is empty, the stream has ended.
    pub fn wait_from(&self, from: usize, timeout: Duration) -> (Vec<String>, bool) {
        let mut state = self.state.lock();
        if state.frames.len() <= from && !state.closed {
            (state, _) = self.available.wait_timeout(state, timeout);
        }
        let frames = state.frames.get(from..).unwrap_or(&[]).to_vec();
        (frames, state.closed)
    }
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_replay_from_any_offset_and_close_sticks() {
        let log = EventLog::new();
        log.push("progress", r#"{"runs_done":5}"#);
        log.close_with("done", r#"{"state":"done"}"#);
        log.push("progress", r#"{"runs_done":9}"#);
        let (frames, closed) = log.wait_from(0, Duration::from_millis(1));
        assert!(closed);
        assert_eq!(frames.len(), 2, "the post-close push is dropped");
        assert!(frames[0].starts_with("event: progress\n"), "{}", frames[0]);
        assert!(frames[1].starts_with("event: done\n"), "{}", frames[1]);
        let (tail, closed) = log.wait_from(2, Duration::from_millis(1));
        assert!(closed && tail.is_empty(), "stream has ended");
    }

    #[test]
    fn wait_returns_promptly_on_timeout_when_nothing_is_new() {
        let log = EventLog::new();
        let started = std::time::Instant::now();
        let (frames, closed) = log.wait_from(0, Duration::from_millis(10));
        assert!(frames.is_empty() && !closed);
        assert!(started.elapsed() < Duration::from_secs(5));
    }
}

//! Daemon-wide metrics behind `GET /metrics`.
//!
//! All counters live in one shared [`Registry`] — the same registry the
//! executor service and every campaign session export into — so the
//! Prometheus exposition covers the whole daemon: fleet counters here,
//! per-campaign series (labelled `{tenant, campaign}`) from
//! [`SessionMetrics`](er_pi::SessionMetrics), and the service's claim-wait
//! / run-latency histograms. The legacy JSON body is derived from the same
//! cells, so the two representations can never disagree.

use std::collections::BTreeMap;
use std::time::Instant;

use er_pi::telemetry::{Counter, Gauge, Histogram, Registry};
use parking_lot::Mutex;
use serde::Serialize;
use std::sync::Arc;

/// Fleet counters, written by the HTTP layer and the runners; every cell
/// is a handle into the shared [`Registry`].
pub struct Metrics {
    started: Instant,
    registry: Arc<Registry>,
    /// Campaigns admitted.
    submitted: Counter,
    /// Submissions refused with 429 (all tenants).
    rejected: Counter,
    /// Campaigns finished with a report.
    completed: Counter,
    /// Campaigns cancelled.
    cancelled: Counter,
    /// Campaigns that errored.
    failed: Counter,
    /// Interleavings replayed across all finished campaigns.
    runs_total: Counter,
    /// Runs answered from the subsumption set instead of being executed.
    subsumed_total: Counter,
    /// Interleavings rejected by sleep-set pruning before replay.
    sleep_prunes_total: Counter,
    /// Queued → Running wait per campaign.
    queue_wait: Histogram,
    /// Submission → final report latency per completed campaign.
    submit_to_report: Histogram,
    /// Scrape-time gauges (set from live queue/registry/service state).
    queue_depth: Gauge,
    running: Gauge,
    service_workers: Gauge,
    service_jobs: Gauge,
    uptime: Gauge,
    /// Per-tenant queue-depth gauges, one per tenant ever seen waiting;
    /// kept so a drained tenant's series drops back to 0 instead of
    /// freezing at its last depth.
    tenant_depth: Mutex<BTreeMap<String, Gauge>>,
}

/// JSON body of `GET /metrics` (served when the client does not ask for
/// the Prometheus text format).
#[derive(Serialize)]
pub struct MetricsBody {
    /// Seconds since the daemon started.
    pub uptime_secs: f64,
    /// Campaigns admitted since start.
    pub submitted: u64,
    /// Submissions refused with 429 since start.
    pub rejected: u64,
    /// Campaigns finished with a report.
    pub completed: u64,
    /// Campaigns cancelled.
    pub cancelled: u64,
    /// Campaigns that errored.
    pub failed: u64,
    /// Interleavings replayed across all finished campaigns.
    pub runs_total: u64,
    /// Runs answered from the subsumption set instead of being executed.
    pub subsumed_total: u64,
    /// Interleavings rejected by sleep-set pruning before replay.
    pub sleep_prunes_total: u64,
    /// `subsumed_total / runs_total` — the fraction of finished runs that
    /// were stitched from a memoized tail.
    pub subsume_rate: f64,
    /// `runs_total / uptime` — the aggregate replay throughput.
    pub runs_per_sec: f64,
    /// Campaigns waiting for a runner.
    pub queue_depth: usize,
    /// Campaigns currently replaying.
    pub running: usize,
    /// Worker threads of the shared executor service.
    pub service_workers: usize,
    /// Campaign jobs currently multiplexed over those workers.
    pub service_jobs: usize,
    /// `min(1, service_jobs / service_workers)` — the fraction of service
    /// workers with a job to pull chunks from.
    pub worker_utilization: f64,
}

impl Metrics {
    /// Registers the fleet series into `registry`; clock started now.
    pub fn new(registry: Arc<Registry>) -> Self {
        let c = |name, help| registry.counter(name, help, &[]);
        let g = |name, help| registry.gauge(name, help, &[]);
        Metrics {
            started: Instant::now(),
            submitted: c("er_pi_server_submitted_total", "Campaigns admitted."),
            rejected: c(
                "er_pi_server_rejected_total",
                "Submissions refused with 429, all tenants.",
            ),
            completed: c(
                "er_pi_server_completed_total",
                "Campaigns finished with a report.",
            ),
            cancelled: c("er_pi_server_cancelled_total", "Campaigns cancelled."),
            failed: c("er_pi_server_failed_total", "Campaigns that errored."),
            runs_total: c(
                "er_pi_server_runs_total",
                "Interleavings replayed across all finished campaigns.",
            ),
            subsumed_total: c(
                "er_pi_server_subsumed_total",
                "Runs answered from the subsumption set instead of being executed.",
            ),
            sleep_prunes_total: c(
                "er_pi_server_sleep_prunes_total",
                "Interleavings rejected by sleep-set pruning before replay.",
            ),
            queue_wait: registry.histogram(
                "er_pi_queue_wait_us",
                "Wait between campaign admission and its runner picking it up.",
                &[],
            ),
            submit_to_report: registry.histogram(
                "er_pi_submit_to_report_us",
                "Latency from campaign submission to its final report.",
                &[],
            ),
            queue_depth: g(
                "er_pi_server_queue_depth",
                "Campaigns waiting for a runner.",
            ),
            running: g("er_pi_server_running", "Campaigns currently replaying."),
            service_workers: g(
                "er_pi_service_workers",
                "Worker threads of the shared executor service.",
            ),
            service_jobs: g(
                "er_pi_service_jobs",
                "Campaign jobs currently multiplexed over the service workers.",
            ),
            uptime: g(
                "er_pi_server_uptime_seconds",
                "Seconds since the daemon started.",
            ),
            tenant_depth: Mutex::new(BTreeMap::new()),
            registry,
        }
    }

    /// The shared registry every other layer registers into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// One campaign admitted.
    pub fn inc_submitted(&self) {
        self.submitted.inc();
    }

    /// One submission refused with 429, attributed to `tenant` (S1's
    /// per-tenant rejection series) on top of the fleet total.
    pub fn inc_rejected(&self, tenant: &str) {
        self.rejected.inc();
        self.registry
            .counter(
                "er_pi_tenant_rejected_total",
                "Submissions refused with 429, by tenant.",
                &[("tenant", tenant)],
            )
            .inc();
    }

    /// One campaign finished with a report.
    pub fn inc_completed(&self) {
        self.completed.inc();
    }

    /// One campaign cancelled.
    pub fn inc_cancelled(&self) {
        self.cancelled.inc();
    }

    /// One campaign errored.
    pub fn inc_failed(&self) {
        self.failed.inc();
    }

    /// Adds `n` replayed runs to the throughput tally.
    pub fn add_runs(&self, n: u64) {
        self.runs_total.add(n);
    }

    /// Adds `n` subsumption-stitched runs to the campaign-wide tally.
    pub fn add_subsumed(&self, n: u64) {
        self.subsumed_total.add(n);
    }

    /// Adds `n` sleep-set rejections to the campaign-wide tally.
    pub fn add_sleep_prunes(&self, n: u64) {
        self.sleep_prunes_total.add(n);
    }

    /// Records one campaign's admission → runner-pickup wait.
    pub fn observe_queue_wait_us(&self, us: u64) {
        self.queue_wait.observe_us(us);
    }

    /// Records one campaign's submission → final-report latency.
    pub fn observe_submit_to_report_us(&self, us: u64) {
        self.submit_to_report.observe_us(us);
    }

    /// Refreshes the scrape-time gauges from live daemon state.
    /// `tenant_depths` is the per-tenant breakdown of `queue_depth`;
    /// tenants that drained since the last scrape are reset to 0.
    pub fn set_live(
        &self,
        queue_depth: usize,
        running: usize,
        service_workers: usize,
        service_jobs: usize,
        tenant_depths: &BTreeMap<String, usize>,
    ) {
        self.uptime.set(self.started.elapsed().as_secs_f64());
        self.queue_depth.set(queue_depth as f64);
        self.running.set(running as f64);
        self.service_workers.set(service_workers as f64);
        self.service_jobs.set(service_jobs as f64);
        let mut known = self.tenant_depth.lock();
        for (tenant, gauge) in known.iter() {
            if !tenant_depths.contains_key(tenant) {
                gauge.set(0.0);
            }
        }
        for (tenant, depth) in tenant_depths {
            known
                .entry(tenant.clone())
                .or_insert_with(|| {
                    self.registry.gauge(
                        "er_pi_tenant_queue_depth",
                        "Campaigns waiting for a runner, by tenant.",
                        &[("tenant", tenant)],
                    )
                })
                .set(*depth as f64);
        }
    }

    /// Renders the legacy JSON payload from the same registry cells the
    /// Prometheus exposition reads.
    pub fn body(
        &self,
        queue_depth: usize,
        running: usize,
        service_workers: usize,
        service_jobs: usize,
    ) -> MetricsBody {
        let uptime = self.started.elapsed().as_secs_f64().max(1e-9);
        let runs_total = self.runs_total.get();
        let subsumed_total = self.subsumed_total.get();
        MetricsBody {
            uptime_secs: uptime,
            submitted: self.submitted.get(),
            rejected: self.rejected.get(),
            completed: self.completed.get(),
            cancelled: self.cancelled.get(),
            failed: self.failed.get(),
            runs_total,
            subsumed_total,
            sleep_prunes_total: self.sleep_prunes_total.get(),
            subsume_rate: if runs_total == 0 {
                0.0
            } else {
                subsumed_total as f64 / runs_total as f64
            },
            runs_per_sec: runs_total as f64 / uptime,
            queue_depth,
            running,
            service_workers,
            service_jobs,
            worker_utilization: if service_workers == 0 {
                0.0
            } else {
                (service_jobs as f64 / service_workers as f64).min(1.0)
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_pi::telemetry::lint_exposition;

    fn metrics() -> Metrics {
        Metrics::new(Arc::new(Registry::new()))
    }

    #[test]
    fn the_body_derives_rates_from_the_counters() {
        let m = metrics();
        m.inc_submitted();
        m.inc_submitted();
        m.inc_completed();
        m.add_runs(500);
        m.add_subsumed(125);
        m.add_sleep_prunes(40);
        let body = m.body(3, 1, 4, 2);
        assert_eq!(body.submitted, 2);
        assert_eq!(body.completed, 1);
        assert_eq!(body.runs_total, 500);
        assert_eq!(body.subsumed_total, 125);
        assert_eq!(body.sleep_prunes_total, 40);
        assert_eq!(body.subsume_rate, 0.25);
        assert!(body.runs_per_sec > 0.0);
        assert_eq!(body.queue_depth, 3);
        assert_eq!(body.worker_utilization, 0.5);
        let json = serde_json::to_string(&body).expect("serializes");
        assert!(json.contains("\"runs_per_sec\""), "{json}");
    }

    #[test]
    fn the_exposition_lints_and_carries_tenant_series() {
        let m = metrics();
        m.inc_submitted();
        m.inc_rejected("team-a");
        m.observe_queue_wait_us(1_500);
        let mut depths = BTreeMap::new();
        depths.insert("team-a".to_owned(), 2);
        depths.insert("team-b".to_owned(), 1);
        m.set_live(3, 1, 4, 2, &depths);
        let text = m.registry().render_prometheus();
        lint_exposition(&text).expect("exposition lints clean");
        assert!(
            text.contains(r#"er_pi_tenant_rejected_total{tenant="team-a"} 1"#),
            "{text}"
        );
        assert!(
            text.contains(r#"er_pi_tenant_queue_depth{tenant="team-b"} 1"#),
            "{text}"
        );
        // A drained tenant's depth falls back to 0 at the next refresh.
        depths.remove("team-b");
        m.set_live(2, 1, 4, 2, &depths);
        let text = m.registry().render_prometheus();
        assert!(
            text.contains(r#"er_pi_tenant_queue_depth{tenant="team-b"} 0"#),
            "{text}"
        );
    }
}

//! Daemon-wide counters behind `GET /metrics`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use serde::Serialize;

/// Monotonic counters, written by the HTTP layer and the runners.
pub struct Metrics {
    started: Instant,
    /// Campaigns admitted.
    pub submitted: AtomicU64,
    /// Submissions refused with 429.
    pub rejected: AtomicU64,
    /// Campaigns finished with a report.
    pub completed: AtomicU64,
    /// Campaigns cancelled.
    pub cancelled: AtomicU64,
    /// Campaigns that errored.
    pub failed: AtomicU64,
    /// Interleavings replayed across all finished campaigns.
    pub runs_total: AtomicU64,
    /// Runs answered from the subsumption set instead of being executed.
    pub subsumed_total: AtomicU64,
    /// Interleavings rejected by sleep-set pruning before replay.
    pub sleep_prunes_total: AtomicU64,
}

/// JSON body of `GET /metrics`.
#[derive(Serialize)]
pub struct MetricsBody {
    /// Seconds since the daemon started.
    pub uptime_secs: f64,
    /// Campaigns admitted since start.
    pub submitted: u64,
    /// Submissions refused with 429 since start.
    pub rejected: u64,
    /// Campaigns finished with a report.
    pub completed: u64,
    /// Campaigns cancelled.
    pub cancelled: u64,
    /// Campaigns that errored.
    pub failed: u64,
    /// Interleavings replayed across all finished campaigns.
    pub runs_total: u64,
    /// Runs answered from the subsumption set instead of being executed.
    pub subsumed_total: u64,
    /// Interleavings rejected by sleep-set pruning before replay.
    pub sleep_prunes_total: u64,
    /// `subsumed_total / runs_total` — the fraction of finished runs that
    /// were stitched from a memoized tail.
    pub subsume_rate: f64,
    /// `runs_total / uptime` — the aggregate replay throughput.
    pub runs_per_sec: f64,
    /// Campaigns waiting for a runner.
    pub queue_depth: usize,
    /// Campaigns currently replaying.
    pub running: usize,
    /// Worker threads of the shared executor service.
    pub service_workers: usize,
    /// Campaign jobs currently multiplexed over those workers.
    pub service_jobs: usize,
    /// `min(1, service_jobs / service_workers)` — the fraction of service
    /// workers with a job to pull chunks from.
    pub worker_utilization: f64,
}

impl Metrics {
    /// Fresh counters, clock started now.
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            runs_total: AtomicU64::new(0),
            subsumed_total: AtomicU64::new(0),
            sleep_prunes_total: AtomicU64::new(0),
        }
    }

    /// Renders the metrics payload. `queue_depth`/`running` come from the
    /// queue and registry; `service_*` from the executor service.
    pub fn body(
        &self,
        queue_depth: usize,
        running: usize,
        service_workers: usize,
        service_jobs: usize,
    ) -> MetricsBody {
        let uptime = self.started.elapsed().as_secs_f64().max(1e-9);
        let runs_total = self.runs_total.load(Ordering::Relaxed);
        let subsumed_total = self.subsumed_total.load(Ordering::Relaxed);
        MetricsBody {
            uptime_secs: uptime,
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            runs_total,
            subsumed_total,
            sleep_prunes_total: self.sleep_prunes_total.load(Ordering::Relaxed),
            subsume_rate: if runs_total == 0 {
                0.0
            } else {
                subsumed_total as f64 / runs_total as f64
            },
            runs_per_sec: runs_total as f64 / uptime,
            queue_depth,
            running,
            service_workers,
            service_jobs,
            worker_utilization: if service_workers == 0 {
                0.0
            } else {
                (service_jobs as f64 / service_workers as f64).min(1.0)
            },
        }
    }

    /// Bumps a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` replayed runs to the throughput tally.
    pub fn add_runs(&self, n: u64) {
        self.runs_total.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` subsumption-stitched runs to the campaign-wide tally.
    pub fn add_subsumed(&self, n: u64) {
        self.subsumed_total.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` sleep-set rejections to the campaign-wide tally.
    pub fn add_sleep_prunes(&self, n: u64) {
        self.sleep_prunes_total.fetch_add(n, Ordering::Relaxed);
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_body_derives_rates_from_the_counters() {
        let m = Metrics::new();
        Metrics::bump(&m.submitted);
        Metrics::bump(&m.submitted);
        Metrics::bump(&m.completed);
        m.add_runs(500);
        m.add_subsumed(125);
        m.add_sleep_prunes(40);
        let body = m.body(3, 1, 4, 2);
        assert_eq!(body.submitted, 2);
        assert_eq!(body.completed, 1);
        assert_eq!(body.runs_total, 500);
        assert_eq!(body.subsumed_total, 125);
        assert_eq!(body.sleep_prunes_total, 40);
        assert_eq!(body.subsume_rate, 0.25);
        assert!(body.runs_per_sec > 0.0);
        assert_eq!(body.queue_depth, 3);
        assert_eq!(body.worker_utilization, 0.5);
        let json = serde_json::to_string(&body).expect("serializes");
        assert!(json.contains("\"runs_per_sec\""), "{json}");
    }
}

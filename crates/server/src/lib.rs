//! # er-pi-server — the multi-tenant replay campaign daemon
//!
//! A small HTTP/1.1 service that accepts recorded traces and campaign
//! specs as JSON, queues them with per-tenant priorities and bounded
//! admission, and multiplexes every admitted campaign over **one**
//! process-wide [`ExecutorService`] — the shared worker pool the
//! ROADMAP's server milestone calls for. Progress is observable live
//! while a campaign runs; the final report is byte-identical (under
//! [`Report::canonical_json`](er_pi::Report::canonical_json)) to what a
//! standalone [`Session`](er_pi::Session) produces for the same spec,
//! regardless of co-tenancy — the workspace `server_equivalence` suite
//! pins this.
//!
//! ## Endpoints
//!
//! | Method + path              | Meaning                                         |
//! |----------------------------|-------------------------------------------------|
//! | `GET /healthz`             | liveness probe                                  |
//! | `POST /campaigns`          | submit a spec; `202` + id, `400` invalid, `429` queue full |
//! | `GET /campaigns/:id`       | live status: phase, progress snapshot, summary  |
//! | `GET /campaigns/:id/report`| final canonical report (`409` until done)       |
//! | `GET /campaigns/:id/events`| live Server-Sent-Events stream: `status`, `progress`, pruner `milestone`s, terminal `done`/`cancelled`/`failed` |
//! | `GET /campaigns/:id/violations/:n` | forensic bundle for violation `n` (`409` until done, `404` out of range) |
//! | `DELETE /campaigns/:id`    | cancel; stops at the next chunk boundary        |
//! | `GET /metrics`             | JSON by default; Prometheus text exposition when `Accept` asks for `text/plain` |
//!
//! ## Shape
//!
//! ```text
//! HTTP conn threads ──▶ CampaignQueue (bounded, priority+FIFO)
//!                            │ pop
//!                       runner threads (co-scheduling degree)
//!                            │ replay_report_on / report_for_on
//!                       ExecutorService (shared workers, chunked claims,
//!                            │           cooperative cancellation)
//!                       Campaign.status ◀── progress hook, final report
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod events;
mod http;
mod metrics;
mod queue;
mod runner;
mod spec;

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use er_pi::telemetry::Registry;
use er_pi::ExecutorService;
use parking_lot::Mutex;

pub use campaign::{Campaign, CampaignStatus, ExplainError, Phase};
pub use events::EventLog;
pub use metrics::{Metrics, MetricsBody};
pub use queue::{CampaignQueue, QueueFull};
pub use spec::{CampaignSpec, SubjectSpec, ValidSpec, DEFAULT_CAP, DEFAULT_PRIORITY};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// TCP port to listen on (`0` = ephemeral, for tests).
    pub port: u16,
    /// Worker threads of the shared executor service (`0` = all available
    /// cores, honouring `ER_PI_WORKERS`).
    pub workers: usize,
    /// Runner threads — the number of campaigns co-scheduled at once.
    pub runners: usize,
    /// Bounded admission: campaigns allowed to wait in the queue before
    /// submissions get 429.
    pub queue_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 7420,
            workers: 0,
            runners: 4,
            queue_cap: 64,
        }
    }
}

/// Why a submission was refused.
pub enum SubmitError {
    /// The spec failed to parse or validate (HTTP 400).
    Invalid(String),
    /// Bounded admission refused it (HTTP 429).
    QueueFull,
}

/// Everything the connection threads and runners share.
pub(crate) struct ServerState {
    pub(crate) config: ServerConfig,
    pub(crate) service: ExecutorService,
    pub(crate) queue: CampaignQueue,
    pub(crate) registry: Mutex<BTreeMap<String, Arc<Campaign>>>,
    pub(crate) metrics: Metrics,
    pub(crate) shutdown: AtomicBool,
    next_id: AtomicU64,
    next_seq: AtomicU64,
}

impl ServerState {
    fn new(config: ServerConfig) -> Self {
        // One registry spans the whole daemon: the executor service's
        // histograms, the fleet counters, and every campaign session's
        // {tenant, campaign}-labelled series all land in it, so one
        // `GET /metrics` scrape covers every layer.
        let metric_registry = Arc::new(Registry::new());
        ServerState {
            service: ExecutorService::with_registry(config.workers, &metric_registry),
            queue: CampaignQueue::new(config.queue_cap),
            registry: Mutex::new(BTreeMap::new()),
            metrics: Metrics::new(metric_registry),
            shutdown: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
            config,
        }
    }

    /// Parses, validates, and admits one submission.
    pub(crate) fn submit(&self, body: &str) -> Result<Arc<Campaign>, SubmitError> {
        let spec: CampaignSpec = serde_json::from_str(body)
            .map_err(|e| SubmitError::Invalid(format!("bad campaign spec: {e:?}")))?;
        let valid = spec.validate().map_err(SubmitError::Invalid)?;
        let id = format!("c-{}", self.next_id.fetch_add(1, Ordering::Relaxed) + 1);
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let campaign = Arc::new(Campaign::new(id.clone(), seq, valid));
        self.registry
            .lock()
            .insert(id.clone(), Arc::clone(&campaign));
        if self.queue.push(Arc::clone(&campaign)).is_err() {
            self.registry.lock().remove(&id);
            self.metrics.inc_rejected(&campaign.spec.tenant);
            return Err(SubmitError::QueueFull);
        }
        self.metrics.inc_submitted();
        Ok(campaign)
    }

    /// Looks a campaign up by ID.
    pub(crate) fn campaign(&self, id: &str) -> Option<Arc<Campaign>> {
        self.registry.lock().get(id).cloned()
    }

    /// Cancels a campaign: a still-queued one is retired on the spot; a
    /// running one has its token tripped and stops at the executor
    /// service's next chunk boundary — co-scheduled campaigns are
    /// untouched. Returns the wire phase to report, or `None` if the ID is
    /// unknown.
    pub(crate) fn cancel_campaign(&self, id: &str) -> Option<&'static str> {
        let campaign = self.campaign(id)?;
        if let Some(queued) = self.queue.remove(id) {
            queued.cancel.cancel();
            queued.finish(Phase::Cancelled);
            self.metrics.inc_cancelled();
            return Some(Phase::Cancelled.as_str());
        }
        let phase = campaign.phase();
        if phase.is_terminal() {
            return Some(phase.as_str());
        }
        campaign.cancel.cancel();
        Some("cancelling")
    }

    /// Number of campaigns currently in [`Phase::Running`].
    pub(crate) fn running_count(&self) -> usize {
        self.registry
            .lock()
            .values()
            .filter(|c| c.phase() == Phase::Running)
            .count()
    }
}

/// A bound, not-yet-serving daemon. [`Server::run`] serves on the calling
/// thread (the binary's path); [`Server::spawn`] serves on a background
/// thread and returns a handle (the test / embedding path).
pub struct Server {
    state: Arc<ServerState>,
    listener: TcpListener,
    runners: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and starts the runner threads. The executor
    /// service spins up its shared workers here; no campaign runs yet.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        let state = Arc::new(ServerState::new(config));
        let runners = (0..state.config.runners.max(1))
            .map(|i| {
                let state = Arc::clone(&state);
                thread::Builder::new()
                    .name(format!("er-pi-runner-{i}"))
                    .spawn(move || runner::runner_loop(state))
                    .expect("spawning a runner thread")
            })
            .collect();
        Ok(Server {
            state,
            listener,
            runners,
        })
    }

    /// The bound address (useful with `port: 0`).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves on the calling thread until the process exits.
    pub fn run(self) {
        http::serve(self.state, self.listener);
    }

    /// Serves on a background thread; the handle polls and shuts down.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let state = Arc::clone(&self.state);
        let accept = {
            let state = Arc::clone(&self.state);
            let listener = self.listener;
            thread::Builder::new()
                .name("er-pi-accept".to_owned())
                .spawn(move || http::serve(state, listener))
                .expect("spawning the accept thread")
        };
        Ok(ServerHandle {
            addr,
            state,
            accept,
            runners: self.runners,
        })
    }
}

/// A running daemon serving on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: JoinHandle<()>,
    runners: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the daemon is serving on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: close admission, cancel every live campaign,
    /// unblock the accept loop, and join all daemon threads.
    pub fn shutdown(self) {
        self.state.shutdown.store(true, Ordering::Release);
        self.state.queue.close();
        for campaign in self.state.registry.lock().values() {
            if !campaign.phase().is_terminal() {
                campaign.cancel.cancel();
            }
        }
        // One dummy connection unblocks `accept`; the loop then sees the
        // flag and returns.
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept.join();
        for runner in self.runners {
            let _ = runner.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_server() -> ServerHandle {
        Server::bind(ServerConfig {
            port: 0,
            workers: 2,
            runners: 2,
            queue_cap: 4,
        })
        .expect("binds")
        .spawn()
        .expect("spawns")
    }

    #[test]
    fn submit_runs_and_reports() {
        let handle = tiny_server();
        let state = Arc::clone(&handle.state);
        let campaign = state
            .submit(r#"{"bug": "Roshi-1", "cap": 200}"#)
            .unwrap_or_else(|_| panic!("valid spec admits"));
        assert_eq!(campaign.id, "c-1");
        while !campaign.phase().is_terminal() {
            thread::yield_now();
        }
        assert_eq!(campaign.phase(), Phase::Done);
        let report = campaign.report_json().expect("done campaigns report");
        assert!(report.contains("\"explored\""), "{report}");
        let status = campaign.status_json();
        assert!(status.contains(r#""state":"done""#), "{status}");
        handle.shutdown();
    }

    #[test]
    fn invalid_specs_and_backpressure_are_refused() {
        let handle = tiny_server();
        let state = Arc::clone(&handle.state);
        assert!(matches!(
            state.submit("not json"),
            Err(SubmitError::Invalid(_))
        ));
        assert!(matches!(
            state.submit(r#"{"bug": "No-Such-Bug"}"#),
            Err(SubmitError::Invalid(_))
        ));
        handle.shutdown();
    }

    #[test]
    fn cancelling_an_unknown_id_is_none() {
        let handle = tiny_server();
        assert!(handle.state.cancel_campaign("c-999").is_none());
        handle.shutdown();
    }
}

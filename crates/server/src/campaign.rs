//! One admitted campaign: identity, scheduling key, cancellation handle,
//! and the mutable status the HTTP layer reads while runners write.

use std::time::Instant;

use er_pi::telemetry::ProgressSnapshot;
use er_pi::{CancelToken, Report, SessionSummary};
use parking_lot::Mutex;
use serde::Serialize;

use crate::events::EventLog;
use crate::spec::{SubjectSpec, ValidSpec};

/// Lifecycle of a campaign, as reported by `GET /campaigns/:id`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Admitted, waiting for a runner.
    Queued,
    /// A runner is replaying it on the shared executor service.
    Running,
    /// Finished; the report is available.
    Done,
    /// Cancelled before completion (by `DELETE` or server shutdown).
    Cancelled,
    /// The replay errored; see `error` in the status payload.
    Failed,
}

impl Phase {
    /// Wire name of the phase.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Done => "done",
            Phase::Cancelled => "cancelled",
            Phase::Failed => "failed",
        }
    }

    /// Whether the campaign has left the queue and the runners for good.
    pub fn is_terminal(self) -> bool {
        matches!(self, Phase::Done | Phase::Cancelled | Phase::Failed)
    }
}

/// The runner-written, HTTP-read side of a campaign.
pub struct CampaignStatus {
    /// Where the campaign is in its lifecycle.
    pub phase: Phase,
    /// Latest live snapshot (present once the replay produced one).
    pub progress: Option<ProgressSnapshot>,
    /// The final report (present iff `phase == Done`).
    pub report: Option<Report>,
    /// The failure message (present iff `phase == Failed`).
    pub error: Option<String>,
}

/// An admitted campaign. Shared between the queue, the registry, the
/// runner executing it, and every HTTP connection polling it.
pub struct Campaign {
    /// Server-assigned identifier (`"c-1"`, `"c-2"`, …).
    pub id: String,
    /// Submission order, the FIFO tiebreak within a priority class.
    pub seq: u64,
    /// What to replay and how.
    pub spec: ValidSpec,
    /// Trips at `DELETE`; the executor service observes it at the next
    /// chunk boundary.
    pub cancel: CancelToken,
    /// Mutable status.
    pub status: Mutex<CampaignStatus>,
    /// When the submission was admitted (feeds the queue-wait and
    /// submit-to-report histograms).
    pub submitted_at: Instant,
    /// The live SSE stream behind `GET /campaigns/:id/events`.
    pub events: EventLog,
}

/// Why `GET /campaigns/:id/violations/:n` could not serve a bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExplainError {
    /// The campaign has not finished (HTTP 409).
    NotDone,
    /// The index is past the report's violation list (HTTP 404).
    OutOfRange,
    /// The violation is a cross-run check with no single interleaving to
    /// re-execute (HTTP 422).
    NoInterleaving,
}

/// JSON body of `GET /campaigns/:id`.
#[derive(Serialize)]
struct StatusBody {
    id: String,
    tenant: String,
    priority: u8,
    subject: String,
    cap: usize,
    state: String,
    progress: Option<ProgressSnapshot>,
    summary: Option<SessionSummary>,
    error: Option<String>,
}

impl Campaign {
    /// Creates an admitted campaign in [`Phase::Queued`].
    pub fn new(id: String, seq: u64, spec: ValidSpec) -> Self {
        Campaign {
            id,
            seq,
            spec,
            cancel: CancelToken::new(),
            status: Mutex::new(CampaignStatus {
                phase: Phase::Queued,
                progress: None,
                report: None,
                error: None,
            }),
            submitted_at: Instant::now(),
            events: EventLog::new(),
        }
    }

    /// The queue's scheduling key: lowest wins, FIFO within a priority.
    pub fn order_key(&self) -> (u8, u64) {
        (self.spec.priority, self.seq)
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.status.lock().phase
    }

    /// Renders the live status payload. While running this carries the
    /// latest [`ProgressSnapshot`]; once done it carries the final
    /// [`SessionSummary`].
    pub fn status_json(&self) -> String {
        let status = self.status.lock();
        let body = StatusBody {
            id: self.id.clone(),
            tenant: self.spec.tenant.clone(),
            priority: self.spec.priority,
            subject: self.spec.subject.label(),
            cap: self.spec.cap,
            state: status.phase.as_str().to_owned(),
            progress: status.progress.clone(),
            summary: status.report.as_ref().map(|r| r.session_summary.clone()),
            error: status.error.clone(),
        };
        serde_json::to_string(&body).expect("status bodies are serializable")
    }

    /// Renders the final report, if the campaign is done.
    pub fn report_json(&self) -> Option<String> {
        let status = self.status.lock();
        status.report.as_ref().map(Report::canonical_json)
    }

    /// Re-executes violation `n` of the final report and renders its
    /// forensic bundle. The bundle is a pure function of the campaign
    /// spec and the violation, so every client — and the `er-pi-explain`
    /// CLI replaying the same subject offline — gets byte-identical JSON
    /// regardless of how the campaign was scheduled.
    pub fn violation_json(&self, n: usize) -> Result<String, ExplainError> {
        let violation = {
            let status = self.status.lock();
            let report = status.report.as_ref().ok_or(ExplainError::NotDone)?;
            report
                .violations
                .get(n)
                .ok_or(ExplainError::OutOfRange)?
                .clone()
            // Drop the lock before the (cheap, single-interleaving)
            // re-execution below.
        };
        let bundle = match &self.spec.subject {
            SubjectSpec::Bug(bug) => bug.explain(&violation),
            SubjectSpec::Trace(case) => er_pi_fuzz::explain_for(case, &violation),
        };
        bundle
            .map(|b| b.canonical_json())
            .ok_or(ExplainError::NoInterleaving)
    }

    /// Marks the campaign terminal: records `phase`, appends the terminal
    /// SSE event (named after the phase, carrying the final status body),
    /// and closes the event stream. The status lock must NOT be held.
    pub fn finish(&self, phase: Phase) {
        self.status.lock().phase = phase;
        self.events.close_with(phase.as_str(), &self.status_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CampaignSpec;

    fn campaign() -> Campaign {
        let spec: CampaignSpec = serde_json::from_str(r#"{"bug": "Roshi-1"}"#).expect("parses");
        Campaign::new("c-1".to_owned(), 7, spec.validate().expect("valid"))
    }

    #[test]
    fn the_status_payload_tracks_the_phase() {
        let c = campaign();
        assert_eq!(c.order_key(), (5, 7));
        let json = c.status_json();
        assert!(json.contains(r#""state":"queued""#), "{json}");
        assert!(json.contains(r#""subject":"bug:Roshi-1""#), "{json}");
        assert!(c.report_json().is_none());

        c.status.lock().phase = Phase::Failed;
        c.status.lock().error = Some("boom".to_owned());
        let json = c.status_json();
        assert!(json.contains(r#""state":"failed""#), "{json}");
        assert!(json.contains("boom"), "{json}");
        assert!(Phase::Failed.is_terminal());
        assert!(!Phase::Running.is_terminal());
    }
}

//! The campaign submission schema: what a `POST /campaigns` body means.
//!
//! A spec names exactly one subject — a catalogue bug by name, or a
//! recorded trace as a [`FuzzCase`] (workload spec + fault schedule) — plus
//! the replay knobs the paper's campaigns vary: the interleaving cap (the
//! per-campaign run budget), stop-on-first, and incremental replay. All
//! knobs are optional in the JSON; [`CampaignSpec::validate`] fills the
//! defaults and rejects malformed submissions *before* a campaign ID is
//! assigned, so the queue only ever holds runnable work.

use er_pi_fuzz::FuzzCase;
use er_pi_subjects::Bug;
use serde::Deserialize;

/// Default interleaving cap when the spec leaves it out (the paper's
/// campaign bound, §6.2).
pub const DEFAULT_CAP: usize = 10_000;

/// Default scheduling priority (0 is the most urgent; FIFO within equal
/// priority).
pub const DEFAULT_PRIORITY: u8 = 5;

/// A `POST /campaigns` request body, as deserialized. Every field is
/// optional except the subject choice: exactly one of `bug` / `trace`
/// must be present.
#[derive(Debug, Clone, Deserialize)]
pub struct CampaignSpec {
    /// Submitting tenant; campaigns from the same tenant share its queue
    /// position fairness. Defaults to `"anon"`.
    #[serde(default)]
    pub tenant: Option<String>,
    /// Scheduling priority, 0 (most urgent) .. 9. Defaults to 5.
    #[serde(default)]
    pub priority: Option<u8>,
    /// Replay a catalogue bug by name (e.g. `"Roshi-1"`).
    #[serde(default)]
    pub bug: Option<String>,
    /// Replay a recorded trace: a workload spec plus fault schedule in the
    /// fuzzer's exchange format.
    #[serde(default)]
    pub trace: Option<FuzzCase>,
    /// Per-campaign run budget: replay at most this many interleavings.
    #[serde(default)]
    pub cap: Option<usize>,
    /// Stop at the first violating interleaving.
    #[serde(default)]
    pub stop_on_first_violation: Option<bool>,
    /// Prefix-sharing incremental replay (default on).
    #[serde(default)]
    pub incremental: Option<bool>,
    /// State-hash subsumption (default off; reports are byte-identical
    /// either way, subsumed runs show up in the cache counters and the
    /// progress stream).
    #[serde(default)]
    pub subsumption: Option<bool>,
    /// Sleep-set (DPOR-style) pruning (default off; the violation set is
    /// unchanged, the replayed representatives may differ).
    #[serde(default)]
    pub sleep_sets: Option<bool>,
}

/// The subject a validated campaign replays.
#[derive(Debug)]
pub enum SubjectSpec {
    /// A catalogue bug.
    Bug(Box<Bug>),
    /// A submitted trace.
    Trace(Box<FuzzCase>),
}

impl SubjectSpec {
    /// Short display label for status payloads (`"bug:Roshi-1"`,
    /// `"trace:ledger"`).
    pub fn label(&self) -> String {
        match self {
            SubjectSpec::Bug(bug) => format!("bug:{}", bug.name),
            SubjectSpec::Trace(case) => format!("trace:{:?}", case.target).to_lowercase(),
        }
    }
}

/// A spec that passed validation: defaults filled, subject resolved.
#[derive(Debug)]
pub struct ValidSpec {
    /// Submitting tenant.
    pub tenant: String,
    /// Scheduling priority, clamped to 0..=9.
    pub priority: u8,
    /// What to replay.
    pub subject: SubjectSpec,
    /// Run budget.
    pub cap: usize,
    /// Stop at the first violation.
    pub stop_on_first_violation: bool,
    /// Incremental replay.
    pub incremental: bool,
    /// State-hash subsumption.
    pub subsumption: bool,
    /// Sleep-set pruning.
    pub sleep_sets: bool,
}

impl CampaignSpec {
    /// Resolves defaults and checks the spec is runnable. The returned
    /// error string is the HTTP 400 body — it names the offending field.
    pub fn validate(self) -> Result<ValidSpec, String> {
        let subject = match (self.bug, self.trace) {
            (Some(_), Some(_)) => {
                return Err("spec names both 'bug' and 'trace'; pick one".to_owned())
            }
            (None, None) => return Err("spec names neither 'bug' nor 'trace'".to_owned()),
            (Some(name), None) => match Bug::by_name(&name) {
                Some(bug) => SubjectSpec::Bug(Box::new(bug)),
                None => return Err(format!("unknown catalogue bug '{name}'")),
            },
            (None, Some(case)) => {
                // The fuzzer's validate covers intra-workload references;
                // the degenerate shapes and fault anchors below would only
                // surface as a panic inside `FuzzCase::build`, so the
                // daemon rejects them at admission.
                if case.spec.replicas == 0 {
                    return Err("invalid trace: replicas must be at least 1".to_owned());
                }
                if case.spec.entries.is_empty() {
                    return Err("invalid trace: workload has no entries".to_owned());
                }
                case.spec
                    .validate()
                    .map_err(|e| format!("invalid trace: {e}"))?;
                if let Some(fault) = case
                    .faults
                    .iter()
                    .find(|f| f.anchor >= case.spec.entries.len())
                {
                    return Err(format!(
                        "invalid trace: fault anchor {} out of range",
                        fault.anchor
                    ));
                }
                SubjectSpec::Trace(Box::new(case))
            }
        };
        let cap = self.cap.unwrap_or(DEFAULT_CAP);
        if cap == 0 {
            return Err("cap must be at least 1".to_owned());
        }
        Ok(ValidSpec {
            tenant: self.tenant.unwrap_or_else(|| "anon".to_owned()),
            priority: self.priority.unwrap_or(DEFAULT_PRIORITY).min(9),
            subject,
            cap,
            stop_on_first_violation: self.stop_on_first_violation.unwrap_or(false),
            incremental: self.incremental.unwrap_or(true),
            subsumption: self.subsumption.unwrap_or(false),
            sleep_sets: self.sleep_sets.unwrap_or(false),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_bug_spec_fills_defaults() {
        let spec: CampaignSpec = serde_json::from_str(r#"{"bug": "Roshi-1"}"#).expect("parses");
        let valid = spec.validate().expect("valid");
        assert_eq!(valid.tenant, "anon");
        assert_eq!(valid.priority, DEFAULT_PRIORITY);
        assert_eq!(valid.cap, DEFAULT_CAP);
        assert!(valid.incremental);
        assert!(!valid.stop_on_first_violation);
        assert!(!valid.subsumption, "deep pruning is opt-in");
        assert!(!valid.sleep_sets, "deep pruning is opt-in");
        assert_eq!(valid.subject.label(), "bug:Roshi-1");
    }

    #[test]
    fn a_trace_spec_round_trips() {
        let json = r#"{
            "tenant": "team-a",
            "priority": 2,
            "cap": 500,
            "trace": {
                "target": "Ledger",
                "spec": {
                    "replicas": 2,
                    "entries": [
                        {"Op": {"replica": 0, "function": "credit", "args": [5]}},
                        {"SyncPair": {"from": 0, "to": 1, "of": 0}}
                    ],
                    "chain_from": null
                },
                "faults": [{"anchor": 1, "kind": "Duplicate"}]
            }
        }"#;
        let spec: CampaignSpec = serde_json::from_str(json).expect("parses");
        let valid = spec.validate().expect("valid");
        assert_eq!(valid.tenant, "team-a");
        assert_eq!(valid.priority, 2);
        assert_eq!(valid.cap, 500);
        assert_eq!(valid.subject.label(), "trace:ledger");
    }

    #[test]
    fn malformed_specs_name_the_offence() {
        let both: CampaignSpec = serde_json::from_str(
            r#"{"bug": "Roshi-1", "trace": {"target": "Crdts", "spec": {"replicas": 2, "entries": [], "chain_from": null}, "faults": []}}"#,
        )
        .expect("parses");
        assert!(both.validate().unwrap_err().contains("pick one"));

        let neither: CampaignSpec = serde_json::from_str("{}").expect("parses");
        assert!(neither.validate().unwrap_err().contains("neither"));

        let unknown: CampaignSpec =
            serde_json::from_str(r#"{"bug": "No-Such-Bug"}"#).expect("parses");
        assert!(unknown.validate().unwrap_err().contains("No-Such-Bug"));

        let empty_trace: CampaignSpec = serde_json::from_str(
            r#"{"trace": {"target": "Crdts", "spec": {"replicas": 2, "entries": [], "chain_from": null}, "faults": []}}"#,
        )
        .expect("parses");
        assert!(empty_trace
            .validate()
            .unwrap_err()
            .contains("invalid trace"));

        let zero_cap: CampaignSpec =
            serde_json::from_str(r#"{"bug": "Roshi-1", "cap": 0}"#).expect("parses");
        assert!(zero_cap.validate().unwrap_err().contains("cap"));
    }
}

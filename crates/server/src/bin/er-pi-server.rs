//! The campaign daemon binary.
//!
//! ```text
//! er-pi-server [--port N] [--workers N] [--runners N] [--queue-cap N]
//! ```
//!
//! `--workers 0` (the default) sizes the shared executor service to the
//! available cores, honouring the `ER_PI_WORKERS` override.

use er_pi_server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!("usage: er-pi-server [--port N] [--workers N] [--runners N] [--queue-cap N]");
    std::process::exit(2);
}

fn parse_args() -> ServerConfig {
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else { usage() };
        let parse = |v: &str| v.parse::<usize>().unwrap_or_else(|_| usage());
        match flag.as_str() {
            "--port" => config.port = value.parse().unwrap_or_else(|_| usage()),
            "--workers" => config.workers = parse(&value),
            "--runners" => config.runners = parse(&value).max(1),
            "--queue-cap" => config.queue_cap = parse(&value).max(1),
            _ => usage(),
        }
    }
    config
}

fn main() {
    let config = parse_args();
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("er-pi-server: bind failed: {e}");
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("er-pi-server listening on {addr}"),
        Err(e) => eprintln!("er-pi-server: local_addr: {e}"),
    }
    server.run();
}

//! The bounded admission queue: campaigns wait here for a runner slot.
//!
//! Admission is bounded (`cap`), so a burst of submissions degrades into
//! HTTP 429 instead of unbounded memory growth. Runners pop the lowest
//! `(priority, seq)` key — strict priority order, FIFO within a class —
//! mirroring the executor service's own job pick so a campaign's queue
//! position and its worker-time position agree.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::campaign::Campaign;

/// Admission refused: the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

struct QueueState {
    items: Vec<Arc<Campaign>>,
    closed: bool,
}

/// A bounded, priority-ordered campaign queue.
pub struct CampaignQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    cap: usize,
}

impl CampaignQueue {
    /// Creates a queue admitting at most `cap` waiting campaigns.
    pub fn new(cap: usize) -> Self {
        CampaignQueue {
            state: Mutex::new(QueueState {
                items: Vec::new(),
                closed: false,
            }),
            available: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Admits a campaign, or refuses with [`QueueFull`].
    pub fn push(&self, campaign: Arc<Campaign>) -> Result<(), QueueFull> {
        let mut state = self.state.lock();
        if state.closed || state.items.len() >= self.cap {
            return Err(QueueFull);
        }
        state.items.push(campaign);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until a campaign is available and returns the one with the
    /// lowest `(priority, seq)` key. Returns `None` once the queue is
    /// closed and drained.
    pub fn pop(&self) -> Option<Arc<Campaign>> {
        let mut state = self.state.lock();
        loop {
            if let Some(best) = state
                .items
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| c.order_key())
                .map(|(i, _)| i)
            {
                return Some(state.items.remove(best));
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state);
        }
    }

    /// Removes a still-queued campaign by ID (the `DELETE`-before-start
    /// path). Returns it if it was waiting here.
    pub fn remove(&self, id: &str) -> Option<Arc<Campaign>> {
        let mut state = self.state.lock();
        let at = state.items.iter().position(|c| c.id == id)?;
        Some(state.items.remove(at))
    }

    /// Number of waiting campaigns.
    pub fn depth(&self) -> usize {
        self.state.lock().items.len()
    }

    /// Waiting campaigns broken down by submitting tenant (the
    /// `er_pi_tenant_queue_depth` gauge's scrape source).
    pub fn tenant_depths(&self) -> std::collections::BTreeMap<String, usize> {
        let state = self.state.lock();
        let mut depths = std::collections::BTreeMap::new();
        for campaign in &state.items {
            *depths.entry(campaign.spec.tenant.clone()).or_insert(0) += 1;
        }
        depths
    }

    /// Closes the queue: further pushes refuse, and poppers drain what is
    /// left, then see `None`.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CampaignSpec;

    fn campaign(id: &str, seq: u64, priority: u8) -> Arc<Campaign> {
        let spec: CampaignSpec =
            serde_json::from_str(&format!(r#"{{"bug": "Roshi-1", "priority": {priority}}}"#))
                .expect("parses");
        Arc::new(Campaign::new(
            id.to_owned(),
            seq,
            spec.validate().expect("valid"),
        ))
    }

    #[test]
    fn pops_by_priority_then_fifo() {
        let q = CampaignQueue::new(8);
        q.push(campaign("c-1", 1, 5)).unwrap();
        q.push(campaign("c-2", 2, 1)).unwrap();
        q.push(campaign("c-3", 3, 1)).unwrap();
        assert_eq!(q.depth(), 3);
        assert_eq!(q.pop().unwrap().id, "c-2", "urgent class first");
        assert_eq!(q.pop().unwrap().id, "c-3", "FIFO within the class");
        assert_eq!(q.pop().unwrap().id, "c-1");
    }

    #[test]
    fn admission_is_bounded_and_removal_targets_by_id() {
        let q = CampaignQueue::new(2);
        q.push(campaign("c-1", 1, 5)).unwrap();
        q.push(campaign("c-2", 2, 5)).unwrap();
        assert_eq!(q.push(campaign("c-3", 3, 5)), Err(QueueFull));
        assert_eq!(q.remove("c-1").unwrap().id, "c-1");
        assert!(q.remove("c-1").is_none(), "already gone");
        q.push(campaign("c-4", 4, 5)).unwrap();
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn close_drains_then_signals_the_end() {
        let q = Arc::new(CampaignQueue::new(4));
        q.push(campaign("c-1", 1, 5)).unwrap();
        q.close();
        assert_eq!(q.push(campaign("c-2", 2, 5)), Err(QueueFull), "closed");
        assert_eq!(q.pop().unwrap().id, "c-1", "drains the backlog");
        assert!(q.pop().is_none(), "then reports closure");
    }
}

//! Submit → poll → report against a running `er-pi-server`.
//!
//! ```text
//! cargo run -p er-pi-server --example client -- 127.0.0.1:7420
//! ```
//!
//! Submits one catalogue-bug campaign, polls its live status until it
//! finishes, then fetches the canonical report and prints the headline
//! numbers.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One `Connection: close` HTTP exchange; returns (status code, body).
fn exchange(addr: &str, request: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let code = response
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    Ok((code, body))
}

fn get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    exchange(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Pulls a scalar field out of a flat JSON object (good enough for the
/// example's known payloads).
fn field<'a>(json: &'a str, name: &str) -> Option<&'a str> {
    let key = format!("\"{name}\":");
    let at = json.find(&key)? + key.len();
    let rest = json[at..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

fn main() -> std::io::Result<()> {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7420".to_owned());

    let (code, body) = get(&addr, "/healthz")?;
    assert_eq!(code, 200, "daemon not healthy: {body}");
    println!("healthz: {body}");

    let spec = r#"{"tenant": "example", "priority": 3, "bug": "Roshi-1", "cap": 2000}"#;
    let (code, body) = post(&addr, "/campaigns", spec)?;
    assert_eq!(code, 202, "submission refused: {body}");
    let id = field(&body, "id")
        .expect("submission returns an id")
        .to_owned();
    println!("submitted: {body}");

    loop {
        let (code, body) = get(&addr, &format!("/campaigns/{id}"))?;
        assert_eq!(code, 200, "status poll failed: {body}");
        let state = field(&body, "state").unwrap_or("?").to_owned();
        let runs = field(&body, "runs_done").unwrap_or("0").to_owned();
        println!("poll: state={state} runs_done={runs}");
        match state.as_str() {
            "done" => break,
            "cancelled" | "failed" => {
                eprintln!("campaign ended without a report: {body}");
                std::process::exit(1);
            }
            _ => std::thread::sleep(Duration::from_millis(100)),
        }
    }

    let (code, report) = get(&addr, &format!("/campaigns/{id}/report"))?;
    assert_eq!(code, 200, "report fetch failed: {report}");
    println!(
        "report: explored={} violations at first={}",
        field(&report, "explored").unwrap_or("?"),
        field(&report, "first_violation_at").unwrap_or("?"),
    );

    let (_, metrics) = get(&addr, "/metrics")?;
    println!("metrics: {metrics}");
    Ok(())
}

//! Identifier newtypes shared across the workspace.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies one replica of the replicated data system.
///
/// The paper's experimental setup uses three replicas (two laptops and a
/// Raspberry Pi); replica ids are small dense integers so they double as
/// vector-clock indices.
///
/// ```
/// use er_pi_model::ReplicaId;
///
/// let r = ReplicaId::new(2);
/// assert_eq!(r.index(), 2);
/// assert_eq!(r.to_string(), "R2");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct ReplicaId(u16);

impl ReplicaId {
    /// Creates a replica id from its dense index.
    pub const fn new(raw: u16) -> Self {
        ReplicaId(raw)
    }

    /// Returns the dense index of this replica (usable as an array index).
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw numeric value.
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl From<u16> for ReplicaId {
    fn from(raw: u16) -> Self {
        ReplicaId(raw)
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Identifies one event inside a [`Workload`](crate::Workload).
///
/// Event ids are dense indices into the workload's event table, assigned in
/// the order the events were recorded (i.e. program order of the original
/// run).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct EventId(u32);

impl EventId {
    /// Creates an event id from its dense index.
    pub const fn new(raw: u32) -> Self {
        EventId(raw)
    }

    /// Returns the dense index of this event.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw numeric value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for EventId {
    fn from(raw: u32) -> Self {
        EventId(raw)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A *dot*: the globally unique identity of one update, `(replica, counter)`.
///
/// Dots are the standard building block of operation-based CRDTs — the
/// `counter` is the per-replica sequence number of the update, so two
/// different updates can never share a dot.
///
/// ```
/// use er_pi_model::{Dot, ReplicaId};
///
/// let d1 = Dot::new(ReplicaId::new(0), 1);
/// let d2 = Dot::new(ReplicaId::new(0), 2);
/// assert!(d1 < d2);
/// assert_eq!(d1.to_string(), "R0:1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Dot {
    /// Replica that produced the update.
    pub replica: ReplicaId,
    /// Per-replica sequence number of the update (1-based).
    pub counter: u64,
}

impl Dot {
    /// Creates a dot.
    pub const fn new(replica: ReplicaId, counter: u64) -> Self {
        Dot { replica, counter }
    }
}

impl fmt::Display for Dot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.replica, self.counter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_id_roundtrip() {
        let r = ReplicaId::new(7);
        assert_eq!(r.index(), 7);
        assert_eq!(r.raw(), 7);
        assert_eq!(ReplicaId::from(7u16), r);
    }

    #[test]
    fn event_id_ordering_follows_index() {
        assert!(EventId::new(0) < EventId::new(1));
        assert_eq!(EventId::new(3).index(), 3);
    }

    #[test]
    fn dot_orders_by_replica_then_counter() {
        let a = Dot::new(ReplicaId::new(0), 5);
        let b = Dot::new(ReplicaId::new(1), 1);
        assert!(a < b);
        let c = Dot::new(ReplicaId::new(0), 6);
        assert!(a < c);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ReplicaId::new(1).to_string(), "R1");
        assert_eq!(EventId::new(4).to_string(), "e4");
        assert_eq!(Dot::new(ReplicaId::new(2), 9).to_string(), "R2:9");
    }

    #[test]
    fn serde_transparent() {
        let json = serde_json::to_string(&ReplicaId::new(3)).unwrap();
        assert_eq!(json, "3");
        let back: ReplicaId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ReplicaId::new(3));
    }
}

//! Interleavings: total orders over a workload's events.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{EventId, FaultPlan, LamportTimestamp, Workload};

/// One total order over a workload's events, plus the fault schedule it
/// executes under (empty by default — the fault-free baseline).
///
/// ```
/// use er_pi_model::{EventId, Interleaving};
///
/// let il = Interleaving::new(vec![EventId::new(2), EventId::new(0), EventId::new(1)]);
/// assert_eq!(il.position(EventId::new(0)), Some(1));
/// assert_eq!(il.to_string(), "⟨e2 e0 e1⟩");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interleaving {
    order: Vec<EventId>,
    /// The fault schedule this order runs under. Part of the run identity:
    /// equality, hashing, and [`fingerprint`](Interleaving::fingerprint)
    /// all include it, so the same order under two plans is two runs.
    /// `default` keeps pre-fault persisted orders deserializable.
    #[serde(default)]
    faults: FaultPlan,
}

impl Interleaving {
    /// Creates an interleaving from an explicit order (fault-free).
    pub fn new(order: Vec<EventId>) -> Self {
        Interleaving {
            order,
            faults: FaultPlan::empty(),
        }
    }

    /// The identity order over `n` events (`e0, e1, …`).
    pub fn identity(n: usize) -> Self {
        Interleaving::new((0..n as u32).map(EventId::new).collect())
    }

    /// Returns this order scheduled under `faults`.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The fault schedule this order runs under.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Number of events in the order.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` if the order is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Iterates over the event ids in execution order.
    pub fn iter(&self) -> std::slice::Iter<'_, EventId> {
        self.order.iter()
    }

    /// Returns the order as a slice.
    pub fn as_slice(&self) -> &[EventId] {
        &self.order
    }

    /// Consumes the interleaving, returning the underlying order (the fault
    /// plan, if any, is discarded).
    pub fn into_inner(self) -> Vec<EventId> {
        self.order
    }

    /// Returns the position of `id` in the order, if present.
    pub fn position(&self, id: EventId) -> Option<usize> {
        self.order.iter().position(|&e| e == id)
    }

    /// Returns a position lookup table: `table[event.index()] = position`.
    ///
    /// # Panics
    ///
    /// Panics if an event id's index exceeds `len` (the interleaving is not
    /// over dense ids `0..len`).
    pub fn position_table(&self) -> Vec<usize> {
        let mut table = vec![usize::MAX; self.order.len()];
        for (pos, &id) in self.order.iter().enumerate() {
            table[id.index()] = pos;
        }
        table
    }

    /// Returns `true` if `a` occurs before `b` in this order.
    ///
    /// # Panics
    ///
    /// Panics if either event is absent from the order.
    pub fn precedes(&self, a: EventId, b: EventId) -> bool {
        let pa = self.position(a).expect("event a in interleaving");
        let pb = self.position(b).expect("event b in interleaving");
        pa < pb
    }

    /// Assigns Lamport timestamps to every event of the order (paper §4.2):
    /// each event gets the timestamp `position + 1` at the replica where it
    /// executes, which is exactly the execution order the distributed lock
    /// enforces during replay.
    pub fn assign_timestamps(&self, workload: &Workload) -> Vec<(EventId, LamportTimestamp)> {
        self.order
            .iter()
            .enumerate()
            .map(|(pos, &id)| {
                let replica = workload.event(id).replica;
                (id, LamportTimestamp::new(pos as u64 + 1, replica))
            })
            .collect()
    }

    /// Length of the longest common prefix shared with `other` — the
    /// number of leading events the two orders execute identically.
    ///
    /// This is the quantity the incremental replay engine trades on:
    /// lexicographically adjacent interleavings share long prefixes, and a
    /// cached checkpoint at depth `common_prefix_len` lets the executor
    /// replay only the divergent suffix.
    ///
    /// ```
    /// use er_pi_model::{EventId, Interleaving};
    ///
    /// let e = |i| EventId::new(i);
    /// let a = Interleaving::new(vec![e(0), e(1), e(2), e(3)]);
    /// let b = Interleaving::new(vec![e(0), e(1), e(3), e(2)]);
    /// assert_eq!(a.common_prefix_len(&b), 2);
    /// assert_eq!(a.common_prefix_len(&a), 4);
    /// ```
    pub fn common_prefix_len(&self, other: &Interleaving) -> usize {
        // Two orders under different fault schedules never share replayable
        // state: even identical leading events can diverge at an anchored
        // fault, so the conservative (and sound) answer is zero. Finer
        // per-anchor sharing is the checkpoint trie's job — its edge keys
        // carry per-event fault digests.
        if self.faults != other.faults {
            return 0;
        }
        self.order
            .iter()
            .zip(&other.order)
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// A stable 64-bit fingerprint of the order (FNV-1a), used by the Random
    /// explorer's seen-set and by persistence layers as a compact key.
    ///
    /// A non-empty fault plan mixes its digest in, so the same order under
    /// two schedules fingerprints differently; fault-free fingerprints are
    /// unchanged from earlier versions.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &id in &self.order {
            for b in id.raw().to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        let plan = self.faults.digest();
        if plan != 0 {
            for b in plan.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

impl From<Vec<EventId>> for Interleaving {
    fn from(order: Vec<EventId>) -> Self {
        Interleaving::new(order)
    }
}

impl FromIterator<EventId> for Interleaving {
    fn from_iter<I: IntoIterator<Item = EventId>>(iter: I) -> Self {
        Interleaving::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Interleaving {
    type Item = &'a EventId;
    type IntoIter = std::slice::Iter<'a, EventId>;

    fn into_iter(self) -> Self::IntoIter {
        self.order.iter()
    }
}

impl fmt::Display for Interleaving {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("⟨")?;
        for (i, id) in self.order.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{id}")?;
        }
        f.write_str("⟩")?;
        if !self.faults.is_empty() {
            write!(f, " ⚡{}", self.faults)?;
        }
        Ok(())
    }
}

/// `n!` as a `u128`, saturating at `u128::MAX` (34! overflows).
///
/// ```
/// use er_pi_model::factorial;
///
/// assert_eq!(factorial(7), 5040);
/// assert_eq!(factorial(0), 1);
/// assert_eq!(factorial(40), u128::MAX); // saturated
/// ```
pub fn factorial(n: usize) -> u128 {
    let mut acc: u128 = 1;
    for k in 2..=n as u128 {
        acc = match acc.checked_mul(k) {
            Some(v) => v,
            None => return u128::MAX,
        };
    }
    acc
}

/// The problem-space reduction factor `⌊total / remaining⌋` the paper
/// reports (e.g. `⌊5040 / 19⌋ = 265` for the motivating example).
///
/// Returns `None` if `remaining` is zero.
pub fn reduction_factor(total: u128, remaining: u128) -> Option<u128> {
    total.checked_div(remaining)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Interleaving {
        raw.iter().copied().map(EventId::new).collect()
    }

    #[test]
    fn identity_is_sorted() {
        let il = Interleaving::identity(4);
        assert_eq!(il.as_slice(), &[0, 1, 2, 3].map(EventId::new));
    }

    #[test]
    fn position_and_precedes() {
        let il = ids(&[2, 0, 1]);
        assert_eq!(il.position(EventId::new(2)), Some(0));
        assert!(il.precedes(EventId::new(2), EventId::new(1)));
        assert!(!il.precedes(EventId::new(1), EventId::new(2)));
    }

    #[test]
    fn position_table_inverts_order() {
        let il = ids(&[2, 0, 1]);
        let table = il.position_table();
        assert_eq!(table, vec![1, 2, 0]);
    }

    #[test]
    fn common_prefix_len_edges() {
        let a = ids(&[0, 1, 2]);
        let b = ids(&[1, 0, 2]);
        assert_eq!(a.common_prefix_len(&b), 0);
        assert_eq!(a.common_prefix_len(&ids(&[0, 1])), 2);
        assert_eq!(ids(&[]).common_prefix_len(&a), 0);
    }

    #[test]
    fn fingerprint_distinguishes_orders() {
        let a = ids(&[0, 1, 2]);
        let b = ids(&[0, 2, 1]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), ids(&[0, 1, 2]).fingerprint());
    }

    #[test]
    fn factorial_small_values() {
        assert_eq!(factorial(1), 1);
        assert_eq!(factorial(4), 24);
        assert_eq!(factorial(8), 40_320);
        assert_eq!(factorial(10), 3_628_800);
        // 21 events (Roshi-3): astronomically large but still representable.
        assert_eq!(factorial(21), 51_090_942_171_709_440_000);
    }

    #[test]
    fn reduction_factor_matches_paper_motivating_example() {
        assert_eq!(reduction_factor(5040, 19), Some(265));
        assert_eq!(reduction_factor(40_320, 720), Some(56));
        assert_eq!(reduction_factor(10, 0), None);
    }

    #[test]
    fn timestamps_follow_positions() {
        use crate::{ReplicaId, Workload};
        let mut w = Workload::builder();
        let a = w.update(ReplicaId::new(0), "x", [1]);
        let b = w.update(ReplicaId::new(1), "y", [2]);
        let w = w.build();
        let il = Interleaving::new(vec![b, a]);
        let ts = il.assign_timestamps(&w);
        assert_eq!(ts[0].0, b);
        assert_eq!(ts[0].1.time, 1);
        assert_eq!(ts[0].1.replica, ReplicaId::new(1));
        assert_eq!(ts[1].1.time, 2);
    }

    #[test]
    fn display_wraps_in_angle_brackets() {
        assert_eq!(ids(&[1, 0]).to_string(), "⟨e1 e0⟩");
    }

    #[test]
    fn fault_plans_enter_the_run_identity() {
        use crate::{FaultEvent, FaultKind, FaultPlan};
        let base = ids(&[0, 1, 2]);
        let plan = FaultPlan::new(vec![FaultEvent::new(EventId::new(1), FaultKind::Duplicate)]);
        let faulted = base.clone().with_faults(plan.clone());
        assert_ne!(base, faulted);
        assert_ne!(base.fingerprint(), faulted.fingerprint());
        // The fault-free fingerprint is stable across the plan's addition.
        assert_eq!(
            base.fingerprint(),
            base.clone().with_faults(FaultPlan::empty()).fingerprint()
        );
        // Different schedules over the same order never share a prefix …
        assert_eq!(base.common_prefix_len(&faulted), 0);
        // … but the same schedule shares prefixes as before.
        let faulted2 = ids(&[0, 1, 2]).with_faults(plan);
        assert_eq!(faulted.common_prefix_len(&faulted2), 3);
    }

    #[test]
    fn legacy_serialized_orders_still_deserialize() {
        // Persisted interleavings from before the fault model carry no
        // `faults` field; `#[serde(default)]` reads them as fault-free.
        let legacy = r#"{"order":[1,0]}"#;
        let back: Interleaving = serde_json::from_str(legacy).unwrap();
        assert_eq!(back, ids(&[1, 0]));
        assert!(back.faults().is_empty());
        let json = serde_json::to_string(&ids(&[1, 0])).unwrap();
        let again: Interleaving = serde_json::from_str(&json).unwrap();
        assert_eq!(again, ids(&[1, 0]));
    }

    #[test]
    fn faulted_serialization_roundtrips() {
        use crate::{FaultEvent, FaultKind, FaultPlan};
        let il = ids(&[1, 0]).with_faults(FaultPlan::new(vec![FaultEvent::new(
            EventId::new(0),
            FaultKind::Drop,
        )]));
        let json = serde_json::to_string(&il).unwrap();
        let back: Interleaving = serde_json::from_str(&json).unwrap();
        assert_eq!(back, il);
        assert_eq!(back.faults().len(), 1);
    }
}

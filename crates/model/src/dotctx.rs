//! Dot contexts: exact tracking of observed update identities.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::{Dot, ReplicaId, VersionVector};

/// Tracks exactly which [`Dot`]s have been observed, tolerating gaps.
///
/// A plain [`VersionVector`] can only represent contiguous prefixes of each
/// replica's updates; delivering operation 2 before operation 1 would either
/// lose information or (with gap-absorbing semantics) wrongly mark the
/// earlier operation as seen. A dot context keeps a compact vector for the
/// contiguous prefix plus a *cloud* of out-of-order dots, compacting the
/// cloud into the vector as gaps fill.
///
/// ```
/// use er_pi_model::{Dot, DotContext, ReplicaId};
///
/// let r = ReplicaId::new(0);
/// let mut ctx = DotContext::new();
/// ctx.add(Dot::new(r, 2)); // out of order
/// assert!(ctx.contains(Dot::new(r, 2)));
/// assert!(!ctx.contains(Dot::new(r, 1)));
/// ctx.add(Dot::new(r, 1)); // gap fills, cloud compacts
/// assert_eq!(ctx.vector().get(r), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DotContext {
    vector: VersionVector,
    cloud: BTreeSet<Dot>,
}

impl DotContext {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` if `dot` has been observed.
    pub fn contains(&self, dot: Dot) -> bool {
        self.vector.contains(dot) || self.cloud.contains(&dot)
    }

    /// Records `dot` as observed, compacting the cloud when possible.
    pub fn add(&mut self, dot: Dot) {
        if self.vector.contains(dot) {
            return;
        }
        if dot.counter == self.vector.get(dot.replica) + 1 {
            self.advance_contiguous(dot.replica, dot.counter);
        } else {
            self.cloud.insert(dot);
        }
    }

    fn advance_contiguous(&mut self, replica: ReplicaId, mut counter: u64) {
        // Extend the contiguous prefix as far as the cloud allows.
        while self.cloud.remove(&Dot::new(replica, counter + 1)) {
            counter += 1;
        }
        self.vector.observe(Dot::new(replica, counter));
    }

    /// Mints the next dot for a local update at `replica` and records it.
    pub fn next_dot(&mut self, replica: ReplicaId) -> Dot {
        // Local updates are always contiguous for the local replica.
        let dot = Dot::new(replica, self.vector.get(replica) + 1);
        self.add(dot);
        dot
    }

    /// The compact (contiguous-prefix) version vector.
    ///
    /// This is what gets attached to sync requests: the sender responds with
    /// every operation not covered by it, and the receiver's cloud dedups
    /// any operations it already holds out of order.
    pub fn vector(&self) -> &VersionVector {
        &self.vector
    }

    /// Number of out-of-order dots currently parked in the cloud.
    pub fn cloud_len(&self) -> usize {
        self.cloud.len()
    }

    /// Merges another context (union of observations).
    pub fn merge(&mut self, other: &DotContext) {
        for (r, c) in other.vector.iter() {
            for k in self.vector.get(r) + 1..=c {
                self.add(Dot::new(r, k));
            }
        }
        for &d in &other.cloud {
            self.add(d);
        }
    }
}

impl crate::CanonicalEncode for DotContext {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        self.vector.encode_canonical(out);
        // The cloud is a BTreeSet: iteration order is sorted, deterministic.
        (self.cloud.len() as u64).encode_canonical(out);
        for dot in &self.cloud {
            dot.encode_canonical(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    #[test]
    fn out_of_order_dots_stay_distinct() {
        let mut ctx = DotContext::new();
        ctx.add(Dot::new(r(0), 3));
        assert!(ctx.contains(Dot::new(r(0), 3)));
        assert!(!ctx.contains(Dot::new(r(0), 1)));
        assert!(!ctx.contains(Dot::new(r(0), 2)));
        assert_eq!(ctx.cloud_len(), 1);
        assert_eq!(ctx.vector().get(r(0)), 0);
    }

    #[test]
    fn cloud_compacts_when_gap_fills() {
        let mut ctx = DotContext::new();
        ctx.add(Dot::new(r(0), 2));
        ctx.add(Dot::new(r(0), 3));
        assert_eq!(ctx.cloud_len(), 2);
        ctx.add(Dot::new(r(0), 1));
        assert_eq!(ctx.cloud_len(), 0);
        assert_eq!(ctx.vector().get(r(0)), 3);
    }

    #[test]
    fn add_is_idempotent() {
        let mut ctx = DotContext::new();
        ctx.add(Dot::new(r(0), 1));
        let snapshot = ctx.clone();
        ctx.add(Dot::new(r(0), 1));
        assert_eq!(ctx, snapshot);
    }

    #[test]
    fn next_dot_is_sequential() {
        let mut ctx = DotContext::new();
        assert_eq!(ctx.next_dot(r(1)), Dot::new(r(1), 1));
        assert_eq!(ctx.next_dot(r(1)), Dot::new(r(1), 2));
        assert_eq!(ctx.vector().get(r(1)), 2);
    }

    #[test]
    fn merge_unions_observations() {
        let mut a = DotContext::new();
        a.add(Dot::new(r(0), 1));
        a.add(Dot::new(r(1), 2)); // cloud
        let mut b = DotContext::new();
        b.add(Dot::new(r(1), 1));
        a.merge(&b);
        assert_eq!(a.vector().get(r(1)), 2, "gap filled by merge");
        assert_eq!(a.cloud_len(), 0);
    }
}

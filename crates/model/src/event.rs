//! The distributed event abstraction that ER-π intercepts and replays.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{EventId, ReplicaId, Value};

/// Describes one intercepted RDL function invocation: the function name plus
/// its (dynamically typed) arguments.
///
/// This is what the paper's language-specific proxies (Go AST rewriting, JS
/// monkey patching, Java dynamic proxies) extract; in this reproduction the
/// proxy layer in `er-pi` records these descriptors through static wrappers.
///
/// ```
/// use er_pi_model::{OpDescriptor, Value};
///
/// let op = OpDescriptor::new("add", [Value::from("pothole")]);
/// assert_eq!(op.function(), "add");
/// assert_eq!(op.to_string(), r#"add("pothole")"#);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OpDescriptor {
    function: String,
    args: Vec<Value>,
}

impl OpDescriptor {
    /// Creates a descriptor for a call of `function` with `args`.
    pub fn new<A>(function: impl Into<String>, args: A) -> Self
    where
        A: IntoIterator,
        A::Item: Into<Value>,
    {
        OpDescriptor {
            function: function.into(),
            args: args.into_iter().map(Into::into).collect(),
        }
    }

    /// Creates a descriptor for a zero-argument call.
    pub fn nullary(function: impl Into<String>) -> Self {
        OpDescriptor::new(function, std::iter::empty::<Value>())
    }

    /// The intercepted function name.
    pub fn function(&self) -> &str {
        &self.function
    }

    /// The intercepted arguments.
    pub fn args(&self) -> &[Value] {
        &self.args
    }

    /// Convenience accessor for the `i`-th argument.
    pub fn arg(&self, i: usize) -> Option<&Value> {
        self.args.get(i)
    }
}

impl fmt::Display for OpDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.function)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{a}")?;
        }
        f.write_str(")")
    }
}

/// The kind of a distributed event, following the paper's event taxonomy.
///
/// * `LocalUpdate` — an application-issued RDL mutation at one replica.
/// * `SyncSend` — a replica ships a synchronization request to a peer
///   ("send sync request" in Algorithm 1).
/// * `SyncExec` — the peer executes a previously sent request
///   ("execute sync request").
/// * `Sync` — a fused send+execute pair, used where the paper draws a single
///   `sync(ev)` arrow (Figure 2); semantically equivalent to an already
///   event-grouped pair.
/// * `External` — an effectful action outside the RDL (e.g. `ev_IV`,
///   transmitting the issue set to the municipality).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// Application-issued RDL mutation executed at [`Event::replica`].
    LocalUpdate {
        /// The intercepted library call.
        op: OpDescriptor,
    },
    /// [`Event::replica`] sends a sync request to `to`.
    SyncSend {
        /// Receiving replica.
        to: ReplicaId,
        /// The update event whose effects this request ships, if tracked.
        of: Option<EventId>,
    },
    /// [`Event::replica`] executes a sync request received from `from`.
    SyncExec {
        /// Sending replica.
        from: ReplicaId,
        /// The matching [`EventKind::SyncSend`] event.
        send: EventId,
    },
    /// Fused synchronization from [`Event::replica`] (the sender) to `to`.
    Sync {
        /// Receiving replica.
        to: ReplicaId,
        /// The update event whose effects this synchronization ships.
        of: Option<EventId>,
    },
    /// Effectful action outside the RDL (observation, transmission, ...).
    External {
        /// Human-readable label, also used by assertions to find the event.
        label: String,
    },
}

/// One distributed event raised during the intercepted workload.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Event {
    /// Dense id of the event within its workload.
    pub id: EventId,
    /// Replica at which the event executes.
    pub replica: ReplicaId,
    /// What the event does.
    pub kind: EventKind,
    /// Explicit causal predecessors, beyond the implicit ones derivable
    /// from `kind` (a `SyncExec` always depends on its `SyncSend`; a
    /// `SyncSend`/`Sync` with a tracked `of` depends on that update).
    pub deps: Vec<EventId>,
}

impl Event {
    /// Returns `(from, to)` replica endpoints if this is a synchronization
    /// event (of any flavour), `None` otherwise.
    ///
    /// This is the `fromReplicaId` / `toReplicaId` pair that Algorithm 1
    /// (event grouping) matches on.
    pub fn sync_endpoints(&self) -> Option<(ReplicaId, ReplicaId)> {
        match &self.kind {
            EventKind::SyncSend { to, .. } | EventKind::Sync { to, .. } => {
                Some((self.replica, *to))
            }
            EventKind::SyncExec { from, .. } => Some((*from, self.replica)),
            _ => None,
        }
    }

    /// Returns `true` if this is a "send sync request" event.
    pub fn is_sync_send(&self) -> bool {
        matches!(self.kind, EventKind::SyncSend { .. })
    }

    /// Returns `true` if this is an "execute sync request" event.
    pub fn is_sync_exec(&self) -> bool {
        matches!(self.kind, EventKind::SyncExec { .. })
    }

    /// Returns `true` for any synchronization flavour.
    pub fn is_sync(&self) -> bool {
        self.sync_endpoints().is_some()
    }

    /// Returns `true` if this is a local RDL update.
    pub fn is_update(&self) -> bool {
        matches!(self.kind, EventKind::LocalUpdate { .. })
    }

    /// Returns the intercepted call for local updates.
    pub fn op(&self) -> Option<&OpDescriptor> {
        match &self.kind {
            EventKind::LocalUpdate { op } => Some(op),
            _ => None,
        }
    }

    /// Implicit causal predecessors derived from the event kind.
    pub fn implicit_deps(&self) -> Vec<EventId> {
        match &self.kind {
            EventKind::SyncExec { send, .. } => vec![*send],
            EventKind::SyncSend { of: Some(of), .. } | EventKind::Sync { of: Some(of), .. } => {
                vec![*of]
            }
            _ => Vec::new(),
        }
    }

    /// All causal predecessors: implicit ones plus explicit [`Event::deps`].
    pub fn all_deps(&self) -> Vec<EventId> {
        let mut deps = self.implicit_deps();
        for &d in &self.deps {
            if !deps.contains(&d) {
                deps.push(d);
            }
        }
        deps
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            EventKind::LocalUpdate { op } => write!(f, "{}[{} {}]", self.id, self.replica, op),
            EventKind::SyncSend { to, .. } => {
                write!(f, "{}[{}→{} send]", self.id, self.replica, to)
            }
            EventKind::SyncExec { from, .. } => {
                write!(f, "{}[{}←{} exec]", self.id, self.replica, from)
            }
            EventKind::Sync { to, .. } => write!(f, "{}[{}⇒{} sync]", self.id, self.replica, to),
            EventKind::External { label } => write!(f, "{}[{} !{}]", self.id, self.replica, label),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn e(i: u32) -> EventId {
        EventId::new(i)
    }

    fn update(id: u32, rep: u16) -> Event {
        Event {
            id: e(id),
            replica: r(rep),
            kind: EventKind::LocalUpdate {
                op: OpDescriptor::new("add", [Value::from(1)]),
            },
            deps: vec![],
        }
    }

    #[test]
    fn sync_endpoints_for_each_flavour() {
        let send = Event {
            id: e(1),
            replica: r(0),
            kind: EventKind::SyncSend { to: r(1), of: None },
            deps: vec![],
        };
        let exec = Event {
            id: e(2),
            replica: r(1),
            kind: EventKind::SyncExec {
                from: r(0),
                send: e(1),
            },
            deps: vec![],
        };
        let fused = Event {
            id: e(3),
            replica: r(0),
            kind: EventKind::Sync { to: r(1), of: None },
            deps: vec![],
        };
        assert_eq!(send.sync_endpoints(), Some((r(0), r(1))));
        assert_eq!(exec.sync_endpoints(), Some((r(0), r(1))));
        assert_eq!(fused.sync_endpoints(), Some((r(0), r(1))));
        assert_eq!(update(0, 0).sync_endpoints(), None);
    }

    #[test]
    fn implicit_deps_follow_kind() {
        let exec = Event {
            id: e(2),
            replica: r(1),
            kind: EventKind::SyncExec {
                from: r(0),
                send: e(1),
            },
            deps: vec![e(0)],
        };
        assert_eq!(exec.implicit_deps(), vec![e(1)]);
        assert_eq!(exec.all_deps(), vec![e(1), e(0)]);
    }

    #[test]
    fn all_deps_deduplicates() {
        let sync = Event {
            id: e(2),
            replica: r(0),
            kind: EventKind::Sync {
                to: r(1),
                of: Some(e(0)),
            },
            deps: vec![e(0), e(1)],
        };
        assert_eq!(sync.all_deps(), vec![e(0), e(1)]);
    }

    #[test]
    fn classification_predicates() {
        let u = update(0, 0);
        assert!(u.is_update());
        assert!(!u.is_sync());
        assert_eq!(u.op().unwrap().function(), "add");
    }

    #[test]
    fn op_descriptor_accessors() {
        let op = OpDescriptor::new("move", [Value::from(1), Value::from(3)]);
        assert_eq!(op.args().len(), 2);
        assert_eq!(op.arg(1), Some(&Value::from(3)));
        assert_eq!(op.arg(2), None);
        assert_eq!(OpDescriptor::nullary("clear").args().len(), 0);
    }

    #[test]
    fn display_is_informative() {
        let s = update(4, 2).to_string();
        assert!(s.contains("e4"), "{s}");
        assert!(s.contains("R2"), "{s}");
        assert!(s.contains("add"), "{s}");
    }
}

//! Lamport logical clocks and timestamps.
//!
//! ER-π assigns a Lamport timestamp to every event of every generated
//! interleaving (paper §4.2); the timestamp defines the execution order that
//! the distributed lock enforces during replay. The replicated data library
//! substrate also uses Lamport timestamps for last-write-wins conflict
//! resolution.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ReplicaId;

/// A Lamport timestamp: logical time plus the replica that produced it.
///
/// The replica id acts as the tie-breaker, giving a *total* order — two
/// distinct events on different replicas with the same logical time still
/// compare deterministically. This is exactly the property the OrbitDB-1
/// bug (issue #513) violates when the tie-breaking identity collides.
///
/// ```
/// use er_pi_model::{LamportTimestamp, ReplicaId};
///
/// let t1 = LamportTimestamp::new(4, ReplicaId::new(0));
/// let t2 = LamportTimestamp::new(4, ReplicaId::new(1));
/// assert!(t1 < t2); // same time, replica breaks the tie
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LamportTimestamp {
    /// Logical time component.
    pub time: u64,
    /// Replica that produced the event; the deterministic tie-breaker.
    pub replica: ReplicaId,
}

impl LamportTimestamp {
    /// Creates a timestamp.
    pub const fn new(time: u64, replica: ReplicaId) -> Self {
        LamportTimestamp { time, replica }
    }

    /// Returns the timestamp immediately after `self` on the same replica.
    #[must_use]
    pub fn successor(self) -> Self {
        LamportTimestamp::new(self.time + 1, self.replica)
    }
}

impl fmt::Display for LamportTimestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.time, self.replica)
    }
}

impl crate::CanonicalEncode for LamportTimestamp {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        self.time.encode_canonical(out);
        self.replica.encode_canonical(out);
    }
}

/// A per-replica Lamport clock.
///
/// `tick` advances local time for a local event; `observe` merges a remote
/// timestamp on message receipt, per Lamport's happened-before rules.
///
/// ```
/// use er_pi_model::{LamportClock, LamportTimestamp, ReplicaId};
///
/// let mut a = LamportClock::new(ReplicaId::new(0));
/// let mut b = LamportClock::new(ReplicaId::new(1));
/// let ta = a.tick(); // 1@R0
/// let tb = b.observe(ta); // receipt: max(0, 1) + 1 = 2@R1
/// assert!(tb > ta);
/// assert_eq!(tb, LamportTimestamp::new(2, ReplicaId::new(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LamportClock {
    replica: ReplicaId,
    time: u64,
}

impl LamportClock {
    /// Creates a clock at logical time zero for `replica`.
    pub const fn new(replica: ReplicaId) -> Self {
        LamportClock { replica, time: 0 }
    }

    /// Returns the replica this clock belongs to.
    pub const fn replica(&self) -> ReplicaId {
        self.replica
    }

    /// Returns the current logical time without advancing it.
    pub const fn time(&self) -> u64 {
        self.time
    }

    /// Returns the current timestamp without advancing the clock.
    pub const fn now(&self) -> LamportTimestamp {
        LamportTimestamp::new(self.time, self.replica)
    }

    /// Advances the clock for a local event and returns the new timestamp.
    pub fn tick(&mut self) -> LamportTimestamp {
        self.time += 1;
        self.now()
    }

    /// Merges a remote timestamp on message receipt and returns the new
    /// local timestamp (`max(local, remote) + 1`).
    pub fn observe(&mut self, remote: LamportTimestamp) -> LamportTimestamp {
        self.time = self.time.max(remote.time) + 1;
        self.now()
    }

    /// Forces the clock to an arbitrary time.
    ///
    /// Exists to model the OrbitDB-2 bug (issue #512), where a Lamport clock
    /// "set far into the future" halts database progress. Regular code
    /// should never need this.
    pub fn force(&mut self, time: u64) {
        self.time = time;
    }
}

impl crate::CanonicalEncode for LamportClock {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        self.replica.encode_canonical(out);
        self.time.encode_canonical(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    #[test]
    fn tick_is_monotonic() {
        let mut c = LamportClock::new(r(0));
        let t1 = c.tick();
        let t2 = c.tick();
        assert!(t2 > t1);
        assert_eq!(t2.time, 2);
    }

    #[test]
    fn observe_jumps_past_remote() {
        let mut c = LamportClock::new(r(1));
        let t = c.observe(LamportTimestamp::new(10, r(0)));
        assert_eq!(t.time, 11);
        assert_eq!(t.replica, r(1));
    }

    #[test]
    fn observe_of_old_timestamp_still_advances() {
        let mut c = LamportClock::new(r(1));
        c.force(20);
        let t = c.observe(LamportTimestamp::new(3, r(0)));
        assert_eq!(t.time, 21);
    }

    #[test]
    fn happened_before_implies_smaller_timestamp() {
        // Classic Lamport property: if a -> b (same process or via message),
        // then ts(a) < ts(b).
        let mut a = LamportClock::new(r(0));
        let mut b = LamportClock::new(r(1));
        let send = a.tick();
        let local_b = b.tick();
        let recv = b.observe(send);
        assert!(send < recv);
        assert!(local_b < recv);
    }

    #[test]
    fn total_order_breaks_ties_by_replica() {
        let x = LamportTimestamp::new(5, r(0));
        let y = LamportTimestamp::new(5, r(2));
        assert!(x < y);
        assert_ne!(x, y);
    }

    #[test]
    fn successor_increments_time_only() {
        let t = LamportTimestamp::new(7, r(1)).successor();
        assert_eq!(t, LamportTimestamp::new(8, r(1)));
    }

    #[test]
    fn force_models_poisoned_clock() {
        let mut c = LamportClock::new(r(0));
        c.force(u64::MAX / 2);
        assert_eq!(c.time(), u64::MAX / 2);
        let t = c.tick();
        assert_eq!(t.time, u64::MAX / 2 + 1);
    }
}

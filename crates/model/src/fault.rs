//! Fault plans: faults as deterministic, schedulable choice points.
//!
//! ER-π's original fault story lived in the virtual network's RNG-seeded
//! delivery modes — adverse behaviors *outside* the replayed schedule, so a
//! fault-dependent violation could not be exhaustively searched for or
//! minimally reproduced. This module promotes faults to first-class recorded
//! events (the iReplayer lesson): a [`FaultPlan`] is a set of
//! [`FaultEvent`]s, each anchored to a workload event id, and the plan
//! travels *inside* the [`Interleaving`](crate::Interleaving) so every
//! downstream layer — dedup, pooling, checkpoint reuse, persistence,
//! telemetry — sees the fault schedule as part of the run identity.
//!
//! Anchoring on [`EventId`] (not on interleaving positions) keeps a plan
//! meaningful across *every* order of the same workload, which is what lets
//! the explorer take the product `interleavings × plans` without re-deriving
//! plans per order.

use serde::{Deserialize, Serialize};

use crate::{EventId, ReplicaId};

/// One kind of injected fault, interpreted relative to its anchor event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// The anchor event's effect is lost: the op is recorded as failed and
    /// never applied (a dropped message).
    Drop,
    /// The anchor event's effect is applied twice (a duplicated delivery).
    Duplicate,
    /// The anchor event's effect is deferred by `by` schedule steps — the
    /// reorder-window fault: the op is recorded as failed at its slot and
    /// its effect lands after `by` later events have executed.
    Delay {
        /// How many schedule steps later the effect fires.
        by: u32,
    },
    /// Just before the anchor executes, the link between `from` and `to` is
    /// cut (symmetric). Sync events across a cut link fail deterministically.
    Partition {
        /// One endpoint of the cut link.
        from: ReplicaId,
        /// The other endpoint.
        to: ReplicaId,
    },
    /// Just before the anchor executes, the link between `from` and `to` is
    /// restored.
    Heal {
        /// One endpoint of the restored link.
        from: ReplicaId,
        /// The other endpoint.
        to: ReplicaId,
    },
    /// Just before the anchor executes, `replica` crashes and restarts,
    /// recovering via [`SystemModel::recover`] (log replay in models that
    /// keep a durable log; fresh init otherwise).
    ///
    /// [`SystemModel::recover`]: https://docs.rs/er-pi
    CrashRestart {
        /// The replica that crashes.
        replica: ReplicaId,
    },
}

impl FaultKind {
    /// Stable discriminant used by digests (serialization-independent).
    fn tag(&self) -> u8 {
        match self {
            FaultKind::Drop => 1,
            FaultKind::Duplicate => 2,
            FaultKind::Delay { .. } => 3,
            FaultKind::Partition { .. } => 4,
            FaultKind::Heal { .. } => 5,
            FaultKind::CrashRestart { .. } => 6,
        }
    }

    fn mix(&self, h: &mut u64) {
        fnv(h, &[self.tag()]);
        match self {
            FaultKind::Drop | FaultKind::Duplicate => {}
            FaultKind::Delay { by } => fnv(h, &by.to_le_bytes()),
            FaultKind::Partition { from, to } | FaultKind::Heal { from, to } => {
                fnv(h, &from.raw().to_le_bytes());
                fnv(h, &to.raw().to_le_bytes());
            }
            FaultKind::CrashRestart { replica } => fnv(h, &replica.raw().to_le_bytes()),
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Drop => f.write_str("drop"),
            FaultKind::Duplicate => f.write_str("duplicate"),
            FaultKind::Delay { by } => write!(f, "delay+{by}"),
            FaultKind::Partition { from, to } => write!(f, "partition {from}⊥{to}"),
            FaultKind::Heal { from, to } => write!(f, "heal {from}~{to}"),
            FaultKind::CrashRestart { replica } => write!(f, "crash {replica}"),
        }
    }
}

/// One scheduled fault: a [`FaultKind`] anchored at a workload event.
///
/// The anchor is the event *at whose execution step* the fault takes
/// effect; because anchors are event ids, the same plan is meaningful in
/// every interleaving of the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FaultEvent {
    /// The workload event the fault is attached to.
    pub anchor: EventId,
    /// What happens there.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Creates a fault event.
    pub fn new(anchor: EventId, kind: FaultKind) -> Self {
        FaultEvent { anchor, kind }
    }
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.kind, self.anchor)
    }
}

/// A deterministic fault schedule: a sorted set of [`FaultEvent`]s.
///
/// The empty plan is the fault-free baseline; [`Interleaving`]s carry a plan
/// (empty by default) and mix a non-empty plan's [`digest`] into their
/// fingerprint, so two runs of the same order under different schedules are
/// distinct everywhere a fingerprint is used as identity.
///
/// [`digest`]: FaultPlan::digest
/// [`Interleaving`]: crate::Interleaving
///
/// ```
/// use er_pi_model::{EventId, FaultEvent, FaultKind, FaultPlan};
///
/// let plan = FaultPlan::new(vec![FaultEvent::new(EventId::new(3), FaultKind::Duplicate)]);
/// assert!(!plan.is_empty());
/// assert_ne!(plan.digest_at(EventId::new(3)), 0);
/// assert_eq!(plan.digest_at(EventId::new(4)), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct FaultPlan {
    faults: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Creates a plan from the given faults, normalizing to sorted order so
    /// plans compare and hash structurally.
    pub fn new(mut faults: Vec<FaultEvent>) -> Self {
        faults.sort();
        faults.dedup();
        FaultPlan { faults }
    }

    /// The empty (fault-free) plan.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Returns `true` if the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Iterates over the scheduled faults in sorted order.
    pub fn iter(&self) -> std::slice::Iter<'_, FaultEvent> {
        self.faults.iter()
    }

    /// The faults anchored at `anchor`, in sorted order.
    pub fn at(&self, anchor: EventId) -> impl Iterator<Item = &FaultEvent> {
        self.faults.iter().filter(move |f| f.anchor == anchor)
    }

    /// A 64-bit digest of the faults anchored at `anchor`, or `0` when none
    /// are. This is the per-edge key component the checkpoint trie uses:
    /// two plans that agree on every anchor along a prefix share that
    /// prefix's cached snapshots.
    pub fn digest_at(&self, anchor: EventId) -> u64 {
        let mut h: u64 = 0;
        for f in self.at(anchor) {
            if h == 0 {
                h = FNV_OFFSET;
            }
            f.kind.mix(&mut h);
        }
        h
    }

    /// A 64-bit digest of the whole plan (`0` for the empty plan), mixed
    /// into [`Interleaving::fingerprint`](crate::Interleaving::fingerprint).
    pub fn digest(&self) -> u64 {
        if self.faults.is_empty() {
            return 0;
        }
        let mut h: u64 = FNV_OFFSET;
        for f in &self.faults {
            fnv(&mut h, &f.anchor.raw().to_le_bytes());
            f.kind.mix(&mut h);
        }
        h
    }
}

impl From<Vec<FaultEvent>> for FaultPlan {
    fn from(faults: Vec<FaultEvent>) -> Self {
        FaultPlan::new(faults)
    }
}

impl FromIterator<FaultEvent> for FaultPlan {
    fn from_iter<I: IntoIterator<Item = FaultEvent>>(iter: I) -> Self {
        FaultPlan::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a FaultPlan {
    type Item = &'a FaultEvent;
    type IntoIter = std::slice::Iter<'a, FaultEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.faults.iter()
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.faults.is_empty() {
            return f.write_str("∅");
        }
        f.write_str("{")?;
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{fault}")?;
        }
        f.write_str("}")
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EventId {
        EventId::new(i)
    }

    #[test]
    fn plans_normalize_to_sorted_order() {
        let a = FaultPlan::new(vec![
            FaultEvent::new(e(4), FaultKind::Drop),
            FaultEvent::new(e(1), FaultKind::Duplicate),
        ]);
        let b = FaultPlan::new(vec![
            FaultEvent::new(e(1), FaultKind::Duplicate),
            FaultEvent::new(e(4), FaultKind::Drop),
        ]);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn empty_plan_has_zero_digest() {
        assert_eq!(FaultPlan::empty().digest(), 0);
        assert_eq!(FaultPlan::empty().digest_at(e(0)), 0);
        assert!(FaultPlan::empty().is_empty());
    }

    #[test]
    fn digest_distinguishes_kinds_and_anchors() {
        let drop3 = FaultPlan::new(vec![FaultEvent::new(e(3), FaultKind::Drop)]);
        let dup3 = FaultPlan::new(vec![FaultEvent::new(e(3), FaultKind::Duplicate)]);
        let drop4 = FaultPlan::new(vec![FaultEvent::new(e(4), FaultKind::Drop)]);
        assert_ne!(drop3.digest(), dup3.digest());
        assert_ne!(drop3.digest(), drop4.digest());
        assert_ne!(drop3.digest_at(e(3)), 0);
        assert_eq!(drop3.digest_at(e(4)), 0);
        assert_ne!(drop3.digest_at(e(3)), dup3.digest_at(e(3)));
    }

    #[test]
    fn delay_parameters_reach_the_digest() {
        let d1 = FaultPlan::new(vec![FaultEvent::new(e(2), FaultKind::Delay { by: 1 })]);
        let d2 = FaultPlan::new(vec![FaultEvent::new(e(2), FaultKind::Delay { by: 2 })]);
        assert_ne!(d1.digest_at(e(2)), d2.digest_at(e(2)));
    }

    #[test]
    fn serde_roundtrip_is_transparent() {
        let plan = FaultPlan::new(vec![FaultEvent::new(
            e(1),
            FaultKind::CrashRestart {
                replica: ReplicaId::new(2),
            },
        )]);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn display_forms() {
        assert_eq!(FaultPlan::empty().to_string(), "∅");
        let plan = FaultPlan::new(vec![FaultEvent::new(e(5), FaultKind::Duplicate)]);
        assert_eq!(plan.to_string(), "{duplicate@e5}");
    }
}

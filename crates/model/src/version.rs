//! Version vectors for causal comparison of replica states.

use std::cmp::Ordering;
use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{Dot, ReplicaId};

/// A version vector: per-replica count of observed updates.
///
/// Used by the op-based CRDTs in the RDL substrate to compute sync deltas
/// ("which of your operations have I not yet seen?") and by the misconception
/// tests to decide whether two replica states are causally comparable.
///
/// ```
/// use er_pi_model::{ReplicaId, VersionVector};
///
/// let r0 = ReplicaId::new(0);
/// let r1 = ReplicaId::new(1);
///
/// let mut a = VersionVector::new();
/// a.increment(r0);
/// let mut b = VersionVector::new();
/// b.increment(r1);
///
/// assert!(a.concurrent(&b));
/// b.merge(&a);
/// assert!(b.dominates(&a));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct VersionVector {
    counts: BTreeMap<ReplicaId, u64>,
}

impl VersionVector {
    /// Creates an empty version vector (no updates observed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the number of updates observed from `replica`.
    pub fn get(&self, replica: ReplicaId) -> u64 {
        self.counts.get(&replica).copied().unwrap_or(0)
    }

    /// Records one more local update at `replica` and returns its [`Dot`].
    pub fn increment(&mut self, replica: ReplicaId) -> Dot {
        let c = self.counts.entry(replica).or_insert(0);
        *c += 1;
        Dot::new(replica, *c)
    }

    /// Returns `true` if this vector has already observed `dot`.
    pub fn contains(&self, dot: Dot) -> bool {
        self.get(dot.replica) >= dot.counter
    }

    /// Observes `dot`, extending the replica's count if the dot is the next
    /// expected one or beyond (gaps are absorbed — this models op logs that
    /// deliver batches).
    pub fn observe(&mut self, dot: Dot) {
        let c = self.counts.entry(dot.replica).or_insert(0);
        if dot.counter > *c {
            *c = dot.counter;
        }
    }

    /// Point-wise maximum with `other`.
    pub fn merge(&mut self, other: &VersionVector) {
        for (&r, &c) in &other.counts {
            let mine = self.counts.entry(r).or_insert(0);
            if c > *mine {
                *mine = c;
            }
        }
    }

    /// Returns `true` if `self` has observed everything `other` has.
    pub fn dominates(&self, other: &VersionVector) -> bool {
        other.counts.iter().all(|(&r, &c)| self.get(r) >= c)
    }

    /// Returns `true` if neither vector dominates the other (the states are
    /// causally concurrent).
    pub fn concurrent(&self, other: &VersionVector) -> bool {
        !self.dominates(other) && !other.dominates(self)
    }

    /// Partial causal comparison: `Some(Equal | Less | Greater)` when the
    /// vectors are ordered, `None` when concurrent.
    pub fn partial_cmp_causal(&self, other: &VersionVector) -> Option<Ordering> {
        match (self.dominates(other), other.dominates(self)) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Greater),
            (false, true) => Some(Ordering::Less),
            (false, false) => None,
        }
    }

    /// Iterates over `(replica, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (ReplicaId, u64)> + '_ {
        self.counts.iter().map(|(&r, &c)| (r, c))
    }

    /// Total number of updates observed across all replicas.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }
}

impl FromIterator<(ReplicaId, u64)> for VersionVector {
    fn from_iter<I: IntoIterator<Item = (ReplicaId, u64)>>(iter: I) -> Self {
        VersionVector {
            counts: iter.into_iter().filter(|&(_, c)| c > 0).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    #[test]
    fn increment_returns_sequential_dots() {
        let mut v = VersionVector::new();
        assert_eq!(v.increment(r(0)), Dot::new(r(0), 1));
        assert_eq!(v.increment(r(0)), Dot::new(r(0), 2));
        assert_eq!(v.get(r(0)), 2);
        assert_eq!(v.get(r(1)), 0);
    }

    #[test]
    fn contains_respects_counter() {
        let mut v = VersionVector::new();
        v.increment(r(1));
        v.increment(r(1));
        assert!(v.contains(Dot::new(r(1), 1)));
        assert!(v.contains(Dot::new(r(1), 2)));
        assert!(!v.contains(Dot::new(r(1), 3)));
        assert!(!v.contains(Dot::new(r(0), 1)));
    }

    #[test]
    fn merge_is_pointwise_max() {
        let mut a: VersionVector = [(r(0), 3), (r(1), 1)].into_iter().collect();
        let b: VersionVector = [(r(0), 1), (r(2), 4)].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.get(r(0)), 3);
        assert_eq!(a.get(r(1)), 1);
        assert_eq!(a.get(r(2)), 4);
    }

    #[test]
    fn dominance_and_concurrency() {
        let a: VersionVector = [(r(0), 2)].into_iter().collect();
        let b: VersionVector = [(r(0), 2), (r(1), 1)].into_iter().collect();
        let c: VersionVector = [(r(2), 1)].into_iter().collect();
        assert!(b.dominates(&a));
        assert!(!a.dominates(&b));
        assert!(a.concurrent(&c));
        assert_eq!(b.partial_cmp_causal(&a), Some(std::cmp::Ordering::Greater));
        assert_eq!(a.partial_cmp_causal(&c), None);
        assert_eq!(
            a.partial_cmp_causal(&a.clone()),
            Some(std::cmp::Ordering::Equal)
        );
    }

    #[test]
    fn observe_absorbs_gaps() {
        let mut v = VersionVector::new();
        v.observe(Dot::new(r(0), 5));
        assert_eq!(v.get(r(0)), 5);
        v.observe(Dot::new(r(0), 3));
        assert_eq!(v.get(r(0)), 5);
    }

    #[test]
    fn zero_counts_are_not_stored() {
        let v: VersionVector = [(r(0), 0), (r(1), 2)].into_iter().collect();
        assert_eq!(v.iter().count(), 1);
        assert_eq!(v.total(), 2);
    }
}

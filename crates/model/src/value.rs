//! A small dynamic value type for operation arguments and document content.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A dynamically typed value.
///
/// Used for the arguments of intercepted RDL calls
/// ([`OpDescriptor`](crate::OpDescriptor)) and as the leaf content of the
/// JSON document CRDT. Deliberately small — only the shapes the evaluation
/// subjects need.
///
/// ```
/// use er_pi_model::Value;
///
/// let v = Value::from(42);
/// assert_eq!(v.as_int(), Some(42));
/// assert_eq!(v.to_string(), "42");
///
/// let list = Value::List(vec![Value::from("a"), Value::from(true)]);
/// assert_eq!(list.to_string(), r#"["a", true]"#);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// Absent / null.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// UTF-8 string.
    Str(String),
    /// Ordered list of values.
    List(Vec<Value>),
}

impl Value {
    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the list payload, if this is a [`Value::List`].
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Returns `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl<V: Into<Value>> FromIterator<V> for Value {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        Value::List(iter.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::List(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::from(3).as_int(), Some(3));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::from("x").as_int(), None);
    }

    #[test]
    fn collect_into_list() {
        let v: Value = [1, 2, 3].into_iter().collect();
        assert_eq!(v.as_list().map(<[Value]>::len), Some(3));
    }

    #[test]
    fn display_is_nonempty_for_all_variants() {
        for v in [
            Value::Null,
            Value::from(false),
            Value::from(0),
            Value::from(""),
            Value::List(vec![]),
        ] {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn ordering_is_total() {
        let mut vals = [
            Value::from(2),
            Value::Null,
            Value::from("a"),
            Value::from(1),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
    }

    #[test]
    fn serde_roundtrip() {
        let v = Value::List(vec![Value::from(1), Value::from("two"), Value::Bool(true)]);
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
    }
}

//! Workloads: the event sets captured between `ER-π.Start()` and `ER-π.End()`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Event, EventId, EventKind, Interleaving, OpDescriptor, ReplicaId, Value};

/// Errors arising from malformed workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// A `SyncExec` references a `send` event that is not a `SyncSend`.
    DanglingSyncExec {
        /// The offending exec event.
        exec: EventId,
        /// What it referenced.
        referenced: EventId,
    },
    /// An event's dependency points at an event with an equal or higher id,
    /// which would make the recorded program order cyclic.
    ForwardDependency {
        /// The event with the bad dependency.
        event: EventId,
        /// The dependency that points forward.
        dep: EventId,
    },
    /// A dependency references an event id outside the workload.
    UnknownEvent {
        /// The event with the bad dependency.
        event: EventId,
        /// The unknown id.
        dep: EventId,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::DanglingSyncExec { exec, referenced } => {
                write!(
                    f,
                    "sync-exec {exec} references {referenced}, which is not a sync-send"
                )
            }
            WorkloadError::ForwardDependency { event, dep } => {
                write!(f, "event {event} depends on later event {dep}")
            }
            WorkloadError::UnknownEvent { event, dep } => {
                write!(f, "event {event} depends on unknown event {dep}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// The complete set of events recorded for one intercepted code segment.
///
/// Event ids are dense indices (`0..len`) assigned in recording order, so
/// the identity interleaving `[e0, e1, …]` is the originally observed
/// execution. See the [crate-level example](crate) for construction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    events: Vec<Event>,
}

impl Workload {
    /// Starts building a workload.
    pub fn builder() -> WorkloadBuilder {
        WorkloadBuilder::default()
    }

    /// Creates a workload from pre-built events.
    ///
    /// # Errors
    ///
    /// Returns a [`WorkloadError`] if dependencies point forward, reference
    /// unknown events, or a `SyncExec` references a non-`SyncSend`.
    pub fn from_events(events: Vec<Event>) -> Result<Self, WorkloadError> {
        let w = Workload { events };
        w.validate()?;
        Ok(w)
    }

    fn validate(&self) -> Result<(), WorkloadError> {
        for ev in &self.events {
            for dep in ev.all_deps() {
                if dep.index() >= self.events.len() {
                    return Err(WorkloadError::UnknownEvent { event: ev.id, dep });
                }
                if dep >= ev.id {
                    return Err(WorkloadError::ForwardDependency { event: ev.id, dep });
                }
            }
            if let EventKind::SyncExec { send, .. } = ev.kind {
                if !self.events[send.index()].is_sync_send() {
                    return Err(WorkloadError::DanglingSyncExec {
                        exec: ev.id,
                        referenced: send,
                    });
                }
            }
        }
        Ok(())
    }

    /// All events, indexed by [`EventId::index`].
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the workload has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Looks up an event by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this workload.
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[id.index()]
    }

    /// All event ids, in recording order.
    pub fn event_ids(&self) -> impl Iterator<Item = EventId> + '_ {
        self.events.iter().map(|e| e.id)
    }

    /// Ids of events executing at `replica`.
    pub fn events_at(&self, replica: ReplicaId) -> Vec<EventId> {
        self.events
            .iter()
            .filter(|e| e.replica == replica)
            .map(|e| e.id)
            .collect()
    }

    /// The distinct replicas participating in the workload.
    pub fn replicas(&self) -> Vec<ReplicaId> {
        let mut out: Vec<ReplicaId> = Vec::new();
        for e in &self.events {
            if !out.contains(&e.replica) {
                out.push(e.replica);
            }
            if let Some((from, to)) = e.sync_endpoints() {
                for r in [from, to] {
                    if !out.contains(&r) {
                        out.push(r);
                    }
                }
            }
        }
        out.sort();
        out
    }

    /// The interleaving observed during recording (identity order).
    pub fn recorded_order(&self) -> Interleaving {
        Interleaving::new(self.event_ids().collect())
    }

    /// Total number of unconstrained interleavings, `n!` — what the DFS and
    /// Random baselines explore (paper §6.3). Saturates at `u128::MAX`.
    pub fn total_orders(&self) -> u128 {
        crate::factorial(self.len())
    }

    /// Checks whether `order` is a permutation of exactly this workload's
    /// events.
    pub fn is_permutation(&self, order: &Interleaving) -> bool {
        if order.len() != self.len() {
            return false;
        }
        let mut seen = vec![false; self.len()];
        for &id in order.iter() {
            match seen.get_mut(id.index()) {
                Some(slot @ false) => *slot = true,
                _ => return false,
            }
        }
        true
    }

    /// Checks whether `order` respects the causal partial order (every
    /// event's dependencies appear before it).
    ///
    /// The DFS/Random baselines deliberately do *not* restrict themselves to
    /// causally valid orders; executing an invalid order simply wastes an
    /// exploration step (the out-of-order events fail as no-ops).
    pub fn is_causally_valid(&self, order: &Interleaving) -> bool {
        if !self.is_permutation(order) {
            return false;
        }
        let mut pos = vec![0usize; self.len()];
        for (i, &id) in order.iter().enumerate() {
            pos[id.index()] = i;
        }
        self.events.iter().all(|ev| {
            ev.all_deps()
                .iter()
                .all(|dep| pos[dep.index()] < pos[ev.id.index()])
        })
    }
}

/// Incrementally records events into a [`Workload`].
///
/// The builder mirrors the recording side of the ER-π proxies: each call
/// appends one event and returns its id so later events can reference it.
#[derive(Debug, Default)]
pub struct WorkloadBuilder {
    events: Vec<Event>,
}

impl WorkloadBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, replica: ReplicaId, kind: EventKind, deps: Vec<EventId>) -> EventId {
        let id = EventId::new(self.events.len() as u32);
        self.events.push(Event {
            id,
            replica,
            kind,
            deps,
        });
        id
    }

    /// Records a local RDL update at `replica`.
    pub fn update<A>(&mut self, replica: ReplicaId, function: &str, args: A) -> EventId
    where
        A: IntoIterator,
        A::Item: Into<Value>,
    {
        self.push(
            replica,
            EventKind::LocalUpdate {
                op: OpDescriptor::new(function, args),
            },
            Vec::new(),
        )
    }

    /// Records a local RDL update with an explicit [`OpDescriptor`].
    pub fn update_op(&mut self, replica: ReplicaId, op: OpDescriptor) -> EventId {
        self.push(replica, EventKind::LocalUpdate { op }, Vec::new())
    }

    /// Records a "send sync request" event from `from` to `to`, shipping the
    /// effects of update `of`.
    pub fn sync_send(&mut self, from: ReplicaId, to: ReplicaId, of: Option<EventId>) -> EventId {
        self.push(from, EventKind::SyncSend { to, of }, Vec::new())
    }

    /// Records an "execute sync request" event at `at`, executing the request
    /// previously sent in `send`.
    pub fn sync_exec(&mut self, at: ReplicaId, from: ReplicaId, send: EventId) -> EventId {
        self.push(at, EventKind::SyncExec { from, send }, Vec::new())
    }

    /// Records a split synchronization (send then exec) and returns both ids.
    pub fn sync_split(
        &mut self,
        from: ReplicaId,
        to: ReplicaId,
        of: Option<EventId>,
    ) -> (EventId, EventId) {
        let send = self.sync_send(from, to, of);
        let exec = self.sync_exec(to, from, send);
        (send, exec)
    }

    /// Records a fused synchronization event (`sync(ev)` in the paper's
    /// Figure 2) shipping update `of` from `from` to `to`.
    pub fn sync_pair(&mut self, from: ReplicaId, to: ReplicaId, of: EventId) -> EventId {
        self.push(from, EventKind::Sync { to, of: Some(of) }, Vec::new())
    }

    /// Records a fused synchronization with no tracked source update.
    pub fn sync_untracked(&mut self, from: ReplicaId, to: ReplicaId) -> EventId {
        self.push(from, EventKind::Sync { to, of: None }, Vec::new())
    }

    /// Records an external (non-RDL) effectful event.
    pub fn external(&mut self, replica: ReplicaId, label: impl Into<String>) -> EventId {
        self.push(
            replica,
            EventKind::External {
                label: label.into(),
            },
            Vec::new(),
        )
    }

    /// Adds an explicit causal dependency: `event` must come after `dep`.
    ///
    /// # Panics
    ///
    /// Panics if either id has not been recorded yet.
    pub fn depends(&mut self, event: EventId, dep: EventId) -> &mut Self {
        assert!(event.index() < self.events.len(), "unknown event {event}");
        assert!(dep.index() < self.events.len(), "unknown dep {dep}");
        let ev = &mut self.events[event.index()];
        if !ev.deps.contains(&dep) {
            ev.deps.push(dep);
        }
        self
    }

    /// Looks up an already recorded event.
    ///
    /// # Panics
    ///
    /// Panics if `id` has not been recorded yet.
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[id.index()]
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finishes the workload.
    ///
    /// # Panics
    ///
    /// Panics if the recorded events are internally inconsistent; the builder
    /// API prevents that by construction, so this only guards against misuse
    /// of [`WorkloadBuilder::depends`] with hand-crafted ids.
    pub fn build(self) -> Workload {
        Workload::from_events(self.events).expect("builder produced a consistent workload")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    /// The motivating example of §2.3: 7 events.
    fn motivating() -> Workload {
        let a = r(0);
        let b = r(1);
        let mut w = Workload::builder();
        let ev1 = w.update(a, "add", [Value::from("otb")]);
        w.sync_pair(a, b, ev1);
        let ev2 = w.update(b, "add", [Value::from("ph")]);
        w.sync_pair(b, a, ev2);
        let ev3 = w.update(b, "remove", [Value::from("otb")]);
        w.sync_pair(b, a, ev3);
        w.external(a, "transmit");
        w.build()
    }

    #[test]
    fn motivating_example_has_seven_events_and_5040_orders() {
        let w = motivating();
        assert_eq!(w.len(), 7);
        assert_eq!(w.total_orders(), 5040);
        assert_eq!(w.replicas(), vec![r(0), r(1)]);
    }

    #[test]
    fn recorded_order_is_identity_and_valid() {
        let w = motivating();
        let order = w.recorded_order();
        assert!(w.is_permutation(&order));
        assert!(w.is_causally_valid(&order));
    }

    #[test]
    fn sync_before_update_is_causally_invalid() {
        let w = motivating();
        // Swap ev1 (index 0) and its sync (index 1): sync now precedes the
        // update it ships.
        let mut ids: Vec<EventId> = w.event_ids().collect();
        ids.swap(0, 1);
        let order = Interleaving::new(ids);
        assert!(w.is_permutation(&order));
        assert!(!w.is_causally_valid(&order));
    }

    #[test]
    fn is_permutation_rejects_wrong_length_and_duplicates() {
        let w = motivating();
        let short = Interleaving::new(vec![EventId::new(0)]);
        assert!(!w.is_permutation(&short));
        let mut ids: Vec<EventId> = w.event_ids().collect();
        ids[1] = ids[0];
        assert!(!w.is_permutation(&Interleaving::new(ids)));
    }

    #[test]
    fn split_sync_wires_exec_to_send() {
        let mut w = Workload::builder();
        let u = w.update(r(0), "add", [Value::from(1)]);
        let (send, exec) = w.sync_split(r(0), r(1), Some(u));
        let w = w.build();
        assert!(w.event(send).is_sync_send());
        assert!(w.event(exec).is_sync_exec());
        assert_eq!(w.event(exec).all_deps(), vec![send]);
        assert_eq!(w.event(send).all_deps(), vec![u]);
        assert_eq!(w.event(send).sync_endpoints(), Some((r(0), r(1))));
        assert_eq!(w.event(exec).sync_endpoints(), Some((r(0), r(1))));
    }

    #[test]
    fn explicit_dependency_affects_validity() {
        let mut w = Workload::builder();
        let x = w.update(r(0), "a", [1]);
        let y = w.update(r(1), "b", [2]);
        w.depends(y, x);
        let w = w.build();
        let reversed = Interleaving::new(vec![y, x]);
        assert!(!w.is_causally_valid(&reversed));
        let forward = Interleaving::new(vec![x, y]);
        assert!(w.is_causally_valid(&forward));
    }

    #[test]
    fn from_events_rejects_dangling_exec() {
        let bad = vec![
            Event {
                id: EventId::new(0),
                replica: r(0),
                kind: EventKind::LocalUpdate {
                    op: OpDescriptor::nullary("x"),
                },
                deps: vec![],
            },
            Event {
                id: EventId::new(1),
                replica: r(1),
                kind: EventKind::SyncExec {
                    from: r(0),
                    send: EventId::new(0),
                },
                deps: vec![],
            },
        ];
        let err = Workload::from_events(bad).unwrap_err();
        assert!(matches!(err, WorkloadError::DanglingSyncExec { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn from_events_rejects_forward_dependency() {
        let bad = vec![Event {
            id: EventId::new(0),
            replica: r(0),
            kind: EventKind::LocalUpdate {
                op: OpDescriptor::nullary("x"),
            },
            deps: vec![EventId::new(0)],
        }];
        let err = Workload::from_events(bad).unwrap_err();
        assert!(matches!(err, WorkloadError::ForwardDependency { .. }));
    }

    #[test]
    fn from_events_rejects_unknown_dependency() {
        let bad = vec![Event {
            id: EventId::new(0),
            replica: r(0),
            kind: EventKind::LocalUpdate {
                op: OpDescriptor::nullary("x"),
            },
            deps: vec![EventId::new(9)],
        }];
        let err = Workload::from_events(bad).unwrap_err();
        assert!(matches!(err, WorkloadError::UnknownEvent { .. }));
    }

    #[test]
    fn events_at_filters_by_replica() {
        let w = motivating();
        // Events at replica B: sync of ev1 lands at... careful: fused sync
        // events execute at the *sender* in our model, endpoints carry both.
        let at_a = w.events_at(r(0));
        let at_b = w.events_at(r(1));
        assert_eq!(at_a.len() + at_b.len(), 7);
    }
}

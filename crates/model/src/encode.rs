//! Canonical byte encodings for state-digest computation.
//!
//! The subsumption layer (ER-π's state-hash reduction) keys its explored-set
//! on a digest of each replica's *full* behavioral state. Hashing via
//! `serde_json` or `Debug` output would tie soundness to formatting details;
//! instead, types opt in to a fixed little-endian, length-prefixed binary
//! encoding with the property that **equal encodings imply
//! behaviorally-equivalent values** (and, for the impls in this workspace,
//! the converse: the encoding is injective on the reachable value space).
//!
//! Collections are length-prefixed so that concatenated fields can never
//! alias each other (`["ab"], ["c"]` vs `["a"], ["bc"]`).

use crate::{Dot, EventId, ReplicaId, Value, VersionVector};

/// A canonical, self-delimiting byte encoding.
///
/// Implementations must be deterministic (same value → same bytes, across
/// processes and platforms) and prefix-free under concatenation (every
/// variable-length field is length-prefixed), so a digest of the encoding
/// can stand in for the value in an explored-set.
pub trait CanonicalEncode {
    /// Appends this value's canonical encoding to `out`.
    fn encode_canonical(&self, out: &mut Vec<u8>);
}

impl<T: CanonicalEncode + ?Sized> CanonicalEncode for &T {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        (**self).encode_canonical(out);
    }
}

impl CanonicalEncode for bool {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl CanonicalEncode for u16 {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl CanonicalEncode for u32 {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl CanonicalEncode for u64 {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl CanonicalEncode for i32 {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl CanonicalEncode for i64 {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl CanonicalEncode for str {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode_canonical(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl CanonicalEncode for String {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        self.as_str().encode_canonical(out);
    }
}

impl<T: CanonicalEncode> CanonicalEncode for [T] {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode_canonical(out);
        for item in self {
            item.encode_canonical(out);
        }
    }
}

impl<T: CanonicalEncode> CanonicalEncode for Vec<T> {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        self.as_slice().encode_canonical(out);
    }
}

impl<T: CanonicalEncode> CanonicalEncode for std::collections::VecDeque<T> {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode_canonical(out);
        for item in self {
            item.encode_canonical(out);
        }
    }
}

impl<A: CanonicalEncode, B: CanonicalEncode> CanonicalEncode for (A, B) {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        self.0.encode_canonical(out);
        self.1.encode_canonical(out);
    }
}

impl<K: CanonicalEncode, V: CanonicalEncode> CanonicalEncode for std::collections::BTreeMap<K, V> {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        // BTreeMap iteration is key-sorted: deterministic across replicas.
        (self.len() as u64).encode_canonical(out);
        for (k, v) in self {
            k.encode_canonical(out);
            v.encode_canonical(out);
        }
    }
}

impl<T: CanonicalEncode> CanonicalEncode for std::collections::BTreeSet<T> {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode_canonical(out);
        for item in self {
            item.encode_canonical(out);
        }
    }
}

impl<T: CanonicalEncode> CanonicalEncode for Option<T> {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_canonical(out);
            }
        }
    }
}

impl CanonicalEncode for ReplicaId {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        self.raw().encode_canonical(out);
    }
}

impl CanonicalEncode for EventId {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        self.raw().encode_canonical(out);
    }
}

impl CanonicalEncode for Dot {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        self.replica.encode_canonical(out);
        self.counter.encode_canonical(out);
    }
}

impl CanonicalEncode for VersionVector {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        // `iter()` walks the underlying BTreeMap: sorted, deterministic.
        let pairs: Vec<(ReplicaId, u64)> = self.iter().collect();
        (pairs.len() as u64).encode_canonical(out);
        for (r, c) in pairs {
            r.encode_canonical(out);
            c.encode_canonical(out);
        }
    }
}

impl CanonicalEncode for Value {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Bool(b) => {
                out.push(1);
                b.encode_canonical(out);
            }
            Value::Int(i) => {
                out.push(2);
                i.encode_canonical(out);
            }
            Value::Str(s) => {
                out.push(3);
                s.encode_canonical(out);
            }
            Value::List(items) => {
                out.push(4);
                items.encode_canonical(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc<T: CanonicalEncode + ?Sized>(v: &T) -> Vec<u8> {
        let mut out = Vec::new();
        v.encode_canonical(&mut out);
        out
    }

    #[test]
    fn length_prefix_prevents_field_aliasing() {
        // Without length prefixes these two would concatenate identically.
        let a = enc(&vec!["ab".to_owned(), "c".to_owned()]);
        let b = enc(&vec!["a".to_owned(), "bc".to_owned()]);
        assert_ne!(a, b);
    }

    #[test]
    fn value_variants_are_tag_disjoint() {
        assert_ne!(enc(&Value::Null), enc(&Value::Bool(false)));
        assert_ne!(enc(&Value::Int(0)), enc(&Value::Bool(false)));
        assert_ne!(enc(&Value::Str(String::new())), enc(&Value::List(vec![])));
        // Nested lists encode structurally, not by flattening.
        let nested = Value::List(vec![Value::List(vec![Value::Int(1)])]);
        let flat = Value::List(vec![Value::Int(1)]);
        assert_ne!(enc(&nested), enc(&flat));
    }

    #[test]
    fn version_vector_encoding_is_order_independent() {
        let r0 = ReplicaId::new(0);
        let r1 = ReplicaId::new(1);
        let a: VersionVector = [(r0, 2), (r1, 5)].into_iter().collect();
        let b: VersionVector = [(r1, 5), (r0, 2)].into_iter().collect();
        assert_eq!(enc(&a), enc(&b));
        let c: VersionVector = [(r0, 2)].into_iter().collect();
        assert_ne!(enc(&a), enc(&c));
    }

    #[test]
    fn dot_and_ids_are_fixed_width() {
        assert_eq!(enc(&ReplicaId::new(3)).len(), 2);
        assert_eq!(enc(&EventId::new(9)).len(), 4);
        assert_eq!(enc(&Dot::new(ReplicaId::new(1), 7)).len(), 10);
    }

    #[test]
    fn option_is_tagged() {
        assert_ne!(enc(&None::<u64>), enc(&Some(0u64)));
        assert_eq!(enc(&None::<u64>).len(), 1);
    }
}

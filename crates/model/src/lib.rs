//! Shared event model for the ER-π reproduction.
//!
//! This crate defines the vocabulary every other crate in the workspace
//! speaks:
//!
//! * identifiers for replicas, events, and operations ([`ReplicaId`],
//!   [`EventId`], [`Dot`]),
//! * logical time ([`LamportClock`], [`LamportTimestamp`],
//!   [`VersionVector`]),
//! * the distributed *event* abstraction the middleware intercepts and
//!   replays ([`Event`], [`EventKind`], [`OpDescriptor`]),
//! * complete *workloads* — the set of events raised between the
//!   `ER-π.Start()` and `ER-π.End()` markers ([`Workload`],
//!   [`WorkloadBuilder`]),
//! * and *interleavings* — total orders over a workload's events
//!   ([`Interleaving`]).
//!
//! # Example
//!
//! Build the seven-event workload of the paper's motivating example
//! (Section 2.3): two residents report town issues into a replicated set,
//! one removes a fixed issue, and resident A finally transmits the set.
//!
//! ```
//! use er_pi_model::{ReplicaId, Value, Workload};
//!
//! let a = ReplicaId::new(0); // Resident A
//! let b = ReplicaId::new(1); // Resident B
//!
//! let mut w = Workload::builder();
//! let ev1 = w.update(a, "add", [Value::from("otb")]); // overturned trash bin
//! let _s1 = w.sync_pair(a, b, ev1);
//! let ev2 = w.update(b, "add", [Value::from("ph")]); // pothole
//! let _s2 = w.sync_pair(b, a, ev2);
//! let ev3 = w.update(b, "remove", [Value::from("otb")]);
//! let _s3 = w.sync_pair(b, a, ev3);
//! let _ev4 = w.external(a, "transmit");
//! let workload = w.build();
//!
//! // `sync_pair` emits a single fused synchronization event, matching the
//! // paper's Figure 2, so the workload has seven events in total.
//! assert_eq!(workload.len(), 7);
//! assert_eq!(workload.total_orders(), 5040);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod dotctx;
mod encode;
mod event;
mod fault;
mod ids;
mod interleaving;
mod value;
mod version;
mod workload;

pub use clock::{LamportClock, LamportTimestamp};
pub use dotctx::DotContext;
pub use encode::CanonicalEncode;
pub use event::{Event, EventKind, OpDescriptor};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use ids::{Dot, EventId, ReplicaId};
pub use interleaving::{factorial, reduction_factor, Interleaving};
pub use value::Value;
pub use version::VersionVector;
pub use workload::{Workload, WorkloadBuilder, WorkloadError};

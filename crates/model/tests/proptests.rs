//! Property-based tests for the shared event model.

use proptest::prelude::*;

use er_pi_model::{
    factorial, Dot, EventId, Interleaving, LamportClock, LamportTimestamp, ReplicaId, Value,
    VersionVector, Workload,
};

fn arb_replica() -> impl Strategy<Value = ReplicaId> {
    (0u16..4).prop_map(ReplicaId::new)
}

fn arb_vv() -> impl Strategy<Value = VersionVector> {
    proptest::collection::vec((arb_replica(), 0u64..16), 0..6)
        .prop_map(|pairs| pairs.into_iter().collect())
}

proptest! {
    /// merge is commutative: a ⊔ b == b ⊔ a.
    #[test]
    fn vv_merge_commutative(a in arb_vv(), b in arb_vv()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// merge is associative: (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c).
    #[test]
    fn vv_merge_associative(a in arb_vv(), b in arb_vv(), c in arb_vv()) {
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// merge is idempotent: a ⊔ a == a.
    #[test]
    fn vv_merge_idempotent(a in arb_vv()) {
        let mut aa = a.clone();
        aa.merge(&a);
        prop_assert_eq!(aa, a);
    }

    /// The merge of two vectors dominates both inputs.
    #[test]
    fn vv_merge_is_upper_bound(a in arb_vv(), b in arb_vv()) {
        let mut m = a.clone();
        m.merge(&b);
        prop_assert!(m.dominates(&a));
        prop_assert!(m.dominates(&b));
    }

    /// Observing a dot makes contains() true, and observation is monotone.
    #[test]
    fn vv_observe_contains(mut v in arb_vv(), r in arb_replica(), c in 1u64..32) {
        let dot = Dot::new(r, c);
        let before = v.get(r);
        v.observe(dot);
        prop_assert!(v.contains(dot));
        prop_assert!(v.get(r) >= before);
    }

    /// Lamport clock: a chain of ticks and observes is strictly increasing.
    #[test]
    fn lamport_clock_monotone(remote_times in proptest::collection::vec(0u64..100, 1..20)) {
        let mut clock = LamportClock::new(ReplicaId::new(0));
        let mut last = clock.now();
        for (i, t) in remote_times.into_iter().enumerate() {
            let next = if i % 2 == 0 {
                clock.tick()
            } else {
                clock.observe(LamportTimestamp::new(t, ReplicaId::new(1)))
            };
            prop_assert!(next > last, "clock must advance: {next} !> {last}");
            last = next;
        }
    }

    /// Fingerprints of distinct permutations of up to 6 events never collide
    /// within a sampled pair (FNV over short sequences is collision-free at
    /// this scale).
    #[test]
    fn fingerprint_injective_on_small_perms(
        a in Just((0u32..6).collect::<Vec<_>>()).prop_shuffle(),
        b in Just((0u32..6).collect::<Vec<_>>()).prop_shuffle(),
    ) {
        let perm_a: Interleaving = a.iter().map(|&x| EventId::new(x)).collect();
        let perm_b: Interleaving = b.iter().map(|&x| EventId::new(x)).collect();
        if perm_a == perm_b {
            prop_assert_eq!(perm_a.fingerprint(), perm_b.fingerprint());
        } else {
            prop_assert_ne!(perm_a.fingerprint(), perm_b.fingerprint());
        }
    }

    /// The recorded order of a randomly built workload is always causally
    /// valid, and reversing it is invalid whenever any dependency exists.
    #[test]
    fn recorded_order_valid(n_updates in 1usize..6, n_syncs in 0usize..4) {
        let a = ReplicaId::new(0);
        let b = ReplicaId::new(1);
        let mut builder = Workload::builder();
        let mut updates = Vec::new();
        for i in 0..n_updates {
            updates.push(builder.update(a, "op", [Value::from(i as i64)]));
        }
        for i in 0..n_syncs {
            builder.sync_pair(a, b, updates[i % updates.len()]);
        }
        let w = builder.build();
        prop_assert!(w.is_causally_valid(&w.recorded_order()));
        if n_syncs > 0 {
            let mut rev: Vec<EventId> = w.event_ids().collect();
            rev.reverse();
            prop_assert!(!w.is_causally_valid(&Interleaving::new(rev)));
        }
    }
}

#[test]
fn factorial_is_monotone_until_saturation() {
    let mut prev = factorial(0);
    for n in 1..40 {
        let next = factorial(n);
        assert!(next >= prev, "factorial must not decrease");
        prev = next;
    }
    // 34! still fits in u128; 35! is the first to saturate.
    assert!(factorial(34) < u128::MAX);
    assert_eq!(factorial(35), u128::MAX);
}

//! Shardable, indexed iteration over the pruned interleaving set.
//!
//! [`IndexedSource`] is the single dispensing discipline shared by the
//! sequential replay loop and the parallel [`ReplayPool`]: it pulls
//! candidates from any explorer, drops fingerprint duplicates (which appear
//! after a State-4 regeneration), enforces the interleaving cap, and stamps
//! every surviving interleaving with a stable, strictly increasing
//! *exploration index*. Because both execution strategies draw from the same
//! source, the index assigned to an interleaving is independent of how many
//! workers later replay it — the invariant the differential-equivalence
//! suite pins down.
//!
//! [`ReplayPool`]: https://docs.rs/er-pi

use std::collections::HashSet;

use er_pi_model::Interleaving;

/// A deduplicating, capping, index-stamping wrapper around an explorer.
///
/// Semantics (identical to the historical sequential loop in
/// `Session::replay`):
///
/// 1. pull the next candidate from the underlying explorer;
/// 2. if the cap is already reached, mark the source *truncated* and stop —
///    the candidate is discarded, mirroring the sequential loop's
///    "`runs.len() >= cap` → `stopped_early`" check, which fires only when
///    the explorer proves it had more to offer;
/// 3. if the candidate's fingerprint was already dispensed, skip it
///    (regenerated explorers re-emit old interleavings);
/// 4. otherwise dispense `(index, interleaving)` with the next index.
///
/// ```
/// use er_pi_interleave::{DfsExplorer, IndexedSource};
/// use er_pi_model::{ReplicaId, Workload};
///
/// let mut w = Workload::builder();
/// w.update(ReplicaId::new(0), "a", [1]);
/// w.update(ReplicaId::new(1), "b", [2]);
/// let w = w.build();
///
/// let mut source = IndexedSource::new(DfsExplorer::new(&w), 10);
/// let (i0, _) = source.next().unwrap();
/// let (i1, _) = source.next().unwrap();
/// assert_eq!((i0, i1), (0, 1));
/// assert!(source.next().is_none());
/// assert!(!source.truncated(), "the space ran dry before the cap");
/// ```
#[derive(Debug)]
pub struct IndexedSource<I> {
    inner: I,
    seen: HashSet<u64>,
    next_index: usize,
    cap: usize,
    truncated: bool,
    last: Option<Interleaving>,
    shared_prefix_events: u64,
}

impl<I: Iterator<Item = Interleaving>> IndexedSource<I> {
    /// Wraps `inner`, dispensing at most `cap` interleavings.
    pub fn new(inner: I, cap: usize) -> Self {
        IndexedSource {
            inner,
            seen: HashSet::new(),
            next_index: 0,
            cap,
            truncated: false,
            last: None,
            shared_prefix_events: 0,
        }
    }

    /// Claims up to `max` *contiguous* interleavings in one call — the
    /// parallel pool's dispensing unit. Chunked (not strided) hand-out is
    /// what lets per-worker prefix locality survive the pool: consecutive
    /// interleavings from a lexicographic explorer share long prefixes, so
    /// a worker that owns a contiguous index range keeps resuming from its
    /// own checkpoint trie instead of fighting over interleavings whose
    /// prefixes live in another worker's cache.
    ///
    /// Returns fewer than `max` items (possibly none) once the source runs
    /// dry or hits the cap. Indices within a chunk are consecutive, and
    /// chunks partition the dispensed index space.
    pub fn next_chunk(&mut self, max: usize) -> Vec<(usize, Interleaving)> {
        let mut chunk = Vec::with_capacity(max);
        while chunk.len() < max {
            match self.next() {
                Some(pair) => chunk.push(pair),
                None => break,
            }
        }
        chunk
    }

    /// Total events shared between consecutively dispensed interleavings
    /// (the sum of [`Interleaving::common_prefix_len`] over adjacent
    /// pairs) — the prefix locality the incremental executor trades on.
    /// Divide by `dispensed - 1` for the average resumable depth.
    pub fn shared_prefix_events(&self) -> u64 {
        self.shared_prefix_events
    }

    /// Replaces the underlying explorer while keeping the dedup set, the
    /// index counter, and the cap — the State-4 regeneration: newly ingested
    /// constraints rebuild the generator, and anything it re-emits that was
    /// already replayed is skipped.
    pub fn reseed(&mut self, inner: I) {
        self.inner = inner;
    }

    /// Number of interleavings dispensed so far (also the next index).
    pub fn dispensed(&self) -> usize {
        self.next_index
    }

    /// Returns `true` once the cap cut the iteration short while the
    /// explorer still had candidates.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// The wrapped explorer (e.g. to read its pruning counters).
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// Unwraps the underlying explorer.
    pub fn into_inner(self) -> I {
        self.inner
    }
}

impl<I: Iterator<Item = Interleaving>> Iterator for IndexedSource<I> {
    type Item = (usize, Interleaving);

    fn next(&mut self) -> Option<(usize, Interleaving)> {
        if self.truncated {
            return None;
        }
        loop {
            let il = self.inner.next()?;
            if self.next_index >= self.cap {
                self.truncated = true;
                return None;
            }
            if !self.seen.insert(il.fingerprint()) {
                continue;
            }
            let index = self.next_index;
            self.next_index += 1;
            if let Some(prev) = &self.last {
                self.shared_prefix_events += prev.common_prefix_len(&il) as u64;
            }
            self.last = Some(il.clone());
            return Some((index, il));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DfsExplorer, ErPiExplorer, PruningConfig};
    use er_pi_model::{ReplicaId, Value, Workload};

    fn workload(n: usize) -> Workload {
        let mut w = Workload::builder();
        for i in 0..n {
            w.update(
                ReplicaId::new((i % 3) as u16),
                "op",
                [Value::from(i as i64)],
            );
        }
        w.build()
    }

    #[test]
    fn indices_are_dense_and_ordered() {
        let w = workload(4);
        let source = IndexedSource::new(DfsExplorer::new(&w), usize::MAX);
        let indices: Vec<usize> = source.map(|(i, _)| i).collect();
        assert_eq!(indices, (0..24).collect::<Vec<_>>());
    }

    #[test]
    fn cap_truncates_and_flags() {
        let w = workload(4);
        let mut source = IndexedSource::new(DfsExplorer::new(&w), 5);
        let drawn: Vec<_> = source.by_ref().collect();
        assert_eq!(drawn.len(), 5);
        assert!(source.truncated());
        assert_eq!(source.dispensed(), 5);
        assert!(source.next().is_none(), "truncation is sticky");
    }

    #[test]
    fn exact_cap_without_surplus_is_not_truncated() {
        let w = workload(3);
        let mut source = IndexedSource::new(DfsExplorer::new(&w), 6);
        assert_eq!(source.by_ref().count(), 6);
        assert!(
            !source.truncated(),
            "the explorer ran dry exactly at the cap"
        );
    }

    #[test]
    fn reseed_skips_already_dispensed_interleavings() {
        let w = workload(3);
        let mut source = IndexedSource::new(DfsExplorer::new(&w), usize::MAX);
        let first_three: Vec<_> = source.by_ref().take(3).collect();
        assert_eq!(first_three.len(), 3);
        // Regenerate: the fresh explorer re-emits all six orders, but the
        // three already dispensed are skipped and indices keep counting.
        source.reseed(DfsExplorer::new(&w));
        let rest: Vec<_> = source.by_ref().collect();
        assert_eq!(rest.len(), 3);
        assert_eq!(rest[0].0, 3, "indices continue after a reseed");
        let mut all: Vec<u64> = first_three
            .iter()
            .chain(&rest)
            .map(|(_, il)| il.fingerprint())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 6, "union covers the space with no duplicates");
    }

    #[test]
    fn chunked_union_equals_pruned_set() {
        // The dispensing discipline the pool relies on: chunks hand out
        // contiguous index ranges, partition the dispensed space, and their
        // union is exactly the pruned set an item-at-a-time scan yields.
        let w = workload(5);
        let config = PruningConfig::default();
        let direct: Vec<(usize, Interleaving)> =
            IndexedSource::new(ErPiExplorer::new(&w, &config), usize::MAX).collect();
        for chunk_size in [1, 3, 7, 64] {
            let mut source = IndexedSource::new(ErPiExplorer::new(&w, &config), usize::MAX);
            let mut union: Vec<(usize, Interleaving)> = Vec::new();
            loop {
                let chunk = source.next_chunk(chunk_size);
                if chunk.is_empty() {
                    break;
                }
                // Contiguity within the chunk.
                for pair in chunk.windows(2) {
                    assert_eq!(pair[1].0, pair[0].0 + 1, "chunk indices must be contiguous");
                }
                union.extend(chunk);
            }
            assert_eq!(union, direct, "chunk size {chunk_size} changed the set");
        }
    }

    #[test]
    fn chunked_dispensing_respects_the_cap() {
        let w = workload(4);
        let mut source = IndexedSource::new(DfsExplorer::new(&w), 10);
        let a = source.next_chunk(7);
        let b = source.next_chunk(7);
        assert_eq!(a.len(), 7);
        assert_eq!(b.len(), 3, "cap cuts the second chunk short");
        assert!(source.truncated());
        assert!(source.next_chunk(7).is_empty(), "truncation is sticky");
    }

    #[test]
    fn prefix_locality_counter_matches_adjacent_overlap() {
        let w = workload(4);
        let mut source = IndexedSource::new(DfsExplorer::new(&w), usize::MAX);
        let dispensed: Vec<Interleaving> = source.by_ref().map(|(_, il)| il).collect();
        let expected: u64 = dispensed
            .windows(2)
            .map(|pair| pair[0].common_prefix_len(&pair[1]) as u64)
            .sum();
        assert_eq!(source.shared_prefix_events(), expected);
        // Lexicographic DFS guarantees substantial locality: the average
        // shared prefix of adjacent permutations approaches N - e.
        assert!(
            source.shared_prefix_events() as f64 / (dispensed.len() - 1) as f64 > 1.0,
            "lexicographic order should share > 1 event on average"
        );
    }

    #[test]
    fn pruned_explorer_passes_through_unchanged() {
        let w = workload(4);
        let config = PruningConfig::default();
        let direct: Vec<Interleaving> = ErPiExplorer::new(&w, &config).collect();
        let sourced: Vec<Interleaving> =
            IndexedSource::new(ErPiExplorer::new(&w, &config), usize::MAX)
                .map(|(_, il)| il)
                .collect();
        assert_eq!(direct, sourced);
    }
}

//! Sleep-set pruning — DPOR-style commutation canonicalization over unit
//! permutations.
//!
//! The four ER-π pruners reason about *event orders inside one candidate*;
//! the sleep-set filter reasons about the *unit permutation itself*, before
//! it is ever flattened. Two grouped units **commute** when every cross
//! pair of their events is declared mutually independent (co-members of
//! some independent set, with no interference edge between them): swapping
//! the two adjacent units is then a sequence of adjacent independent-event
//! transpositions, each of which preserves every replica's behavior.
//!
//! The filter keeps only the permutations with no *descending adjacent
//! commuting pair* — the classic sleep-set / partial-order-reduction
//! canonical form restricted to adjacent transpositions. Soundness: inside
//! any commutation-equivalence class, the lexicographically least
//! permutation has no descending adjacent commuting pair (otherwise the
//! swap would produce a lex-smaller equivalent member), so at least one
//! representative of every class always survives. The reduction is
//! *incomplete* (members reachable only through non-adjacent swap chains
//! may also survive) but never unsound — the dpor-equivalence suite pins
//! that the violation set is unchanged.
//!
//! This composes with Algorithm 3's event-level independence filter: the
//! sleep check is O(units) per candidate against a precomputed commutation
//! matrix and runs first, so most merged permutations never pay the
//! flatten + event-scan cost at all.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use er_pi_model::EventId;

use crate::{GroupedUnits, PruningConfig};

/// The precomputed unit-commutation matrix for one workload's grouped
/// units, plus the live prune tally shared with whoever is watching.
#[derive(Debug, Default)]
pub(crate) struct SleepSet {
    /// `commute[i * n + j]` — units `i` and `j` commute (symmetric).
    commute: Vec<bool>,
    n: usize,
    /// Live rejection tally for progress reporting (server metrics); the
    /// deterministic counts live in `PruneStats`.
    tally: Option<Arc<AtomicU64>>,
}

impl SleepSet {
    /// Builds the matrix from the declared independent sets. Returns a
    /// degenerate (never-rejecting) set when no pair of units commutes —
    /// the explorer then skips the check entirely.
    pub(crate) fn new(grouped: &GroupedUnits, config: &PruningConfig) -> SleepSet {
        let n = grouped.len();
        let sets: Vec<HashSet<EventId>> = config
            .independent_sets
            .iter()
            .map(|s| s.iter().copied().collect())
            .collect();
        if sets.is_empty() || n < 2 {
            return SleepSet::default();
        }
        // Interference edges in either direction poison a pair: a declared
        // interferer must never be commuted past the event it interferes
        // with, whatever the independent sets claim.
        let poisoned: HashSet<(EventId, EventId)> = config
            .interference
            .iter()
            .flat_map(|&(x, y)| [(x, y), (y, x)])
            .collect();
        let independent = |a: EventId, b: EventId| {
            !poisoned.contains(&(a, b)) && sets.iter().any(|s| s.contains(&a) && s.contains(&b))
        };
        let units = grouped.units();
        let mut commute = vec![false; n * n];
        let mut any = false;
        for i in 0..n {
            for j in (i + 1)..n {
                let ok = units[i]
                    .iter()
                    .all(|&a| units[j].iter().all(|&b| independent(a, b)));
                commute[i * n + j] = ok;
                commute[j * n + i] = ok;
                any |= ok;
            }
        }
        if !any {
            return SleepSet::default();
        }
        SleepSet {
            commute,
            n,
            tally: None,
        }
    }

    /// Whether any pair of units commutes — a degenerate matrix rejects
    /// nothing and is skipped by the explorer.
    pub(crate) fn is_active(&self) -> bool {
        self.n > 0
    }

    /// Attaches a live rejection tally (incremented once per pruned
    /// permutation, from the exploring thread).
    pub(crate) fn set_tally(&mut self, tally: Arc<AtomicU64>) {
        if self.is_active() {
            self.tally = Some(tally);
        }
    }

    /// Returns `true` when `perm` is sleep-canonical: no adjacent pair is
    /// both descending (by unit index) and commuting.
    pub(crate) fn is_canonical(&self, perm: &[usize]) -> bool {
        debug_assert_eq!(perm.len(), self.n, "not a unit permutation");
        let canonical = perm
            .windows(2)
            .all(|w| w[0] < w[1] || !self.commute[w[0] * self.n + w[1]]);
        if !canonical {
            if let Some(tally) = &self.tally {
                tally.fetch_add(1, Ordering::Relaxed);
            }
        }
        canonical
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{group_events, Permutations};
    use er_pi_model::{ReplicaId, Value, Workload};

    fn e(i: u32) -> EventId {
        EventId::new(i)
    }

    /// Three singleton updates on distinct replicas.
    fn three_updates() -> Workload {
        let mut w = Workload::builder();
        w.update(ReplicaId::new(0), "a", [Value::from(0)]);
        w.update(ReplicaId::new(1), "b", [Value::from(1)]);
        w.update(ReplicaId::new(2), "c", [Value::from(2)]);
        w.build()
    }

    #[test]
    fn fully_commuting_units_leave_one_canonical_permutation() {
        let w = three_updates();
        let config = PruningConfig::default().with_independent_set(vec![e(0), e(1), e(2)]);
        let grouped = group_events(&w, &config);
        let sleep = SleepSet::new(&grouped, &config);
        assert!(sleep.is_active());
        let survivors: Vec<Vec<usize>> = Permutations::new(3)
            .filter(|p| sleep.is_canonical(p))
            .collect();
        assert_eq!(survivors, vec![vec![0, 1, 2]], "3! collapses to 1");
    }

    #[test]
    fn partial_commutation_keeps_one_representative_per_class() {
        // Only units 0 and 1 commute: classes are {012,102}, {021}, {201},
        // {120,210} — wait, 210: adjacent (2,1) don't commute, (1,0)
        // commute and descend → rejected; 120: (1,2) ascend, (2,0) don't
        // commute → kept. Every class keeps its lex-least member.
        let w = three_updates();
        let config = PruningConfig::default().with_independent_set(vec![e(0), e(1)]);
        let grouped = group_events(&w, &config);
        let sleep = SleepSet::new(&grouped, &config);
        let survivors: Vec<Vec<usize>> = Permutations::new(3)
            .filter(|p| sleep.is_canonical(p))
            .collect();
        assert!(survivors.contains(&vec![0, 1, 2]));
        assert!(!survivors.contains(&vec![1, 0, 2]), "swap of (1,0) merged");
        assert!(!survivors.contains(&vec![2, 1, 0]), "trailing (1,0) merged");
        assert_eq!(survivors.len(), 4);
    }

    #[test]
    fn interference_edges_poison_commutation() {
        let w = three_updates();
        let config = PruningConfig::default()
            .with_independent_set(vec![e(0), e(1), e(2)])
            .with_interference(e(1), e(0));
        let grouped = group_events(&w, &config);
        let sleep = SleepSet::new(&grouped, &config);
        // Units 0 and 1 no longer commute; 0-2 and 1-2 still do.
        assert!(sleep.is_canonical(&[1, 0, 2]), "poisoned pair stays");
        assert!(!sleep.is_canonical(&[0, 2, 1]), "(2,1) still commutes");
    }

    #[test]
    fn no_declared_independence_means_inactive() {
        let w = three_updates();
        let config = PruningConfig::default();
        let grouped = group_events(&w, &config);
        let sleep = SleepSet::new(&grouped, &config);
        assert!(!sleep.is_active());
    }

    #[test]
    fn grouped_units_commute_only_when_every_cross_pair_is_independent() {
        // (update, fused sync) pairs: unit 0 = {0,1}, unit 1 = {2,3}.
        let a = ReplicaId::new(0);
        let b = ReplicaId::new(1);
        let mut w = Workload::builder();
        let u1 = w.update(a, "x", [Value::from(1)]);
        w.sync_pair(a, b, u1);
        let u2 = w.update(b, "y", [Value::from(2)]);
        w.sync_pair(b, a, u2);
        let w = w.build();
        // Declaring only the two updates independent is not enough — the
        // fused syncs are part of the units.
        let partial = PruningConfig::default().with_independent_set(vec![e(0), e(2)]);
        let grouped = group_events(&w, &partial);
        assert!(!SleepSet::new(&grouped, &partial).is_active());
        // All four events mutually independent: the units commute.
        let full = PruningConfig::default().with_independent_set(vec![e(0), e(1), e(2), e(3)]);
        let sleep = SleepSet::new(&grouped, &full);
        assert!(sleep.is_active());
        assert!(!sleep.is_canonical(&[1, 0]));
    }

    #[test]
    fn every_class_keeps_its_lex_least_member() {
        // Exhaustive check over 4 units with a random-ish commutation
        // pattern: compute the classes by closure over adjacent commuting
        // swaps and assert the lex-least member of each class survives.
        let mut w = Workload::builder();
        for i in 0..4u16 {
            w.update(ReplicaId::new(i), "op", [Value::from(i as i64)]);
        }
        let w = w.build();
        let config = PruningConfig::default()
            .with_independent_set(vec![e(0), e(1), e(3)])
            .with_independent_set(vec![e(1), e(2)]);
        let grouped = group_events(&w, &config);
        let sleep = SleepSet::new(&grouped, &config);
        let all: Vec<Vec<usize>> = Permutations::new(4).collect();
        let commutes = |a: usize, b: usize| {
            let pair = [a.min(b), a.max(b)];
            [(0, 1), (0, 3), (1, 3), (1, 2)]
                .iter()
                .any(|&(x, y)| pair == [x, y])
        };
        // Union-find closure over adjacent-swap reachability.
        let mut class: Vec<usize> = (0..all.len()).collect();
        fn find(class: &mut [usize], x: usize) -> usize {
            let mut r = x;
            while class[r] != r {
                r = class[r];
            }
            class[x] = r;
            r
        }
        for (idx, perm) in all.iter().enumerate() {
            for i in 0..perm.len() - 1 {
                if commutes(perm[i], perm[i + 1]) {
                    let mut swapped = perm.clone();
                    swapped.swap(i, i + 1);
                    let other = all.iter().position(|p| *p == swapped).unwrap();
                    let (ra, rb) = (find(&mut class, idx), find(&mut class, other));
                    if ra != rb {
                        class[ra.max(rb)] = ra.min(rb);
                    }
                }
            }
        }
        for idx in 0..all.len() {
            let root = find(&mut class, idx);
            let least = all
                .iter()
                .enumerate()
                .filter(|&(j, _)| {
                    let mut c = class.clone();
                    find(&mut c, j) == root
                })
                .map(|(_, p)| p)
                .min()
                .unwrap();
            assert!(
                sleep.is_canonical(least),
                "lex-least {least:?} of a class must survive"
            );
        }
    }

    #[test]
    fn tally_counts_live_rejections() {
        let w = three_updates();
        let config = PruningConfig::default().with_independent_set(vec![e(0), e(1), e(2)]);
        let grouped = group_events(&w, &config);
        let mut sleep = SleepSet::new(&grouped, &config);
        let tally = Arc::new(AtomicU64::new(0));
        sleep.set_tally(Arc::clone(&tally));
        let kept = Permutations::new(3)
            .filter(|p| sleep.is_canonical(p))
            .count();
        assert_eq!(kept, 1);
        assert_eq!(tally.load(Ordering::Relaxed), 5);
    }
}

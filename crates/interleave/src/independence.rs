//! Algorithm 3 — event-independence pruning.
//!
//! Once the developer determines (by observing replays) that a set of events
//! is mutually independent — e.g. list updates touching disjoint indices —
//! interleavings that differ only in the order of those events are
//! equivalent, *provided* no interfering event separates them. ER-π keeps
//! the representative where the independent events appear in ascending
//! event-id order.

use std::collections::HashSet;

use er_pi_model::EventId;

/// Returns `true` if `order` is the canonical representative of its
/// independence class for the declared `independent` set.
///
/// `interference` lists pairs `(x, y)`: event `x` interferes with
/// independent event `y` (the `R(ev, iev)` relation of the paper's
/// Algorithm 3). If an interfering event sits between the first and last
/// independent event, the class collapses to singletons (everything is
/// canonical — no merging).
///
/// ```
/// use er_pi_interleave::independence_canonical;
/// use er_pi_model::EventId;
///
/// let e = |i| EventId::new(i);
/// let independent = vec![e(0), e(1)];
///
/// // 0 before 1: canonical. 1 before 0: merged away.
/// assert!(independence_canonical(&[e(0), e(1), e(2)], &independent, &[]));
/// assert!(!independence_canonical(&[e(1), e(0), e(2)], &independent, &[]));
///
/// // An interfering event in between blocks the merge.
/// let interference = vec![(e(2), e(0))];
/// assert!(independence_canonical(&[e(1), e(2), e(0)], &independent, &interference));
/// ```
pub fn independence_canonical(
    order: &[EventId],
    independent: &[EventId],
    interference: &[(EventId, EventId)],
) -> bool {
    // Index the declared set and its interferers once, so the scan over
    // `order` is linear instead of rescanning both slices per event.
    let members: HashSet<EventId> = independent.iter().copied().collect();

    // Positions of the independent events actually present.
    let mut positions: Vec<(usize, EventId)> = Vec::new();
    for (pos, &id) in order.iter().enumerate() {
        if members.contains(&id) {
            positions.push((pos, id));
        }
    }
    if positions.len() < 2 {
        return true;
    }
    let first = positions[0].0;
    let last = positions[positions.len() - 1].0;

    // Events that interfere with some member of the set.
    let interferers: HashSet<EventId> = interference
        .iter()
        .filter(|&&(_, y)| members.contains(&y))
        .map(|&(x, _)| x)
        .collect();

    // Check the in-between events for interference.
    for &id in &order[first..=last] {
        if !members.contains(&id) && interferers.contains(&id) {
            return true; // merge blocked: every order stays distinct
        }
    }

    // Canonical: ascending id order among the independent events.
    positions.windows(2).all(|w| w[0].1 < w[1].1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Permutations;

    fn e(i: u32) -> EventId {
        EventId::new(i)
    }

    /// The Figure 5 scenario: three independent list updates.
    #[test]
    fn three_independent_events_merge_6_to_1() {
        let independent = vec![e(0), e(1), e(2)];
        let mut canonical = 0;
        for perm in Permutations::new(3) {
            let order: Vec<EventId> = perm.iter().map(|&i| e(i as u32)).collect();
            if independence_canonical(&order, &independent, &[]) {
                canonical += 1;
            }
        }
        assert_eq!(canonical, 1, "3! - 1 = 5 interleavings pruned");
    }

    #[test]
    fn non_independent_events_are_unconstrained() {
        let independent = vec![e(0), e(1)];
        // Events 2 and 3 are free to be anywhere in any order.
        assert!(independence_canonical(
            &[e(3), e(0), e(1), e(2)],
            &independent,
            &[]
        ));
        assert!(independence_canonical(
            &[e(2), e(0), e(1), e(3)],
            &independent,
            &[]
        ));
    }

    #[test]
    fn intervening_neutral_event_does_not_block_merge() {
        let independent = vec![e(0), e(1)];
        // e2 sits between the independent events but does not interfere.
        assert!(independence_canonical(
            &[e(0), e(2), e(1)],
            &independent,
            &[]
        ));
        assert!(!independence_canonical(
            &[e(1), e(2), e(0)],
            &independent,
            &[]
        ));
    }

    #[test]
    fn interfering_event_blocks_merge_only_when_in_between() {
        let independent = vec![e(0), e(1)];
        let interference = vec![(e(2), e(1))];
        // Interferer in between: both orders canonical (no merging).
        assert!(independence_canonical(
            &[e(0), e(2), e(1)],
            &independent,
            &interference
        ));
        assert!(independence_canonical(
            &[e(1), e(2), e(0)],
            &independent,
            &interference
        ));
        // Interferer outside the span: merging applies again.
        assert!(independence_canonical(
            &[e(2), e(0), e(1)],
            &independent,
            &interference
        ));
        assert!(!independence_canonical(
            &[e(2), e(1), e(0)],
            &independent,
            &interference
        ));
    }

    #[test]
    fn singleton_and_absent_sets_are_trivially_canonical() {
        assert!(independence_canonical(&[e(0), e(1)], &[e(0)], &[]));
        assert!(independence_canonical(&[e(0), e(1)], &[], &[]));
        assert!(independence_canonical(&[e(0), e(1)], &[e(7), e(9)], &[]));
    }

    #[test]
    fn two_disjoint_sets_can_be_checked_independently() {
        let set_a = vec![e(0), e(1)];
        let set_b = vec![e(2), e(3)];
        let order = [e(1), e(0), e(2), e(3)];
        assert!(!independence_canonical(&order, &set_a, &[]));
        assert!(independence_canonical(&order, &set_b, &[]));
    }
}

//! Pruning configuration — including the JSON shape the runtime ingests.
//!
//! The paper's §5.2: "ER-π periodically checks for the presence of JSON
//! files in the constraints directory. If found, ER-π then consults the
//! files for the new constraints to apply." [`PruningConfig`] is exactly
//! that JSON document.

use er_pi_model::{EventId, ReplicaId};
use serde::{Deserialize, Serialize};

/// A failed-ops pruning rule (paper §3.5).
///
/// When every `predecessors` event occurs before every `successors` event in
/// an interleaving, the successors are known to fail (or to be irrelevant to
/// the tested outcome), so their relative order is canonicalized — merging
/// `|successors|!` interleavings into one.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FailedOpsRule {
    /// Events that must all come first for the rule to fire.
    pub predecessors: Vec<EventId>,
    /// Events whose order becomes irrelevant once the rule fires.
    pub successors: Vec<EventId>,
}

/// The complete pruning configuration for one testing session.
///
/// `Default` enables only event grouping (the always-on pruning the paper
/// applies during initial generation, §4.2); the other algorithms are
/// parameterized by the developer, either up front or dynamically via
/// constraint files.
///
/// ```
/// use er_pi_interleave::PruningConfig;
/// use er_pi_model::ReplicaId;
///
/// let json = r#"{ "target_replica": 1, "independent_sets": [[2, 4]] }"#;
/// let config: PruningConfig = serde_json::from_str(json).unwrap();
/// assert_eq!(config.target_replica, Some(ReplicaId::new(1)));
/// assert_eq!(config.independent_sets.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PruningConfig {
    /// Disable the always-on event grouping (used by ablation benches).
    #[serde(default)]
    pub disable_grouping: bool,
    /// Developer-specified extra groups (each inner list is fused into one
    /// atomic unit), per Algorithm 1's `spec_group` input.
    #[serde(default)]
    pub extra_groups: Vec<Vec<EventId>>,
    /// Replica-specific exploration target (Algorithm 2): passed as a
    /// parameter of the `Start`/`End` higher-order functions in the paper.
    #[serde(default)]
    pub target_replica: Option<ReplicaId>,
    /// Sets of mutually independent events (Algorithm 3).
    #[serde(default)]
    pub independent_sets: Vec<Vec<EventId>>,
    /// Pairs `(x, y)` meaning event `x` *interferes with* independent event
    /// `y` — an interleaved `x` between independent events blocks their
    /// merging (the `R(ev, iev)` relation of Algorithm 3).
    #[serde(default)]
    pub interference: Vec<(EventId, EventId)>,
    /// Failed-ops rules (Algorithm 4).
    #[serde(default)]
    pub failed_ops: Vec<FailedOpsRule>,
    /// Extension (not in the paper's counts): skip causally invalid orders
    /// entirely instead of replaying them as wasted no-op runs.
    #[serde(default)]
    pub require_causal: bool,
    /// Extension: sleep-set (DPOR-style) pruning over unit permutations.
    /// Precomputes which grouped units commute (every cross event pair
    /// co-members of a declared independent set) and rejects permutations
    /// with a descending adjacent commuting pair — before the candidate is
    /// even flattened. Sound (one representative per commutation class
    /// always survives) but off by default: it changes *which*
    /// representative of a merged class is replayed, so reports are
    /// violation-equivalent rather than byte-identical to a sleep-off run.
    #[serde(default)]
    pub sleep_sets: bool,
}

impl PruningConfig {
    /// Builder-style: adds a developer-specified group.
    #[must_use]
    pub fn with_group(mut self, group: Vec<EventId>) -> Self {
        self.extra_groups.push(group);
        self
    }

    /// Builder-style: sets the replica-specific target.
    #[must_use]
    pub fn with_target_replica(mut self, replica: ReplicaId) -> Self {
        self.target_replica = Some(replica);
        self
    }

    /// Builder-style: declares a set of independent events.
    #[must_use]
    pub fn with_independent_set(mut self, set: Vec<EventId>) -> Self {
        self.independent_sets.push(set);
        self
    }

    /// Builder-style: adds a failed-ops rule.
    #[must_use]
    pub fn with_failed_ops(mut self, rule: FailedOpsRule) -> Self {
        self.failed_ops.push(rule);
        self
    }

    /// Builder-style: declares an interference edge.
    #[must_use]
    pub fn with_interference(mut self, interferer: EventId, independent: EventId) -> Self {
        self.interference.push((interferer, independent));
        self
    }

    /// Builder-style: enables sleep-set pruning over unit permutations.
    #[must_use]
    pub fn with_sleep_sets(mut self, enabled: bool) -> Self {
        self.sleep_sets = enabled;
        self
    }

    /// Merges constraints discovered at runtime (State 4 of the paper's
    /// workflow) into this configuration.
    pub fn absorb(&mut self, newer: PruningConfig) {
        self.disable_grouping |= newer.disable_grouping;
        self.extra_groups.extend(newer.extra_groups);
        if newer.target_replica.is_some() {
            self.target_replica = newer.target_replica;
        }
        self.independent_sets.extend(newer.independent_sets);
        self.interference.extend(newer.interference);
        self.failed_ops.extend(newer.failed_ops);
        self.require_causal |= newer.require_causal;
        self.sleep_sets |= newer.sleep_sets;
    }

    /// Returns `true` if any dynamic (developer-parameterized) pruning is
    /// configured beyond the always-on grouping.
    pub fn has_dynamic_rules(&self) -> bool {
        self.target_replica.is_some()
            || !self.independent_sets.is_empty()
            || !self.failed_ops.is_empty()
            || !self.extra_groups.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EventId {
        EventId::new(i)
    }

    #[test]
    fn default_is_grouping_only() {
        let c = PruningConfig::default();
        assert!(!c.disable_grouping);
        assert!(!c.has_dynamic_rules());
    }

    #[test]
    fn builders_accumulate() {
        let c = PruningConfig::default()
            .with_group(vec![e(0), e(1)])
            .with_target_replica(ReplicaId::new(2))
            .with_independent_set(vec![e(3), e(4)])
            .with_interference(e(5), e(3))
            .with_failed_ops(FailedOpsRule {
                predecessors: vec![e(0)],
                successors: vec![e(3)],
            });
        assert!(c.has_dynamic_rules());
        assert_eq!(c.extra_groups.len(), 1);
        assert_eq!(c.interference, vec![(e(5), e(3))]);
    }

    #[test]
    fn absorb_merges_runtime_constraints() {
        let mut base = PruningConfig::default().with_group(vec![e(0), e(1)]);
        let update = PruningConfig::default()
            .with_target_replica(ReplicaId::new(1))
            .with_independent_set(vec![e(2), e(3)]);
        base.absorb(update);
        assert_eq!(base.extra_groups.len(), 1);
        assert_eq!(base.target_replica, Some(ReplicaId::new(1)));
        assert_eq!(base.independent_sets.len(), 1);
    }

    #[test]
    fn json_roundtrip() {
        let c = PruningConfig::default()
            .with_failed_ops(FailedOpsRule {
                predecessors: vec![e(6)],
                successors: vec![e(0), e(2)],
            })
            .with_target_replica(ReplicaId::new(0));
        let json = serde_json::to_string(&c).unwrap();
        let back: PruningConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn partial_json_uses_defaults() {
        let c: PruningConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(c, PruningConfig::default());
    }
}

//! The ER-π pruned explorer: grouping + canonical-form filters.

use er_pi_model::{Interleaving, Workload};

use crate::{
    failed_ops_canonical, group_events, independence_canonical, replica_specific_canonical,
    Explorer, GroupedUnits, PruningConfig,
};

/// Per-algorithm pruning counters, observed while exploring.
///
/// `grouping_factor` is analytic (`n! / u!`); the other three count the
/// candidate interleavings each canonical filter rejected — the data behind
/// Figure 9 ("Individual Algorithm's Contribution to the Reduction of
/// Interleavings Number").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruneStats {
    /// Interleavings merged away by event grouping, per unit permutation
    /// (analytic): `n!/u!` interleavings collapse into every emitted one.
    pub grouping_factor: u128,
    /// Candidates rejected by replica-specific canonicalization.
    pub replica_specific_rejected: u64,
    /// Candidates rejected by event-independence canonicalization.
    pub independence_rejected: u64,
    /// Candidates rejected by failed-ops canonicalization.
    pub failed_ops_rejected: u64,
    /// Candidates rejected by the causal-validity extension filter.
    pub causal_rejected: u64,
    /// Interleavings emitted.
    pub emitted: u64,
}

impl PruneStats {
    /// Total candidates examined (emitted + rejected by any filter).
    pub fn examined(&self) -> u64 {
        self.emitted
            + self.replica_specific_rejected
            + self.independence_rejected
            + self.failed_ops_rejected
            + self.causal_rejected
    }
}

/// ER-π's interleaving generator: permutations of grouped units, filtered to
/// the canonical representative of every pruning-equivalence class.
///
/// See the [crate-level example](crate) for the motivating-example numbers
/// (5040 → 24 → 19).
#[derive(Debug)]
pub struct ErPiExplorer<'w> {
    workload: &'w Workload,
    config: PruningConfig,
    grouped: GroupedUnits,
    perms: crate::Permutations,
    stats: PruneStats,
}

impl<'w> ErPiExplorer<'w> {
    /// Creates the explorer for `workload` under `config`.
    pub fn new(workload: &'w Workload, config: &PruningConfig) -> Self {
        let grouped = group_events(workload, config);
        let grouping_factor = if grouped.len() == workload.len() {
            1
        } else {
            er_pi_model::reduction_factor(workload.total_orders(), grouped.total_orders())
                .unwrap_or(1)
        };
        ErPiExplorer {
            workload,
            config: config.clone(),
            perms: crate::Permutations::new(grouped.len()),
            grouped,
            stats: PruneStats {
                grouping_factor,
                ..PruneStats::default()
            },
        }
    }

    /// The grouped units the explorer permutes.
    pub fn grouped(&self) -> &GroupedUnits {
        &self.grouped
    }

    /// Pruning counters accumulated so far.
    pub fn stats(&self) -> PruneStats {
        self.stats
    }

    /// Checks every configured canonical predicate; returns the name of the
    /// first filter that rejects, or `None` if the order is canonical.
    fn rejecting_filter(&self, order: &[er_pi_model::EventId]) -> Option<&'static str> {
        if let Some(target) = self.config.target_replica {
            if !replica_specific_canonical(self.workload, order, target) {
                return Some("replica-specific");
            }
        }
        for set in &self.config.independent_sets {
            if !independence_canonical(order, set, &self.config.interference) {
                return Some("independence");
            }
        }
        for rule in &self.config.failed_ops {
            if !failed_ops_canonical(order, rule) {
                return Some("failed-ops");
            }
        }
        if self.config.require_causal {
            let il = Interleaving::new(order.to_vec());
            if !self.workload.is_causally_valid(&il) {
                return Some("causal");
            }
        }
        None
    }
}

impl Iterator for ErPiExplorer<'_> {
    type Item = Interleaving;

    fn next(&mut self) -> Option<Interleaving> {
        loop {
            let perm = self.perms.next()?;
            let order = self.grouped.flatten(&perm);
            match self.rejecting_filter(&order) {
                None => {
                    self.stats.emitted += 1;
                    return Some(Interleaving::new(order));
                }
                Some("replica-specific") => self.stats.replica_specific_rejected += 1,
                Some("independence") => self.stats.independence_rejected += 1,
                Some("failed-ops") => self.stats.failed_ops_rejected += 1,
                Some("causal") => self.stats.causal_rejected += 1,
                Some(other) => unreachable!("unknown filter {other}"),
            }
        }
    }
}

impl Explorer for ErPiExplorer<'_> {
    fn name(&self) -> &'static str {
        "ER-π"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FailedOpsRule;
    use er_pi_model::{EventId, ReplicaId, Value, Workload};

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    /// The §2.3 motivating example workload.
    fn motivating() -> (Workload, [EventId; 4]) {
        let a = r(0);
        let b = r(1);
        let mut w = Workload::builder();
        let ev1 = w.update(a, "add", [Value::from("otb")]);
        w.sync_pair(a, b, ev1);
        let ev2 = w.update(b, "add", [Value::from("ph")]);
        w.sync_pair(b, a, ev2);
        let ev3 = w.update(b, "remove", [Value::from("otb")]);
        w.sync_pair(b, a, ev3);
        let ev4 = w.external(a, "transmit");
        (w.build(), [ev1, ev2, ev3, ev4])
    }

    #[test]
    fn grouping_only_gives_24() {
        let (w, _) = motivating();
        let config = PruningConfig::default();
        let explorer = ErPiExplorer::new(&w, &config);
        assert_eq!(explorer.grouped().len(), 4);
        assert_eq!(explorer.count(), 24);
    }

    #[test]
    fn paper_motivating_example_reaches_19() {
        let (w, [ev1, ev2, ev3, ev4]) = motivating();
        let config = PruningConfig::default().with_failed_ops(FailedOpsRule {
            predecessors: vec![ev4],
            successors: vec![ev1, ev2, ev3],
        });
        let mut explorer = ErPiExplorer::new(&w, &config);
        let emitted: Vec<Interleaving> = explorer.by_ref().collect();
        assert_eq!(emitted.len(), 19, "5040 → 19, a 265x reduction");
        assert_eq!(
            er_pi_model::reduction_factor(w.total_orders(), emitted.len() as u128),
            Some(265)
        );
        let stats = explorer.stats();
        assert_eq!(stats.emitted, 19);
        assert_eq!(stats.failed_ops_rejected, 5);
        assert_eq!(stats.grouping_factor, 210); // 5040 / 24
    }

    #[test]
    fn every_emitted_order_is_a_permutation() {
        let (w, _) = motivating();
        let config = PruningConfig::default();
        for il in ErPiExplorer::new(&w, &config) {
            assert!(w.is_permutation(&il));
        }
    }

    #[test]
    fn units_stay_contiguous_in_emitted_orders() {
        let (w, [ev1, _, _, _]) = motivating();
        let config = PruningConfig::default();
        let explorer = ErPiExplorer::new(&w, &config);
        let sync1 = EventId::new(ev1.raw() + 1); // the fused sync of ev1
        for il in explorer {
            let p_upd = il.position(ev1).unwrap();
            let p_sync = il.position(sync1).unwrap();
            assert_eq!(p_sync, p_upd + 1, "grouped pair must stay adjacent in {il}");
        }
    }

    #[test]
    fn causal_filter_extension_reduces_further() {
        // Three updates with a chain dependency x -> y -> z: only one of
        // the 3! orders is causally valid.
        let mut w = Workload::builder();
        let x = w.update(r(0), "x", [Value::from(0)]);
        let y = w.update(r(1), "y", [Value::from(1)]);
        let z = w.update(r(2), "z", [Value::from(2)]);
        w.depends(y, x);
        w.depends(z, y);
        let w = w.build();
        let config = PruningConfig {
            require_causal: true,
            ..PruningConfig::default()
        };
        let mut explorer = ErPiExplorer::new(&w, &config);
        let emitted: Vec<Interleaving> = explorer.by_ref().collect();
        assert_eq!(emitted.len(), 1);
        assert!(w.is_causally_valid(&emitted[0]));
        assert_eq!(explorer.stats().causal_rejected, 5);
        let _ = (x, z);
    }

    #[test]
    fn replica_specific_filter_counts_rejections() {
        let a = r(0);
        let b = r(1);
        let mut w = Workload::builder();
        let base = w.update(a, "base", [Value::from(0)]);
        w.sync_pair(a, b, base);
        w.update(a, "p", [Value::from(1)]);
        w.update(a, "q", [Value::from(2)]);
        let w = w.build();
        let config = PruningConfig::default().with_target_replica(b);
        let mut explorer = ErPiExplorer::new(&w, &config);
        let emitted = explorer.by_ref().count();
        let stats = explorer.stats();
        assert!(stats.replica_specific_rejected > 0);
        assert_eq!(stats.emitted as usize, emitted);
        assert_eq!(
            stats.examined() as usize,
            emitted + stats.replica_specific_rejected as usize
        );
    }

    #[test]
    fn independence_filter_applies_to_unit_orders() {
        let mut w = Workload::builder();
        let x = w.update(r(0), "set", [Value::from(0)]);
        let y = w.update(r(1), "set", [Value::from(1)]);
        let z = w.update(r(2), "set", [Value::from(2)]);
        let w = w.build();
        let config = PruningConfig::default().with_independent_set(vec![x, y, z]);
        let explorer = ErPiExplorer::new(&w, &config);
        assert_eq!(explorer.count(), 1, "3! orders merge into one");
    }
}

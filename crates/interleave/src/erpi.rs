//! The ER-π pruned explorer: grouping + canonical-form filters.

use std::borrow::Cow;

use er_pi_model::{Interleaving, Workload};

use crate::{
    failed_ops_canonical, group_events, independence_canonical, replica_specific_canonical,
    sleep::SleepSet, Explorer, GroupedUnits, PruningConfig,
};

/// Per-algorithm pruning counters, observed while exploring.
///
/// `grouping_factor` is analytic (`n! / u!`); for each canonical filter the
/// `*_checked` field counts the candidates that reached it (count-in) and
/// the `*_rejected` field the candidates it eliminated (count-out minus
/// count-in) — together the data behind Figure 9 ("Individual Algorithm's
/// Contribution to the Reduction of Interleavings Number"). Filters run in
/// a fixed order (replica-specific, independence, failed-ops, causal), so
/// each filter's count-in is the previous filter's survivors; all counters
/// are deterministic functions of the workload and pruning config and are
/// therefore safe to compare in `Report::diff`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct PruneStats {
    /// Interleavings merged away by event grouping, per unit permutation
    /// (analytic): `n!/u!` interleavings collapse into every emitted one.
    pub grouping_factor: u128,
    /// Unit permutations that reached the sleep-set filter (the first
    /// filter — it runs on the raw permutation, before flattening).
    #[serde(default)]
    pub sleep_checked: u64,
    /// Unit permutations rejected by the sleep-set filter.
    #[serde(default)]
    pub sleep_rejected: u64,
    /// Candidates that reached replica-specific canonicalization.
    pub replica_specific_checked: u64,
    /// Candidates rejected by replica-specific canonicalization.
    pub replica_specific_rejected: u64,
    /// Candidates that reached event-independence canonicalization.
    pub independence_checked: u64,
    /// Candidates rejected by event-independence canonicalization.
    pub independence_rejected: u64,
    /// Candidates that reached failed-ops canonicalization.
    pub failed_ops_checked: u64,
    /// Candidates rejected by failed-ops canonicalization.
    pub failed_ops_rejected: u64,
    /// Candidates that reached the causal-validity extension filter.
    pub causal_checked: u64,
    /// Candidates rejected by the causal-validity extension filter.
    pub causal_rejected: u64,
    /// Interleavings emitted.
    pub emitted: u64,
}

impl PruneStats {
    /// Total candidates examined (emitted + rejected by any filter).
    pub fn examined(&self) -> u64 {
        self.emitted
            + self.sleep_rejected
            + self.replica_specific_rejected
            + self.independence_rejected
            + self.failed_ops_rejected
            + self.causal_rejected
    }

    /// `(name, checked, rejected)` rows for the configured filters, in
    /// evaluation order — the telemetry attribution table. Filters that
    /// never saw a candidate (not configured, or exploration rejected
    /// everything earlier) are omitted.
    pub fn per_filter(&self) -> Vec<(&'static str, u64, u64)> {
        [
            ("sleep", self.sleep_checked, self.sleep_rejected),
            (
                "replica-specific",
                self.replica_specific_checked,
                self.replica_specific_rejected,
            ),
            (
                "independence",
                self.independence_checked,
                self.independence_rejected,
            ),
            (
                "failed-ops",
                self.failed_ops_checked,
                self.failed_ops_rejected,
            ),
            ("causal", self.causal_checked, self.causal_rejected),
        ]
        .into_iter()
        .filter(|&(_, checked, _)| checked > 0)
        .collect()
    }
}

/// Wall-clock time spent inside each canonical filter, in nanoseconds.
///
/// Collected only when [`ErPiExplorer::enable_timing`] was called — timing
/// reads the monotonic clock twice per filter evaluation, which the
/// deterministic replay paths must not pay (and whose values must never
/// reach `Report`, where they would break run-to-run comparison). The
/// telemetry layer turns these into per-pruner spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FilterTimings {
    /// Nanoseconds spent in the sleep-set permutation filter.
    pub sleep_ns: u64,
    /// Nanoseconds spent in replica-specific canonicalization.
    pub replica_specific_ns: u64,
    /// Nanoseconds spent in event-independence canonicalization.
    pub independence_ns: u64,
    /// Nanoseconds spent in failed-ops canonicalization.
    pub failed_ops_ns: u64,
    /// Nanoseconds spent in the causal-validity extension filter.
    pub causal_ns: u64,
}

impl FilterTimings {
    /// `(name, nanoseconds)` rows in filter evaluation order.
    pub fn per_filter(&self) -> [(&'static str, u64); 5] {
        [
            ("sleep", self.sleep_ns),
            ("replica-specific", self.replica_specific_ns),
            ("independence", self.independence_ns),
            ("failed-ops", self.failed_ops_ns),
            ("causal", self.causal_ns),
        ]
    }
}

/// ER-π's interleaving generator: permutations of grouped units, filtered to
/// the canonical representative of every pruning-equivalence class.
///
/// See the [crate-level example](crate) for the motivating-example numbers
/// (5040 → 24 → 19).
#[derive(Debug)]
pub struct ErPiExplorer<'w> {
    workload: Cow<'w, Workload>,
    config: PruningConfig,
    grouped: GroupedUnits,
    perms: crate::Permutations,
    sleep: SleepSet,
    stats: PruneStats,
    timing: bool,
    timings: FilterTimings,
}

impl<'w> ErPiExplorer<'w> {
    /// Creates the explorer for `workload` under `config`.
    pub fn new(workload: &'w Workload, config: &PruningConfig) -> Self {
        ErPiExplorer::build(Cow::Borrowed(workload), config)
    }

    /// Like [`ErPiExplorer::new`], but taking ownership of the workload so
    /// the explorer has no borrowed lifetime — required when an explorer
    /// outlives the stack frame that configured it (the shared executor
    /// service keeps one per campaign).
    pub fn owned(workload: Workload, config: &PruningConfig) -> ErPiExplorer<'static> {
        ErPiExplorer::build(Cow::Owned(workload), config)
    }

    fn build(workload: Cow<'w, Workload>, config: &PruningConfig) -> Self {
        let grouped = group_events(&workload, config);
        let grouping_factor = if grouped.len() == workload.len() {
            1
        } else {
            er_pi_model::reduction_factor(workload.total_orders(), grouped.total_orders())
                .unwrap_or(1)
        };
        let sleep = if config.sleep_sets {
            SleepSet::new(&grouped, config)
        } else {
            SleepSet::default()
        };
        ErPiExplorer {
            workload,
            config: config.clone(),
            perms: crate::Permutations::new(grouped.len()),
            grouped,
            sleep,
            stats: PruneStats {
                grouping_factor,
                ..PruneStats::default()
            },
            timing: false,
            timings: FilterTimings::default(),
        }
    }

    /// The grouped units the explorer permutes.
    pub fn grouped(&self) -> &GroupedUnits {
        &self.grouped
    }

    /// Pruning counters accumulated so far.
    pub fn stats(&self) -> PruneStats {
        self.stats
    }

    /// Starts measuring per-filter wall time (off by default — it costs two
    /// monotonic-clock reads per filter evaluation). Read the result with
    /// [`ErPiExplorer::timings`].
    pub fn enable_timing(&mut self) {
        self.timing = true;
    }

    /// Per-filter wall time accumulated so far. All zeros unless
    /// [`ErPiExplorer::enable_timing`] was called.
    pub fn timings(&self) -> FilterTimings {
        self.timings
    }

    /// Attaches a live sleep-set rejection tally (an atomic the progress
    /// layer shares with the campaign server). The deterministic counts
    /// stay in [`PruneStats`]; the tally only feeds live metrics.
    pub fn set_sleep_tally(&mut self, tally: std::sync::Arc<std::sync::atomic::AtomicU64>) {
        self.sleep.set_tally(tally);
    }

    /// Checks every configured canonical predicate, updating the per-filter
    /// count-in counters (and wall-time, when enabled); returns the name of
    /// the first filter that rejects, or `None` if the order is canonical.
    fn rejecting_filter(&mut self, order: &[er_pi_model::EventId]) -> Option<&'static str> {
        if let Some(target) = self.config.target_replica {
            self.stats.replica_specific_checked += 1;
            let t = self.timing.then(std::time::Instant::now);
            let ok = replica_specific_canonical(&self.workload, order, target);
            if let Some(t) = t {
                self.timings.replica_specific_ns += t.elapsed().as_nanos() as u64;
            }
            if !ok {
                return Some("replica-specific");
            }
        }
        if !self.config.independent_sets.is_empty() {
            self.stats.independence_checked += 1;
            let t = self.timing.then(std::time::Instant::now);
            let ok = self
                .config
                .independent_sets
                .iter()
                .all(|set| independence_canonical(order, set, &self.config.interference));
            if let Some(t) = t {
                self.timings.independence_ns += t.elapsed().as_nanos() as u64;
            }
            if !ok {
                return Some("independence");
            }
        }
        if !self.config.failed_ops.is_empty() {
            self.stats.failed_ops_checked += 1;
            let t = self.timing.then(std::time::Instant::now);
            let ok = self
                .config
                .failed_ops
                .iter()
                .all(|rule| failed_ops_canonical(order, rule));
            if let Some(t) = t {
                self.timings.failed_ops_ns += t.elapsed().as_nanos() as u64;
            }
            if !ok {
                return Some("failed-ops");
            }
        }
        if self.config.require_causal {
            self.stats.causal_checked += 1;
            let t = self.timing.then(std::time::Instant::now);
            let il = Interleaving::new(order.to_vec());
            let ok = self.workload.is_causally_valid(&il);
            if let Some(t) = t {
                self.timings.causal_ns += t.elapsed().as_nanos() as u64;
            }
            if !ok {
                return Some("causal");
            }
        }
        None
    }
}

impl Iterator for ErPiExplorer<'_> {
    type Item = Interleaving;

    fn next(&mut self) -> Option<Interleaving> {
        loop {
            let perm = self.perms.next()?;
            // The sleep-set check runs on the raw unit permutation, before
            // the flatten: a pruned candidate never pays event-level work.
            if self.sleep.is_active() {
                self.stats.sleep_checked += 1;
                let t = self.timing.then(std::time::Instant::now);
                let ok = self.sleep.is_canonical(&perm);
                if let Some(t) = t {
                    self.timings.sleep_ns += t.elapsed().as_nanos() as u64;
                }
                if !ok {
                    self.stats.sleep_rejected += 1;
                    continue;
                }
            }
            let order = self.grouped.flatten(&perm);
            match self.rejecting_filter(&order) {
                None => {
                    self.stats.emitted += 1;
                    return Some(Interleaving::new(order));
                }
                Some("replica-specific") => self.stats.replica_specific_rejected += 1,
                Some("independence") => self.stats.independence_rejected += 1,
                Some("failed-ops") => self.stats.failed_ops_rejected += 1,
                Some("causal") => self.stats.causal_rejected += 1,
                Some(other) => unreachable!("unknown filter {other}"),
            }
        }
    }
}

impl Explorer for ErPiExplorer<'_> {
    fn name(&self) -> &'static str {
        "ER-π"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FailedOpsRule;
    use er_pi_model::{EventId, ReplicaId, Value, Workload};

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    /// The §2.3 motivating example workload.
    fn motivating() -> (Workload, [EventId; 4]) {
        let a = r(0);
        let b = r(1);
        let mut w = Workload::builder();
        let ev1 = w.update(a, "add", [Value::from("otb")]);
        w.sync_pair(a, b, ev1);
        let ev2 = w.update(b, "add", [Value::from("ph")]);
        w.sync_pair(b, a, ev2);
        let ev3 = w.update(b, "remove", [Value::from("otb")]);
        w.sync_pair(b, a, ev3);
        let ev4 = w.external(a, "transmit");
        (w.build(), [ev1, ev2, ev3, ev4])
    }

    #[test]
    fn grouping_only_gives_24() {
        let (w, _) = motivating();
        let config = PruningConfig::default();
        let explorer = ErPiExplorer::new(&w, &config);
        assert_eq!(explorer.grouped().len(), 4);
        assert_eq!(explorer.count(), 24);
    }

    #[test]
    fn paper_motivating_example_reaches_19() {
        let (w, [ev1, ev2, ev3, ev4]) = motivating();
        let config = PruningConfig::default().with_failed_ops(FailedOpsRule {
            predecessors: vec![ev4],
            successors: vec![ev1, ev2, ev3],
        });
        let mut explorer = ErPiExplorer::new(&w, &config);
        let emitted: Vec<Interleaving> = explorer.by_ref().collect();
        assert_eq!(emitted.len(), 19, "5040 → 19, a 265x reduction");
        assert_eq!(
            er_pi_model::reduction_factor(w.total_orders(), emitted.len() as u128),
            Some(265)
        );
        let stats = explorer.stats();
        assert_eq!(stats.emitted, 19);
        assert_eq!(stats.failed_ops_rejected, 5);
        assert_eq!(stats.failed_ops_checked, 24, "every candidate reached it");
        assert_eq!(stats.grouping_factor, 210); // 5040 / 24
        assert_eq!(stats.per_filter(), vec![("failed-ops", 24, 5)]);
    }

    #[test]
    fn count_in_chains_through_the_filter_order() {
        // Configure both the replica-specific and causal filters: causal's
        // count-in must equal replica-specific's survivors.
        let a = r(0);
        let b = r(1);
        let mut w = Workload::builder();
        let base = w.update(a, "base", [Value::from(0)]);
        w.sync_pair(a, b, base);
        let p = w.update(a, "p", [Value::from(1)]);
        let q = w.update(a, "q", [Value::from(2)]);
        w.depends(q, p);
        let w = w.build();
        let config = PruningConfig {
            require_causal: true,
            ..PruningConfig::default().with_target_replica(b)
        };
        let mut explorer = ErPiExplorer::new(&w, &config);
        let emitted = explorer.by_ref().count() as u64;
        let stats = explorer.stats();
        assert_eq!(
            stats.causal_checked,
            stats.replica_specific_checked - stats.replica_specific_rejected
        );
        assert_eq!(stats.causal_checked - stats.causal_rejected, emitted);
        assert_eq!(
            stats.per_filter(),
            vec![
                (
                    "replica-specific",
                    stats.replica_specific_checked,
                    stats.replica_specific_rejected
                ),
                ("causal", stats.causal_checked, stats.causal_rejected),
            ]
        );
    }

    #[test]
    fn timings_stay_zero_unless_enabled() {
        let (w, [ev1, ev2, ev3, ev4]) = motivating();
        let config = PruningConfig::default().with_failed_ops(FailedOpsRule {
            predecessors: vec![ev4],
            successors: vec![ev1, ev2, ev3],
        });
        let mut silent = ErPiExplorer::new(&w, &config);
        silent.by_ref().count();
        assert_eq!(silent.timings(), FilterTimings::default());

        let mut timed = ErPiExplorer::new(&w, &config);
        timed.enable_timing();
        timed.by_ref().count();
        let timings = timed.timings();
        // The failed-ops filter evaluated 24 candidates; the others never ran.
        assert_eq!(timings.replica_specific_ns, 0);
        assert_eq!(timings.independence_ns, 0);
        assert_eq!(timings.causal_ns, 0);
        // Timing must not change what is emitted or counted.
        assert_eq!(timed.stats(), silent.stats());
    }

    #[test]
    fn every_emitted_order_is_a_permutation() {
        let (w, _) = motivating();
        let config = PruningConfig::default();
        for il in ErPiExplorer::new(&w, &config) {
            assert!(w.is_permutation(&il));
        }
    }

    #[test]
    fn units_stay_contiguous_in_emitted_orders() {
        let (w, [ev1, _, _, _]) = motivating();
        let config = PruningConfig::default();
        let explorer = ErPiExplorer::new(&w, &config);
        let sync1 = EventId::new(ev1.raw() + 1); // the fused sync of ev1
        for il in explorer {
            let p_upd = il.position(ev1).unwrap();
            let p_sync = il.position(sync1).unwrap();
            assert_eq!(p_sync, p_upd + 1, "grouped pair must stay adjacent in {il}");
        }
    }

    #[test]
    fn causal_filter_extension_reduces_further() {
        // Three updates with a chain dependency x -> y -> z: only one of
        // the 3! orders is causally valid.
        let mut w = Workload::builder();
        let x = w.update(r(0), "x", [Value::from(0)]);
        let y = w.update(r(1), "y", [Value::from(1)]);
        let z = w.update(r(2), "z", [Value::from(2)]);
        w.depends(y, x);
        w.depends(z, y);
        let w = w.build();
        let config = PruningConfig {
            require_causal: true,
            ..PruningConfig::default()
        };
        let mut explorer = ErPiExplorer::new(&w, &config);
        let emitted: Vec<Interleaving> = explorer.by_ref().collect();
        assert_eq!(emitted.len(), 1);
        assert!(w.is_causally_valid(&emitted[0]));
        assert_eq!(explorer.stats().causal_rejected, 5);
        let _ = (x, z);
    }

    #[test]
    fn replica_specific_filter_counts_rejections() {
        let a = r(0);
        let b = r(1);
        let mut w = Workload::builder();
        let base = w.update(a, "base", [Value::from(0)]);
        w.sync_pair(a, b, base);
        w.update(a, "p", [Value::from(1)]);
        w.update(a, "q", [Value::from(2)]);
        let w = w.build();
        let config = PruningConfig::default().with_target_replica(b);
        let mut explorer = ErPiExplorer::new(&w, &config);
        let emitted = explorer.by_ref().count();
        let stats = explorer.stats();
        assert!(stats.replica_specific_rejected > 0);
        assert_eq!(stats.emitted as usize, emitted);
        assert_eq!(
            stats.examined() as usize,
            emitted + stats.replica_specific_rejected as usize
        );
    }

    #[test]
    fn independence_filter_applies_to_unit_orders() {
        let mut w = Workload::builder();
        let x = w.update(r(0), "set", [Value::from(0)]);
        let y = w.update(r(1), "set", [Value::from(1)]);
        let z = w.update(r(2), "set", [Value::from(2)]);
        let w = w.build();
        let config = PruningConfig::default().with_independent_set(vec![x, y, z]);
        let explorer = ErPiExplorer::new(&w, &config);
        assert_eq!(explorer.count(), 1, "3! orders merge into one");
    }

    #[test]
    fn sleep_sets_emit_the_same_orders_with_fewer_event_level_checks() {
        // Sleep pruning runs on the unit permutation before flattening, so
        // the independence filter sees fewer candidates — but the emitted
        // set must be unchanged (both keep the ascending representative).
        let mut w = Workload::builder();
        for i in 0..4u16 {
            w.update(r(i), "set", [Value::from(i as i64)]);
        }
        let w = w.build();
        let ids: Vec<EventId> = (0..4).map(EventId::new).collect();
        let base = PruningConfig::default().with_independent_set(ids.clone());
        let mut plain = ErPiExplorer::new(&w, &base);
        let plain_out: Vec<Interleaving> = plain.by_ref().collect();

        let slept = base.clone().with_sleep_sets(true);
        let mut pruned = ErPiExplorer::new(&w, &slept);
        let pruned_out: Vec<Interleaving> = pruned.by_ref().collect();

        assert_eq!(plain_out, pruned_out, "same canonical representatives");
        let stats = pruned.stats();
        assert_eq!(stats.sleep_checked, 24);
        assert!(
            stats.sleep_rejected > 0,
            "sleep must prune before the flatten: {stats:?}"
        );
        assert!(
            stats.independence_checked < plain.stats().independence_checked,
            "event-level filter saw fewer candidates"
        );
        assert_eq!(
            stats.per_filter()[0],
            ("sleep", stats.sleep_checked, stats.sleep_rejected)
        );
        assert_eq!(stats.examined(), 24);
    }

    #[test]
    fn sleep_sets_without_independence_declarations_are_inert() {
        let (w, _) = motivating();
        let config = PruningConfig::default().with_sleep_sets(true);
        let mut explorer = ErPiExplorer::new(&w, &config);
        assert_eq!(explorer.by_ref().count(), 24);
        let stats = explorer.stats();
        assert_eq!(stats.sleep_checked, 0, "no commuting pair, no check");
        assert_eq!(stats.sleep_rejected, 0);
    }
}

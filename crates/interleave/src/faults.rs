//! Weaving fault schedules into the interleaving space.
//!
//! [`FaultSpace`] describes which fault kinds to explore and under what
//! budget; [`enumerate_plans`] turns a workload plus a space into the
//! deterministic, finite list of [`FaultPlan`]s; [`FaultProduct`] lifts any
//! interleaving explorer to the product space `orders × plans`.
//!
//! The product is *plan-minor*: for each base order the wrapper emits the
//! fault-free baseline first (when present), then each plan in enumeration
//! order, before advancing to the next order. Consecutive emissions thus
//! share their entire event order and differ only in per-anchor fault
//! digests, which is the friendliest shape for the checkpoint trie —
//! snapshots are shared up to the first anchored fault.

use er_pi_model::{EventId, FaultEvent, FaultKind, FaultPlan, Interleaving, Workload};

use crate::Explorer;

/// The configurable fault budget: which faults to schedule, where, and how
/// many per plan.
///
/// Defaults explore the *schedule-surgery* faults (duplicate and delay) that
/// a correct CRDT substrate must tolerate — so any violation they surface is
/// an integration bug, not a false positive. Loss-like faults (drop,
/// partition windows) and crash-restart legitimately break convergence for
/// many oracles and are opt-in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpace {
    /// Maximum number of scheduled faults per plan (a partition/heal window
    /// counts as two).
    pub budget: usize,
    /// Schedule message drops at sync events.
    pub drop: bool,
    /// Schedule duplicate deliveries at sync events.
    pub duplicate: bool,
    /// Reorder-window size: schedule delays of `1..=delay_window` steps at
    /// sync events (`0` disables delays).
    pub delay_window: u32,
    /// Schedule partition/heal windows over pairs of same-link sync events.
    pub partitions: bool,
    /// Schedule a crash-restart of the executing replica before each event.
    pub crashes: bool,
    /// Also anchor drop/duplicate/delay at local updates (not just syncs).
    pub include_local_ops: bool,
    /// Emit the fault-free baseline plan first.
    pub include_baseline: bool,
}

impl Default for FaultSpace {
    fn default() -> Self {
        FaultSpace {
            budget: 1,
            drop: false,
            duplicate: true,
            delay_window: 1,
            partitions: false,
            crashes: false,
            include_local_ops: false,
            include_baseline: true,
        }
    }
}

impl FaultSpace {
    /// A space scheduling every supported fault kind under `budget`.
    pub fn all(budget: usize) -> Self {
        FaultSpace {
            budget,
            drop: true,
            duplicate: true,
            delay_window: 2,
            partitions: true,
            crashes: true,
            include_local_ops: false,
            include_baseline: true,
        }
    }

    /// Disables the fault-free baseline plan.
    pub fn without_baseline(mut self) -> Self {
        self.include_baseline = false;
        self
    }
}

/// One enumeration candidate: an atomic group of faults scheduled together
/// (single faults cost 1; a partition/heal window costs 2).
#[derive(Debug, Clone)]
struct Candidate {
    faults: Vec<FaultEvent>,
    anchors: Vec<EventId>,
}

impl Candidate {
    fn single(anchor: EventId, kind: FaultKind) -> Self {
        Candidate {
            faults: vec![FaultEvent::new(anchor, kind)],
            anchors: vec![anchor],
        }
    }

    fn cost(&self) -> usize {
        self.faults.len()
    }
}

fn candidates(workload: &Workload, space: &FaultSpace) -> Vec<Candidate> {
    let mut out = Vec::new();
    let anchored: Vec<&er_pi_model::Event> = workload
        .events()
        .iter()
        .filter(|ev| ev.is_sync() || (space.include_local_ops && ev.is_update()))
        .collect();
    for ev in &anchored {
        if space.drop {
            out.push(Candidate::single(ev.id, FaultKind::Drop));
        }
        if space.duplicate {
            out.push(Candidate::single(ev.id, FaultKind::Duplicate));
        }
        for by in 1..=space.delay_window {
            out.push(Candidate::single(ev.id, FaultKind::Delay { by }));
        }
    }
    if space.partitions {
        // Partition/heal windows: cut a link just before one of its sync
        // events, restore it just before a later sync event on the same
        // link. Both ends are anchored, so the window is deterministic in
        // every interleaving that respects the anchors' recorded order.
        let syncs: Vec<&er_pi_model::Event> =
            workload.events().iter().filter(|ev| ev.is_sync()).collect();
        for (i, open) in syncs.iter().enumerate() {
            let Some((a, b)) = open.sync_endpoints() else {
                continue;
            };
            let link = normalize(a, b);
            for close in syncs.iter().skip(i + 1) {
                let Some((c, d)) = close.sync_endpoints() else {
                    continue;
                };
                if normalize(c, d) != link {
                    continue;
                }
                out.push(Candidate {
                    faults: vec![
                        FaultEvent::new(open.id, FaultKind::Partition { from: a, to: b }),
                        FaultEvent::new(close.id, FaultKind::Heal { from: a, to: b }),
                    ],
                    anchors: vec![open.id, close.id],
                });
            }
        }
    }
    if space.crashes {
        for ev in workload.events() {
            out.push(Candidate::single(
                ev.id,
                FaultKind::CrashRestart {
                    replica: ev.replica,
                },
            ));
        }
    }
    out
}

fn normalize(
    a: er_pi_model::ReplicaId,
    b: er_pi_model::ReplicaId,
) -> (er_pi_model::ReplicaId, er_pi_model::ReplicaId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Enumerates the deterministic list of fault plans for `workload` under
/// `space`: the fault-free baseline (when enabled), then every combination
/// of candidate faults with distinct anchors whose total cost is within
/// the budget, in lexicographic candidate order.
///
/// ```
/// use er_pi_interleave::{enumerate_plans, FaultSpace};
/// use er_pi_model::{ReplicaId, Workload};
///
/// let mut w = Workload::builder();
/// let op = w.update(ReplicaId::new(0), "add", [1]);
/// w.sync_pair(ReplicaId::new(0), ReplicaId::new(1), op);
/// let workload = w.build();
///
/// // Default space: baseline + duplicate + delay(1) at the one sync event.
/// let plans = enumerate_plans(&workload, &FaultSpace::default());
/// assert_eq!(plans.len(), 3);
/// assert!(plans[0].is_empty());
/// ```
pub fn enumerate_plans(workload: &Workload, space: &FaultSpace) -> Vec<FaultPlan> {
    let cands = candidates(workload, space);
    let mut plans = Vec::new();
    if space.include_baseline {
        plans.push(FaultPlan::empty());
    }
    if space.budget == 0 {
        return plans;
    }
    // Depth-first combination enumeration: stable, lexicographic in the
    // candidate order, combinations of distinct-anchor candidates.
    let mut stack: Vec<usize> = Vec::new();
    fn emit(
        cands: &[Candidate],
        start: usize,
        budget_left: usize,
        stack: &mut Vec<usize>,
        plans: &mut Vec<FaultPlan>,
    ) {
        for i in start..cands.len() {
            let c = &cands[i];
            if c.cost() > budget_left {
                continue;
            }
            let clash = stack
                .iter()
                .any(|&j| cands[j].anchors.iter().any(|a| c.anchors.contains(a)));
            if clash {
                continue;
            }
            stack.push(i);
            plans.push(FaultPlan::new(
                stack
                    .iter()
                    .flat_map(|&j| cands[j].faults.iter().copied())
                    .collect(),
            ));
            emit(cands, i + 1, budget_left - c.cost(), stack, plans);
            stack.pop();
        }
    }
    emit(&cands, 0, space.budget, &mut stack, &mut plans);
    plans
}

/// Lifts an interleaving explorer to the product space `orders × plans`.
///
/// For each base order pulled from the inner explorer, emits that order once
/// per plan (plan-minor). With the single empty plan this is a transparent
/// pass-through — emitted interleavings are bit-identical to the inner
/// explorer's, so the fault-free pipeline is unchanged.
#[derive(Debug)]
pub struct FaultProduct<I> {
    inner: I,
    plans: Vec<FaultPlan>,
    current: Option<Interleaving>,
    next_plan: usize,
}

impl<I: Iterator<Item = Interleaving>> FaultProduct<I> {
    /// Wraps `inner`, emitting each of its orders under each of `plans`.
    /// An empty plan list behaves like the single fault-free plan.
    pub fn new(inner: I, mut plans: Vec<FaultPlan>) -> Self {
        if plans.is_empty() {
            plans.push(FaultPlan::empty());
        }
        FaultProduct {
            inner,
            plans,
            current: None,
            next_plan: 0,
        }
    }

    /// The wrapped explorer.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// The wrapped explorer, mutably.
    pub fn inner_mut(&mut self) -> &mut I {
        &mut self.inner
    }

    /// Number of plans in the product (including the baseline).
    pub fn plan_count(&self) -> usize {
        self.plans.len()
    }
}

impl<I: Iterator<Item = Interleaving>> Iterator for FaultProduct<I> {
    type Item = Interleaving;

    fn next(&mut self) -> Option<Interleaving> {
        loop {
            if let Some(base) = &self.current {
                if self.next_plan < self.plans.len() {
                    let plan = self.plans[self.next_plan].clone();
                    self.next_plan += 1;
                    return Some(base.clone().with_faults(plan));
                }
                self.current = None;
            }
            self.current = Some(self.inner.next()?);
            self.next_plan = 0;
        }
    }
}

impl<I: Explorer> Explorer for FaultProduct<I> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn wasted_work(&self) -> u64 {
        self.inner.wasted_work()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DfsExplorer;
    use er_pi_model::ReplicaId;

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    fn two_sync_workload() -> Workload {
        let mut w = Workload::builder();
        let a = w.update(r(0), "add", [1]);
        w.sync_pair(r(0), r(1), a);
        let b = w.update(r(1), "add", [2]);
        w.sync_pair(r(1), r(0), b);
        w.build()
    }

    #[test]
    fn default_space_enumerates_baseline_then_singles() {
        let w = two_sync_workload();
        let plans = enumerate_plans(&w, &FaultSpace::default());
        // 2 sync events × (duplicate + delay1) + baseline.
        assert_eq!(plans.len(), 5);
        assert!(plans[0].is_empty());
        assert!(plans[1..].iter().all(|p| p.len() == 1));
        // Deterministic: a second enumeration is identical.
        assert_eq!(plans, enumerate_plans(&w, &FaultSpace::default()));
    }

    #[test]
    fn budget_two_allows_distinct_anchor_pairs_only() {
        let w = two_sync_workload();
        let space = FaultSpace {
            budget: 2,
            delay_window: 0,
            ..FaultSpace::default()
        };
        let plans = enumerate_plans(&w, &space);
        // duplicate@s1, duplicate@s2, {duplicate@s1, duplicate@s2}, baseline.
        assert_eq!(plans.len(), 4);
        assert!(plans.iter().filter(|p| p.len() == 2).count() == 1);
        for p in &plans {
            let mut anchors: Vec<_> = p.iter().map(|f| f.anchor).collect();
            anchors.dedup();
            assert_eq!(anchors.len(), p.len(), "one fault per anchor");
        }
    }

    #[test]
    fn partition_windows_cost_two() {
        let mut w = Workload::builder();
        let a = w.update(r(0), "add", [1]);
        w.sync_pair(r(0), r(1), a);
        let b = w.update(r(0), "add", [2]);
        w.sync_pair(r(0), r(1), b);
        let w = w.build();
        let space = FaultSpace {
            budget: 2,
            duplicate: false,
            delay_window: 0,
            partitions: true,
            ..FaultSpace::default()
        };
        let plans = enumerate_plans(&w, &space);
        // baseline + one partition/heal window over the two same-link syncs.
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[1].len(), 2);
        let kinds: Vec<_> = plans[1].iter().map(|f| f.kind).collect();
        assert!(matches!(kinds[0], FaultKind::Partition { .. }));
        assert!(matches!(kinds[1], FaultKind::Heal { .. }));
    }

    #[test]
    fn crash_candidates_anchor_every_event() {
        let w = two_sync_workload();
        let space = FaultSpace {
            duplicate: false,
            delay_window: 0,
            crashes: true,
            ..FaultSpace::default()
        };
        let plans = enumerate_plans(&w, &space);
        assert_eq!(plans.len(), 1 + w.len());
    }

    #[test]
    fn product_is_plan_minor_with_baseline_first() {
        let w = two_sync_workload();
        let plans = enumerate_plans(&w, &FaultSpace::default());
        let product: Vec<Interleaving> =
            FaultProduct::new(DfsExplorer::new(&w), plans.clone()).collect();
        let base_count = DfsExplorer::new(&w).count();
        assert_eq!(product.len(), base_count * plans.len());
        // First emission is the recorded order, fault-free.
        assert!(product[0].faults().is_empty());
        // Each consecutive block shares one base order.
        for chunk in product.chunks(plans.len()) {
            assert!(chunk.iter().all(|il| il.as_slice() == chunk[0].as_slice()));
            let digests: std::collections::HashSet<u64> =
                chunk.iter().map(Interleaving::fingerprint).collect();
            assert_eq!(digests.len(), plans.len(), "plans distinguish fingerprints");
        }
    }

    #[test]
    fn empty_plan_list_is_a_transparent_passthrough() {
        let w = two_sync_workload();
        let wrapped: Vec<Interleaving> =
            FaultProduct::new(DfsExplorer::new(&w), Vec::new()).collect();
        let bare: Vec<Interleaving> = DfsExplorer::new(&w).collect();
        assert_eq!(wrapped, bare);
    }

    #[test]
    fn zero_budget_yields_baseline_only() {
        let w = two_sync_workload();
        let plans = enumerate_plans(
            &w,
            &FaultSpace {
                budget: 0,
                ..FaultSpace::default()
            },
        );
        assert_eq!(plans.len(), 1);
        assert!(plans[0].is_empty());
    }
}

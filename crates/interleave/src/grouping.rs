//! Algorithm 1 — event-group pruning.
//!
//! Fuses causally inseparable events into atomic units so that only unit
//! permutations are enumerated:
//!
//! * a "send sync request" event with the matching "execute sync request"
//!   event of the same `(sender, receiver)` pair — interleaving anything
//!   between them is wasteful because the execute can only follow its send;
//! * an update event with its fused `sync(update)` event (the grouping used
//!   in the paper's §3.1 walk-through of the motivating example);
//! * any developer-specified groups (`spec_group` in the pseudo-code).

use er_pi_model::{EventId, EventKind, Workload};

use crate::PruningConfig;

/// The grouped view of a workload: an ordered list of atomic units, each a
/// list of event ids in their fixed internal execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupedUnits {
    units: Vec<Vec<EventId>>,
}

impl GroupedUnits {
    /// The units, each a non-empty event sequence.
    pub fn units(&self) -> &[Vec<EventId>] {
        &self.units
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Returns `true` if there are no units.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Total number of unit permutations, `len()!`.
    pub fn total_orders(&self) -> u128 {
        er_pi_model::factorial(self.len())
    }

    /// Flattens a permutation of unit indices into an event order.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..len()`.
    pub fn flatten(&self, perm: &[usize]) -> Vec<EventId> {
        assert_eq!(perm.len(), self.units.len(), "not a unit permutation");
        perm.iter()
            .flat_map(|&u| self.units[u].iter().copied())
            .collect()
    }
}

/// Computes the grouped units of `workload` (Algorithm 1).
///
/// With `config.disable_grouping`, every event is its own unit (used by the
/// DFS/Random baselines and the ablation benches). Developer groups from
/// `config.extra_groups` are merged after the automatic rules; transitive
/// overlaps fuse into a single unit.
pub fn group_events(workload: &Workload, config: &PruningConfig) -> GroupedUnits {
    let n = workload.len();
    // Union-find over event indices.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    let union = |parent: &mut Vec<usize>, a: usize, b: usize| {
        let ra = find(parent, a);
        let rb = find(parent, b);
        if ra != rb {
            // Attach the larger root under the smaller so the unit's lead
            // event keeps the smallest id.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            parent[hi] = lo;
        }
    };

    if !config.disable_grouping {
        for ev in workload.events() {
            match &ev.kind {
                // (send sync, execute sync) of the same (from, to) pair.
                EventKind::SyncExec { send, .. } => {
                    union(&mut parent, send.index(), ev.id.index());
                }
                // (update, sync(update)) — the §3.1 grouping.
                EventKind::Sync {
                    of: Some(update), ..
                } => {
                    union(&mut parent, update.index(), ev.id.index());
                }
                _ => {}
            }
        }
    }
    for group in &config.extra_groups {
        for pair in group.windows(2) {
            union(&mut parent, pair[0].index(), pair[1].index());
        }
    }

    // Collect members per root, preserving recording order inside units and
    // ordering units by their lead (smallest) event.
    let mut units: Vec<Vec<EventId>> = Vec::new();
    let mut root_to_unit: Vec<Option<usize>> = vec![None; n];
    for idx in 0..n {
        let root = find(&mut parent, idx);
        match root_to_unit[root] {
            Some(u) => units[u].push(EventId::new(idx as u32)),
            None => {
                root_to_unit[root] = Some(units.len());
                units.push(vec![EventId::new(idx as u32)]);
            }
        }
    }
    GroupedUnits { units }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_pi_model::{ReplicaId, Value, Workload};

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    /// The §3.2 example: 8 events, two (send, exec) pairs.
    fn figure3_workload() -> Workload {
        let a = r(0);
        let b = r(1);
        let mut w = Workload::builder();
        let u1 = w.update(a, "op1", [Value::from(1)]);
        let _u2 = w.update(a, "op2", [Value::from(2)]);
        let (_s1, _x1) = w.sync_split(a, b, Some(u1));
        let u3 = w.update(b, "op3", [Value::from(3)]);
        let _u4 = w.update(b, "op4", [Value::from(4)]);
        let (_s2, _x2) = w.sync_split(b, a, Some(u3));
        w.build()
    }

    #[test]
    fn figure3_grouping_reduces_8_events_to_6_units() {
        let w = figure3_workload();
        assert_eq!(w.len(), 8);
        assert_eq!(w.total_orders(), 40_320); // 8!
        let grouped = group_events(&w, &PruningConfig::default());
        assert_eq!(grouped.len(), 6);
        assert_eq!(grouped.total_orders(), 720); // 6!
                                                 // The paper's 56x reduction.
        assert_eq!(
            er_pi_model::reduction_factor(w.total_orders(), grouped.total_orders()),
            Some(56)
        );
    }

    #[test]
    fn send_exec_pairs_stay_in_execution_order() {
        let w = figure3_workload();
        let grouped = group_events(&w, &PruningConfig::default());
        for unit in grouped.units() {
            if unit.len() == 2 {
                let first = w.event(unit[0]);
                let second = w.event(unit[1]);
                assert!(first.is_sync_send());
                assert!(second.is_sync_exec());
            }
        }
    }

    #[test]
    fn motivating_example_groups_updates_with_fused_syncs() {
        let a = r(0);
        let b = r(1);
        let mut w = Workload::builder();
        let ev1 = w.update(a, "add", [Value::from("otb")]);
        w.sync_pair(a, b, ev1);
        let ev2 = w.update(b, "add", [Value::from("ph")]);
        w.sync_pair(b, a, ev2);
        let ev3 = w.update(b, "remove", [Value::from("otb")]);
        w.sync_pair(b, a, ev3);
        w.external(a, "transmit");
        let w = w.build();
        let grouped = group_events(&w, &PruningConfig::default());
        assert_eq!(grouped.len(), 4, "three pairs + the external event");
        assert_eq!(grouped.total_orders(), 24);
    }

    #[test]
    fn disable_grouping_yields_singletons() {
        let w = figure3_workload();
        let config = PruningConfig {
            disable_grouping: true,
            ..PruningConfig::default()
        };
        let grouped = group_events(&w, &config);
        assert_eq!(grouped.len(), 8);
    }

    #[test]
    fn developer_groups_fuse_transitively() {
        let mut w = Workload::builder();
        let e0 = w.update(r(0), "a", [1]);
        let e1 = w.update(r(0), "b", [2]);
        let e2 = w.update(r(1), "c", [3]);
        let w = w.build();
        let config = PruningConfig::default()
            .with_group(vec![e0, e1])
            .with_group(vec![e1, e2]);
        let grouped = group_events(&w, &config);
        assert_eq!(grouped.len(), 1, "overlapping groups fuse");
        assert_eq!(grouped.units()[0], vec![e0, e1, e2]);
    }

    #[test]
    fn flatten_expands_units_in_order() {
        let w = figure3_workload();
        let grouped = group_events(&w, &PruningConfig::default());
        let identity: Vec<usize> = (0..grouped.len()).collect();
        let flat = grouped.flatten(&identity);
        assert_eq!(flat.len(), 8);
        // Identity unit order reproduces the recorded event order.
        let recorded: Vec<EventId> = w.event_ids().collect();
        assert_eq!(flat, recorded);
    }

    #[test]
    #[should_panic(expected = "not a unit permutation")]
    fn flatten_rejects_wrong_arity() {
        let w = figure3_workload();
        let grouped = group_events(&w, &PruningConfig::default());
        grouped.flatten(&[0, 1]);
    }
}

//! Interleaving generation, exploration, and pruning — the core of ER-π.
//!
//! Given a [`Workload`](er_pi_model::Workload) of `n` distributed events,
//! there are `n!` conceivable interleavings. This crate provides:
//!
//! * the two exhaustive baselines of the paper's §6.3 —
//!   [`DfsExplorer`] (depth-first, lexicographic tree order) and
//!   [`RandomExplorer`] (seeded shuffles with a seen-cache), both covering
//!   all `n!` orders;
//! * ER-π's pruned explorer, [`ErPiExplorer`], which applies the paper's
//!   four pruning algorithms (§3):
//!   1. **Event grouping** — fuse `(send sync, execute sync)` pairs and
//!      `(update, sync(update))` pairs into atomic units
//!      ([`group_events`]);
//!   2. **Replica-specific** — canonicalize orders of foreign events that
//!      occur after the last synchronization into the explored replica
//!      ([`replica_specific_canonical`]);
//!   3. **Event independence** — canonicalize orders of
//!      developer-declared independent events
//!      ([`independence_canonical`]);
//!   4. **Failed ops** — canonicalize orders of operations that provably
//!      fail given their prefix ([`failed_ops_canonical`]).
//!
//! Each pruning algorithm defines an equivalence relation over
//! interleavings; ER-π replays only the *canonical representative* of each
//! class, which is exactly the paper's "merge k interleavings into one".
//!
//! # The motivating example, §2.3 → §3.1
//!
//! ```
//! use er_pi_interleave::{ErPiExplorer, FailedOpsRule, PruningConfig};
//! use er_pi_model::{ReplicaId, Value, Workload};
//!
//! let a = ReplicaId::new(0);
//! let b = ReplicaId::new(1);
//! let mut w = Workload::builder();
//! let ev1 = w.update(a, "add", [Value::from("otb")]);
//! w.sync_pair(a, b, ev1);
//! let ev2 = w.update(b, "add", [Value::from("ph")]);
//! w.sync_pair(b, a, ev2);
//! let ev3 = w.update(b, "remove", [Value::from("otb")]);
//! w.sync_pair(b, a, ev3);
//! let ev4 = w.external(a, "transmit");
//! let workload = w.build();
//!
//! assert_eq!(workload.total_orders(), 5040); // 7!
//!
//! // Event grouping alone: 3 (update, sync) pairs + 1 external = 4 units.
//! let config = PruningConfig::default();
//! let explorer = ErPiExplorer::new(&workload, &config);
//! assert_eq!(explorer.count(), 24); // 4!
//!
//! // Adding the failed-ops rule ("transmit first makes every later order
//! // equivalent") yields the paper's 19 interleavings.
//! let config = PruningConfig::default().with_failed_ops(FailedOpsRule {
//!     predecessors: vec![ev4],
//!     successors: vec![ev1, ev2, ev3],
//! });
//! let explorer = ErPiExplorer::new(&workload, &config);
//! assert_eq!(explorer.count(), 19);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod erpi;
mod explorer;
mod failed_ops;
mod faults;
mod grouping;
mod independence;
mod permute;
mod replica_specific;
mod shard;
mod sleep;

pub use config::{FailedOpsRule, PruningConfig};
pub use erpi::{ErPiExplorer, FilterTimings, PruneStats};
pub use explorer::{DfsExplorer, ExploreMode, Explorer, RandomExplorer};
pub use failed_ops::failed_ops_canonical;
pub use faults::{enumerate_plans, FaultProduct, FaultSpace};
pub use grouping::{group_events, GroupedUnits};
pub use independence::independence_canonical;
pub use permute::Permutations;
pub use replica_specific::replica_specific_canonical;
pub use shard::IndexedSource;

//! The exploration baselines: DFS and Random (paper §6.3).

use std::collections::HashSet;

use er_pi_model::{factorial, EventId, Interleaving, Workload};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::Permutations;

/// A source of interleavings to replay.
///
/// All explorers are plain iterators; [`Explorer::wasted_work`] additionally
/// exposes mode-specific overhead (the Random explorer's shuffle retries),
/// which feeds the simulated-time model of Figure 8b.
pub trait Explorer: Iterator<Item = Interleaving> {
    /// Short mode name for reports ("ER-π", "DFS", "Rand").
    fn name(&self) -> &'static str;

    /// Mode-specific overhead units accumulated so far (e.g. rejected
    /// shuffles). Zero for systematic explorers.
    fn wasted_work(&self) -> u64 {
        0
    }
}

/// Which exploration mode to run — the three bars of Figures 8a/8b.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreMode {
    /// ER-π with its applicable pruning algorithms.
    ErPi,
    /// Depth-first search over all `n!` orders.
    Dfs,
    /// Random shuffling with a seen-cache over all `n!` orders.
    Random {
        /// Shuffle seed.
        seed: u64,
    },
}

impl std::fmt::Display for ExploreMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreMode::ErPi => f.write_str("ER-π"),
            ExploreMode::Dfs => f.write_str("DFS"),
            ExploreMode::Random { .. } => f.write_str("Rand"),
        }
    }
}

/// Depth-first (lexicographic) exploration of all `n!` interleavings.
///
/// ```
/// use er_pi_interleave::{DfsExplorer, Explorer};
/// use er_pi_model::{ReplicaId, Workload};
///
/// let mut w = Workload::builder();
/// w.update(ReplicaId::new(0), "a", [1]);
/// w.update(ReplicaId::new(1), "b", [2]);
/// let workload = w.build();
///
/// let mut dfs = DfsExplorer::new(&workload);
/// assert_eq!(dfs.name(), "DFS");
/// assert_eq!(dfs.count(), 2);
/// ```
#[derive(Debug)]
pub struct DfsExplorer {
    ids: Vec<EventId>,
    perms: Permutations,
}

impl DfsExplorer {
    /// Creates the explorer for `workload`.
    pub fn new(workload: &Workload) -> Self {
        DfsExplorer {
            ids: workload.event_ids().collect(),
            perms: Permutations::new(workload.len()),
        }
    }

    /// Creates the explorer with an explicit base expansion order: the tree
    /// is explored as if the events were enumerated in `base` order.
    ///
    /// Restarting a real model checker perturbs its frontier ordering (I/O
    /// timing, hash seeds); this constructor models that run-to-run
    /// nondeterminism for the Figure 10 micro-benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not a permutation of the workload's events.
    pub fn with_base_order(workload: &Workload, base: Vec<er_pi_model::EventId>) -> Self {
        assert!(
            workload.is_permutation(&er_pi_model::Interleaving::new(base.clone())),
            "base order must be a permutation of the workload"
        );
        DfsExplorer {
            ids: base,
            perms: Permutations::new(workload.len()),
        }
    }
}

impl Iterator for DfsExplorer {
    type Item = Interleaving;

    fn next(&mut self) -> Option<Interleaving> {
        let perm = self.perms.next()?;
        Some(perm.iter().map(|&i| self.ids[i]).collect())
    }
}

impl Explorer for DfsExplorer {
    fn name(&self) -> &'static str {
        "DFS"
    }
}

/// Random exploration: each draw shuffles the events and retries until an
/// unexplored interleaving appears (the paper's "caching the composed
/// interleavings to avoid repetition").
///
/// The retry count is the mode's characteristic overhead — "Rand took the
/// most time due to the need to keep shuffling the events until finding an
/// unexplored interleaving" (§6.3).
#[derive(Debug)]
pub struct RandomExplorer {
    ids: Vec<EventId>,
    rng: StdRng,
    seen: HashSet<u64>,
    total: u128,
    retries: u64,
}

impl RandomExplorer {
    /// Creates the explorer for `workload` with a deterministic `seed`.
    pub fn new(workload: &Workload, seed: u64) -> Self {
        RandomExplorer {
            ids: workload.event_ids().collect(),
            rng: StdRng::seed_from_u64(seed),
            seen: HashSet::new(),
            total: factorial(workload.len()),
            retries: 0,
        }
    }

    /// Number of rejected (already seen) shuffles so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }
}

impl Iterator for RandomExplorer {
    type Item = Interleaving;

    fn next(&mut self) -> Option<Interleaving> {
        if (self.seen.len() as u128) >= self.total {
            return None; // the whole space has been emitted
        }
        loop {
            let mut order = self.ids.clone();
            order.shuffle(&mut self.rng);
            let candidate = Interleaving::new(order);
            if self.seen.insert(candidate.fingerprint()) {
                return Some(candidate);
            }
            self.retries += 1;
        }
    }
}

impl Explorer for RandomExplorer {
    fn name(&self) -> &'static str {
        "Rand"
    }

    fn wasted_work(&self) -> u64 {
        self.retries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_pi_model::{ReplicaId, Workload};

    fn workload(n: usize) -> Workload {
        let mut w = Workload::builder();
        for i in 0..n {
            w.update(ReplicaId::new((i % 3) as u16), "op", [i as i64]);
        }
        w.build()
    }

    #[test]
    fn dfs_enumerates_all_orders_exactly_once() {
        let w = workload(4);
        let all: Vec<Interleaving> = DfsExplorer::new(&w).collect();
        assert_eq!(all.len(), 24);
        let unique: HashSet<u64> = all.iter().map(Interleaving::fingerprint).collect();
        assert_eq!(unique.len(), 24);
        for il in &all {
            assert!(w.is_permutation(il));
        }
    }

    #[test]
    fn dfs_first_is_recorded_order() {
        let w = workload(5);
        let first = DfsExplorer::new(&w).next().unwrap();
        assert_eq!(first, w.recorded_order());
    }

    #[test]
    fn random_emits_unique_permutations() {
        let w = workload(4);
        let mut rand = RandomExplorer::new(&w, 1234);
        let drawn: Vec<Interleaving> = rand.by_ref().take(24).collect();
        let unique: HashSet<u64> = drawn.iter().map(Interleaving::fingerprint).collect();
        assert_eq!(unique.len(), 24, "all 4! orders drawn without repetition");
        assert!(rand.next().is_none(), "space exhausted");
        assert!(rand.retries() > 0, "exhausting the space forces retries");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let w = workload(5);
        let a: Vec<Interleaving> = RandomExplorer::new(&w, 7).take(10).collect();
        let b: Vec<Interleaving> = RandomExplorer::new(&w, 7).take(10).collect();
        assert_eq!(a, b);
        let c: Vec<Interleaving> = RandomExplorer::new(&w, 8).take(10).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn random_orders_differ_from_dfs_prefix() {
        let w = workload(6);
        let dfs: Vec<Interleaving> = DfsExplorer::new(&w).take(5).collect();
        let rand: Vec<Interleaving> = RandomExplorer::new(&w, 99).take(5).collect();
        assert_ne!(dfs, rand);
    }

    #[test]
    fn mode_display_names() {
        assert_eq!(ExploreMode::ErPi.to_string(), "ER-π");
        assert_eq!(ExploreMode::Dfs.to_string(), "DFS");
        assert_eq!(ExploreMode::Random { seed: 1 }.to_string(), "Rand");
    }
}

//! Algorithm 4 — failed-ops pruning.
//!
//! Data-structure constraints make some operations fail when preceded by
//! certain others (adding an existing set element, removing an absent one).
//! Once every *predecessor* event has executed, the listed *successor*
//! events all fail — so interleavings differing only in the failed
//! successors' order are equivalent. ER-π keeps the representative with the
//! successors in ascending event-id order.

use er_pi_model::EventId;

use crate::FailedOpsRule;

/// Returns `true` if `order` is the canonical representative of its
/// failed-ops equivalence class under `rule`.
///
/// The rule fires when every predecessor is positioned before every
/// successor (matching the pseudo-code's
/// `∀p ∈ pIdx, ∃s ∈ sIdx : p < s` strengthened to all-before-all, which is
/// the configuration in which *all* successors fail); a fired rule requires
/// the successors to appear in ascending id order.
///
/// ```
/// use er_pi_interleave::{failed_ops_canonical, FailedOpsRule};
/// use er_pi_model::EventId;
///
/// let e = |i| EventId::new(i);
/// let rule = FailedOpsRule { predecessors: vec![e(0)], successors: vec![e(1), e(2)] };
///
/// assert!(failed_ops_canonical(&[e(0), e(1), e(2)], &rule));
/// assert!(!failed_ops_canonical(&[e(0), e(2), e(1)], &rule)); // merged away
/// assert!(failed_ops_canonical(&[e(2), e(0), e(1)], &rule)); // rule not fired
/// ```
pub fn failed_ops_canonical(order: &[EventId], rule: &FailedOpsRule) -> bool {
    if rule.predecessors.is_empty() || rule.successors.len() < 2 {
        return true;
    }
    let pos = |id: EventId| order.iter().position(|&e| e == id);

    let mut last_pred = None::<usize>;
    for &p in &rule.predecessors {
        match pos(p) {
            Some(i) => last_pred = Some(last_pred.map_or(i, |m: usize| m.max(i))),
            None => return true, // rule references an absent event
        }
    }
    let mut succ_positions = Vec::with_capacity(rule.successors.len());
    for &s in &rule.successors {
        match pos(s) {
            Some(i) => succ_positions.push((i, s)),
            None => return true,
        }
    }
    let first_succ = succ_positions.iter().map(|&(i, _)| i).min().unwrap_or(0);
    if last_pred.is_some_and(|lp| lp < first_succ) {
        // Rule fired: all successors fail; canonical = ascending id order.
        succ_positions.sort_by_key(|&(i, _)| i);
        succ_positions.windows(2).all(|w| w[0].1 < w[1].1)
    } else {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Permutations;

    fn e(i: u32) -> EventId {
        EventId::new(i)
    }

    /// The Figure 6 scenario: set content established, then three failing
    /// ops (`remove(ε)`, `add(α)`, `remove(σ)`).
    #[test]
    fn three_failed_ops_merge_6_to_1() {
        // Events 0..2 establish the set; events 3..5 are the failed ops.
        let rule = FailedOpsRule {
            predecessors: vec![e(0), e(1), e(2)],
            successors: vec![e(3), e(4), e(5)],
        };
        let mut canonical = 0;
        for perm in Permutations::new(3) {
            let mut order = vec![e(0), e(1), e(2)];
            order.extend(perm.iter().map(|&i| e(3 + i as u32)));
            if failed_ops_canonical(&order, &rule) {
                canonical += 1;
            }
        }
        assert_eq!(canonical, 1, "3! - 1 = 5 interleavings pruned");
    }

    #[test]
    fn rule_does_not_fire_when_a_successor_precedes_a_predecessor() {
        let rule = FailedOpsRule {
            predecessors: vec![e(0), e(1)],
            successors: vec![e(2), e(3)],
        };
        // e3 before e1: not all successors follow all predecessors, so the
        // ops do not (all) fail and every order is canonical.
        assert!(failed_ops_canonical(&[e(0), e(3), e(1), e(2)], &rule));
        assert!(failed_ops_canonical(&[e(3), e(2), e(0), e(1)], &rule));
    }

    #[test]
    fn non_rule_events_are_free() {
        let rule = FailedOpsRule {
            predecessors: vec![e(0)],
            successors: vec![e(1), e(2)],
        };
        // e9-like extra events don't exist here, but interleaving the
        // successors with unrelated events keeps ascending order binding.
        assert!(failed_ops_canonical(&[e(0), e(1), e(3), e(2)], &rule));
        assert!(!failed_ops_canonical(&[e(0), e(2), e(3), e(1)], &rule));
    }

    #[test]
    fn degenerate_rules_are_trivially_canonical() {
        let no_pred = FailedOpsRule {
            predecessors: vec![],
            successors: vec![e(0), e(1)],
        };
        assert!(failed_ops_canonical(&[e(1), e(0)], &no_pred));
        let one_succ = FailedOpsRule {
            predecessors: vec![e(0)],
            successors: vec![e(1)],
        };
        assert!(failed_ops_canonical(&[e(0), e(1)], &one_succ));
    }

    #[test]
    fn absent_events_disable_the_rule() {
        let rule = FailedOpsRule {
            predecessors: vec![e(9)],
            successors: vec![e(0), e(1)],
        };
        assert!(failed_ops_canonical(&[e(1), e(0)], &rule));
    }
}

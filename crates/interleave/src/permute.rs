//! Lazy lexicographic permutation enumeration.

/// Iterates over all permutations of `0..n` in lexicographic order.
///
/// This is the order a depth-first tree exploration visits interleavings in
/// (paper §6.3: "DFS treats the interleavings as a tree that starts at an
/// empty root node and recursively explores each event"): the identity
/// permutation first, then backtrack-and-expand.
///
/// The iterator is lazy — `21!` permutations exist for the Roshi-3 workload,
/// but callers only ever draw a bounded prefix.
///
/// ```
/// use er_pi_interleave::Permutations;
///
/// let perms: Vec<Vec<usize>> = Permutations::new(3).collect();
/// assert_eq!(perms.len(), 6);
/// assert_eq!(perms[0], vec![0, 1, 2]);
/// assert_eq!(perms[5], vec![2, 1, 0]);
/// ```
#[derive(Debug, Clone)]
pub struct Permutations {
    current: Vec<usize>,
    /// `None` before the first call, `Some(false)` once exhausted.
    state: PermState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PermState {
    Fresh,
    Running,
    Done,
}

impl Permutations {
    /// Creates the enumeration for `n` items.
    pub fn new(n: usize) -> Self {
        Permutations {
            current: (0..n).collect(),
            state: PermState::Fresh,
        }
    }

    /// Advances `self.current` to the next lexicographic permutation.
    /// Returns `false` when the enumeration wraps (exhausted).
    fn advance(&mut self) -> bool {
        let v = &mut self.current;
        if v.len() < 2 {
            return false;
        }
        // Standard next-permutation: find the longest non-increasing suffix.
        let mut i = v.len() - 1;
        while i > 0 && v[i - 1] >= v[i] {
            i -= 1;
        }
        if i == 0 {
            return false;
        }
        // Find rightmost element greater than the pivot.
        let mut j = v.len() - 1;
        while v[j] <= v[i - 1] {
            j -= 1;
        }
        v.swap(i - 1, j);
        v[i..].reverse();
        true
    }
}

impl Iterator for Permutations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        match self.state {
            PermState::Fresh => {
                self.state = PermState::Running;
                if self.current.is_empty() {
                    self.state = PermState::Done;
                    // The empty permutation exists exactly once.
                    return Some(Vec::new());
                }
                Some(self.current.clone())
            }
            PermState::Running => {
                if self.advance() {
                    Some(self.current.clone())
                } else {
                    self.state = PermState::Done;
                    None
                }
            }
            PermState::Done => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_pi_model::factorial;

    #[test]
    fn counts_match_factorial() {
        for n in 0..7 {
            assert_eq!(
                Permutations::new(n).count() as u128,
                factorial(n),
                "n = {n}"
            );
        }
    }

    #[test]
    fn order_is_lexicographic_and_unique() {
        let perms: Vec<Vec<usize>> = Permutations::new(4).collect();
        for pair in perms.windows(2) {
            assert!(pair[0] < pair[1], "not strictly increasing: {pair:?}");
        }
    }

    #[test]
    fn first_is_identity() {
        assert_eq!(Permutations::new(5).next().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn single_item() {
        let perms: Vec<Vec<usize>> = Permutations::new(1).collect();
        assert_eq!(perms, vec![vec![0]]);
    }

    #[test]
    fn empty_domain_yields_one_empty_permutation() {
        let perms: Vec<Vec<usize>> = Permutations::new(0).collect();
        assert_eq!(perms, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn lazy_prefix_of_large_space() {
        // 20! is astronomically large; drawing a prefix must be instant.
        let prefix: Vec<Vec<usize>> = Permutations::new(20).take(1000).collect();
        assert_eq!(prefix.len(), 1000);
        assert_eq!(prefix[0][0], 0);
    }
}

//! Algorithm 2 — replica-specific pruning.
//!
//! When the developer explores the behaviour of one specific replica, events
//! executed at *other* replicas after the last synchronization into the
//! explored replica cannot affect it any more. Interleavings that differ
//! only in the order of those trailing foreign events are equivalent; ER-π
//! keeps the representative where they appear in ascending event-id order.

use er_pi_model::{EventId, ReplicaId, Workload};

/// Returns `true` if `order` is the canonical representative of its
/// replica-specific equivalence class for `target`.
///
/// An event is *foreign* if it neither executes at `target` nor synchronizes
/// into `target`. All foreign events positioned after the last
/// into-`target` synchronization must appear in ascending id order.
///
/// ```
/// use er_pi_interleave::replica_specific_canonical;
/// use er_pi_model::{Interleaving, ReplicaId, Value, Workload};
///
/// let a = ReplicaId::new(0);
/// let b = ReplicaId::new(1);
/// let mut w = Workload::builder();
/// let p = w.update(a, "p", [1]);
/// let q = w.update(a, "q", [2]);
/// let workload = w.build();
///
/// // Exploring replica B: both A-events are foreign with no sync into B.
/// let fwd = Interleaving::new(vec![p, q]);
/// let rev = Interleaving::new(vec![q, p]);
/// assert!(replica_specific_canonical(&workload, fwd.as_slice(), b));
/// assert!(!replica_specific_canonical(&workload, rev.as_slice(), b));
/// ```
pub fn replica_specific_canonical(
    workload: &Workload,
    order: &[EventId],
    target: ReplicaId,
) -> bool {
    // Position of the last event that can still change `target`'s state
    // from outside: a synchronization whose receiver is `target`.
    let last_sync_in = order
        .iter()
        .rposition(|&id| {
            workload
                .event(id)
                .sync_endpoints()
                .is_some_and(|(_, to)| to == target)
        })
        .map_or(0, |p| p + 1);

    // Foreign events in the tail must be ascending.
    let mut prev: Option<EventId> = None;
    for &id in &order[last_sync_in..] {
        let ev = workload.event(id);
        let syncs_into_target = ev.sync_endpoints().is_some_and(|(_, to)| to == target);
        let foreign = ev.replica != target && !syncs_into_target;
        if foreign {
            if prev.is_some_and(|p| p > id) {
                return false;
            }
            prev = Some(id);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Permutations;
    use er_pi_model::{factorial, Value};

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    /// The Figure 4 scenario: a sync into B, then four events at A.
    fn figure4_workload() -> (Workload, Vec<EventId>) {
        let a = r(0);
        let b = r(1);
        let mut w = Workload::builder();
        let base = w.update(a, "base", [Value::from(0)]);
        let sync = w.sync_pair(a, b, base);
        let p = w.update(a, "p", [Value::from(1)]);
        let q = w.update(a, "q", [Value::from(2)]);
        let s = w.update(a, "r", [Value::from(3)]);
        let t = w.update(a, "s", [Value::from(4)]);
        (w.build(), vec![base, sync, p, q, s, t])
    }

    #[test]
    fn figure4_trailing_foreign_events_merge_4_factorial_to_1() {
        let (w, ids) = figure4_workload();
        let b = r(1);
        // Fix the prefix (base, sync); permute the four trailing A-events.
        let mut canonical = 0u32;
        let mut total = 0u32;
        for perm in Permutations::new(4) {
            let mut order = vec![ids[0], ids[1]];
            order.extend(perm.iter().map(|&i| ids[2 + i]));
            total += 1;
            if replica_specific_canonical(&w, &order, b) {
                canonical += 1;
            }
        }
        assert_eq!(total as u128, factorial(4));
        assert_eq!(canonical, 1, "4! - 1 = 23 interleavings pruned");
    }

    #[test]
    fn events_at_target_are_never_constrained() {
        let a = r(0);
        let b = r(1);
        let mut w = Workload::builder();
        let x = w.update(b, "x", [1]);
        let y = w.update(b, "y", [2]);
        let w = w.build();
        // Both orders canonical: the explored replica's own events always
        // matter.
        assert!(replica_specific_canonical(&w, &[x, y], b));
        assert!(replica_specific_canonical(&w, &[y, x], b));
        let _ = a;
    }

    #[test]
    fn foreign_events_before_last_sync_are_unconstrained() {
        let a = r(0);
        let b = r(1);
        let mut w = Workload::builder();
        let p = w.update(a, "p", [1]);
        let q = w.update(a, "q", [2]);
        let sync = w.sync_pair(a, b, q);
        let w = w.build();
        // The sync into B comes last: foreign events before it still affect
        // B (they get shipped), so their order matters.
        assert!(replica_specific_canonical(&w, &[p, q, sync], b));
        assert!(replica_specific_canonical(&w, &[q, p, sync], b));
        // After moving the sync first, the tail (p, q) is foreign:
        assert!(replica_specific_canonical(&w, &[sync, p, q], b));
        assert!(!replica_specific_canonical(&w, &[sync, q, p], b));
    }

    #[test]
    fn sync_into_target_in_tail_resets_the_cut() {
        let a = r(0);
        let b = r(1);
        let mut w = Workload::builder();
        let p = w.update(a, "p", [1]);
        let s1 = w.sync_pair(a, b, p);
        let q = w.update(a, "q", [2]);
        let s2 = w.sync_pair(a, b, q);
        let w = w.build();
        // s2 is the last sync into b; only events after it are constrained.
        assert!(replica_specific_canonical(&w, &[q, p, s1, s2], b));
        assert!(replica_specific_canonical(&w, &[s1, q, p, s2], b));
        assert!(!replica_specific_canonical(&w, &[s1, s2, q, p], b));
    }
}

//! Property tests: the pruning algorithms are *sound* — they only merge
//! genuinely equivalent interleavings, never losing an equivalence class.
//!
//! For each pruning algorithm we check, on randomized workloads:
//!
//! 1. **Representative existence** — every rejected interleaving has a
//!    canonical sibling (same positions for unconstrained events,
//!    constrained events reordered canonically) that the filter accepts.
//! 2. **Exact counting** — the number of canonical survivors matches the
//!    closed-form `total / k!` the paper's examples rely on.

use proptest::prelude::*;

use er_pi_interleave::{
    failed_ops_canonical, independence_canonical, DfsExplorer, ErPiExplorer, FailedOpsRule,
    PruningConfig,
};
use er_pi_model::{factorial, EventId, ReplicaId, Value, Workload};

fn e(i: u32) -> EventId {
    EventId::new(i)
}

/// Builds a workload of `n` independent single-replica updates.
fn flat_workload(n: usize) -> Workload {
    let mut w = Workload::builder();
    for i in 0..n {
        w.update(
            ReplicaId::new((i % 3) as u16),
            "op",
            [Value::from(i as i64)],
        );
    }
    w.build()
}

/// Canonicalizes `order` with respect to a constrained subset: the
/// constrained events keep their *positions* but are re-sorted ascending.
fn sort_constrained(order: &[EventId], constrained: &[EventId]) -> Vec<EventId> {
    let mut slots: Vec<usize> = Vec::new();
    let mut members: Vec<EventId> = Vec::new();
    for (i, &id) in order.iter().enumerate() {
        if constrained.contains(&id) {
            slots.push(i);
            members.push(id);
        }
    }
    members.sort();
    let mut out = order.to_vec();
    for (slot, member) in slots.into_iter().zip(members) {
        out[slot] = member;
    }
    out
}

proptest! {
    /// Independence: every rejected order has an accepted representative,
    /// and the survivor count is exactly n!/|S|! (no interference).
    #[test]
    fn independence_partition_is_exact(n in 3usize..6, set_size in 2usize..4) {
        prop_assume!(set_size <= n);
        let w = flat_workload(n);
        let set: Vec<EventId> = (0..set_size as u32).map(e).collect();
        let mut accepted = 0u128;
        for il in DfsExplorer::new(&w) {
            if independence_canonical(il.as_slice(), &set, &[]) {
                accepted += 1;
                // A canonical order must be its own representative.
                prop_assert_eq!(
                    sort_constrained(il.as_slice(), &set),
                    il.as_slice().to_vec()
                );
            } else {
                // The representative of a rejected order must be accepted.
                let rep = sort_constrained(il.as_slice(), &set);
                prop_assert!(independence_canonical(&rep, &set, &[]));
            }
        }
        prop_assert_eq!(accepted, factorial(n) / factorial(set_size));
    }

    /// Failed-ops: representatives always exist, and firing configurations
    /// are counted exactly.
    #[test]
    fn failed_ops_representative_exists(n in 4usize..6, n_pred in 1usize..3) {
        let w = flat_workload(n);
        let predecessors: Vec<EventId> = (0..n_pred as u32).map(e).collect();
        let successors: Vec<EventId> = (n_pred as u32..n as u32).map(e).collect();
        prop_assume!(successors.len() >= 2);
        let rule = FailedOpsRule {
            predecessors: predecessors.clone(),
            successors: successors.clone(),
        };
        for il in DfsExplorer::new(&w) {
            if !failed_ops_canonical(il.as_slice(), &rule) {
                let rep = sort_constrained(il.as_slice(), &successors);
                prop_assert!(
                    failed_ops_canonical(&rep, &rule),
                    "rejected order {:?} has no accepted representative",
                    il.as_slice()
                );
            }
        }
    }

    /// The ER-π explorer emits exactly the canonical survivors: no
    /// duplicates, all permutations, count consistent with its own stats.
    #[test]
    fn erpi_explorer_is_consistent(n in 2usize..6) {
        let w = flat_workload(n);
        let config = PruningConfig::default()
            .with_independent_set(vec![e(0), e(1)]);
        let mut explorer = ErPiExplorer::new(&w, &config);
        let emitted: Vec<_> = explorer.by_ref().collect();
        let stats = explorer.stats();
        prop_assert_eq!(stats.emitted as usize, emitted.len());
        let mut fps: Vec<u64> = emitted.iter().map(|il| il.fingerprint()).collect();
        fps.sort_unstable();
        fps.dedup();
        prop_assert_eq!(fps.len(), emitted.len(), "no duplicates");
        for il in &emitted {
            prop_assert!(w.is_permutation(il));
        }
        prop_assert_eq!(stats.examined() as u128, factorial(n));
    }

    /// Grouping + DFS equivalence: with grouping disabled, the ER-π
    /// explorer (no dynamic rules) enumerates exactly the DFS space.
    #[test]
    fn ungrouped_erpi_equals_dfs(n in 1usize..5) {
        let w = flat_workload(n);
        let config = PruningConfig { disable_grouping: true, ..PruningConfig::default() };
        let erpi: Vec<_> = ErPiExplorer::new(&w, &config).collect();
        let dfs: Vec<_> = DfsExplorer::new(&w).collect();
        prop_assert_eq!(erpi, dfs);
    }
}

/// Workloads with sync pairs: grouped units never get split by any emitted
/// interleaving, and every DFS order maps into some emitted class by
/// collapsing units.
#[test]
fn grouped_units_cover_the_full_space() {
    let a = ReplicaId::new(0);
    let b = ReplicaId::new(1);
    let mut builder = Workload::builder();
    let u1 = builder.update(a, "x", [Value::from(1)]);
    let s1 = builder.sync_pair(a, b, u1);
    let u2 = builder.update(b, "y", [Value::from(2)]);
    let w = builder.build();

    let config = PruningConfig::default();
    let emitted: Vec<_> = ErPiExplorer::new(&w, &config).collect();
    // 2 units → 2 interleavings.
    assert_eq!(emitted.len(), 2);
    for il in &emitted {
        let pu = il.position(u1).unwrap();
        let ps = il.position(s1).unwrap();
        assert_eq!(ps, pu + 1);
    }
    // Every one of the 3! raw orders collapses (by unit adjacency) into one
    // of the two emitted classes: the class is determined by whether u2
    // precedes the (u1, s1) unit.
    let mut classes = std::collections::HashSet::new();
    for il in DfsExplorer::new(&w) {
        let class = il.position(u2).unwrap() < il.position(u1).unwrap();
        classes.insert(class);
    }
    assert_eq!(classes.len(), 2);
}

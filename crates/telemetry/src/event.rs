//! The telemetry event model shared by every sink.

use std::borrow::Cow;
use std::fmt::Write as _;

/// The track an event is attributed to — one row in the rendered trace.
///
/// Track 0 is the coordinating thread (the session's own thread); pool
/// workers get one track each, starting at 1. [`ChromeTraceSink`] renders
/// every track as its own named timeline row, so a replay campaign shows up
/// as one flamegraph lane per worker.
///
/// [`ChromeTraceSink`]: crate::ChromeTraceSink
pub type TrackId = u32;

/// The coordinating thread's track (recording, enumeration, summary).
pub const COORDINATOR_TRACK: TrackId = 0;

/// The track of pool worker `worker` (0-based worker index).
pub const fn worker_track(worker: usize) -> TrackId {
    worker as TrackId + 1
}

/// A typed argument value attached to spans and instants.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::Int(v)
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::UInt(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::UInt(v as u64)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Float(v)
    }
}

impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_owned())
    }
}

/// Named arguments of an event. A plain vector keeps insertion order in the
/// rendered JSON and avoids hashing on the hot path.
pub type Args = Vec<(&'static str, ArgValue)>;

/// What kind of record an event is.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A completed span: something that took `dur_us` microseconds.
    Span {
        /// Span duration, microseconds (wall clock).
        dur_us: u64,
        /// Named arguments.
        args: Args,
    },
    /// A point-in-time marker.
    Instant {
        /// Named arguments.
        args: Args,
    },
    /// A sampled counter value (rendered as a counter track by Perfetto).
    Counter {
        /// The sampled value.
        value: f64,
    },
    /// A one-line warning diagnostic (e.g. a degraded checkpoint-trie hit
    /// rate). The name carries a stable warning code; the message is
    /// human-readable.
    Warning {
        /// Human-readable, single-line message.
        message: String,
    },
}

impl EventKind {
    /// The JSON Lines `kind` discriminator for this event.
    pub fn kind_name(&self) -> &'static str {
        match self {
            EventKind::Span { .. } => "span",
            EventKind::Instant { .. } => "instant",
            EventKind::Counter { .. } => "counter",
            EventKind::Warning { .. } => "warning",
        }
    }
}

/// One telemetry event, as handed to a [`Sink`](crate::Sink).
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryEvent {
    /// Microseconds since the owning [`Telemetry`](crate::Telemetry)
    /// handle's origin.
    pub ts_us: u64,
    /// The track this event belongs to.
    pub track: TrackId,
    /// Event name (stable, dot-free identifiers like `run`,
    /// `prune:independence`, `dlock:acquire`).
    pub name: Cow<'static, str>,
    /// The payload.
    pub kind: EventKind,
}

/// Appends `s` to `out` as a JSON string literal (quoted, escaped).
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an [`ArgValue`] to `out` as a JSON value.
pub(crate) fn push_json_value(out: &mut String, v: &ArgValue) {
    match v {
        ArgValue::Int(i) => {
            let _ = write!(out, "{i}");
        }
        ArgValue::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        ArgValue::Float(f) => {
            if f.is_finite() {
                let _ = write!(out, "{f}");
            } else {
                out.push_str("null");
            }
        }
        ArgValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        ArgValue::Str(s) => push_json_str(out, s),
    }
}

/// Appends `args` to `out` as a JSON object.
pub(crate) fn push_json_args(out: &mut String, args: &Args) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, k);
        out.push(':');
        push_json_value(out, v);
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_escaping_covers_controls() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{01}e");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001e\"");
    }

    #[test]
    fn arg_rendering() {
        let mut out = String::new();
        push_json_args(
            &mut out,
            &vec![
                ("i", ArgValue::Int(-3)),
                ("u", ArgValue::UInt(7)),
                ("f", ArgValue::Float(0.5)),
                ("b", ArgValue::Bool(true)),
                ("s", ArgValue::Str("x".into())),
            ],
        );
        assert_eq!(out, r#"{"i":-3,"u":7,"f":0.5,"b":true,"s":"x"}"#);
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        let mut out = String::new();
        push_json_value(&mut out, &ArgValue::Float(f64::NAN));
        assert_eq!(out, "null");
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(
            EventKind::Span {
                dur_us: 0,
                args: vec![]
            }
            .kind_name(),
            "span"
        );
        assert_eq!(EventKind::Instant { args: vec![] }.kind_name(), "instant");
        assert_eq!(EventKind::Counter { value: 0.0 }.kind_name(), "counter");
        assert_eq!(
            EventKind::Warning {
                message: String::new()
            }
            .kind_name(),
            "warning"
        );
    }

    #[test]
    fn worker_tracks_start_after_the_coordinator() {
        assert_eq!(COORDINATOR_TRACK, 0);
        assert_eq!(worker_track(0), 1);
        assert_eq!(worker_track(3), 4);
    }
}

//! The [`Telemetry`] handle: what instrumentation sites hold.

use std::borrow::Cow;
use std::sync::Arc;
use std::time::Instant;

use crate::event::{Args, EventKind, TelemetryEvent, TrackId};
use crate::sink::Sink;

/// A cheap, cloneable handle to an installed [`Sink`].
///
/// Instrumentation sites hold one of these and gate every emission on
/// [`Telemetry::is_active`] — a single branch. The active flag is captured
/// from [`Sink::enabled`] when the handle is built, so the disabled path
/// (no sink, or [`NullSink`](crate::NullSink)) never reads the clock, never
/// builds arguments, and never allocates.
#[derive(Clone)]
pub struct Telemetry {
    sink: Option<Arc<dyn Sink>>,
    origin: Instant,
    active: bool,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("active", &self.active)
            .finish_non_exhaustive()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl Telemetry {
    /// A handle with no sink: every emission is a no-op behind one branch.
    pub fn disabled() -> Self {
        Telemetry {
            sink: None,
            origin: Instant::now(),
            active: false,
        }
    }

    /// Wraps `sink`. Timestamps are microseconds since this call.
    pub fn new(sink: Arc<dyn Sink>) -> Self {
        let active = sink.enabled();
        Telemetry {
            sink: Some(sink),
            origin: Instant::now(),
            active,
        }
    }

    /// Whether events will actually reach a sink. Emission helpers check
    /// this themselves; call it directly only to skip *building* expensive
    /// arguments.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Microseconds since the handle was built (0 when inactive — don't
    /// read the clock nobody is watching).
    #[inline]
    pub fn now_us(&self) -> u64 {
        if self.active {
            self.origin.elapsed().as_micros() as u64
        } else {
            0
        }
    }

    /// Starts a span: returns the timestamp to later pass to
    /// [`Telemetry::span_since`].
    #[inline]
    pub fn start(&self) -> u64 {
        self.now_us()
    }

    /// Emits a completed span that began at `start_us` (from
    /// [`Telemetry::start`]) and ends now.
    #[inline]
    pub fn span_since(
        &self,
        track: TrackId,
        name: impl Into<Cow<'static, str>>,
        start_us: u64,
        args: Args,
    ) {
        if !self.active {
            return;
        }
        let end = self.now_us();
        self.emit(TelemetryEvent {
            ts_us: start_us,
            track,
            name: name.into(),
            kind: EventKind::Span {
                dur_us: end.saturating_sub(start_us),
                args,
            },
        });
    }

    /// Emits a completed span with an explicit duration (for durations
    /// measured elsewhere, e.g. aggregated pruner wall time).
    #[inline]
    pub fn span(
        &self,
        track: TrackId,
        name: impl Into<Cow<'static, str>>,
        start_us: u64,
        dur_us: u64,
        args: Args,
    ) {
        if !self.active {
            return;
        }
        self.emit(TelemetryEvent {
            ts_us: start_us,
            track,
            name: name.into(),
            kind: EventKind::Span { dur_us, args },
        });
    }

    /// Emits a point-in-time marker.
    #[inline]
    pub fn instant(&self, track: TrackId, name: impl Into<Cow<'static, str>>, args: Args) {
        if !self.active {
            return;
        }
        self.emit(TelemetryEvent {
            ts_us: self.now_us(),
            track,
            name: name.into(),
            kind: EventKind::Instant { args },
        });
    }

    /// Emits a sampled counter value.
    #[inline]
    pub fn counter(&self, track: TrackId, name: impl Into<Cow<'static, str>>, value: f64) {
        if !self.active {
            return;
        }
        self.emit(TelemetryEvent {
            ts_us: self.now_us(),
            track,
            name: name.into(),
            kind: EventKind::Counter { value },
        });
    }

    /// Emits a one-line warning diagnostic.
    #[inline]
    pub fn warn(
        &self,
        track: TrackId,
        name: impl Into<Cow<'static, str>>,
        message: impl Into<String>,
    ) {
        if !self.active {
            return;
        }
        self.emit(TelemetryEvent {
            ts_us: self.now_us(),
            track,
            name: name.into(),
            kind: EventKind::Warning {
                message: message.into(),
            },
        });
    }

    /// Flushes the underlying sink.
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            sink.flush();
        }
    }

    fn emit(&self, event: TelemetryEvent) {
        if let Some(sink) = &self.sink {
            sink.emit(&event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemorySink, NullSink, COORDINATOR_TRACK};

    #[test]
    fn disabled_handle_drops_everything() {
        let t = Telemetry::disabled();
        assert!(!t.is_active());
        assert_eq!(t.now_us(), 0);
        t.instant(COORDINATOR_TRACK, "x", vec![]);
        t.counter(COORDINATOR_TRACK, "c", 1.0);
        t.flush();
    }

    #[test]
    fn null_sink_deactivates_the_handle() {
        let t = Telemetry::new(Arc::new(NullSink));
        assert!(!t.is_active());
    }

    #[test]
    fn memory_sink_receives_spans_with_durations() {
        let sink = Arc::new(MemorySink::new());
        let t = Telemetry::new(sink.clone());
        assert!(t.is_active());
        let start = t.start();
        t.span_since(1, "run", start, vec![("index", 4u64.into())]);
        t.warn(1, "cache:low-hit-rate", "hit rate degraded");
        let events = sink.events();
        assert_eq!(events.len(), 2);
        match &events[0].kind {
            EventKind::Span { args, .. } => {
                assert_eq!(args[0].0, "index");
            }
            other => panic!("expected span, got {other:?}"),
        }
        assert_eq!(events[1].kind.kind_name(), "warning");
    }

    #[test]
    fn clones_share_the_origin() {
        let sink = Arc::new(MemorySink::new());
        let t = Telemetry::new(sink.clone());
        let t2 = t.clone();
        t.instant(0, "a", vec![]);
        t2.instant(1, "b", vec![]);
        let events = sink.events();
        assert!(events[1].ts_us >= events[0].ts_us);
    }
}
